//! Cross-crate correctness: every distributed algorithm must produce
//! exactly the brute-force join result on every workload shape, buffer
//! size, predicate and NLSJ mode — the distributed machinery (grids,
//! extensions, pruning, duplicate avoidance, codecs, cost-driven operator
//! switching) must be invisible in the output.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::sweep::nested_loop_join;
use asj_workloads::{default_space, RailSpec};

fn oracle(r: &[SpatialObject], s: &[SpatialObject], pred: &JoinPredicate) -> Vec<(u32, u32)> {
    let mut v = nested_loop_join(r, s, pred);
    v.sort_unstable();
    v
}

fn algorithms() -> Vec<Box<dyn DistributedJoin>> {
    vec![
        Box::new(GridJoin::default()),
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
    ]
}

/// Runs every algorithm on the given deployment and asserts the oracle
/// result. Returns total bytes per algorithm for sanity assertions.
fn assert_all_correct(
    r: Vec<SpatialObject>,
    s: Vec<SpatialObject>,
    buffer: usize,
    spec: &JoinSpec,
) -> Vec<(String, u64)> {
    let want = oracle(&r, &s, &spec.predicate);
    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(buffer)
        .with_space(default_space())
        .build();
    let mut out = Vec::new();
    for alg in algorithms() {
        let rep = alg.run(&dep, spec).unwrap_or_else(|e| {
            panic!("{} failed: {e}", alg.name());
        });
        let mut got = rep.pairs.clone();
        got.sort_unstable();
        assert_eq!(
            got,
            want,
            "{} diverged from oracle (buffer={buffer}, spec={spec:?})",
            alg.name()
        );
        assert!(
            rep.peak_buffer <= buffer,
            "{} violated the device buffer: {} > {buffer}",
            alg.name(),
            rep.peak_buffer
        );
        out.push((alg.name().to_string(), rep.total_bytes()));
    }
    out
}

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

#[test]
fn skewed_distance_join_all_algorithms() {
    for seed in [1, 2] {
        let spec = JoinSpec::distance_join(100.0);
        assert_all_correct(
            clusters(1, 400, seed),
            clusters(1, 400, seed + 100),
            800,
            &spec,
        );
    }
}

#[test]
fn moderate_skew_all_algorithms() {
    let spec = JoinSpec::distance_join(100.0);
    assert_all_correct(clusters(8, 500, 3), clusters(8, 500, 103), 800, &spec);
}

#[test]
fn uniform_distance_join_all_algorithms() {
    let spec = JoinSpec::distance_join(100.0);
    assert_all_correct(clusters(128, 500, 4), clusters(128, 500, 104), 800, &spec);
}

#[test]
fn tiny_buffer_forces_decomposition() {
    let spec = JoinSpec::distance_join(100.0);
    assert_all_correct(clusters(4, 400, 5), clusters(4, 400, 105), 100, &spec);
}

#[test]
fn bucket_nlsj_mode() {
    let spec = JoinSpec::distance_join(100.0).with_bucket_nlsj(true);
    assert_all_correct(clusters(2, 400, 6), clusters(16, 400, 106), 300, &spec);
}

#[test]
fn asymmetric_cardinalities() {
    let spec = JoinSpec::distance_join(80.0);
    // |R| ≪ |S|: NLSJ with R outer should dominate; result must not care.
    assert_all_correct(clusters(2, 50, 7), clusters(32, 1000, 107), 600, &spec);
}

#[test]
fn uniform_datasets() {
    let spec = JoinSpec::distance_join(60.0);
    let r = uniform(&default_space(), 500, 8);
    let s = uniform(&default_space(), 500, 108);
    assert_all_correct(r, s, 800, &spec);
}

#[test]
fn identical_datasets_self_join_shape() {
    let spec = JoinSpec::distance_join(50.0);
    let d = clusters(4, 300, 9);
    assert_all_correct(d.clone(), d, 700, &spec);
}

#[test]
fn empty_and_disjoint_datasets() {
    let spec = JoinSpec::distance_join(100.0);
    // One side empty.
    let outcomes = assert_all_correct(clusters(2, 300, 10), Vec::new(), 800, &spec);
    for (name, bytes) in outcomes {
        // The fixed-grid baseline pays one COUNT per cell by construction;
        // the adaptive algorithms must bail out after the global COUNTs.
        let limit = if name == "grid" { 10_000 } else { 1000 };
        assert!(
            bytes < limit,
            "{name} wasted {bytes} bytes on an empty join"
        );
    }
}

#[test]
fn intersection_join_on_segment_mbrs() {
    let rail_small = germany_rail(
        &RailSpec {
            target_segments: 800,
            ..RailSpec::default()
        },
        11,
    );
    let boxes: Vec<SpatialObject> = clusters(8, 300, 12)
        .into_iter()
        .map(|o| {
            let c = o.center();
            SpatialObject::new(
                o.id,
                Rect::from_coords(
                    c.x,
                    c.y,
                    (c.x + 150.0).min(10_000.0),
                    (c.y + 150.0).min(10_000.0),
                ),
            )
        })
        .collect();
    let spec = JoinSpec::intersection_join();
    assert_all_correct(boxes, rail_small, 900, &spec);
}

#[test]
fn distance_join_on_segment_mbrs_with_hint() {
    let rail = germany_rail(
        &RailSpec {
            target_segments: 600,
            ..RailSpec::default()
        },
        13,
    );
    // Hint must cover the largest half-diagonal of the segment MBRs.
    let max_half = rail
        .iter()
        .map(|o| ((o.mbr.width().powi(2) + o.mbr.height().powi(2)).sqrt()) * 0.5)
        .fold(0.0f64, f64::max);
    let spec = JoinSpec::distance_join(100.0).with_mbr_half_extent(max_half);
    assert_all_correct(clusters(8, 400, 14), rail, 900, &spec);
}

#[test]
fn iceberg_semi_join_matches_oracle_counts() {
    let r = clusters(4, 300, 15);
    let s = clusters(8, 600, 115);
    let spec = JoinSpec::iceberg(150.0, 5);
    let want_pairs = oracle(&r, &s, &spec.predicate);
    let mut want_counts = std::collections::HashMap::new();
    for &(rid, _) in &want_pairs {
        *want_counts.entry(rid).or_insert(0u32) += 1;
    }
    let mut want: Vec<(u32, u32)> = want_counts.into_iter().filter(|&(_, c)| c >= 5).collect();
    want.sort_unstable();

    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(800)
        .with_space(default_space())
        .build();
    for alg in algorithms() {
        let rep = alg.run(&dep, &spec).unwrap();
        let ice = rep.iceberg.expect("iceberg output requested");
        assert_eq!(ice.qualifying, want, "{} iceberg diverged", alg.name());
    }
}

#[test]
fn semijoin_against_cooperative_deployment() {
    let r = clusters(4, 200, 16);
    let s = clusters(16, 800, 116);
    let spec = JoinSpec::distance_join(100.0);
    let want = oracle(&r, &s, &spec.predicate);
    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(5000)
        .with_space(default_space())
        .cooperative()
        .build();
    let rep = SemiJoin::default().run(&dep, &spec).unwrap();
    let mut got = rep.pairs.clone();
    got.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn naive_join_when_it_fits() {
    let r = clusters(4, 300, 17);
    let s = clusters(4, 300, 117);
    let spec = JoinSpec::distance_join(100.0);
    let want = oracle(&r, &s, &spec.predicate);
    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(600)
        .with_space(default_space())
        .build();
    let mut got = NaiveJoin.run(&dep, &spec).unwrap().pairs;
    got.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn threaded_deployment_matches_in_process() {
    let r = clusters(4, 400, 18);
    let s = clusters(4, 400, 118);
    let spec = JoinSpec::distance_join(100.0);
    let inproc = DeploymentBuilder::new(r.clone(), s.clone())
        .with_buffer(800)
        .with_space(default_space())
        .build();
    let threaded = DeploymentBuilder::new(r, s)
        .with_buffer(800)
        .with_space(default_space())
        .threaded()
        .build();
    for alg in algorithms() {
        let a = alg.run(&inproc, &spec).unwrap();
        let b = alg.run(&threaded, &spec).unwrap();
        assert_eq!(
            a.total_bytes(),
            b.total_bytes(),
            "{}: byte accounting must be carrier-independent",
            alg.name()
        );
        let mut pa = a.pairs.clone();
        let mut pb = b.pairs.clone();
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb, "{}", alg.name());
    }
}
