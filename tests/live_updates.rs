//! Differential oracles for generational snapshots (live updates).
//!
//! Three laws pin the live-update extension end to end:
//!
//! * **Byte identity when idle** — a live deployment that never receives
//!   an update serves generation 0 and is *bit-for-bit* the frozen wire
//!   format: for every algorithm, flat / 4-shard / cached, the link
//!   snapshots (not just the pairs) equal the frozen deployment's.
//! * **Replay identity** — with updates flowing, every join's pairs
//!   exactly equal a replay against an offline store rebuilt frozen at
//!   the observed generation (the same `apply_updates_to` fold the
//!   server runs), and the byte-conservation law survives.
//! * **Staleness** — a deliberately planted cache entry keyed to a wrong
//!   (stale) generation is never served; the same plant at the current
//!   generation *is* served, so the check is not vacuous.

use adhoc_spatial_joins::prelude::*;
use asj_core::{DeploymentBuilder, Side};
use asj_geom::SpatialObject;
use asj_net::{Request, Update};
use asj_server::apply_updates_to;
use asj_workloads::{
    default_space, gaussian_clusters, SyntheticSpec, TrajectorySpec, TrajectoryStream,
};

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

fn algorithms() -> Vec<Box<dyn DistributedJoin>> {
    vec![
        Box::new(NaiveJoin),
        Box::new(GridJoin::default()),
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
        Box::new(SemiJoin::default()),
    ]
}

fn sorted_pairs(rep: &JoinReport) -> Vec<(u32, u32)> {
    let mut pairs = rep.pairs.clone();
    pairs.sort_unstable();
    pairs
}

fn build(
    r: &[SpatialObject],
    s: &[SpatialObject],
    shards: Option<usize>,
    cache: bool,
    live: bool,
) -> Deployment {
    let mut b = DeploymentBuilder::new(r.to_vec(), s.to_vec())
        .with_buffer(800)
        .with_space(default_space())
        .with_client_cache(cache)
        .cooperative(); // SemiJoin runs too; others ignore the extension
    if let Some(n) = shards {
        b = b.with_shards(n, n);
    }
    if live {
        b = b.live();
    }
    b.build()
}

/// A live deployment with zero updates serves generation 0, and
/// generation 0 emits no stamp: every algorithm must produce identical
/// pairs *and identical link snapshots* — the same bytes in the same
/// messages — as a frozen deployment, flat, sharded and cached.
#[test]
fn idle_live_deployment_is_byte_identical_to_frozen() {
    let r = clusters(4, 200, 7);
    let s = clusters(8, 200, 1007);
    let spec = JoinSpec::distance_join(150.0);
    for (shards, cache) in [(None, false), (Some(4), false), (None, true)] {
        let frozen = build(&r, &s, shards, cache, false);
        let live = build(&r, &s, shards, cache, true);
        assert!(live.is_live() && !frozen.is_live());
        for alg in algorithms() {
            let want = match alg.run(&frozen, &spec) {
                Ok(rep) => rep,
                Err(_) => continue, // buffer-bound config: skip both sides
            };
            let got = alg.run(&live, &spec).unwrap_or_else(|e| {
                panic!("{} failed on the idle live deployment: {e}", alg.name())
            });
            assert_eq!(
                sorted_pairs(&got),
                sorted_pairs(&want),
                "{} shards={shards:?} cache={cache}: pairs diverged",
                alg.name()
            );
            assert_eq!(
                (got.link_r, got.link_s),
                (want.link_r, want.link_s),
                "{} shards={shards:?} cache={cache}: wire traffic diverged",
                alg.name()
            );
        }
    }
}

/// With updates flowing, each join must equal a replay against an
/// offline mirror folded with the *same* `apply_updates_to` the server
/// runs, frozen at the observed generation — exact pair identity, and
/// the byte-conservation law holds on the live reports.
#[test]
fn live_joins_replay_exactly_at_the_observed_generation() {
    let r0 = clusters(4, 200, 31);
    let s0 = clusters(8, 200, 1031);
    let spec = JoinSpec::distance_join(150.0);
    let tspec = TrajectorySpec {
        step: 250.0,
        ..TrajectorySpec::default()
    };
    for shards in [None, Some(3)] {
        let live = build(&r0, &s0, shards, false, true);
        let mut traj_r = TrajectoryStream::new(&r0, tspec, 5);
        let mut traj_s = TrajectoryStream::new(&s0, tspec, 1005);
        let (mut mirror_r, mut mirror_s) = (r0.clone(), s0.clone());
        let mut last_gen = 0;
        for tick in 0..3 {
            let moves = |t: &mut TrajectoryStream| -> Vec<Update> {
                t.tick()
                    .into_iter()
                    .map(|o| Update::Move {
                        id: o.id,
                        to: o.mbr,
                    })
                    .collect()
            };
            let (batch_r, batch_s) = (moves(&mut traj_r), moves(&mut traj_s));
            apply_updates_to(&mut mirror_r, &batch_r);
            apply_updates_to(&mut mirror_s, &batch_s);
            let gen_r = live.apply_updates(Side::R, batch_r);
            let gen_s = live.apply_updates(Side::S, batch_s);
            assert!(gen_r > last_gen, "tick {tick}: generation must advance");
            last_gen = gen_r;
            assert_eq!(gen_r, gen_s, "symmetric ticks reach the same generation");

            // The oracle: a frozen deployment rebuilt from the mirrors at
            // exactly this generation's state.
            let oracle = build(&mirror_r, &mirror_s, shards, false, false);
            for alg in [
                Box::new(MobiJoin) as Box<dyn DistributedJoin>,
                Box::new(SrJoin::default()),
                Box::new(NaiveJoin),
            ] {
                let got = alg
                    .run(&live, &spec)
                    .unwrap_or_else(|e| panic!("{} failed live at tick {tick}: {e}", alg.name()));
                let want = alg.run(&oracle, &spec).unwrap();
                assert_eq!(
                    sorted_pairs(&got),
                    sorted_pairs(&want),
                    "{} shards={shards:?} tick {tick} (generation {gen_r}): \
                     live join diverged from the frozen replay",
                    alg.name()
                );
                assert!(!want.pairs.is_empty(), "vacuous tick");
                // Meters conserved: the report total is exactly the sum
                // of its per-link snapshots, stamps included.
                assert_eq!(
                    got.total_bytes(),
                    got.link_r.total_bytes() + got.link_s.total_bytes()
                );
            }
        }
    }
}

/// Staleness proof: an entry planted at a *wrong* generation is never
/// served — and the identical plant at the current generation is, so the
/// keying (not luck) is what protects the results.
#[test]
fn stale_cache_entries_are_never_served() {
    let r = clusters(4, 200, 51);
    let s = clusters(8, 200, 1051);
    let live = build(&r, &s, None, true, true);
    let w = default_space();
    let (cache_r, _) = live.caches();
    let cache_r = cache_r.expect("cache enabled");

    // Tick once so the deployment sits at generation 1.
    let gen = live.apply_updates(Side::R, vec![Update::Delete(r[0].id)]);
    assert_eq!(gen, 1);

    // Plant a poisoned count at the *stale* generation 0: invisible.
    cache_r.observe_count(&w, 999_999, 0);
    let (link_r, _) = live.connect();
    let truth = link_r.request(&Request::Count(w)).into_count();
    assert_eq!(truth, r.len() as u64 - 1, "fresh download after the delete");
    let snap = link_r.cache().expect("cached link").snapshot();
    assert_eq!(
        (snap.stats_hits, snap.stats_misses),
        (0, 1),
        "the stale plant must not register as a hit"
    );

    // Non-vacuity: the same plant at the *current* generation is served.
    cache_r.observe_count(&w, 777_777, gen);
    let (link2, _) = live.connect();
    assert_eq!(
        link2.request(&Request::Count(w)).into_count(),
        777_777,
        "a current-generation entry must be served — otherwise the stale \
         check above proves nothing"
    );
    assert_eq!(link2.cache().unwrap().snapshot().stats_hits, 1);
}
