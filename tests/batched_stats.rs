//! Differential suite for the batched statistics protocol (`MultiCount`).
//!
//! The capability is **off by default**; these tests prove that turning it
//! on (a) never changes join results, and (b) strictly reduces uplink
//! messages and aggregate-query bytes on split-heavy workloads — the
//! Fig. 7 statistics overhead the batch recovers.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_workloads::default_space;

/// A split-heavy deployment: two 4-cluster Gaussian datasets under a
/// buffer far below the dataset size, so every algorithm repartitions.
fn deployment(batched: bool, buffer: usize) -> Deployment {
    let space = default_space();
    let r = gaussian_clusters(&SyntheticSpec::new(space, 600, 4), 11);
    let s = gaussian_clusters(&SyntheticSpec::new(space, 600, 4), 1011);
    DeploymentBuilder::new(r, s)
        .with_buffer(buffer)
        .with_space(space)
        .with_net(NetConfig::default().with_batched_stats(batched))
        .build()
}

fn sorted_pairs(rep: &JoinReport) -> Vec<(u32, u32)> {
    let mut p = rep.pairs.clone();
    p.sort_unstable();
    p
}

#[test]
fn mobijoin_batched_same_pairs_fewer_messages_fewer_aggregate_bytes() {
    let spec = JoinSpec::distance_join(100.0);
    let single = MobiJoin.run(&deployment(false, 100), &spec).unwrap();
    let batched = MobiJoin.run(&deployment(true, 100), &spec).unwrap();

    assert!(single.stats.splits > 0, "workload must be split-heavy");
    assert!(batched.stats.splits > 0);
    assert_eq!(
        sorted_pairs(&single),
        sorted_pairs(&batched),
        "batching must not change the join result"
    );
    assert!(!single.pairs.is_empty());

    let msgs = |rep: &JoinReport| rep.link_r.up_packets + rep.link_s.up_packets;
    let agg = |rep: &JoinReport| rep.link_r.aggregate_bytes() + rep.link_s.aggregate_bytes();
    assert!(
        msgs(&batched) < msgs(&single),
        "uplink messages: batched {} vs single {}",
        msgs(&batched),
        msgs(&single)
    );
    assert!(
        agg(&batched) < agg(&single),
        "aggregate bytes: batched {} vs single {}",
        agg(&batched),
        agg(&single)
    );
    // The statistics saving shows up in the headline metric too.
    assert!(batched.total_bytes() < single.total_bytes());
}

#[test]
fn every_repartitioning_algorithm_is_result_identical_under_batching() {
    let algorithms: Vec<Box<dyn DistributedJoin>> = vec![
        Box::new(GridJoin::default()),
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
    ];
    let spec = JoinSpec::distance_join(100.0);
    for algo in &algorithms {
        let single = algo.run(&deployment(false, 150), &spec).unwrap();
        let batched = algo.run(&deployment(true, 150), &spec).unwrap();
        assert_eq!(
            sorted_pairs(&single),
            sorted_pairs(&batched),
            "{} differs under batched statistics",
            algo.name()
        );
    }
}

#[test]
fn batched_mode_issues_fewer_aggregate_messages_not_more_queries_of_other_kinds() {
    let spec = JoinSpec::distance_join(100.0);
    let single = SrJoin::default()
        .run(&deployment(false, 100), &spec)
        .unwrap();
    let batched = SrJoin::default()
        .run(&deployment(true, 100), &spec)
        .unwrap();
    // Every 4-probe quadrant round collapses into one message per server.
    assert!(batched.aggregate_queries() < single.aggregate_queries());
    // No hidden traffic appears elsewhere: non-aggregate bytes stay in the
    // same regime (operator choices may shift slightly — the cost model
    // legitimately prices batched statistics cheaper).
    let non_agg = |rep: &JoinReport| {
        rep.total_bytes() - rep.link_r.aggregate_bytes() - rep.link_s.aggregate_bytes()
    };
    assert!(non_agg(&batched) > 0);
    assert!(non_agg(&single) > 0);
}

#[test]
fn default_mode_sends_no_multicount() {
    // With the flag off the wire traffic is the paper-faithful per-query
    // protocol: exactly as many aggregate messages as aggregate queries,
    // each of the fixed COUNT/answer size (plus packet headers) — the
    // byte-identical-to-seed guarantee the existing oracle suites pin.
    let spec = JoinSpec::distance_join(100.0);
    let rep = MobiJoin.run(&deployment(false, 100), &spec).unwrap();
    let n = rep.aggregate_queries();
    assert!(n > 0);
    let expected =
        n * (asj_net::PacketModel::default().tb(17) + asj_net::PacketModel::default().tb(9));
    let agg = rep.link_r.aggregate_bytes() + rep.link_s.aggregate_bytes();
    assert_eq!(agg, expected, "per-query mode: n × (TB(BQ) + TB(BA))");
}
