//! Differential oracles for the client-side statistics/window cache.
//!
//! The cache is a transparency layer: it must be invisible in every join
//! result and only ever *delete* wire traffic. This suite pins that:
//!
//! * **Result identity** — for pinned seeds and every algorithm
//!   (NaiveJoin, GridJoin, MobiJoin, UpJoin, SrJoin, SemiJoin), a cached
//!   deployment yields exactly the pairs of an uncached one — flat and
//!   stacked over a 4-shard fleet, per-query and batched statistics.
//! * **Byte identity when off** — `client_cache` disabled builds no layer
//!   at all: link snapshots equal the plain deployment's bit for bit.
//! * **Session savings** — a split-heavy MobiJoin session (3 identical
//!   joins) sends fewer messages and at least 20 % fewer aggregate bytes
//!   than the uncached session, with identical pairs every time.
//! * **Non-vacuity** — flipping a single cached count (the poisoning
//!   instrument) makes the oracle fail: the suite would catch a buggy
//!   cache.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::SpatialObject;
use asj_workloads::{default_space, gaussian_clusters, SyntheticSpec};

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

fn algorithms() -> Vec<Box<dyn DistributedJoin>> {
    vec![
        Box::new(NaiveJoin),
        Box::new(GridJoin::default()),
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
        Box::new(SemiJoin::default()),
    ]
}

struct Config {
    buffer: usize,
    batched: bool,
    bucket: bool,
    shards: Option<usize>,
}

fn build(r: &[SpatialObject], s: &[SpatialObject], cfg: &Config, cache: bool) -> Deployment {
    let mut b = DeploymentBuilder::new(r.to_vec(), s.to_vec())
        .with_buffer(cfg.buffer)
        .with_space(default_space())
        .with_net(NetConfig::default().with_batched_stats(cfg.batched))
        .with_client_cache(cache)
        .cooperative(); // SemiJoin runs too; others ignore the extension
    if let Some(n) = cfg.shards {
        b = b.with_shards(n, n);
    }
    b.build()
}

fn sorted_pairs(rep: &JoinReport) -> Vec<(u32, u32)> {
    let mut pairs = rep.pairs.clone();
    pairs.sort_unstable();
    pairs
}

/// Every algorithm: a cached deployment (fresh per run, so the cache is
/// cold) produces exactly the uncached pairs, and the report carries
/// cache accounting.
fn assert_cache_invisible(r: &[SpatialObject], s: &[SpatialObject], cfg: &Config, eps: f64) {
    let spec = JoinSpec::distance_join(eps).with_bucket_nlsj(cfg.bucket);
    let plain = build(r, s, cfg, false);
    for alg in algorithms() {
        match alg.run(&plain, &spec) {
            Ok(plain_rep) => {
                let cached = build(r, s, cfg, true);
                let rep = alg
                    .run(&cached, &spec)
                    .unwrap_or_else(|e| panic!("{} failed with cache on: {e}", alg.name()));
                assert_eq!(
                    sorted_pairs(&rep),
                    sorted_pairs(&plain_rep),
                    "{} diverged (batched={}, bucket={}, shards={:?})",
                    alg.name(),
                    cfg.batched,
                    cfg.bucket,
                    cfg.shards
                );
                assert!(
                    rep.cache_r.is_some() && rep.cache_s.is_some(),
                    "cached reports must carry cache accounting"
                );
                assert!(
                    rep.total_bytes() <= plain_rep.total_bytes(),
                    "{}: the cache must never add wire bytes ({} vs {})",
                    alg.name(),
                    rep.total_bytes(),
                    plain_rep.total_bytes()
                );
                assert!(
                    rep.total_queries() <= plain_rep.total_queries(),
                    "{}: the cache must never add messages",
                    alg.name()
                );
                if cfg.shards.is_some() {
                    assert!(
                        rep.fleet_r.is_some() && rep.fleet_s.is_some(),
                        "stacked cache-over-fleet must keep per-shard accounting"
                    );
                }
            }
            Err(plain_err) => {
                // Infeasible (e.g. NaiveJoin with a tiny buffer): the
                // cache must not change the verdict.
                let err = alg
                    .run(&build(r, s, cfg, true), &spec)
                    .expect_err("the cache must not make an infeasible join feasible");
                assert_eq!(
                    std::mem::discriminant(&err),
                    std::mem::discriminant(&plain_err),
                    "{}: error kind must match the uncached run",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn cached_joins_identical_flat() {
    for seed in [11, 42] {
        assert_cache_invisible(
            &clusters(4, 180, seed),
            &clusters(4, 180, seed + 100),
            &Config {
                buffer: 800,
                batched: false,
                bucket: false,
                shards: None,
            },
            150.0,
        );
    }
}

#[test]
fn cached_joins_identical_flat_batched_small_buffer() {
    // Buffer 100 forces splits (MultiCount partial hits) and NLSJ
    // (ε-RANGE containment lookups).
    assert_cache_invisible(
        &clusters(2, 180, 7),
        &clusters(8, 180, 107),
        &Config {
            buffer: 100,
            batched: true,
            bucket: false,
            shards: None,
        },
        150.0,
    );
}

#[test]
fn cached_joins_identical_stacked_over_fleet() {
    // The acceptance configuration: cache stacked over a 4-shard fleet.
    assert_cache_invisible(
        &clusters(4, 180, 3),
        &clusters(16, 180, 103),
        &Config {
            buffer: 800,
            batched: false,
            bucket: false,
            shards: Some(4),
        },
        150.0,
    );
}

#[test]
fn cached_joins_identical_fleet_batched_bucket() {
    assert_cache_invisible(
        &clusters(1, 150, 5),
        &clusters(1, 150, 105),
        &Config {
            buffer: 100,
            batched: true,
            bucket: true,
            shards: Some(4),
        },
        120.0,
    );
}

/// With the cache disabled no layer exists at all: every meter total is
/// bit-identical to a deployment built before the extension existed
/// (i.e. a plain default build).
#[test]
fn cache_off_is_byte_identical_to_seed() {
    let r = clusters(4, 180, 21);
    let s = clusters(8, 180, 121);
    let spec = JoinSpec::distance_join(150.0);
    let baseline = DeploymentBuilder::new(r.clone(), s.clone())
        .with_space(default_space())
        .build();
    let explicit_off = DeploymentBuilder::new(r, s)
        .with_space(default_space())
        .with_client_cache(false)
        .build();
    for alg in [
        Box::new(SrJoin::default()) as Box<dyn DistributedJoin>,
        Box::new(MobiJoin),
    ] {
        let a = alg.run(&baseline, &spec).unwrap();
        let b = alg.run(&explicit_off, &spec).unwrap();
        assert_eq!(
            (a.link_r, a.link_s),
            (b.link_r, b.link_s),
            "{}: cache-off must be byte-identical on the wire",
            alg.name()
        );
        assert!(b.cache_r.is_none() && b.cache_s.is_none());
    }
}

/// The headline saving: a split-heavy MobiJoin session (3 identical
/// joins against one deployment) never sends more messages and cuts
/// aggregate bytes by at least 20 %, flat and stacked over a fleet.
#[test]
fn mobijoin_session_cuts_aggregate_bytes_and_messages() {
    let r = clusters(4, 200, 31);
    let s = clusters(4, 200, 131);
    let spec = JoinSpec::distance_join(150.0);
    for shards in [None, Some(4)] {
        let cfg = Config {
            buffer: 100, // split-heavy: every join repartitions
            batched: false,
            bucket: false,
            shards,
        };
        let run_session = |dep: &Deployment| {
            let (mut bytes, mut agg, mut msgs) = (0u64, 0u64, 0u64);
            let mut pairs = None;
            for _ in 0..3 {
                let rep = MobiJoin.run(dep, &spec).unwrap();
                bytes += rep.total_bytes();
                agg += rep.link_r.aggregate_bytes() + rep.link_s.aggregate_bytes();
                msgs += rep.total_queries();
                let sorted = sorted_pairs(&rep);
                if let Some(prev) = &pairs {
                    assert_eq!(prev, &sorted, "session joins must agree");
                }
                pairs = Some(sorted);
            }
            (bytes, agg, msgs, pairs.unwrap())
        };
        let (plain_bytes, plain_agg, plain_msgs, plain_pairs) =
            run_session(&build(&r, &s, &cfg, false));
        let (cached_bytes, cached_agg, cached_msgs, cached_pairs) =
            run_session(&build(&r, &s, &cfg, true));
        assert_eq!(cached_pairs, plain_pairs, "shards={shards:?}");
        assert!(!plain_pairs.is_empty(), "vacuous workload");
        assert!(
            cached_msgs < plain_msgs,
            "shards={shards:?}: cached session sent {cached_msgs} messages vs {plain_msgs}"
        );
        assert!(
            cached_agg * 5 <= plain_agg * 4,
            "shards={shards:?}: cached {cached_agg} vs plain {plain_agg} aggregate bytes — \
             less than the required 20% saving"
        );
        assert!(
            cached_bytes < plain_bytes,
            "shards={shards:?}: total bytes must drop too"
        );
    }
}

/// Non-vacuity: corrupting one cached count must be caught by the result
/// oracle. The poisoned entry is the largest cached count — the
/// full-space statistics every join opens with — so the second session
/// join prunes a window it must not prune.
#[test]
fn poisoned_cache_is_caught_by_the_oracle() {
    let r = clusters(4, 200, 31);
    let s = clusters(4, 200, 131);
    let spec = JoinSpec::distance_join(150.0);
    let cfg = Config {
        buffer: 800,
        batched: false,
        bucket: false,
        shards: None,
    };
    let dep = build(&r, &s, &cfg, true);
    let honest = sorted_pairs(&MobiJoin.run(&dep, &spec).unwrap());
    assert!(!honest.is_empty(), "vacuous workload");
    // Sanity: an unpoisoned second session join reproduces the result.
    assert_eq!(sorted_pairs(&MobiJoin.run(&dep, &spec).unwrap()), honest);
    let (cache_r, _) = dep.caches();
    assert!(
        cache_r.expect("cache enabled").poison_one_count(),
        "the session must have cached counts to poison"
    );
    let poisoned = sorted_pairs(&MobiJoin.run(&dep, &spec).unwrap());
    assert_ne!(
        poisoned, honest,
        "a flipped cached count must change the result — otherwise this suite proves nothing"
    );
}
