//! Build/metering smoke tests: the examples must keep compiling, and the
//! wire meters must never silently report zero traffic.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::sweep::nested_loop_join;
use asj_workloads::default_space;

/// All six examples stay buildable. `cargo test` already builds examples
/// for the root package, but only this assertion makes a broken example a
/// *failing test* rather than a compile step someone may not run.
#[test]
fn all_examples_build() {
    let examples = [
        "quickstart",
        "city_guide",
        "rail_atlas",
        "multiway_chain",
        "tariff_explorer",
        "live_update",
    ];
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR")).arg("build");
    for ex in examples {
        cmd.args(["--example", ex]);
    }
    let out = cmd.output().expect("failed to spawn cargo");
    assert!(
        out.status.success(),
        "`cargo build --example ...` failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Pinned-seed end-to-end guard for the metering path: NaiveJoin downloads
/// both datasets, so both links MUST report wire traffic and object
/// downloads. A refactor that zeroes the meters (or stops routing bytes
/// through them) fails here even while the join result stays correct.
#[test]
fn naive_join_meters_nonzero_wire_bytes() {
    let space = default_space();
    let r = gaussian_clusters(&SyntheticSpec::new(space, 400, 4), 42);
    let s = gaussian_clusters(&SyntheticSpec::new(space, 400, 8), 1042);
    let spec = JoinSpec::distance_join(100.0);
    let mut want = nested_loop_join(&r, &s, &spec.predicate);
    want.sort_unstable();

    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(800)
        .with_space(space)
        .build();
    let rep = NaiveJoin
        .run(&dep, &spec)
        .expect("naive join must fit buffer 800");

    let mut got = rep.pairs.clone();
    got.sort_unstable();
    assert_eq!(got, want, "naive join diverged from oracle");

    // Both links moved real bytes, in both directions.
    for (name, link) in [("R", &rep.link_r), ("S", &rep.link_s)] {
        assert!(link.up_bytes > 0, "link {name}: uplink metered zero bytes");
        assert!(
            link.down_bytes > 0,
            "link {name}: downlink metered zero bytes"
        );
    }
    assert_eq!(
        rep.objects_downloaded(),
        800,
        "naive join must download every object exactly once"
    );
    // 800 objects × 20 wire bytes each is a hard floor on total traffic.
    assert!(
        rep.total_bytes() > 16_000,
        "total wire bytes implausibly low: {}",
        rep.total_bytes()
    );
    assert_eq!(
        rep.total_bytes(),
        rep.link_r.total_bytes() + rep.link_s.total_bytes()
    );
}
