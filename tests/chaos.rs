//! Chaos differential suite: joins racing a live writer over faulted
//! fleets must be **correct or typed-failed, never wrong**.
//!
//! A writer thread streams [`TrajectoryStream`] move batches into a live
//! deployment *while* joins run over links whose physical edges inject
//! scripted faults (drops, delays, garbled replies, crash-then-restart),
//! across three pinned seeds and three topologies (flat, 4-shard fleet,
//! cached). The laws:
//!
//! * **Exact replay (flat)** — a flat live server swaps generations
//!   atomically per request, and `NaiveJoin` downloads each side in one
//!   request, so its pairs must *exactly* equal a brute-force replay of
//!   some observed `(generation R, generation S)` state.
//! * **Never-wrong envelope (everything)** — every reported pair must be
//!   justified by object positions at *some* observed generation (subset
//!   of the union oracle), and every pair of never-moved objects that
//!   qualifies at *every* generation must be reported (superset of the
//!   stable intersection oracle). On a fleet the scatter is not a
//!   cross-shard snapshot — a batch lands shard by shard — so the
//!   envelope, not single-state equality, is the honest invariant; the
//!   per-shard generation vector itself is asserted never to regress.
//! * **Cache tiers never cross generations** — under the same contention,
//!   an entry planted at a stale generation is never served, while the
//!   identical plant at the current generation is (non-vacuity).
//! * **Off means off** — with `RetryPolicy::default()` (no retries) and a
//!   no-op `FaultPlan`, the whole machinery is byte-transparent: all six
//!   algorithms report identical pairs *and identical link snapshots* to
//!   an unwrapped deployment, flat, sharded and cached.

use adhoc_spatial_joins::prelude::*;
use asj_core::{DeploymentBuilder, Side};
use asj_geom::SpatialObject;
use asj_net::{FaultPlan, NetConfig, Request, Response, RetryPolicy, Update};
use asj_workloads::{
    default_space, gaussian_clusters, SyntheticSpec, TrajectorySpec, TrajectoryStream,
};

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

fn algorithms() -> Vec<Box<dyn DistributedJoin>> {
    vec![
        Box::new(NaiveJoin),
        Box::new(GridJoin::default()),
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
        Box::new(SemiJoin::default()),
    ]
}

fn sorted_pairs(rep: &JoinReport) -> Vec<(u32, u32)> {
    let mut pairs = rep.pairs.clone();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Brute-force distance join of two object sets — the offline oracle.
fn brute_pairs(r: &[SpatialObject], s: &[SpatialObject], eps: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for a in r {
        for b in s {
            if a.mbr.within_distance(&b.mbr, eps) {
                out.push((a.id, b.id));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[derive(Clone, Copy, Debug)]
enum FaultKind {
    Drop,
    Delay,
    Garble,
    CrashRestart,
}

impl FaultKind {
    /// Rates are chosen so that with the retry budget below, exhausting
    /// every attempt on one request is (deterministically, per seed)
    /// never drawn — the suite asserts recovery, not failure.
    fn plan(self, seed: u64) -> FaultPlan {
        match self {
            FaultKind::Drop => FaultPlan::seeded(seed).with_drops(0.15),
            FaultKind::Delay => FaultPlan::seeded(seed).with_delays(0.5, 20),
            FaultKind::Garble => FaultPlan::seeded(seed).with_garbles(0.15),
            FaultKind::CrashRestart => FaultPlan::seeded(seed).with_crash(1, 2),
        }
    }
}

const RETRY: RetryPolicy = RetryPolicy {
    max_attempts: 8,
    backoff_base_us: 0,
};

#[derive(Clone, Copy, Debug, PartialEq)]
enum Topology {
    Flat,
    Fleet4,
    Cached,
}

fn build_live(
    r: &[SpatialObject],
    s: &[SpatialObject],
    topo: Topology,
    fault: Option<FaultPlan>,
) -> Deployment {
    let mut b = DeploymentBuilder::new(r.to_vec(), s.to_vec())
        .with_buffer(800)
        .with_space(default_space())
        .with_net(NetConfig::default().with_retry(RETRY))
        .live();
    b = match topo {
        Topology::Flat => b,
        Topology::Fleet4 => b.with_shards(4, 4),
        Topology::Cached => b.with_client_cache(true),
    };
    if let Some(plan) = fault {
        b = b.with_faults(plan);
    }
    b.build()
}

/// Precomputed update stream: every batch and every post-batch mirror
/// state is known before the writer starts, so the oracle set is fixed
/// up front and the join thread can race the writer freely.
struct Timeline {
    batches: Vec<Vec<Update>>,
    /// `states[t]` is the side's dataset after `t` batches (so
    /// `states[0]` is the initial data).
    states: Vec<Vec<SpatialObject>>,
    /// Ids that ever move — their pairs may transiently vanish on a
    /// fleet (a cross-shard move is not atomic across shards).
    movers: std::collections::HashSet<u32>,
}

fn timeline(initial: &[SpatialObject], seed: u64, ticks: usize) -> Timeline {
    let spec = TrajectorySpec {
        step: 250.0,
        ..TrajectorySpec::default()
    };
    let mut traj = TrajectoryStream::new(initial, spec, seed);
    let mut states = vec![initial.to_vec()];
    let mut batches = Vec::new();
    let mut movers = std::collections::HashSet::new();
    for _ in 0..ticks {
        let batch: Vec<Update> = traj
            .tick()
            .into_iter()
            .map(|o| {
                movers.insert(o.id);
                Update::Move {
                    id: o.id,
                    to: o.mbr,
                }
            })
            .collect();
        let mut next = states.last().expect("seeded").clone();
        asj_server::apply_updates_to(&mut next, &batch);
        states.push(next);
        batches.push(batch);
    }
    Timeline {
        batches,
        states,
        movers,
    }
}

/// The chaos matrix: 3 pinned seeds × 4 fault kinds × 3 topologies, a
/// concurrent writer per run. See the module docs for the laws asserted.
#[test]
fn chaos_matrix_joins_race_writer_over_faulted_fleets() {
    let r0 = clusters(4, 200, 7);
    let s0 = clusters(8, 200, 1007);
    let spec = JoinSpec::distance_join(150.0);
    let eps = 150.0;
    const TICKS: usize = 3;

    for seed in [3u64, 17, 29] {
        for kind in [
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Garble,
            FaultKind::CrashRestart,
        ] {
            for topo in [Topology::Flat, Topology::Fleet4, Topology::Cached] {
                let label = format!("seed {seed} {kind:?} {topo:?}");
                let tl_r = timeline(&r0, seed, TICKS);
                let tl_s = timeline(&s0, seed + 1000, TICKS);
                let live = build_live(&r0, &s0, topo, Some(kind.plan(seed)));

                // Oracles, fixed before any concurrency starts.
                let exact: Vec<Vec<Vec<(u32, u32)>>> = tl_r
                    .states
                    .iter()
                    .map(|r| tl_s.states.iter().map(|s| brute_pairs(r, s, eps)).collect())
                    .collect();
                let union: std::collections::HashSet<(u32, u32)> =
                    exact.iter().flatten().flatten().copied().collect();
                let stable: Vec<(u32, u32)> = exact[0][0]
                    .iter()
                    .filter(|(a, b)| !tl_r.movers.contains(a) && !tl_s.movers.contains(b))
                    .filter(|p| exact.iter().flatten().all(|o| o.binary_search(p).is_ok()))
                    .copied()
                    .collect();
                assert!(!union.is_empty(), "{label}: vacuous workload");

                let reports: Vec<JoinReport> = std::thread::scope(|scope| {
                    let writer = scope.spawn(|| {
                        for t in 0..TICKS {
                            for (side, tl) in [(Side::R, &tl_r), (Side::S, &tl_s)] {
                                match live.try_apply_updates(side, tl.batches[t].clone()) {
                                    Response::Ack { .. } => {}
                                    other => panic!(
                                        "writer tick {t}: update must be acked \
                                         within the retry budget, got {other:?}"
                                    ),
                                }
                            }
                            std::thread::sleep(std::time::Duration::from_micros(300));
                        }
                    });
                    let mut reports = Vec::new();
                    loop {
                        for alg in [
                            Box::new(NaiveJoin) as Box<dyn DistributedJoin>,
                            Box::new(SrJoin::default()),
                        ] {
                            reports.push(alg.run(&live, &spec).unwrap_or_else(|e| {
                                panic!("{label}: {} failed mid-chaos: {e}", alg.name())
                            }));
                        }
                        if writer.is_finished() {
                            break;
                        }
                    }
                    writer.join().expect("writer thread");
                    // One more pass after the writer is done: the final
                    // state is always an observed generation.
                    reports.push(NaiveJoin.run(&live, &spec).expect("final run"));
                    reports
                });

                let mut last_fleet_gens: Vec<u64> = Vec::new();
                for rep in &reports {
                    let got = sorted_pairs(rep);
                    // Never wrong: every pair justified by some observed
                    // state, every stable always-qualifying pair present.
                    for p in &got {
                        assert!(
                            union.contains(p),
                            "{label}: {} reported pair {p:?} that exists at \
                             no observed generation",
                            rep.algorithm
                        );
                    }
                    for p in &stable {
                        assert!(
                            got.binary_search(p).is_ok(),
                            "{label}: {} lost stable pair {p:?}",
                            rep.algorithm
                        );
                    }
                    // Exact replay where a single-state read is
                    // guaranteed: flat server, single-download join.
                    if topo != Topology::Fleet4 && rep.algorithm == "naive" {
                        assert!(
                            exact.iter().flatten().any(|want| *want == got),
                            "{label}: naive pairs match no (gen R, gen S) replay"
                        );
                    }
                    // Fleet generation vectors never regress across
                    // reports, and no shard may have been abandoned.
                    if let Some(fleet) = &rep.fleet_r {
                        assert!(
                            fleet.failed_shards.is_empty(),
                            "{label}: retry budget must mask every injected fault"
                        );
                        if !last_fleet_gens.is_empty() {
                            for (shard, (now, before)) in
                                fleet.generations.iter().zip(&last_fleet_gens).enumerate()
                            {
                                assert!(
                                    now >= before,
                                    "{label}: shard {shard} generation regressed \
                                     {before} -> {now}"
                                );
                            }
                        }
                        last_fleet_gens = fleet.generations.clone();
                    }
                }

                // Cache tiers never cross generations, even after chaos:
                // a stale plant is invisible, a current plant is served.
                if topo == Topology::Cached {
                    let (cache, _) = live.caches();
                    let cache = cache.expect("cached topology");
                    let w = default_space();
                    let current = cache.generation();
                    assert!(current >= TICKS as u64, "{label}: acks must be heard");
                    cache.observe_count(&w, 999_999, current - 1);
                    let (link, _) = live.connect();
                    assert_eq!(
                        link.request(&Request::Count(w)).into_count(),
                        r0.len() as u64,
                        "{label}: a stale-generation entry was served"
                    );
                    cache.observe_count(&w, 777_777, cache.generation());
                    let (link2, _) = live.connect();
                    assert_eq!(
                        link2.request(&Request::Count(w)).into_count(),
                        777_777,
                        "{label}: current-generation plant must hit (non-vacuity)"
                    );
                }
            }
        }
    }
}

/// Replica-topology chaos cell: a cached 4-shard fleet with two
/// replicas per shard rides out scripted crash-restart outages while a
/// writer races. Replication must *mask* the outages entirely — every
/// join completes (zero `Unavailable` surfaced), no shard is ever
/// marked failed, every report carries full coverage — and a replica
/// that stayed dark through acked batches resynchronizes at its
/// restart hook, so per-shard generations never regress.
#[test]
fn replicated_cached_fleet_rides_out_crash_restarts() {
    let r0 = clusters(4, 200, 7);
    let s0 = clusters(8, 200, 1007);
    let spec = JoinSpec::distance_join(150.0);
    let eps = 150.0;
    const TICKS: usize = 3;

    for seed in [5u64, 23] {
        let label = format!("replicated seed {seed}");
        let tl_r = timeline(&r0, seed, TICKS);
        let tl_s = timeline(&s0, seed + 1000, TICKS);
        let live = DeploymentBuilder::new(r0.clone(), s0.clone())
            .with_buffer(800)
            .with_space(default_space())
            .with_net(NetConfig::default().with_retry(RETRY))
            .with_shards(4, 4)
            .with_replicas(2)
            .with_client_cache(true)
            .live()
            .with_faults(FaultKind::CrashRestart.plan(seed))
            .build();

        let exact: Vec<Vec<Vec<(u32, u32)>>> = tl_r
            .states
            .iter()
            .map(|r| tl_s.states.iter().map(|s| brute_pairs(r, s, eps)).collect())
            .collect();
        let union: std::collections::HashSet<(u32, u32)> =
            exact.iter().flatten().flatten().copied().collect();
        let stable: Vec<(u32, u32)> = exact[0][0]
            .iter()
            .filter(|(a, b)| !tl_r.movers.contains(a) && !tl_s.movers.contains(b))
            .filter(|p| exact.iter().flatten().all(|o| o.binary_search(p).is_ok()))
            .copied()
            .collect();
        assert!(!union.is_empty(), "{label}: vacuous workload");

        let reports: Vec<JoinReport> = std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for t in 0..TICKS {
                    for (side, tl) in [(Side::R, &tl_r), (Side::S, &tl_s)] {
                        match live.try_apply_updates(side, tl.batches[t].clone()) {
                            Response::Ack { .. } => {}
                            other => panic!(
                                "{label} writer tick {t}: one surviving replica \
                                 must ack the broadcast, got {other:?}"
                            ),
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_micros(300));
                }
            });
            let mut reports = Vec::new();
            loop {
                for alg in [
                    Box::new(NaiveJoin) as Box<dyn DistributedJoin>,
                    Box::new(SrJoin::default()),
                ] {
                    reports.push(alg.run(&live, &spec).unwrap_or_else(|e| {
                        panic!("{label}: {} failed despite replication: {e}", alg.name())
                    }));
                }
                if writer.is_finished() {
                    break;
                }
            }
            writer.join().expect("writer thread");
            reports.push(NaiveJoin.run(&live, &spec).expect("final run"));
            reports
        });

        let mut last_fleet_gens: Vec<u64> = Vec::new();
        for rep in &reports {
            let got = sorted_pairs(rep);
            for p in &got {
                assert!(
                    union.contains(p),
                    "{label}: {} reported pair {p:?} that exists at no \
                     observed generation",
                    rep.algorithm
                );
            }
            for p in &stable {
                assert!(
                    got.binary_search(p).is_ok(),
                    "{label}: {} lost stable pair {p:?}",
                    rep.algorithm
                );
            }
            assert_eq!(
                rep.coverage, 1.0,
                "{label}: {} must report full coverage — a dark replica \
                 covered by its sibling is not a failed shard",
                rep.algorithm
            );
            for fleet in [&rep.fleet_r, &rep.fleet_s].into_iter().flatten() {
                assert!(
                    fleet.failed_shards.is_empty(),
                    "{label}: failover plus retries must mask every outage"
                );
            }
            if let Some(fleet) = &rep.fleet_r {
                if !last_fleet_gens.is_empty() {
                    for (shard, (now, before)) in
                        fleet.generations.iter().zip(&last_fleet_gens).enumerate()
                    {
                        assert!(
                            now >= before,
                            "{label}: shard {shard} generation regressed \
                             {before} -> {now}"
                        );
                    }
                }
                last_fleet_gens = fleet.generations.clone();
            }
        }
    }
}

/// `RetryPolicy::default()` = off ⇒ the fault/retry machinery is
/// byte-transparent: all six algorithms, on flat / 4-shard / cached
/// frozen deployments, report identical pairs and identical link
/// snapshots through a no-op-plan wrapped deployment as through a plain
/// one. The wrapped deployment additionally pins `with_replicas(1)`
/// byte-identical: a single-replica fleet must be indistinguishable
/// from an unreplicated one.
#[test]
fn retry_off_and_noop_plan_are_byte_identical_on_all_six_algorithms() {
    let r = clusters(4, 200, 7);
    let s = clusters(8, 200, 1007);
    let spec = JoinSpec::distance_join(150.0);
    let build = |wrapped: bool, shards: Option<usize>, cache: bool| {
        let mut b = DeploymentBuilder::new(r.clone(), s.clone())
            .with_buffer(800)
            .with_space(default_space())
            .with_client_cache(cache)
            .cooperative();
        if let Some(n) = shards {
            b = b.with_shards(n, n);
        }
        if wrapped {
            // A seeded but fault-free plan: the layer is stacked on every
            // edge yet must never be observable. `with_replicas(1)` rides
            // along — a group of one must route exactly like no group.
            b = b.with_faults(FaultPlan::seeded(42)).with_replicas(1);
        }
        b.build()
    };
    for (shards, cache) in [(None, false), (Some(4), false), (None, true)] {
        let plain = build(false, shards, cache);
        let wrapped = build(true, shards, cache);
        assert_eq!(plain.net().retry, RetryPolicy::default());
        for alg in algorithms() {
            let want = match alg.run(&plain, &spec) {
                Ok(rep) => rep,
                Err(_) => continue, // buffer-bound config: skip both sides
            };
            let got = alg
                .run(&wrapped, &spec)
                .unwrap_or_else(|e| panic!("{} failed through the no-op layer: {e}", alg.name()));
            assert_eq!(
                sorted_pairs(&got),
                sorted_pairs(&want),
                "{} shards={shards:?} cache={cache}: pairs diverged",
                alg.name()
            );
            assert_eq!(
                (got.link_r, got.link_s),
                (want.link_r, want.link_s),
                "{} shards={shards:?} cache={cache}: wire traffic diverged \
                 under the no-op fault layer",
                alg.name()
            );
        }
    }
}
