//! Edge-case integration tests: degenerate workloads and extreme
//! parameters that the sweeps never hit.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::sweep::nested_loop_join;
use asj_workloads::default_space;

fn oracle(r: &[SpatialObject], s: &[SpatialObject], pred: &JoinPredicate) -> Vec<(u32, u32)> {
    let mut v = nested_loop_join(r, s, pred);
    v.sort_unstable();
    v
}

fn adaptive() -> Vec<Box<dyn DistributedJoin>> {
    vec![
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
        Box::new(GridJoin::default()),
    ]
}

fn check(r: Vec<SpatialObject>, s: Vec<SpatialObject>, buffer: usize, spec: &JoinSpec) {
    let want = oracle(&r, &s, &spec.predicate);
    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(buffer)
        .with_space(default_space())
        .build();
    for alg in adaptive() {
        let rep = alg.run(&dep, spec).unwrap();
        let mut got = rep.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, want, "{}", alg.name());
    }
}

#[test]
fn single_object_each_side() {
    let r = vec![SpatialObject::point(0, 5000.0, 5000.0)];
    let s = vec![SpatialObject::point(0, 5050.0, 5000.0)];
    check(r, s, 10, &JoinSpec::distance_join(100.0));
}

#[test]
fn single_objects_just_out_of_range() {
    let r = vec![SpatialObject::point(0, 5000.0, 5000.0)];
    let s = vec![SpatialObject::point(0, 5101.0, 5000.0)];
    check(r, s, 10, &JoinSpec::distance_join(100.0));
}

#[test]
fn eps_spanning_the_whole_space_is_a_cross_product() {
    // ε larger than the space diagonal: every pair qualifies.
    let r: Vec<_> = (0..20)
        .map(|i| SpatialObject::point(i, 100.0 + i as f64 * 400.0, 300.0))
        .collect();
    let s: Vec<_> = (0..15)
        .map(|i| SpatialObject::point(i, 200.0 + i as f64 * 600.0, 9000.0))
        .collect();
    let spec = JoinSpec::distance_join(20_000.0);
    let want = oracle(&r, &s, &spec.predicate);
    assert_eq!(want.len(), 300);
    check(r, s, 200, &spec);
}

#[test]
fn all_points_identical_position() {
    // Degenerate cluster at one spot, counts never shrink under
    // splitting — exercises the recursion-limit fallback.
    let r: Vec<_> = (0..150)
        .map(|i| SpatialObject::point(i, 4000.0, 4000.0))
        .collect();
    let s: Vec<_> = (0..150)
        .map(|i| SpatialObject::point(i, 4000.5, 4000.0))
        .collect();
    let spec = JoinSpec::distance_join(10.0);
    // Buffer smaller than the co-located mass: HBSJ can never fit.
    check(r, s, 100, &spec);
}

#[test]
fn zero_eps_distance_join_is_exact_touch() {
    let r = vec![
        SpatialObject::point(0, 1000.0, 1000.0),
        SpatialObject::point(1, 2000.0, 2000.0),
    ];
    let s = vec![
        SpatialObject::point(7, 1000.0, 1000.0), // exact coincidence
        SpatialObject::point(8, 2000.0, 2000.5),
    ];
    let spec = JoinSpec::distance_join(0.0);
    let want = oracle(&r, &s, &spec.predicate);
    assert_eq!(want, vec![(0, 7)]);
    check(r, s, 50, &spec);
}

#[test]
fn ids_may_collide_across_datasets() {
    // R and S id spaces are independent; pairs are (r_id, s_id).
    let r = vec![SpatialObject::point(42, 100.0, 100.0)];
    let s = vec![SpatialObject::point(42, 110.0, 100.0)];
    let spec = JoinSpec::distance_join(50.0);
    check(r, s, 10, &spec);
}

#[test]
fn objects_on_the_space_boundary() {
    let r = vec![
        SpatialObject::point(0, 0.0, 0.0),
        SpatialObject::point(1, 10_000.0, 10_000.0),
        SpatialObject::point(2, 0.0, 10_000.0),
    ];
    let s = vec![
        SpatialObject::point(0, 30.0, 0.0),
        SpatialObject::point(1, 10_000.0, 9950.0),
        SpatialObject::point(2, 40.0, 9980.0),
    ];
    check(r, s, 4, &JoinSpec::distance_join(100.0));
}

#[test]
fn iceberg_threshold_above_any_count_is_empty() {
    let r = vec![SpatialObject::point(0, 500.0, 500.0)];
    let s = vec![SpatialObject::point(0, 510.0, 500.0)];
    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(100)
        .with_space(default_space())
        .build();
    let rep = SrJoin::default()
        .run(&dep, &JoinSpec::iceberg(100.0, 99))
        .unwrap();
    assert_eq!(rep.pairs.len(), 1);
    assert!(rep.iceberg.unwrap().qualifying.is_empty());
}

#[test]
fn intersection_join_of_nested_boxes() {
    let r = vec![
        SpatialObject::new(0, Rect::from_coords(1000.0, 1000.0, 5000.0, 5000.0)),
        SpatialObject::new(1, Rect::from_coords(6000.0, 6000.0, 6100.0, 6100.0)),
    ];
    let s = vec![
        SpatialObject::new(0, Rect::from_coords(2000.0, 2000.0, 3000.0, 3000.0)), // inside r0
        SpatialObject::new(1, Rect::from_coords(4999.0, 1000.0, 7000.0, 7000.0)), // overlaps both
        SpatialObject::new(2, Rect::from_coords(9000.0, 9000.0, 9100.0, 9100.0)), // disjoint
    ];
    check(r, s, 100, &JoinSpec::intersection_join());
}

#[test]
fn dialup_network_still_correct() {
    let r: Vec<_> = (0..60)
        .map(|i| {
            SpatialObject::point(
                i,
                100.0 + (i as f64 * 37.0) % 2000.0,
                150.0 + (i as f64 * 53.0) % 2000.0,
            )
        })
        .collect();
    let s: Vec<_> = (0..60)
        .map(|i| {
            SpatialObject::point(
                i,
                100.0 + (i as f64 * 29.0) % 2000.0,
                150.0 + (i as f64 * 41.0) % 2000.0,
            )
        })
        .collect();
    let spec = JoinSpec::distance_join(120.0);
    let want = oracle(&r, &s, &spec.predicate);
    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(80)
        .with_space(default_space())
        .with_net(NetConfig::dialup())
        .build();
    for alg in adaptive() {
        let rep = alg.run(&dep, &spec).unwrap();
        let mut got = rep.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, want, "{}", alg.name());
    }
}

#[test]
fn buffer_of_one_object_still_completes() {
    // HBSJ can never run; everything must go through streaming NLSJ.
    let r: Vec<_> = (0..25)
        .map(|i| SpatialObject::point(i, 4900.0 + i as f64 * 8.0, 5000.0))
        .collect();
    let s: Vec<_> = (0..25)
        .map(|i| SpatialObject::point(i, 4904.0 + i as f64 * 8.0, 5000.0))
        .collect();
    let spec = JoinSpec::distance_join(5.0);
    let want = oracle(&r, &s, &spec.predicate);
    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(1)
        .with_space(default_space())
        .build();
    for alg in adaptive() {
        let rep = alg.run(&dep, &spec).unwrap();
        let mut got = rep.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, want, "{}", alg.name());
        assert!(rep.peak_buffer <= 1, "{}", alg.name());
    }
}

#[test]
fn naive_reports_buffer_error_with_exact_numbers() {
    let r: Vec<_> = (0..30)
        .map(|i| SpatialObject::point(i, i as f64, 0.0))
        .collect();
    let dep = DeploymentBuilder::new(r.clone(), r)
        .with_buffer(59)
        .with_space(default_space())
        .build();
    match NaiveJoin.run(&dep, &JoinSpec::distance_join(1.0)) {
        Err(asj_core::JoinError::Buffer(b)) => {
            assert_eq!(b.requested, 60);
            assert_eq!(b.capacity, 59);
        }
        other => panic!("expected buffer error, got {other:?}"),
    }
}
