//! Many-device determinism on the event-loop carrier.
//!
//! The async carrier multiplexes every simulated device over one reactor
//! thread, so the property that makes it trustworthy is *unobservability*:
//! at a thousand devices, any worker-pool schedule must produce, per
//! device, exactly the answers, join pairs and meter bytes of a serial
//! replay — and on a sharded fleet every device's per-shard meters must
//! keep summing exactly to its aggregate meter (conservation), just like
//! the threaded carrier before it.

use asj_core::{DeploymentBuilder, Side};
use asj_device::{run_traffic, TrafficConfig};
use asj_geom::{Rect, SpatialObject};
use asj_net::Request;
use asj_workloads::{default_space, uniform};

fn data(seed: u64) -> Vec<SpatialObject> {
    uniform(&default_space(), 200, seed)
}

/// 1024 devices, pooled vs serial replay, flat and 3-shard fleets:
/// device-for-device identical outcomes, and nobody starves.
#[test]
fn a_thousand_devices_replay_identically_on_the_event_loop() {
    for shards in [1usize, 3] {
        let dep = DeploymentBuilder::new(data(7), data(1007))
            .with_space(default_space())
            .with_shards(shards, shards)
            .event_loop()
            .build();
        assert!(dep.is_event_loop());

        let space = default_space();
        let pooled_cfg = TrafficConfig::new(1024, 8, space);
        let pooled = run_traffic(&pooled_cfg, |_| dep.connect());
        let serial_cfg = TrafficConfig {
            workers: 1,
            ..pooled_cfg
        };
        let serial = run_traffic(&serial_cfg, |_| dep.connect());

        // Whole-run digest first (covers meters), then device-for-device
        // so a failure names the diverging device.
        assert_eq!(
            pooled.determinism_digest(),
            serial.determinism_digest(),
            "{shards}-shard: pooled run diverged from serial replay"
        );
        assert_eq!(pooled.outcomes.len(), 1024);
        for (p, s) in pooled.outcomes.iter().zip(serial.outcomes.iter()) {
            assert_eq!(p.device, s.device);
            assert_eq!(p.digest, s.digest, "device {}: answers diverged", p.device);
            assert_eq!(
                (p.pairs, p.pair_digest),
                (s.pairs, s.pair_digest),
                "device {}: join pairs diverged",
                p.device
            );
            assert_eq!(
                (p.r_meter, p.s_meter),
                (s.r_meter, s.s_meter),
                "device {}: wire bytes diverged",
                p.device
            );
        }
        assert!(pooled.total_pairs() > 0, "non-vacuous workload");
        assert!(pooled.fairness_ratio().is_finite(), "a device starved");

        // The reactor actually carried the traffic: per-shard served
        // counts are positive and the endpoint gauges saw real depth.
        for side in [Side::R, Side::S] {
            let stats = dep.event_stats(side);
            assert_eq!(stats.len(), shards);
            assert!(stats.iter().all(|g| g.served() > 0));
        }
    }
}

/// Meter conservation per device on a sharded event-loop fleet: each
/// link's per-shard meters sum exactly to its aggregate meter, request
/// by request.
#[test]
fn per_shard_meters_sum_to_each_devices_aggregate() {
    let dep = DeploymentBuilder::new(data(11), data(1011))
        .with_space(default_space())
        .with_shards(3, 2)
        .event_loop()
        .build();
    let space = default_space();
    for device in 0..16usize {
        let (r_link, s_link) = dep.connect();
        for k in 0..4 {
            let a = ((device * 37 + k * 61) % 97) as f64 / 97.0;
            let b = ((device * 53 + k * 29) % 89) as f64 / 89.0;
            let w = Rect::from_coords(
                space.min.x + a * 7000.0,
                space.min.y + b * 7000.0,
                space.min.x + a * 7000.0 + 1800.0,
                space.min.y + b * 7000.0 + 1800.0,
            );
            r_link.request(&Request::Count(w));
            r_link.request(&Request::Window(w));
            s_link.request(&Request::Window(w));
            for (side, link) in [("R", &r_link), ("S", &s_link)] {
                let fleet = link.fleet().expect("sharded link has fleet telemetry");
                assert_eq!(
                    fleet.snapshot().summed(),
                    link.meter().snapshot(),
                    "device {device}, side {side}, step {k}: \
                     per-shard meters must sum exactly to the aggregate"
                );
            }
        }
    }
}

/// Cache sharing: with a per-side session cache, *who* pays the miss is
/// scheduling-dependent but the decoded answers (and local join pairs)
/// must still match the serial replay device for device.
#[test]
fn shared_cache_answers_match_serial_replay() {
    let dep = DeploymentBuilder::new(data(13), data(1013))
        .with_space(default_space())
        .with_client_cache(true)
        .event_loop()
        .build();
    let space = default_space();
    let pooled_cfg = TrafficConfig::new(256, 8, space);
    let pooled = run_traffic(&pooled_cfg, |_| dep.connect());
    let serial_cfg = TrafficConfig {
        workers: 1,
        ..pooled_cfg
    };
    let serial = run_traffic(&serial_cfg, |_| dep.connect());
    assert_eq!(
        pooled.result_digest(),
        serial.result_digest(),
        "shared cache changed some device's decoded answers"
    );
    assert!(pooled.total_pairs() > 0);
}
