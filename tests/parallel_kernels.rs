//! Differential proof that the parallel join kernels and the worker knob
//! change nothing but wall-clock time.
//!
//! The serial kernel (`sweep_workers = 1`) is the reference: for every
//! algorithm, every worker count must reproduce its **exact pair list
//! (same order)** and **byte-identical wire traffic** — across flat,
//! 4-shard, and client-cached deployments. Combined with
//! `crates/server/tests/zero_copy.rs` (zero-copy serving ≡ materializing
//! serving, byte for byte) this pins the whole perf PR as
//! behavior-invisible.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::SpatialObject;
use asj_workloads::default_space;

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

fn algorithms() -> Vec<Box<dyn DistributedJoin>> {
    vec![
        Box::new(NaiveJoin),
        Box::new(GridJoin::default()),
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
        Box::new(SemiJoin::default()),
    ]
}

#[derive(Clone, Copy)]
enum Flavor {
    Flat,
    Sharded4,
    Cached,
}

fn build(
    r: &[SpatialObject],
    s: &[SpatialObject],
    buffer: usize,
    flavor: Flavor,
    workers: usize,
) -> Deployment {
    let mut b = DeploymentBuilder::new(r.to_vec(), s.to_vec())
        .with_buffer(buffer)
        .with_space(default_space())
        .with_sweep_workers(workers)
        .cooperative(); // SemiJoin runs too; others ignore the extension
    match flavor {
        Flavor::Flat => {}
        Flavor::Sharded4 => b = b.with_shards(4, 4),
        Flavor::Cached => b = b.with_client_cache(true),
    }
    b.build()
}

/// All six algorithms, three deployment flavors: any worker count must be
/// pair- and byte-identical to the serial run.
#[test]
fn worker_count_invisible_for_every_algorithm_and_deployment() {
    let r = clusters(4, 200, 31);
    let s = clusters(8, 200, 131);
    let spec = JoinSpec::distance_join(150.0);
    for flavor in [Flavor::Flat, Flavor::Sharded4, Flavor::Cached] {
        for alg in algorithms() {
            let serial = alg
                .run(&build(&r, &s, 800, flavor, 1), &spec)
                .unwrap_or_else(|e| panic!("{} serial failed: {e}", alg.name()));
            for workers in [2, 5] {
                let par = alg
                    .run(&build(&r, &s, 800, flavor, workers), &spec)
                    .unwrap_or_else(|e| panic!("{} workers={workers} failed: {e}", alg.name()));
                assert_eq!(
                    par.pairs,
                    serial.pairs,
                    "{}: pair list must be identical (same order) at workers={workers}",
                    alg.name()
                );
                assert_eq!(
                    (par.link_r, par.link_s),
                    (serial.link_r, serial.link_s),
                    "{}: wire traffic must be byte-identical at workers={workers}",
                    alg.name()
                );
            }
        }
    }
}

/// Large single-window joins actually engage the parallel kernels (the
/// input clears `PARALLEL_JOIN_THRESHOLD`), and the result is still exact.
#[test]
fn parallel_kernels_engage_on_large_windows_and_stay_exact() {
    let r = uniform(&default_space(), 2600, 3);
    let s = clusters(4, 2600, 103);
    assert!(r.len() + s.len() >= asj_device::memjoin::PARALLEL_JOIN_THRESHOLD);
    let spec = JoinSpec::distance_join(60.0);
    // Buffer 8000 lets NaiveJoin run one HBSJ over everything — a single
    // 5 200-object kernel invocation, well above the parallel threshold.
    let serial = NaiveJoin
        .run(&build(&r, &s, 8000, Flavor::Flat, 1), &spec)
        .unwrap();
    assert!(!serial.pairs.is_empty(), "non-vacuous");
    for workers in [2, 4, 8] {
        let par = NaiveJoin
            .run(&build(&r, &s, 8000, Flavor::Flat, workers), &spec)
            .unwrap();
        assert_eq!(par.pairs, serial.pairs, "workers={workers}");
        assert_eq!((par.link_r, par.link_s), (serial.link_r, serial.link_s));
    }
    // The auto setting (0 → available parallelism) is equally invisible.
    let auto = NaiveJoin
        .run(&build(&r, &s, 8000, Flavor::Flat, 0), &spec)
        .unwrap();
    assert_eq!(auto.pairs, serial.pairs);
}
