//! Concurrent-client determinism — the seed of the multi-device axis.
//!
//! Many device threads hammer one threaded server (and one 4-shard
//! threaded fleet). Every concurrent client must get **byte- and
//! result-identical** answers to a serial replay: links are per-client, so
//! metering never bleeds between clients, the channel server serves
//! interleaved requests without mixing replies, and per-shard meters keep
//! summing exactly to each link's aggregate (meter conservation).

use std::sync::Arc;

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::SpatialObject;
use asj_net::{
    BreakerConfig, ChannelServer, FaultPlan, Link, LinkSnapshot, NetConfig, PacketModel, Request,
    RetryPolicy,
};
use asj_server::{RTreeStore, SpatialService};
use asj_workloads::default_space;

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

const CLIENTS: usize = 6;

/// One join replayed by many concurrent clients of the same threaded
/// deployment: every report equals the serial replay, bit for bit on the
/// meters and pair for pair on the result.
fn assert_concurrent_replay_identical(dep: &Deployment, spec: &JoinSpec, fleet: bool) {
    let serial = SrJoin::default().run(dep, spec).expect("serial replay");
    assert!(!serial.pairs.is_empty(), "non-vacuous workload");
    let reports: Vec<JoinReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(|| SrJoin::default().run(dep, spec).expect("concurrent run")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (client, rep) in reports.iter().enumerate() {
        assert_eq!(
            rep.pairs, serial.pairs,
            "client {client}: result diverged under concurrency"
        );
        assert_eq!(
            (rep.link_r, rep.link_s),
            (serial.link_r, serial.link_s),
            "client {client}: wire traffic must be byte-identical to the serial replay"
        );
        if fleet {
            for (side, link, fleet_snap) in [
                ("R", &rep.link_r, rep.fleet_r.as_ref().expect("fleet R")),
                ("S", &rep.link_s, rep.fleet_s.as_ref().expect("fleet S")),
            ] {
                assert_eq!(
                    fleet_snap.summed(),
                    *link,
                    "client {client}, side {side}: per-shard meters must sum to the aggregate"
                );
                // Replica rows sum field-wise to their shard — failovers
                // and breaker trips included, never lost or double-counted.
                for (shard, (total, row)) in fleet_snap
                    .per_shard
                    .iter()
                    .zip(&fleet_snap.per_replica)
                    .enumerate()
                {
                    let row_sum = row
                        .iter()
                        .fold(LinkSnapshot::default(), |acc, r| acc.plus(r));
                    assert_eq!(
                        &row_sum, total,
                        "client {client}, side {side}, shard {shard}: replica \
                         meters must sum to the shard meter"
                    );
                }
            }
        }
    }
}

#[test]
fn concurrent_clients_of_one_channel_server_replay_identically() {
    let dep = DeploymentBuilder::new(clusters(4, 250, 11), clusters(4, 250, 111))
        .with_space(default_space())
        .with_buffer(100) // split-heavy: many interleaved small requests
        .threaded()
        .build();
    let spec = JoinSpec::distance_join(200.0);
    assert_concurrent_replay_identical(&dep, &spec, false);
}

#[test]
fn concurrent_clients_of_a_4_shard_threaded_fleet_replay_identically() {
    let dep = DeploymentBuilder::new(clusters(4, 250, 43), clusters(8, 250, 143))
        .with_space(default_space())
        .with_shards(4, 4)
        .threaded()
        .build();
    let spec = JoinSpec::distance_join(150.0).with_bucket_nlsj(true);
    assert_concurrent_replay_identical(&dep, &spec, true);
}

/// A replicated, faulted fleet under concurrency: each client's link
/// owns its fault layers and breakers, so every concurrent report is
/// byte-identical to the serial replay even while drops fire, siblings
/// cover failovers and breakers trip — and the failover/breaker
/// counters obey exact summation (replica rows → shard → aggregate).
#[test]
fn concurrent_clients_of_a_replicated_faulted_fleet_conserve_meters() {
    let dep = DeploymentBuilder::new(clusters(4, 250, 43), clusters(8, 250, 143))
        .with_space(default_space())
        .with_shards(2, 2)
        .with_replicas(2)
        .with_net(
            NetConfig::default()
                .with_retry(RetryPolicy::attempts(6))
                .with_breakers(BreakerConfig::new(1, 3)),
        )
        .with_faults(FaultPlan::seeded(9).with_drops(0.25))
        .threaded()
        .build();
    let spec = JoinSpec::distance_join(150.0);
    // Non-vacuity: this seed must actually exercise the counters the
    // summation law is pinned on.
    let serial = SrJoin::default().run(&dep, &spec).expect("serial replay");
    assert!(
        serial.link_r.failovers + serial.link_s.failovers > 0,
        "seed 9 must drive at least one failover"
    );
    assert!(
        serial.link_r.breaker_open + serial.link_s.breaker_open > 0,
        "a 1-failure breaker must trip at least once at seed 9"
    );
    assert_eq!(serial.link_r.abandoned + serial.link_s.abandoned, 0);
    assert_concurrent_replay_identical(&dep, &spec, true);
}

/// Raw link level: N clients of one `ChannelServer` issue the same request
/// sequence; every per-link meter must equal the serial replay's exactly,
/// and the server must have served exactly the expected request count.
#[test]
fn channel_server_meters_are_per_link_under_contention() {
    let objs = clusters(4, 400, 47);
    let service = Arc::new(SpatialService::new(RTreeStore::new(objs)));
    let (server, handle) = ChannelServer::spawn(service, "stress");

    let sequence: Vec<Request> = (0..25)
        .map(|i| {
            let a = (i * 37 % 97) as f64 / 97.0 * 8000.0;
            let b = (i * 17 % 89) as f64 / 89.0 * 8000.0;
            let w = Rect::from_coords(a, b, a + 2000.0, b + 2000.0);
            match i % 3 {
                0 => Request::Window(w),
                1 => Request::Count(w),
                _ => Request::EpsRange { q: w, eps: 120.0 },
            }
        })
        .collect();

    let run = |link: &Link| {
        for req in &sequence {
            link.request(req);
        }
        link.meter().snapshot()
    };
    let serial = {
        let link = Link::new(Box::new(handle.connect()), PacketModel::default(), 1.0);
        run(&link)
    };
    assert!(serial.total_bytes() > 0);

    let snapshots: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let conn = handle.connect();
                scope.spawn(move || {
                    let link = Link::new(Box::new(conn), PacketModel::default(), 1.0);
                    run(&link)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (client, snap) in snapshots.iter().enumerate() {
        assert_eq!(
            *snap, serial,
            "client {client}: per-link metering diverged under contention"
        );
    }
    drop(handle);
    assert_eq!(
        server.join(),
        ((CLIENTS + 1) * sequence.len()) as u64,
        "every request must be served exactly once"
    );
}
