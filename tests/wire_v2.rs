//! Differential oracles for wire protocol v2.
//!
//! Protocol v2 is a per-link negotiated capability: compact object
//! frames (delta-varint ids, window-quantized u16 coordinates with
//! exact-f32 escapes), varint scalar and generation frames, negotiated
//! by a HELLO/ACCEPT handshake on each physical link. This suite pins
//! the two contracts that make it deployable:
//!
//! * **Result identity** — for every algorithm (NaiveJoin, GridJoin,
//!   MobiJoin, UpJoin, SrJoin, SemiJoin) on flat, 4-shard and cached
//!   deployments, a v2 fleet returns exactly the pairs of the v1 run.
//!   The codec guarantees this structurally: a v2 decode is bit-equal
//!   to the v1 decode of the same objects (verify-else-escape
//!   quantization), so plans may differ — the v2 cost model prices the
//!   denser frames — but results cannot.
//! * **Off means off** — with `wire_v2` disabled (the default), every
//!   link speaks v1 byte-identically: link meters match a default-config
//!   run field by field, and no handshake frame is ever sent.
//!
//! Plus the fleet-mix contract: a v2-capable client negotiating against
//! a fleet with one pre-v2 shard falls back to v1 *on that link only*,
//! without error — versions are per physical edge, not per deployment.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::{Rect, SpatialObject};
use asj_net::codec::WireVersion;
use asj_net::transport::InProcExchange;
use asj_net::{Link, NetConfig, RawExchange, Request, ShardEndpoint, ShardRouter};
use asj_server::{ScanStore, SpatialService, SpatialStore};
use asj_workloads::{default_space, gaussian_clusters, SyntheticSpec};
use bytes::Bytes;
use std::sync::Arc;

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

fn algorithms() -> Vec<Box<dyn DistributedJoin>> {
    vec![
        Box::new(NaiveJoin),
        Box::new(GridJoin::default()),
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
        Box::new(SemiJoin::default()),
    ]
}

/// Deployment shapes the sweep crosses with v2 on/off.
#[derive(Clone, Copy, Debug)]
enum Shape {
    Flat,
    Sharded(usize),
    Cached,
}

fn build(r: &[SpatialObject], s: &[SpatialObject], shape: Shape, net: NetConfig) -> Deployment {
    let mut b = DeploymentBuilder::new(r.to_vec(), s.to_vec())
        .with_space(default_space())
        .with_net(net)
        .cooperative(); // SemiJoin runs too; others ignore the extension
    match shape {
        Shape::Flat => {}
        Shape::Sharded(n) => b = b.with_shards(n, n),
        Shape::Cached => b = b.with_client_cache(true),
    }
    b.build()
}

fn sorted_pairs(rep: &JoinReport) -> Vec<(u32, u32)> {
    let mut pairs = rep.pairs.clone();
    pairs.sort_unstable();
    pairs
}

/// Every algorithm, every shape: the v2 run returns exactly the v1 pairs.
#[test]
fn v2_joins_identical_across_flat_sharded_cached() {
    for seed in [11, 42] {
        let r = clusters(4, 180, seed);
        let s = clusters(4, 180, seed + 100);
        let spec = JoinSpec::distance_join(150.0);
        for shape in [Shape::Flat, Shape::Sharded(4), Shape::Cached] {
            let v1 = build(&r, &s, shape, NetConfig::default());
            let v2 = build(&r, &s, shape, NetConfig::default().with_wire_v2(true));
            for alg in algorithms() {
                match (alg.run(&v1, &spec), alg.run(&v2, &spec)) {
                    (Ok(rep1), Ok(rep2)) => assert_eq!(
                        sorted_pairs(&rep1),
                        sorted_pairs(&rep2),
                        "{} diverged under v2 on {shape:?}",
                        alg.name()
                    ),
                    (Err(e1), Err(e2)) => assert_eq!(
                        std::mem::discriminant(&e1),
                        std::mem::discriminant(&e2),
                        "{}: v2 must not change the infeasibility verdict on {shape:?}",
                        alg.name()
                    ),
                    (a, b) => panic!(
                        "{} on {shape:?}: feasibility diverged under v2 ({a:?} vs {b:?})",
                        alg.name()
                    ),
                }
            }
        }
    }
}

/// With the flag off — explicitly or by default — every link speaks v1
/// byte-identically: meters agree field by field with a default run.
#[test]
fn v2_off_is_byte_identical_to_default() {
    let r = clusters(2, 180, 7);
    let s = clusters(8, 180, 107);
    let spec = JoinSpec::distance_join(150.0);
    for shape in [Shape::Flat, Shape::Sharded(4), Shape::Cached] {
        let default_net = build(&r, &s, shape, NetConfig::default());
        let explicit_off = build(&r, &s, shape, NetConfig::default().with_wire_v2(false));
        for alg in algorithms() {
            let (Ok(a), Ok(b)) = (alg.run(&default_net, &spec), alg.run(&explicit_off, &spec))
            else {
                continue; // infeasibility equality is pinned above
            };
            assert_eq!(sorted_pairs(&a), sorted_pairs(&b));
            assert_eq!(
                (a.link_r, a.link_s),
                (b.link_r, b.link_s),
                "{} on {shape:?}: wire_v2=false must be byte-identical to default",
                alg.name()
            );
        }
    }
    // And the negotiated version is observable on a flat link: off stays
    // v1 (no handshake is even attempted), on upgrades to v2.
    let (off_r, _) = build(&r, &s, Shape::Flat, NetConfig::default()).connect();
    assert_eq!(off_r.wire(), WireVersion::V1);
    let (on_r, _) = build(&r, &s, Shape::Flat, NetConfig::default().with_wire_v2(true)).connect();
    assert_eq!(on_r.wire(), WireVersion::V2);
}

/// The compact frames actually pay: the download-dominated NaiveJoin
/// moves strictly fewer bytes under v2 (non-vacuousness for the identity
/// tests above).
#[test]
fn v2_saves_bytes_on_download_heavy_plans() {
    let r = clusters(4, 180, 11);
    let s = clusters(4, 180, 111);
    let spec = JoinSpec::distance_join(150.0);
    let v1 = NaiveJoin.run(&build(&r, &s, Shape::Flat, NetConfig::default()), &spec);
    let v2 = NaiveJoin.run(
        &build(&r, &s, Shape::Flat, NetConfig::default().with_wire_v2(true)),
        &spec,
    );
    let (v1, v2) = (v1.unwrap(), v2.unwrap());
    assert_eq!(sorted_pairs(&v1), sorted_pairs(&v2));
    assert!(
        (v2.total_bytes() as f64) < 0.75 * v1.total_bytes() as f64,
        "v2 {} vs v1 {} bytes — the object frames did not compact",
        v2.total_bytes(),
        v1.total_bytes()
    );
}

/// A pre-v2 server: no HELLO intercept in its transport adapter, so a
/// version probe falls through to the request decoder and gets refused
/// like any unknown frame.
struct V1OnlyShard(InProcExchange<SpatialService<ScanStore>>);

impl RawExchange for V1OnlyShard {
    fn exchange(&self, request: Bytes) -> Bytes {
        if request.first() == Some(&0x70) {
            // An old server has no idea what 0x70 is; whatever it sends
            // back (an error byte here), it is not a valid ACCEPT.
            return Bytes::from_static(&[0x00]);
        }
        self.0.exchange(request)
    }
}

/// A mixed fleet — one v2-capable shard, one v1-only shard — negotiates
/// per physical link: the capable link upgrades, the old one falls back,
/// and every query merges correctly across the version boundary.
#[test]
fn mixed_version_fleet_falls_back_per_link() {
    let all = clusters(4, 200, 13);
    let (left, right): (Vec<_>, Vec<_>) = all
        .iter()
        .copied()
        .partition(|o| o.mbr.center().x < default_space().center().x);
    let oracle = ScanStore::new(all.clone());

    let shard =
        |objs: &[SpatialObject]| Arc::new(SpatialService::new(ScanStore::new(objs.to_vec())));
    let net = NetConfig::default().with_wire_v2(true);
    // Both shards advertise the whole space: the router scatters every
    // query to both, so merging really crosses the version boundary.
    let mut router = ShardRouter::new(
        vec![
            ShardEndpoint::new(
                Some(default_space()),
                Box::new(InProcExchange::new(shard(&left))),
            ),
            ShardEndpoint::new(
                Some(default_space()),
                Box::new(V1OnlyShard(InProcExchange::new(shard(&right)))),
            ),
        ],
        net.packet,
    );
    router.negotiate_v2();
    assert_eq!(
        router.wire_versions(),
        vec![WireVersion::V2, WireVersion::V1],
        "negotiation must settle per link, not per fleet"
    );

    let link = Link::routed(router, net.tariff_r);
    for w in [
        Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0),
        Rect::from_coords(2_000.0, 1_000.0, 7_500.0, 8_000.0),
        Rect::from_coords(4_900.0, 0.0, 5_100.0, 10_000.0), // straddles the split
    ] {
        assert_eq!(
            link.request(&Request::Count(w)).into_count(),
            oracle.count(&w),
            "mixed-version COUNT diverged"
        );
        let mut got: Vec<u32> = link
            .request(&Request::Window(w))
            .into_objects()
            .iter()
            .map(|o| o.id)
            .collect();
        got.sort_unstable();
        let mut want: Vec<u32> = oracle.window(&w).iter().map(|o| o.id).collect();
        want.sort_unstable();
        assert_eq!(got, want, "mixed-version WINDOW diverged");
    }
}

/// Concurrent negotiation: 64 devices race their `HELLO`/`ACCEPT`
/// handshakes over one shared reactor (plus a crowd of v1 holdouts that
/// never probe). Versions are per physical edge, and the reactor is the
/// only writer of each connection's state — so every negotiating link
/// must land on v2, every holdout must stay v1, and each connection's
/// recorded state must agree with what its link speaks. Queries issued
/// through the racing links afterwards must all decode to the same
/// answers.
#[test]
fn concurrent_negotiation_settles_every_edge_consistently() {
    use asj_net::{EventLoop, PacketModel};

    let objs = clusters(4, 250, 17);
    let oracle = ScanStore::new(objs.clone());
    let reactor = EventLoop::spawn("nego-race");
    let endpoint = reactor.serve(Arc::new(SpatialService::new(ScanStore::new(objs))));
    let w = Rect::from_coords(1_500.0, 1_500.0, 6_000.0, 6_000.0);
    let want = oracle.count(&w);

    const RACERS: usize = 64;
    const HOLDOUTS: usize = 16;
    let outcomes: Vec<(WireVersion, WireVersion, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..RACERS + HOLDOUTS)
            .map(|i| {
                let conn = endpoint.connect();
                scope.spawn(move || {
                    let state = Arc::clone(conn.state());
                    let mut link = Link::new(Box::new(conn), PacketModel::default(), 1.0);
                    if i < RACERS {
                        link = link.negotiate();
                    }
                    let count = link.request(&Request::Count(w)).into_count();
                    (link.wire(), state.negotiated(), count)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (spoken, recorded, count)) in outcomes.iter().enumerate() {
        let expected = if i < RACERS {
            WireVersion::V2
        } else {
            WireVersion::V1
        };
        assert_eq!(
            *spoken, expected,
            "link {i}: negotiation raced to the wrong version"
        );
        assert_eq!(
            *recorded, *spoken,
            "link {i}: reactor-owned connection state disagrees with the link"
        );
        assert_eq!(*count, want, "link {i}: answer diverged after the race");
    }
    reactor.shutdown();
}
