//! Differential oracles for sharded server fleets.
//!
//! Sharding is a deployment concern: it must be invisible in the join
//! result and fully accounted on the wire. This suite pins that:
//!
//! * **Result identity** — for pinned seeds and every algorithm
//!   (NaiveJoin, GridJoin, MobiJoin, UpJoin, SrJoin, SemiJoin), a
//!   deployment sharded `N ∈ {1, 2, 4, 7}` ways per side yields exactly
//!   the pairs of the single-server deployment, in per-query and batched
//!   statistics modes, with per-probe and bucket NLSJ.
//! * **Wire identity at N = 1** — a 1-shard fleet's link snapshots are
//!   byte-identical to the flat deployment's: the router adds zero
//!   traffic when there is nothing to scatter.
//! * **Meter conservation** — a threaded fleet under many interleaved
//!   client threads loses no packet: the sum of per-shard meters equals
//!   the router's aggregate, field by field.
//! * **Merged aggregate semantics** — the router's `AvgArea` weights
//!   per-shard averages by matching-object count, matching the flat
//!   server's answer.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::{Rect, SpatialObject};
use asj_net::{Request, Response};
use asj_server::{ScanStore, SpatialStore};
use asj_workloads::{default_space, gaussian_clusters, SyntheticSpec};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

fn algorithms() -> Vec<Box<dyn DistributedJoin>> {
    vec![
        Box::new(NaiveJoin),
        Box::new(GridJoin::default()),
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
        Box::new(SemiJoin::default()),
    ]
}

struct Config {
    buffer: usize,
    batched: bool,
    bucket: bool,
}

fn build(
    r: &[SpatialObject],
    s: &[SpatialObject],
    cfg: &Config,
    shards: Option<usize>,
) -> Deployment {
    let mut b = DeploymentBuilder::new(r.to_vec(), s.to_vec())
        .with_buffer(cfg.buffer)
        .with_space(default_space())
        .with_net(asj_net::NetConfig::default().with_batched_stats(cfg.batched))
        .cooperative(); // SemiJoin runs too; others ignore the extension
    if let Some(n) = shards {
        b = b.with_shards(n, n);
    }
    b.build()
}

fn sorted_pairs(rep: &JoinReport) -> Vec<(u32, u32)> {
    let mut pairs = rep.pairs.clone();
    pairs.sort_unstable();
    pairs
}

/// Every algorithm, every shard count: identical pairs to the flat
/// deployment; at N = 1 additionally identical wire bytes.
fn assert_sharding_invisible(r: &[SpatialObject], s: &[SpatialObject], cfg: &Config, eps: f64) {
    let spec = JoinSpec::distance_join(eps).with_bucket_nlsj(cfg.bucket);
    let flat = build(r, s, cfg, None);
    for alg in algorithms() {
        let flat_run = alg.run(&flat, &spec);
        let flat_rep = match flat_run {
            Ok(rep) => rep,
            Err(ref flat_err) => {
                // Infeasible on this configuration (e.g. NaiveJoin with a
                // tiny buffer): sharding must not change that verdict.
                for n in SHARD_COUNTS {
                    let err = alg
                        .run(&build(r, s, cfg, Some(n)), &spec)
                        .expect_err("sharding must not make an infeasible join feasible");
                    assert_eq!(
                        std::mem::discriminant(&err),
                        std::mem::discriminant(flat_err),
                        "{}: error kind must match flat at N={n}",
                        alg.name()
                    );
                }
                continue;
            }
        };
        let want = sorted_pairs(&flat_rep);
        for n in SHARD_COUNTS {
            let fleet = build(r, s, cfg, Some(n));
            let rep = alg
                .run(&fleet, &spec)
                .unwrap_or_else(|e| panic!("{} (N={n}) failed: {e}", alg.name()));
            assert_eq!(
                sorted_pairs(&rep),
                want,
                "{} diverged at N={n} (batched={}, bucket={})",
                alg.name(),
                cfg.batched,
                cfg.bucket
            );
            assert!(
                rep.fleet_r.is_some() && rep.fleet_s.is_some(),
                "fleet reports must carry per-shard accounting"
            );
            if n == 1 {
                assert_eq!(
                    (rep.link_r, rep.link_s),
                    (flat_rep.link_r, flat_rep.link_s),
                    "{}: a 1-shard fleet must be byte-identical on the wire",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn sharded_joins_identical_skewed_data() {
    for seed in [11, 42] {
        assert_sharding_invisible(
            &clusters(4, 180, seed),
            &clusters(4, 180, seed + 100),
            &Config {
                buffer: 800,
                batched: false,
                bucket: false,
            },
            150.0,
        );
    }
}

#[test]
fn sharded_joins_identical_batched_stats() {
    assert_sharding_invisible(
        &clusters(2, 180, 7),
        &clusters(8, 180, 107),
        &Config {
            buffer: 800,
            batched: true,
            bucket: false,
        },
        150.0,
    );
}

#[test]
fn sharded_joins_identical_small_buffer_bucket_nlsj() {
    // Buffer 100 forces splits and NLSJ; bucket mode exercises the
    // router's per-probe sub-batching of `BucketEpsRange`.
    assert_sharding_invisible(
        &clusters(1, 180, 3),
        &clusters(1, 180, 103),
        &Config {
            buffer: 100,
            batched: false,
            bucket: true,
        },
        150.0,
    );
}

#[test]
fn sharded_joins_identical_small_buffer_per_probe_nlsj() {
    assert_sharding_invisible(
        &clusters(16, 150, 5),
        &clusters(16, 150, 105),
        &Config {
            buffer: 100,
            batched: false,
            bucket: false,
        },
        120.0,
    );
}

/// Satellite: threaded fleets under interleaved load conserve meter
/// accounting — no lost or double-counted packets, per-shard sums equal
/// the aggregate exactly.
#[test]
fn threaded_fleet_conserves_meter_accounting_under_stress() {
    let r = clusters(4, 300, 21);
    let s = clusters(8, 300, 121);
    let dep = DeploymentBuilder::new(r.clone(), s.clone())
        .with_space(default_space())
        .with_shards(4, 3)
        .threaded()
        .build();
    let oracle_r = ScanStore::new(r);
    let oracle_s = ScanStore::new(s);
    let (link_r, link_s) = dep.connect();
    let space = default_space();
    let threads = 8;
    let per_thread = 30;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let (link_r, link_s) = (&link_r, &link_s);
            let (oracle_r, oracle_s) = (&oracle_r, &oracle_s);
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Deterministic pseudo-random windows per (t, i).
                    let a = ((t * 131 + i * 37) % 97) as f64 / 97.0;
                    let b = ((t * 61 + i * 17) % 89) as f64 / 89.0;
                    let w = Rect::from_coords(
                        a * 8000.0,
                        b * 8000.0,
                        a * 8000.0 + 2500.0,
                        b * 8000.0 + 2500.0,
                    );
                    assert_eq!(
                        link_r.request(&Request::Count(w)).into_count(),
                        oracle_r.count(&w),
                        "fleet COUNT diverged under concurrency"
                    );
                    let mut got: Vec<u32> = link_s
                        .request(&Request::Window(w))
                        .into_objects()
                        .iter()
                        .map(|o| o.id)
                        .collect();
                    got.sort_unstable();
                    let mut want: Vec<u32> = oracle_s.window(&w).iter().map(|o| o.id).collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "fleet WINDOW diverged under concurrency");
                    let counts = link_r
                        .request(&Request::MultiCount(vec![w, space]))
                        .into_counts();
                    assert_eq!(counts[0], oracle_r.count(&w));
                    assert_eq!(counts[1], oracle_r.count(&space));
                }
            });
        }
    });

    for (link, shards) in [(&link_r, 4u64), (&link_s, 3u64)] {
        let fleet = link.fleet().expect("sharded link").snapshot();
        let aggregate = link.meter().snapshot();
        assert_eq!(
            fleet.summed(),
            aggregate,
            "per-shard meters must sum exactly to the aggregate"
        );
        // Every logical request produced exactly `shards` scatter slots.
        let requests = match shards {
            4 => (threads * per_thread * 2) as u64, // Count + MultiCount on R
            _ => (threads * per_thread) as u64,     // Window on S
        };
        assert_eq!(
            fleet.scattered + fleet.pruned,
            requests * shards,
            "scatter slots must be conserved"
        );
        assert!(fleet.scattered > 0);
    }
}

/// Satellite: the router's merged `AvgArea` weights per-shard averages by
/// matching-object count — pinned against the flat server's answer.
#[test]
fn router_avg_area_matches_flat_weighted() {
    // Rectangles with exactly-representable areas, deliberately uneven
    // across the space so shards hold different counts AND different
    // mean areas (an unweighted mean of shard means would be wrong).
    let mut objects = Vec::new();
    for i in 0..12 {
        // Cluster of unit squares on the left.
        let x = 100.0 + (i % 4) as f64 * 300.0;
        let y = 100.0 + (i / 4) as f64 * 300.0;
        objects.push(SpatialObject::new(
            i,
            Rect::from_coords(x, y, x + 1.0, y + 1.0),
        ));
    }
    for i in 0..3 {
        // Three big 4-area rectangles on the far right.
        let x = 9000.0 + i as f64 * 200.0;
        objects.push(SpatialObject::new(
            100 + i,
            Rect::from_coords(x, 5000.0, x + 2.0, 5002.0),
        ));
    }
    let flat = DeploymentBuilder::new(objects.clone(), Vec::new())
        .with_space(default_space())
        .build();
    let expected = {
        let (link, _) = flat.connect();
        match link.request(&Request::AvgArea(default_space())) {
            Response::Area(a) => a,
            other => panic!("expected Area, got {other:?}"),
        }
    };
    // Exactly representable: (12·1 + 3·4)/15 = 1.6.
    assert_eq!(expected, 1.6);
    for n in SHARD_COUNTS {
        let fleet = DeploymentBuilder::new(objects.clone(), Vec::new())
            .with_space(default_space())
            .with_shards(n, 1)
            .build();
        let (link, _) = fleet.connect();
        match link.request(&Request::AvgArea(default_space())) {
            Response::Area(a) => assert_eq!(
                a, expected,
                "router avg-area must equal flat at N={n} (count-weighted merge)"
            ),
            other => panic!("expected Area, got {other:?}"),
        }
        // A window matching only the left cluster averages to exactly 1.
        let left = Rect::from_coords(0.0, 0.0, 2000.0, 2000.0);
        match link.request(&Request::AvgArea(left)) {
            Response::Area(a) => assert_eq!(a, 1.0),
            other => panic!("expected Area, got {other:?}"),
        }
    }
}

/// The cooperative forest level: a fleet's `CoopLevelMbrs` concatenates
/// every shard's published level, and SemiJoin still produces exact pairs
/// through it (pinned in `assert_sharding_invisible`); here we pin the
/// shape of the answer itself.
#[test]
fn fleet_level_mbrs_concatenate_per_shard_forests() {
    let objects = clusters(4, 200, 9);
    let flat = DeploymentBuilder::new(objects.clone(), Vec::new())
        .with_space(default_space())
        .cooperative()
        .build();
    let fleet = DeploymentBuilder::new(objects, Vec::new())
        .with_space(default_space())
        .with_shards(4, 1)
        .cooperative()
        .build();
    let (fl, _) = flat.connect();
    let (sl, _) = fleet.connect();
    let flat_leaves = fl.request(&Request::CoopLevelMbrs(0)).into_rects();
    let fleet_leaves = sl.request(&Request::CoopLevelMbrs(0)).into_rects();
    assert!(!fleet_leaves.is_empty());
    // Four smaller R-trees publish at least as many leaf MBRs as one big
    // tree over the same data, and every object is under some leaf in
    // both answers (checked indirectly: SemiJoin exactness above).
    assert!(fleet_leaves.len() >= flat_leaves.len().min(4));
}
