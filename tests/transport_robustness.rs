//! Transport robustness — a garbled frame must never kill a shared server.
//!
//! The channel server thread and the event-loop reactor are shared by
//! every connected device, so the failure modes this suite pins are the
//! ones that take *other* clients down with them:
//!
//! * **Garbled frames** (fuzz-ish: empty, truncated, bit-flipped, alien
//!   opcodes, absurd length prefixes) get a typed `R_MALFORMED` error
//!   frame back — the serving thread must survive every one of them, and
//!   every *healthy* client's run must stay byte-identical (meters) and
//!   pair-identical (local joins) to an uncontended replay.
//! * **Shutdown ordering**: dropping a `ChannelServer` while handles and
//!   connections are still alive must not deadlock (regression for the
//!   join-on-drop deadlock) — and an `EventLoop` dropped with live
//!   connections likewise.
//! * **Dead servers**: a client outliving its server sees
//!   `Response::Unavailable`, never a panic — and the failed exchange
//!   charges **no** meter bytes in either direction (meters record
//!   completed exchanges only).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use adhoc_spatial_joins::prelude::*;
use asj_device::{run_traffic, TrafficConfig};
use asj_geom::SpatialObject;
use asj_net::codec;
use asj_net::{ChannelServer, EventLoop, Link, PacketModel, RawExchange, Request, Response};
use asj_server::{RTreeStore, SpatialService};
use asj_workloads::{default_space, gaussian_clusters, SyntheticSpec};
use bytes::Bytes;

fn clusters(k: usize, n: usize, seed: u64) -> Vec<SpatialObject> {
    gaussian_clusters(&SyntheticSpec::new(default_space(), n, k), seed)
}

fn service(seed: u64) -> Arc<SpatialService<RTreeStore>> {
    Arc::new(SpatialService::new(RTreeStore::new(clusters(4, 300, seed))))
}

/// Deterministic fuzz-ish garbage: empty frames, truncated valid
/// opcodes, alien opcodes, absurd length prefixes, and LCG noise. None
/// of these decode as a request (the two-byte HELLO shape is excluded —
/// that one is *valid* link control, answered with an ACCEPT). Opcode
/// bytes are written literally here; the suite deliberately speaks raw
/// wire bytes, not the codec's vocabulary.
fn garbage_frames() -> Vec<Bytes> {
    let mut frames: Vec<Vec<u8>> = vec![
        vec![],
        vec![0xff],
        vec![0x02],                         // COUNT with no window
        vec![0x01, 1, 2, 3],                // truncated WINDOW
        vec![0x06, 0xff, 0xff, 0xff, 0xff], // MULTI_COUNT claiming 4 G windows
        vec![0x00; 64],
        vec![0x91], // the R_MALFORMED *response* opcode as a request
    ];
    let mut x: u64 = 0x2545_f491_4f6c_dd1d;
    for len in [3usize, 5, 17, 33] {
        let mut f = Vec::with_capacity(len);
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            f.push((x >> 33) as u8);
        }
        // Keep the fuzz out of the one valid 2-byte control frame shape.
        if f.len() == codec::HELLO_BYTES as usize {
            f.push(0);
        }
        frames.push(f);
    }
    frames
        .into_iter()
        .map(|f| Bytes::copy_from_slice(&f))
        .collect()
}

/// The healthy-client script both carriers replay.
fn scripted_requests() -> Vec<Request> {
    (0..20)
        .map(|i| {
            let a = (i * 37 % 97) as f64 / 97.0 * 8000.0;
            let b = (i * 17 % 89) as f64 / 89.0 * 8000.0;
            let w = Rect::from_coords(a, b, a + 1500.0, b + 1500.0);
            match i % 3 {
                0 => Request::Window(w),
                1 => Request::Count(w),
                _ => Request::EpsRange { q: w, eps: 90.0 },
            }
        })
        .collect()
}

/// Channel server: an attacker connection spraying garbage concurrently
/// with healthy clients. Every garbage frame gets the typed error frame;
/// every healthy client's meter equals the uncontended replay; the
/// served count excludes the garbage.
#[test]
fn garbled_frames_leave_healthy_channel_clients_byte_identical() {
    let (server, handle) = ChannelServer::spawn(service(29), "robust");
    let sequence = scripted_requests();
    let run = |carrier: Box<dyn RawExchange>| {
        let link = Link::new(carrier, PacketModel::default(), 1.0);
        let responses: Vec<Response> = sequence.iter().map(|r| link.request(r)).collect();
        (responses, link.meter().snapshot())
    };

    // Uncontended replay: the baseline every healthy client must match.
    let (baseline_responses, baseline_meter) = run(Box::new(handle.connect()));
    assert!(baseline_meter.total_bytes() > 0);

    const HEALTHY: usize = 4;
    let stop = AtomicBool::new(false);
    let results: Vec<_> = std::thread::scope(|scope| {
        let attacker = {
            let conn = handle.connect();
            let stop = &stop;
            scope.spawn(move || {
                let mut sprayed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for g in garbage_frames() {
                        let reply = conn.exchange(g);
                        assert_eq!(
                            reply.as_slice(),
                            codec::malformed_frame().as_slice(),
                            "garbage must get the typed error frame"
                        );
                        sprayed += 1;
                    }
                }
                sprayed
            })
        };
        let healthy: Vec<_> = (0..HEALTHY)
            .map(|_| {
                let conn = handle.connect();
                scope.spawn(move || run(Box::new(conn)))
            })
            .collect();
        let results: Vec<_> = healthy.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        assert!(attacker.join().unwrap() > 0, "attacker must have sprayed");
        results
    });

    for (client, (responses, meter)) in results.iter().enumerate() {
        assert_eq!(
            responses, &baseline_responses,
            "client {client}: answers diverged under garbage contention"
        );
        assert_eq!(
            meter, &baseline_meter,
            "client {client}: wire bytes diverged under garbage contention"
        );
    }
    drop(handle);
    assert_eq!(
        server.join(),
        ((HEALTHY + 1) * sequence.len()) as u64,
        "garbage and handshakes must not count as served queries"
    );
}

/// Event-loop reactor: same contract, plus the per-endpoint gauges. The
/// healthy side here is the traffic harness running real local joins, so
/// "byte-identical" extends to the join pairs themselves.
#[test]
fn garbled_frames_leave_event_loop_joins_pair_identical() {
    let reactor = EventLoop::spawn("robust");
    let endpoint_r = reactor.serve(service(31));
    let endpoint_s = reactor.serve(service(131));
    let space = default_space();
    let cfg = TrafficConfig::new(48, 4, space);
    let connect = |_| {
        (
            Link::new(Box::new(endpoint_r.connect()), PacketModel::default(), 1.0),
            Link::new(Box::new(endpoint_s.connect()), PacketModel::default(), 1.0),
        )
    };

    // Uncontended replay first…
    let baseline = run_traffic(&cfg, connect);
    assert!(baseline.total_pairs() > 0, "non-vacuous workload");
    let malformed_before = endpoint_r.stats().malformed();

    // …then the same traffic with an attacker spraying both endpoints.
    let stop = AtomicBool::new(false);
    let contended = std::thread::scope(|scope| {
        let attacker = {
            let (atk_r, atk_s) = (endpoint_r.connect(), endpoint_s.connect());
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for g in garbage_frames() {
                        assert_eq!(
                            atk_r.exchange(g.clone()).as_slice(),
                            codec::malformed_frame().as_slice()
                        );
                        assert_eq!(
                            atk_s.exchange(g).as_slice(),
                            codec::malformed_frame().as_slice()
                        );
                    }
                }
            })
        };
        let report = run_traffic(&cfg, connect);
        stop.store(true, Ordering::Relaxed);
        attacker.join().unwrap();
        report
    });

    assert_eq!(
        contended.determinism_digest(),
        baseline.determinism_digest(),
        "garbage into the shared reactor perturbed healthy devices"
    );
    assert!(
        endpoint_r.stats().malformed() > malformed_before,
        "the reactor must have seen (and gauged) the garbage"
    );
    assert!(reactor.shutdown() > 0);
}

/// Regression: dropping the server value while handles/connections are
/// still alive used to deadlock the join-on-drop. Now the shutdown
/// sentinel drains queued RPCs and the drop returns.
#[test]
fn dropping_carriers_with_live_clients_never_hangs() {
    // Channel server: handle outlives the server value.
    let (server, handle) = ChannelServer::spawn(service(37), "drop-order");
    let link = Link::new(Box::new(handle.connect()), PacketModel::default(), 1.0);
    assert!(matches!(
        link.request(&Request::Count(default_space())),
        Response::Count(_)
    ));
    drop(server); // must return, not deadlock on the live handle
    assert_eq!(
        link.request(&Request::Count(default_space())),
        Response::Unavailable
    );

    // Event loop: connections outlive the loop value.
    let reactor = EventLoop::spawn("drop-order");
    let endpoint = reactor.serve(service(41));
    let conn = endpoint.connect();
    drop(reactor); // must return, not deadlock on the live connection
    assert!(codec::is_unavailable(
        &conn.exchange(Bytes::from_static(&[0x02]))
    ));
}

/// A client outliving a dead server sees `Unavailable` — and the failed
/// exchange charges no bytes in either direction (meters record
/// completed exchanges only).
#[test]
fn dead_server_yields_unavailable_and_charges_no_bytes() {
    let (server, handle) = ChannelServer::spawn(service(43), "mortal");
    let link = Link::new(Box::new(handle.connect()), PacketModel::default(), 1.0);
    let w = Rect::from_coords(1000.0, 1000.0, 4000.0, 4000.0);
    assert!(matches!(
        link.request(&Request::Window(w)),
        Response::Objects(_)
    ));
    let before = link.meter().snapshot();
    assert!(before.up_bytes > 0 && before.down_bytes > 0);

    drop(handle);
    drop(server);

    for _ in 0..3 {
        assert_eq!(
            link.request(&Request::Window(w)),
            Response::Unavailable,
            "a dead server surfaces as a typed response, never a panic"
        );
    }
    assert_eq!(
        link.meter().snapshot(),
        before,
        "failed exchanges must not move the meter in either direction"
    );
}

/// The traffic harness over a lossy fleet: with a retry budget every
/// device's answers equal the fault-free serial replay; with the budget
/// exhausted the dark devices report typed outcomes (and charge no
/// bytes) while the healthy devices' digests are untouched.
#[test]
fn lossy_traffic_with_retries_matches_fault_free_replay() {
    use asj_net::{FaultLayer, FaultPlan, RetryPolicy};
    let reactor = EventLoop::spawn("lossy");
    let endpoint_r = reactor.serve(service(31));
    let endpoint_s = reactor.serve(service(131));
    let space = default_space();
    let clean = |_device: usize| {
        (
            Link::new(Box::new(endpoint_r.connect()), PacketModel::default(), 1.0),
            Link::new(Box::new(endpoint_s.connect()), PacketModel::default(), 1.0),
        )
    };
    // Fault-free serial replay: the oracle digests.
    let baseline = run_traffic(&TrafficConfig::new(24, 1, space), clean);
    assert!(baseline.total_pairs() > 0, "non-vacuous workload");

    // Lossy links, one seeded plan per device, retry budget 6: the
    // answers (and therefore the local joins) must all be recovered.
    let cfg = TrafficConfig::new(24, 4, space);
    let lossy = |device: usize| {
        let plan = FaultPlan::seeded(device as u64)
            .with_drops(0.3)
            .with_garbles(0.15);
        let faulted = |conn: Box<dyn RawExchange>| -> Box<dyn RawExchange> {
            Box::new(FaultLayer::new(conn, plan))
        };
        (
            Link::new(
                faulted(Box::new(endpoint_r.connect())),
                PacketModel::default(),
                1.0,
            )
            .with_retry(RetryPolicy::attempts(6)),
            Link::new(
                faulted(Box::new(endpoint_s.connect())),
                PacketModel::default(),
                1.0,
            )
            .with_retry(RetryPolicy::attempts(6)),
        )
    };
    let recovered = run_traffic(&cfg, lossy);
    assert_eq!(
        recovered.result_digest(),
        baseline.result_digest(),
        "retries must recover every scripted answer bit-for-bit"
    );
    let (r_sum, s_sum) = recovered.summed_meters();
    assert!(r_sum.retried + s_sum.retried > 0, "the plans must fire");
    assert_eq!(
        r_sum.abandoned + s_sum.abandoned,
        0,
        "budget 6 must suffice at these seeds"
    );

    // Exhausted budget: every fifth device sits behind a totally dark
    // link with no retry budget at all.
    let dark = |device: usize| {
        if device % 5 == 0 {
            let plan = FaultPlan::seeded(device as u64).with_drops(1.0);
            (
                Link::new(
                    Box::new(FaultLayer::new(Box::new(endpoint_r.connect()), plan)),
                    PacketModel::default(),
                    1.0,
                ),
                Link::new(
                    Box::new(FaultLayer::new(Box::new(endpoint_s.connect()), plan)),
                    PacketModel::default(),
                    1.0,
                ),
            )
        } else {
            clean(device)
        }
    };
    let partial = run_traffic(&cfg, dark);
    for (o, b) in partial.outcomes.iter().zip(&baseline.outcomes) {
        if o.device % 5 == 0 {
            assert_eq!(o.pairs, 0, "device {}: dark links join nothing", o.device);
            assert_eq!(
                o.r_meter.total_bytes(),
                0,
                "dropped exchanges must not charge the meter"
            );
            assert_ne!(
                o.digest, b.digest,
                "dark devices decode typed Unavailable, not the real answers"
            );
        } else {
            assert_eq!(
                (o.digest, o.pairs, o.pair_digest),
                (b.digest, b.pairs, b.pair_digest),
                "device {}: a healthy device was perturbed",
                o.device
            );
            assert_eq!(o.r_meter, b.r_meter, "device {}: bytes diverged", o.device);
        }
    }
    // Every dark device decoded the identical all-Unavailable script —
    // the typed outcome is uniform, not device-dependent garbage.
    let dark_digests: Vec<u64> = partial
        .outcomes
        .iter()
        .filter(|o| o.device % 5 == 0)
        .map(|o| o.digest)
        .collect();
    assert!(dark_digests.windows(2).all(|w| w[0] == w[1]));
    assert!(reactor.shutdown() > 0);
}
