//! End-to-end property test: every distributed algorithm equals the
//! brute-force oracle on arbitrary small workloads, buffers and ε —
//! the whole stack (codec, meters, servers, physical operators, cost
//! model, duplicate avoidance) under random fire.

use adhoc_spatial_joins::prelude::*;
use asj_core::DeploymentBuilder;
use asj_geom::sweep::nested_loop_join;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    // f32-representable, inside the 10k space.
    (0i32..=40_000).prop_map(|v| v as f64 * 0.25)
}

fn dataset(max: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((coord(), coord()), 0..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| SpatialObject::point(i as u32, x, y))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_equal_oracle(
        r in dataset(60),
        s in dataset(60),
        eps in 1.0f64..2000.0,
        buffer in 10usize..200,
        bucket in any::<bool>(),
    ) {
        let spec = JoinSpec::distance_join(eps).with_bucket_nlsj(bucket);
        let mut want = nested_loop_join(&r, &s, &spec.predicate);
        want.sort_unstable();

        let space = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
        let dep = DeploymentBuilder::new(r.clone(), s.clone())
            .with_space(space)
            .with_buffer(buffer)
            .cooperative() // lets SemiJoin run too
            .build();
        let algos: Vec<Box<dyn DistributedJoin>> = vec![
            Box::new(GridJoin::new(4)),
            Box::new(MobiJoin),
            Box::new(UpJoin::default()),
            Box::new(SrJoin::default()),
            Box::new(SemiJoin::default()),
        ];
        for algo in algos {
            let rep = algo.run(&dep, &spec).unwrap();
            let mut got = rep.pairs.clone();
            got.sort_unstable();
            prop_assert_eq!(
                &got, &want,
                "{} diverged (eps={}, buffer={}, bucket={})",
                algo.name(), eps, buffer, bucket
            );
            // SemiJoin does the join server-side, exempt from the device
            // buffer; everyone else must respect it.
            if rep.algorithm != "semijoin" {
                prop_assert!(rep.peak_buffer <= buffer);
            }
        }
    }
}
