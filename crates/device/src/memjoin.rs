//! In-memory join kernels used by the physical operators.
//!
//! Two kernels compute the same result:
//!
//! * [`sweep_join_into`] — a single plane sweep; right choice for
//!   buffer-sized inputs (≤ a few thousand objects).
//! * [`grid_hash_join`] — PBSM-style [13]: hash both inputs into a regular
//!   in-memory grid (objects replicated into every cell their ε-extended
//!   MBR touches), then sweep cell by cell. This is the literal
//!   "Hash-Based Spatial Join" of the paper's `c1` operator; it wins on
//!   large inputs because cells cut the candidate cross-product.
//!
//! Both apply the *global* reference-point filter against `(report_cell,
//! space)` so the caller's partition discipline (exactly-once reporting
//! across windows) extends seamlessly into the in-memory subdivision.

use asj_geom::grid::owns_reference_point;
use asj_geom::{pair_reference_point, plane_sweep_pairs, Grid, JoinPredicate, Rect, SpatialObject};

use crate::collect::ResultCollector;

/// Plane-sweep join of `r × s`, reporting into `out` only the pairs whose
/// reference point lies in `report_cell` (w.r.t. the global `space`).
pub fn sweep_join_into(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    report_cell: &Rect,
    space: &Rect,
    out: &mut ResultCollector,
) {
    plane_sweep_pairs(r, s, pred, |a, b| {
        if let Some(p) = pair_reference_point(a, b, pred) {
            if owns_reference_point(report_cell, space, &p) {
                out.push(a.id, b.id);
            }
        }
    });
}

/// PBSM-style grid-hash join over `report_cell`.
///
/// `g × g` cells are derived from the input size so each cell sees a few
/// dozen objects. Objects are replicated into every cell their ε/2-extended
/// MBR intersects; the reference-point filter (applied per cell, against
/// the *cell* rectangle clipped into `report_cell`) guarantees exactly-once
/// output despite replication.
pub fn grid_hash_join(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    report_cell: &Rect,
    space: &Rect,
    out: &mut ResultCollector,
) {
    if r.is_empty() || s.is_empty() {
        return;
    }
    let n = r.len() + s.len();
    // ~32 objects per cell; clamp to a sane grid.
    let g = (((n as f64) / 32.0).sqrt().ceil() as u32).clamp(1, 256);
    if g == 1 || report_cell.area() == 0.0 {
        sweep_join_into(r, s, pred, report_cell, space, out);
        return;
    }
    let grid = Grid::square(*report_cell, g);
    // Replication radius: the reference point (midpoint of centers) of a
    // qualifying pair is within ε/2 + max-half-diagonal of each member's
    // MBR — computed exactly from the inputs at hand (0 for points).
    let max_half = r
        .iter()
        .chain(s.iter())
        .map(|o| (o.mbr.width().hypot(o.mbr.height())) * 0.5)
        .fold(0.0f64, f64::max);
    let ext = pred.window_extension() + max_half;
    let cells = grid.len();
    let mut r_buckets: Vec<Vec<SpatialObject>> = vec![Vec::new(); cells];
    let mut s_buckets: Vec<Vec<SpatialObject>> = vec![Vec::new(); cells];

    let hash = |objs: &[SpatialObject], buckets: &mut Vec<Vec<SpatialObject>>| {
        for o in objs {
            let probe = o.mbr.expand(ext);
            for (idx, cell) in grid.cells().enumerate() {
                if cell.intersects(&probe) {
                    buckets[idx].push(*o);
                }
            }
        }
    };
    hash(r, &mut r_buckets);
    hash(s, &mut s_buckets);

    for (idx, cell) in grid.cells().enumerate() {
        let (rb, sb) = (&r_buckets[idx], &s_buckets[idx]);
        if rb.is_empty() || sb.is_empty() {
            continue;
        }
        // The cell must own the reference point *and* so must the caller's
        // report_cell — cells tile report_cell, so owning w.r.t. the cell
        // within `space` composes both conditions.
        sweep_join_into(rb, sb, pred, &cell, space, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::sweep::nested_loop_join;

    fn pt(id: u32, x: f64, y: f64) -> SpatialObject {
        SpatialObject::point(id, x, y)
    }

    /// Deterministic pseudo-random points in [0, 100)².
    fn cloud(n: u32, seed: u64, id_base: u32) -> Vec<SpatialObject> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) * 100.0
        };
        (0..n).map(|i| pt(id_base + i, next(), next())).collect()
    }

    fn ground_truth(
        r: &[SpatialObject],
        s: &[SpatialObject],
        pred: &JoinPredicate,
    ) -> Vec<(u32, u32)> {
        let mut v = nested_loop_join(r, s, pred);
        v.sort_unstable();
        v
    }

    #[test]
    fn sweep_join_filters_by_cell() {
        let space = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let pred = JoinPredicate::WithinDistance(2.0);
        let r = vec![pt(1, 4.0, 5.0)];
        let s = vec![pt(2, 5.0, 5.0)]; // midpoint (4.5, 5.0) → left half
        let left = Rect::from_coords(0.0, 0.0, 5.0, 10.0);
        let right = Rect::from_coords(5.0, 0.0, 10.0, 10.0);

        let mut c = ResultCollector::new();
        sweep_join_into(&r, &s, &pred, &left, &space, &mut c);
        assert_eq!(c.len(), 1);

        let mut c = ResultCollector::new();
        sweep_join_into(&r, &s, &pred, &right, &space, &mut c);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn grid_hash_matches_ground_truth() {
        let space = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let r = cloud(300, 7, 0);
        let s = cloud(400, 13, 10_000);
        for eps in [0.5, 2.0, 8.0] {
            let pred = JoinPredicate::WithinDistance(eps);
            let mut c = ResultCollector::new();
            grid_hash_join(&r, &s, &pred, &space, &space, &mut c);
            let mut got = c.into_pairs();
            got.sort_unstable();
            assert_eq!(got, ground_truth(&r, &s, &pred), "eps={eps}");
        }
    }

    #[test]
    fn grid_hash_intersection_join_on_mbrs() {
        let space = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        // Overlapping boxes scattered deterministically.
        let mk = |id: u32, x: f64, y: f64, w: f64| {
            SpatialObject::new(id, Rect::from_coords(x, y, x + w, y + w))
        };
        let mut r = Vec::new();
        let mut s = Vec::new();
        for i in 0..120u32 {
            let f = i as f64;
            r.push(mk(i, (f * 13.7) % 90.0, (f * 7.3) % 90.0, 3.0));
            s.push(mk(i + 1000, (f * 11.1) % 90.0, (f * 5.9) % 90.0, 4.0));
        }
        let pred = JoinPredicate::Intersects;
        let mut c = ResultCollector::new();
        grid_hash_join(&r, &s, &pred, &space, &space, &mut c);
        let mut got = c.into_pairs();
        got.sort_unstable();
        assert_eq!(got, ground_truth(&r, &s, &pred));
    }

    #[test]
    fn partitioned_reporting_is_exactly_once() {
        // Join the same data once over the whole space and once per
        // quadrant; totals must agree (no dups, no losses at seams).
        let space = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let r = cloud(200, 3, 0);
        let s = cloud(200, 5, 10_000);
        let pred = JoinPredicate::WithinDistance(4.0);

        let mut whole = ResultCollector::new();
        grid_hash_join(&r, &s, &pred, &space, &space, &mut whole);
        let mut want = whole.into_pairs();
        want.sort_unstable();

        let mut per_quadrant = ResultCollector::new();
        for q in space.quadrants() {
            // Simulate window downloads: only objects near the quadrant.
            let ext = pred.window_extension();
            let rq: Vec<_> = r
                .iter()
                .filter(|o| o.mbr.expand(ext).intersects(&q))
                .copied()
                .collect();
            let sq: Vec<_> = s
                .iter()
                .filter(|o| o.mbr.expand(ext).intersects(&q))
                .copied()
                .collect();
            grid_hash_join(&rq, &sq, &pred, &q, &space, &mut per_quadrant);
        }
        let mut got = per_quadrant.into_pairs();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_inputs_no_output() {
        let space = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let mut c = ResultCollector::new();
        grid_hash_join(
            &[],
            &[pt(1, 1.0, 1.0)],
            &JoinPredicate::Intersects,
            &space,
            &space,
            &mut c,
        );
        assert!(c.is_empty());
    }
}
