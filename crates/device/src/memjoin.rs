//! In-memory join kernels used by the physical operators.
//!
//! Two kernels compute the same result:
//!
//! * [`sweep_join_into`] — a single plane sweep; right choice for
//!   buffer-sized inputs (≤ a few thousand objects).
//! * [`grid_hash_join`] — PBSM-style [13]: hash both inputs into a regular
//!   in-memory grid (objects replicated into every cell their ε-extended
//!   MBR touches), then sweep cell by cell. This is the literal
//!   "Hash-Based Spatial Join" of the paper's `c1` operator; it wins on
//!   large inputs because cells cut the candidate cross-product.
//!
//! Both apply the *global* reference-point filter against `(report_cell,
//! space)` so the caller's partition discipline (exactly-once reporting
//! across windows) extends seamlessly into the in-memory subdivision.

use asj_geom::grid::owns_reference_point;
use asj_geom::{
    pair_reference_point, plane_sweep_filtered_parallel, plane_sweep_pairs, Grid, JoinPredicate,
    Rect, SpatialObject,
};

use crate::collect::ResultCollector;

/// Input size (|R| + |S|) below which the parallel kernels fall back to the
/// serial sweep: thread spawn overhead exceeds the win on small windows.
pub const PARALLEL_JOIN_THRESHOLD: usize = 4096;

/// The exactly-once discipline of every kernel in this module: a pair
/// counts for `report_cell` iff its reference point falls in the cell
/// (w.r.t. the global `space`). One definition shared by the serial and
/// parallel branches — it must never fork, or parallel output would
/// diverge from serial only above the threshold.
#[inline]
fn owns_pair(
    pred: &JoinPredicate,
    report_cell: &Rect,
    space: &Rect,
    a: &SpatialObject,
    b: &SpatialObject,
) -> bool {
    pair_reference_point(a, b, pred).is_some_and(|p| owns_reference_point(report_cell, space, &p))
}

/// Plane-sweep join of `r × s`, reporting into `out` only the pairs whose
/// reference point lies in `report_cell` (w.r.t. the global `space`).
pub fn sweep_join_into(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    report_cell: &Rect,
    space: &Rect,
    out: &mut ResultCollector,
) {
    sweep_join_into_with_workers(r, s, pred, report_cell, space, 1, out);
}

/// [`sweep_join_into`] with a worker-count knob: inputs at or above
/// [`PARALLEL_JOIN_THRESHOLD`] run the partitioned parallel sweep on
/// `workers` scoped threads. Output is identical (same pairs, same order)
/// at every worker count — the reference-point filter is pure, so it moves
/// onto the workers unchanged.
pub fn sweep_join_into_with_workers(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    report_cell: &Rect,
    space: &Rect,
    workers: usize,
    out: &mut ResultCollector,
) {
    let owns = |a: &SpatialObject, b: &SpatialObject| owns_pair(pred, report_cell, space, a, b);
    if workers > 1 && r.len() + s.len() >= PARALLEL_JOIN_THRESHOLD {
        for (a, b) in plane_sweep_filtered_parallel(r, s, pred, workers, owns) {
            out.push(a, b);
        }
    } else {
        plane_sweep_pairs(r, s, pred, |a, b| {
            if owns(a, b) {
                out.push(a.id, b.id);
            }
        });
    }
}

/// PBSM-style grid-hash join over `report_cell`.
///
/// `g × g` cells are derived from the input size so each cell sees a few
/// dozen objects. Objects are replicated into every cell their ε/2-extended
/// MBR intersects; the reference-point filter (applied per cell, against
/// the *cell* rectangle clipped into `report_cell`) guarantees exactly-once
/// output despite replication.
pub fn grid_hash_join(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    report_cell: &Rect,
    space: &Rect,
    out: &mut ResultCollector,
) {
    grid_hash_join_with_workers(r, s, pred, report_cell, space, 1, out);
}

/// [`grid_hash_join`] with a worker-count knob: at or above
/// [`PARALLEL_JOIN_THRESHOLD`] the per-cell sweeps fan out over `workers`
/// scoped threads (contiguous cell ranges per worker; per-cell outputs are
/// appended in cell order), so the result is identical — same pairs, same
/// order — at every worker count.
pub fn grid_hash_join_with_workers(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    report_cell: &Rect,
    space: &Rect,
    workers: usize,
    out: &mut ResultCollector,
) {
    if r.is_empty() || s.is_empty() {
        return;
    }
    let n = r.len() + s.len();
    // ~32 objects per cell; clamp to a sane grid.
    let g = (((n as f64) / 32.0).sqrt().ceil() as u32).clamp(1, 256);
    if g == 1 || report_cell.area() == 0.0 {
        sweep_join_into_with_workers(r, s, pred, report_cell, space, workers, out);
        return;
    }
    let grid = Grid::square(*report_cell, g);
    // Replication radius: the reference point (midpoint of centers) of a
    // qualifying pair is within ε/2 + max-half-diagonal of each member's
    // MBR — computed exactly from the inputs at hand (0 for points).
    let max_half = r
        .iter()
        .chain(s.iter())
        .map(|o| (o.mbr.width().hypot(o.mbr.height())) * 0.5)
        .fold(0.0f64, f64::max);
    let ext = pred.window_extension() + max_half;
    let cells = grid.len();
    let mut r_buckets: Vec<Vec<SpatialObject>> = vec![Vec::new(); cells];
    let mut s_buckets: Vec<Vec<SpatialObject>> = vec![Vec::new(); cells];

    // Hash via `Grid::covering` index ranges — O(covered cells) per object
    // instead of scanning all g² cells, the same range-insert build the
    // grid *store* uses. The per-cell intersection re-check keeps bucket
    // contents (and order) identical to a full scan, which the
    // `covering_hash_matches_full_scan` test pins.
    let hash = |objs: &[SpatialObject], buckets: &mut Vec<Vec<SpatialObject>>| {
        for o in objs {
            let probe = o.mbr.expand(ext);
            let Some((is, js)) = grid.covering(&probe) else {
                continue;
            };
            for j in js {
                for i in is.clone() {
                    if grid.cell(i, j).intersects(&probe) {
                        buckets[(j as usize) * g as usize + i as usize].push(*o);
                    }
                }
            }
        }
    };
    hash(r, &mut r_buckets);
    hash(s, &mut s_buckets);

    // The cell must own the reference point *and* so must the caller's
    // report_cell — cells tile report_cell, so owning w.r.t. the cell
    // within `space` composes both conditions.
    let live: Vec<(usize, Rect)> = grid
        .cells()
        .enumerate()
        .filter(|(idx, _)| !r_buckets[*idx].is_empty() && !s_buckets[*idx].is_empty())
        .collect();
    if workers > 1 && n >= PARALLEL_JOIN_THRESHOLD && live.len() > 1 {
        // Fan contiguous cell ranges across scoped threads; each worker
        // collects its cells' pairs locally (cell sweeps are serial — the
        // buckets are small by construction) and the main thread reports
        // them in cell order, so the output matches the serial loop
        // exactly and the collector's exactly-once discipline is kept.
        let workers = workers.min(live.len());
        let chunk = live.len().div_ceil(workers);
        let (r_buckets, s_buckets) = (&r_buckets, &s_buckets);
        let parts: Vec<Vec<(u32, u32)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = live
                .chunks(chunk)
                .map(|cells| {
                    scope.spawn(move |_| {
                        let mut pairs = Vec::new();
                        for &(idx, cell) in cells {
                            plane_sweep_pairs(&r_buckets[idx], &s_buckets[idx], pred, |a, b| {
                                if owns_pair(pred, &cell, space, a, b) {
                                    pairs.push((a.id, b.id));
                                }
                            });
                        }
                        pairs
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cell-join worker panicked"))
                .collect()
        })
        .expect("cell-join scope panicked");
        for (a, b) in parts.into_iter().flatten() {
            out.push(a, b);
        }
    } else {
        for &(idx, cell) in &live {
            sweep_join_into(&r_buckets[idx], &s_buckets[idx], pred, &cell, space, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::sweep::nested_loop_join;

    fn pt(id: u32, x: f64, y: f64) -> SpatialObject {
        SpatialObject::point(id, x, y)
    }

    /// Deterministic pseudo-random points in [0, 100)².
    fn cloud(n: u32, seed: u64, id_base: u32) -> Vec<SpatialObject> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) * 100.0
        };
        (0..n).map(|i| pt(id_base + i, next(), next())).collect()
    }

    fn ground_truth(
        r: &[SpatialObject],
        s: &[SpatialObject],
        pred: &JoinPredicate,
    ) -> Vec<(u32, u32)> {
        let mut v = nested_loop_join(r, s, pred);
        v.sort_unstable();
        v
    }

    #[test]
    fn sweep_join_filters_by_cell() {
        let space = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let pred = JoinPredicate::WithinDistance(2.0);
        let r = vec![pt(1, 4.0, 5.0)];
        let s = vec![pt(2, 5.0, 5.0)]; // midpoint (4.5, 5.0) → left half
        let left = Rect::from_coords(0.0, 0.0, 5.0, 10.0);
        let right = Rect::from_coords(5.0, 0.0, 10.0, 10.0);

        let mut c = ResultCollector::new();
        sweep_join_into(&r, &s, &pred, &left, &space, &mut c);
        assert_eq!(c.len(), 1);

        let mut c = ResultCollector::new();
        sweep_join_into(&r, &s, &pred, &right, &space, &mut c);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn grid_hash_matches_ground_truth() {
        let space = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let r = cloud(300, 7, 0);
        let s = cloud(400, 13, 10_000);
        for eps in [0.5, 2.0, 8.0] {
            let pred = JoinPredicate::WithinDistance(eps);
            let mut c = ResultCollector::new();
            grid_hash_join(&r, &s, &pred, &space, &space, &mut c);
            let mut got = c.into_pairs();
            got.sort_unstable();
            assert_eq!(got, ground_truth(&r, &s, &pred), "eps={eps}");
        }
    }

    #[test]
    fn grid_hash_intersection_join_on_mbrs() {
        let space = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        // Overlapping boxes scattered deterministically.
        let mk = |id: u32, x: f64, y: f64, w: f64| {
            SpatialObject::new(id, Rect::from_coords(x, y, x + w, y + w))
        };
        let mut r = Vec::new();
        let mut s = Vec::new();
        for i in 0..120u32 {
            let f = i as f64;
            r.push(mk(i, (f * 13.7) % 90.0, (f * 7.3) % 90.0, 3.0));
            s.push(mk(i + 1000, (f * 11.1) % 90.0, (f * 5.9) % 90.0, 4.0));
        }
        let pred = JoinPredicate::Intersects;
        let mut c = ResultCollector::new();
        grid_hash_join(&r, &s, &pred, &space, &space, &mut c);
        let mut got = c.into_pairs();
        got.sort_unstable();
        assert_eq!(got, ground_truth(&r, &s, &pred));
    }

    #[test]
    fn partitioned_reporting_is_exactly_once() {
        // Join the same data once over the whole space and once per
        // quadrant; totals must agree (no dups, no losses at seams).
        let space = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let r = cloud(200, 3, 0);
        let s = cloud(200, 5, 10_000);
        let pred = JoinPredicate::WithinDistance(4.0);

        let mut whole = ResultCollector::new();
        grid_hash_join(&r, &s, &pred, &space, &space, &mut whole);
        let mut want = whole.into_pairs();
        want.sort_unstable();

        let mut per_quadrant = ResultCollector::new();
        for q in space.quadrants() {
            // Simulate window downloads: only objects near the quadrant.
            let ext = pred.window_extension();
            let rq: Vec<_> = r
                .iter()
                .filter(|o| o.mbr.expand(ext).intersects(&q))
                .copied()
                .collect();
            let sq: Vec<_> = s
                .iter()
                .filter(|o| o.mbr.expand(ext).intersects(&q))
                .copied()
                .collect();
            grid_hash_join(&rq, &sq, &pred, &q, &space, &mut per_quadrant);
        }
        let mut got = per_quadrant.into_pairs();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn covering_hash_matches_full_scan() {
        // The range-insert hash must fill every bucket with exactly the
        // objects (in the same order) the old full-cell scan produced.
        let cell = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let grid = Grid::square(cell, 9);
        let objs = {
            let mut v = cloud(400, 11, 0);
            v.push(SpatialObject::new(
                9_000,
                Rect::from_coords(-5.0, 40.0, 120.0, 44.0), // spans a row, pokes outside
            ));
            v.push(SpatialObject::new(
                9_001,
                Rect::from_coords(200.0, 200.0, 210.0, 210.0),
            ));
            v
        };
        let ext = 3.0;
        let mut fast: Vec<Vec<SpatialObject>> = vec![Vec::new(); grid.len()];
        for o in &objs {
            let probe = o.mbr.expand(ext);
            let Some((is, js)) = grid.covering(&probe) else {
                continue;
            };
            for j in js {
                for i in is.clone() {
                    if grid.cell(i, j).intersects(&probe) {
                        fast[(j as usize) * 9 + i as usize].push(*o);
                    }
                }
            }
        }
        let mut slow: Vec<Vec<SpatialObject>> = vec![Vec::new(); grid.len()];
        for o in &objs {
            let probe = o.mbr.expand(ext);
            for (idx, c) in grid.cells().enumerate() {
                if c.intersects(&probe) {
                    slow[idx].push(*o);
                }
            }
        }
        assert_eq!(fast, slow);
        assert!(fast.iter().any(|b| !b.is_empty()));
    }

    #[test]
    fn workers_do_not_change_output_above_threshold() {
        // 5 200 objects clears PARALLEL_JOIN_THRESHOLD, so workers > 1
        // really engage the partitioned kernels; output must be identical
        // — same pairs, same order — to the serial run for both the
        // direct sweep and the celled grid-hash path.
        let space = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let r = cloud(2600, 17, 0);
        let s = cloud(2600, 29, 100_000);
        assert!(r.len() + s.len() >= PARALLEL_JOIN_THRESHOLD);
        let pred = JoinPredicate::WithinDistance(0.8);

        let mut serial = ResultCollector::new();
        grid_hash_join(&r, &s, &pred, &space, &space, &mut serial);
        let serial = serial.into_pairs();
        assert!(!serial.is_empty(), "non-vacuous");
        for workers in [2, 4, 9] {
            let mut par = ResultCollector::new();
            grid_hash_join_with_workers(&r, &s, &pred, &space, &space, workers, &mut par);
            assert_eq!(par.into_pairs(), serial, "grid-hash, workers={workers}");

            let mut sweep_serial = ResultCollector::new();
            sweep_join_into(&r, &s, &pred, &space, &space, &mut sweep_serial);
            let mut sweep_par = ResultCollector::new();
            sweep_join_into_with_workers(&r, &s, &pred, &space, &space, workers, &mut sweep_par);
            assert_eq!(
                sweep_par.into_pairs(),
                sweep_serial.into_pairs(),
                "direct sweep, workers={workers}"
            );
        }
    }

    #[test]
    fn workers_knob_is_inert_below_threshold() {
        // Small inputs fall back to the serial kernel; the knob must be a
        // no-op on both output and the exactly-once discipline.
        let space = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let r = cloud(120, 3, 0);
        let s = cloud(120, 5, 10_000);
        let pred = JoinPredicate::WithinDistance(4.0);
        let mut a = ResultCollector::new();
        grid_hash_join(&r, &s, &pred, &space, &space, &mut a);
        let mut b = ResultCollector::new();
        grid_hash_join_with_workers(&r, &s, &pred, &space, &space, 8, &mut b);
        assert_eq!(a.into_pairs(), b.into_pairs());
    }

    #[test]
    fn empty_inputs_no_output() {
        let space = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let mut c = ResultCollector::new();
        grid_hash_join(
            &[],
            &[pt(1, 1.0, 1.0)],
            &JoinPredicate::Intersects,
            &space,
            &space,
            &mut c,
        );
        assert!(c.is_empty());
    }
}
