//! The device's bounded join buffer.

use std::cell::Cell;

/// Error returned when a reservation would overflow the device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferExceeded {
    pub requested: usize,
    pub capacity: usize,
}

impl std::fmt::Display for BufferExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device buffer exceeded: requested {} objects, capacity {}",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for BufferExceeded {}

/// A bounded buffer measured in objects, like the paper's "PDA's buffer
/// size was set to 800 points".
///
/// The device is single-threaded (it is a PDA), so interior mutability via
/// `Cell` suffices; the type is deliberately `!Sync`.
#[derive(Debug)]
pub struct DeviceBuffer {
    capacity: usize,
    in_use: Cell<usize>,
    peak: Cell<usize>,
}

impl DeviceBuffer {
    /// Creates a buffer holding at most `capacity` objects.
    pub fn new(capacity: usize) -> Self {
        DeviceBuffer {
            capacity,
            in_use: Cell::new(0),
            peak: Cell::new(0),
        }
    }

    /// Total capacity in objects.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Objects currently held.
    pub fn in_use(&self) -> usize {
        self.in_use.get()
    }

    /// Highest occupancy ever observed — lets tests assert the memory
    /// constraint was honored end-to-end.
    pub fn peak(&self) -> usize {
        self.peak.get()
    }

    /// `true` when `n` more objects would fit right now.
    pub fn fits(&self, n: usize) -> bool {
        self.in_use.get() + n <= self.capacity
    }

    /// Reserves room for `n` objects.
    pub fn reserve(&self, n: usize) -> Result<Reservation<'_>, BufferExceeded> {
        let new = self.in_use.get() + n;
        if new > self.capacity {
            return Err(BufferExceeded {
                requested: n,
                capacity: self.capacity,
            });
        }
        self.in_use.set(new);
        if new > self.peak.get() {
            self.peak.set(new);
        }
        Ok(Reservation { buffer: self, n })
    }
}

/// RAII guard for reserved buffer space; dropping releases it.
#[derive(Debug)]
pub struct Reservation<'a> {
    buffer: &'a DeviceBuffer,
    n: usize,
}

impl Reservation<'_> {
    /// Number of objects reserved.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the reservation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.buffer.in_use.set(self.buffer.in_use.get() - self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let buf = DeviceBuffer::new(10);
        {
            let r = buf.reserve(6).unwrap();
            assert_eq!(r.len(), 6);
            assert_eq!(buf.in_use(), 6);
            assert!(buf.fits(4));
            assert!(!buf.fits(5));
        }
        assert_eq!(buf.in_use(), 0);
        assert_eq!(buf.peak(), 6);
    }

    #[test]
    fn overflow_rejected() {
        let buf = DeviceBuffer::new(5);
        let _a = buf.reserve(3).unwrap();
        let err = buf.reserve(3).unwrap_err();
        assert_eq!(err.requested, 3);
        assert_eq!(err.capacity, 5);
        assert_eq!(buf.in_use(), 3, "failed reserve must not leak");
    }

    #[test]
    fn nested_reservations_track_peak() {
        let buf = DeviceBuffer::new(100);
        let _a = buf.reserve(40).unwrap();
        {
            let _b = buf.reserve(50).unwrap();
            assert_eq!(buf.in_use(), 90);
        }
        assert_eq!(buf.in_use(), 40);
        let _c = buf.reserve(10).unwrap();
        assert_eq!(buf.peak(), 90);
    }

    #[test]
    fn zero_capacity_rejects_everything_but_empty() {
        let buf = DeviceBuffer::new(0);
        assert!(buf.reserve(0).is_ok());
        assert!(buf.reserve(1).is_err());
    }

    #[test]
    fn error_displays() {
        let e = BufferExceeded {
            requested: 7,
            capacity: 5,
        };
        assert!(e.to_string().contains("requested 7"));
    }
}
