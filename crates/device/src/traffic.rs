//! Many-device traffic harness: N scripted devices over a shared carrier.
//!
//! The paper's deployment is *many* resource-constrained devices querying
//! shared spatial servers; `tests/concurrent.rs` seeded that axis with a
//! handful of client threads. This module scales it to thousands of
//! simulated devices without a thread per device: devices are
//! deterministic request scripts, executed by a small **worker pool**
//! (each worker runs one device to completion, then pulls the next), and
//! the server side is whatever carrier the caller's `connect` factory
//! wires up — the event-loop reactor for the scaling benchmarks, threaded
//! or in-process deployments for differential replays.
//!
//! Determinism is the whole point: a device's script depends only on its
//! index, every request is issued in script order on that device's own
//! links, and the servers are immutable during a run. So a run with any
//! worker count must produce, per device, **identical** response digests,
//! join pairs, and meter snapshots to a serial replay (`workers = 1`) —
//! the [`TrafficReport::determinism_digest`] folds all of that (and
//! nothing wall-clock-dependent) into one comparable number. Latencies
//! are collected alongside for the scaling benchmarks' p50/p95/p99 and
//! fairness columns, and deliberately excluded from the digest.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use asj_geom::{Rect, SpatialObject};
use asj_net::{Link, LinkSnapshot, Request, Response};

/// Shape of one traffic run.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Simulated device count.
    pub devices: usize,
    /// Scripted rounds per device (each round issues a COUNT and two
    /// WINDOW downloads and joins the windows locally).
    pub steps: usize,
    /// Worker threads executing devices. `1` is the serial replay every
    /// other worker count must match exactly.
    pub workers: usize,
    /// The data space device windows are scripted inside.
    pub space: Rect,
    /// Join distance for the local window join.
    pub eps: f64,
}

impl TrafficConfig {
    /// A config over `space` with harness defaults (4 steps, ε = 2 % of
    /// the space width).
    pub fn new(devices: usize, workers: usize, space: Rect) -> Self {
        TrafficConfig {
            devices,
            steps: 4,
            workers,
            space,
            eps: (space.max.x - space.min.x) * 0.02,
        }
    }
}

/// What one device produced. Everything except `latencies_us` is
/// deterministic in (device index, deployment).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceOutcome {
    /// Device index.
    pub device: usize,
    /// Order-sensitive FNV-1a digest over every decoded response.
    pub digest: u64,
    /// Qualifying `(r_id, s_id)` pairs found by the local window joins.
    pub pairs: u64,
    /// FNV-1a digest over the sorted pair list.
    pub pair_digest: u64,
    /// Final meter snapshot of the device's R link.
    pub r_meter: LinkSnapshot,
    /// Final meter snapshot of the device's S link.
    pub s_meter: LinkSnapshot,
    /// Wall-clock per request, in issue order. Excluded from all
    /// determinism digests.
    pub latencies_us: Vec<u64>,
}

/// All devices' outcomes plus the aggregate views the benchmarks report.
#[derive(Debug)]
pub struct TrafficReport {
    /// Outcomes indexed by device.
    pub outcomes: Vec<DeviceOutcome>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// The deterministic window script: device `i`, round `k`, side salt
/// `s`. Same arithmetic family as `tests/concurrent.rs`, spread over the
/// device index so 1000 devices exercise 1000 distinct-but-reproducible
/// query mixes.
fn scripted_window(space: Rect, i: usize, k: usize, s: usize) -> Rect {
    let span_x = space.max.x - space.min.x;
    let span_y = space.max.y - space.min.y;
    let u = ((i * 37 + k * 61 + s * 17) % 97) as f64 / 97.0;
    let v = ((i * 53 + k * 29 + s * 41) % 89) as f64 / 89.0;
    let w = 0.05 + ((i * 13 + k * 7) % 11) as f64 / 11.0 * 0.15;
    let x0 = space.min.x + u * span_x * (1.0 - w);
    let y0 = space.min.y + v * span_y * (1.0 - w);
    Rect::from_coords(x0, y0, x0 + w * span_x, y0 + w * span_y)
}

/// Plane-pair scan over two downloaded windows: every `(r, s)` pair
/// within `eps`, deduplicated by id pair. Buffer-sized inputs, so the
/// quadratic scan is exact and cheap.
fn window_pairs(r: &[SpatialObject], s: &[SpatialObject], eps: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for a in r {
        for b in s {
            if a.mbr.within_distance(&b.mbr, eps) {
                out.push((a.id, b.id));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn digest_response(hash: &mut u64, resp: &Response) {
    // `Debug` is stable for a fixed build and covers every field,
    // exact-f32 escapes included — cheap and sufficient for comparing
    // runs of the same binary.
    fnv1a(hash, format!("{resp:?}").as_bytes());
}

/// Runs one device's script over fresh links from `connect`.
fn run_device(cfg: &TrafficConfig, device: usize, links: (Link, Link)) -> DeviceOutcome {
    let (r_link, s_link) = links;
    let mut digest = FNV_OFFSET;
    let mut all_pairs: Vec<(u32, u32)> = Vec::new();
    let mut latencies_us = Vec::with_capacity(cfg.steps * 3);
    let timed = |link: &Link, req: &Request, lat: &mut Vec<u64>| -> Response {
        let t0 = Instant::now();
        let resp = link.request(req);
        lat.push(t0.elapsed().as_micros() as u64);
        resp
    };
    for k in 0..cfg.steps {
        let stat_w = scripted_window(cfg.space, device, k, 0);
        let join_w = scripted_window(cfg.space, device, k, 1);
        let count = timed(&r_link, &Request::Count(stat_w), &mut latencies_us);
        digest_response(&mut digest, &count);
        let r_objs = timed(&r_link, &Request::Window(join_w), &mut latencies_us);
        digest_response(&mut digest, &r_objs);
        let s_objs = timed(&s_link, &Request::Window(join_w), &mut latencies_us);
        digest_response(&mut digest, &s_objs);
        if let (Response::Objects(r), Response::Objects(s)) = (&r_objs, &s_objs) {
            all_pairs.extend(window_pairs(r, s, cfg.eps));
        }
    }
    all_pairs.sort_unstable();
    all_pairs.dedup();
    let mut pair_digest = FNV_OFFSET;
    for (a, b) in &all_pairs {
        fnv1a(&mut pair_digest, &a.to_be_bytes());
        fnv1a(&mut pair_digest, &b.to_be_bytes());
    }
    DeviceOutcome {
        device,
        digest,
        pairs: all_pairs.len() as u64,
        pair_digest,
        r_meter: r_link.meter().snapshot(),
        s_meter: s_link.meter().snapshot(),
        latencies_us,
    }
}

/// Drives `cfg.devices` scripted devices through the pool of
/// `cfg.workers` threads. `connect` maps a device index to its fresh
/// `(R, S)` links — typically `|_| deployment.connect()` — and may be
/// called concurrently from the workers.
pub fn run_traffic<F>(cfg: &TrafficConfig, connect: F) -> TrafficReport
where
    F: Fn(usize) -> (Link, Link) + Sync,
{
    assert!(cfg.workers >= 1, "need at least one worker");
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<Option<DeviceOutcome>>> = Mutex::new(vec![None; cfg.devices]);
    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.min(cfg.devices.max(1)) {
            scope.spawn(|| loop {
                let device = next.fetch_add(1, Ordering::Relaxed);
                if device >= cfg.devices {
                    break;
                }
                let outcome = run_device(cfg, device, connect(device));
                outcomes.lock().expect("outcome lock")[device] = Some(outcome);
            });
        }
    });
    let outcomes = outcomes
        .into_inner()
        .expect("outcome lock")
        .into_iter()
        .map(|o| o.expect("every device completes"))
        .collect();
    TrafficReport { outcomes }
}

impl TrafficReport {
    /// One number covering every deterministic field of every device:
    /// response digests, pair digests and counts, and both meter
    /// snapshots. Two runs over the same deployment agree iff this
    /// agrees (latencies are excluded by construction).
    pub fn determinism_digest(&self) -> u64 {
        let mut hash = FNV_OFFSET;
        for o in &self.outcomes {
            fnv1a(&mut hash, &(o.device as u64).to_be_bytes());
            fnv1a(&mut hash, &o.digest.to_be_bytes());
            fnv1a(&mut hash, &o.pairs.to_be_bytes());
            fnv1a(&mut hash, &o.pair_digest.to_be_bytes());
            fnv1a(
                &mut hash,
                format!("{:?}{:?}", o.r_meter, o.s_meter).as_bytes(),
            );
        }
        hash
    }

    /// Like [`determinism_digest`](Self::determinism_digest) but over the
    /// query *answers* only (response digests, pair counts and digests),
    /// excluding meter snapshots. This is the identity a **shared**
    /// client cache can still guarantee: which device warms the cache —
    /// and therefore who pays the miss bytes — depends on scheduling, but
    /// the answers every device decodes must not.
    pub fn result_digest(&self) -> u64 {
        let mut hash = FNV_OFFSET;
        for o in &self.outcomes {
            fnv1a(&mut hash, &(o.device as u64).to_be_bytes());
            fnv1a(&mut hash, &o.digest.to_be_bytes());
            fnv1a(&mut hash, &o.pairs.to_be_bytes());
            fnv1a(&mut hash, &o.pair_digest.to_be_bytes());
        }
        hash
    }

    /// Total qualifying pairs across all devices.
    pub fn total_pairs(&self) -> u64 {
        self.outcomes.iter().map(|o| o.pairs).sum()
    }

    /// `(p50, p95, p99)` over every request latency, in microseconds.
    pub fn latency_percentiles_us(&self) -> (u64, u64, u64) {
        let mut all: Vec<u64> = self
            .outcomes
            .iter()
            .flat_map(|o| o.latencies_us.iter().copied())
            .collect();
        if all.is_empty() {
            return (0, 0, 0);
        }
        all.sort_unstable();
        let pick = |p: f64| all[((all.len() - 1) as f64 * p) as usize];
        (pick(0.50), pick(0.95), pick(0.99))
    }

    /// Starvation check: the slowest device's mean request latency over
    /// the fastest's. 1.0 is perfectly fair; the scaling suite asserts
    /// the ratio stays finite and every device completed its script.
    pub fn fairness_ratio(&self) -> f64 {
        let means: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| !o.latencies_us.is_empty())
            .map(|o| o.latencies_us.iter().sum::<u64>() as f64 / o.latencies_us.len() as f64)
            .collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        if means.is_empty() || min <= 0.0 {
            return 1.0;
        }
        max / min
    }

    /// Field-wise sum of every device's two link meters — the aggregate
    /// the per-shard conservation law is checked against.
    pub fn summed_meters(&self) -> (LinkSnapshot, LinkSnapshot) {
        let mut r = LinkSnapshot::default();
        let mut s = LinkSnapshot::default();
        for o in &self.outcomes {
            r = r.plus(&o.r_meter);
            s = s.plus(&o.s_meter);
        }
        (r, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_windows_are_deterministic_and_inside_space() {
        let space = Rect::from_coords(0.0, 0.0, 100.0, 50.0);
        for i in [0usize, 7, 999] {
            for k in 0..4 {
                let a = scripted_window(space, i, k, 0);
                let b = scripted_window(space, i, k, 0);
                assert_eq!(a, b);
                assert!(a.min.x >= space.min.x && a.max.x <= space.max.x + 1e-9);
                assert!(a.min.y >= space.min.y && a.max.y <= space.max.y + 1e-9);
            }
        }
        assert_ne!(
            scripted_window(space, 1, 0, 0),
            scripted_window(space, 2, 0, 0)
        );
    }

    #[test]
    fn window_pairs_dedups_and_orders() {
        let r = vec![
            SpatialObject::point(1, 0.0, 0.0),
            SpatialObject::point(2, 10.0, 0.0),
        ];
        let s = vec![
            SpatialObject::point(7, 0.5, 0.0),
            SpatialObject::point(8, 50.0, 0.0),
        ];
        assert_eq!(window_pairs(&r, &s, 1.0), vec![(1, 7)]);
        assert_eq!(window_pairs(&r, &s, 100.0).len(), 4);
    }
}
