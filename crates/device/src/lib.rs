//! # asj-device — the PDA runtime
//!
//! Models the resource-constrained side of the system: the paper's HP iPAQ
//! with a small join buffer (measured in objects, e.g. 100 or 800 points in
//! Section 5). Three pieces:
//!
//! * [`DeviceBuffer`] — the bounded object buffer. `HBSJ` is infeasible for
//!   a window when `|Rw| + |Sw|` exceeds the capacity (`c1 = ∞` in the cost
//!   model); the buffer enforces that and tracks peak usage so tests can
//!   assert the constraint was never violated.
//! * [`ResultCollector`] — accumulates qualifying pairs, verifies the
//!   exactly-once discipline (duplicate avoidance) in debug builds, and
//!   aggregates per-object match counts for the **iceberg distance
//!   semi-join** ("objects of R joining at least m objects of S").
//! * [`memjoin`] — the in-memory join kernels the physical operators use:
//!   a direct plane sweep for buffer-sized inputs and a PBSM-style
//!   grid-hash + per-cell sweep ([`memjoin::grid_hash_join`]) matching the
//!   paper's Hash-Based Spatial Join terminology.

//! * [`traffic`] — the **many-device traffic harness**: thousands of
//!   deterministic scripted devices driven by a small worker pool over a
//!   shared carrier, with per-device outcome digests (responses, pairs,
//!   meters) proven identical to a serial replay, plus the latency
//!   percentiles and fairness gauges the scaling benchmarks report.

pub mod buffer;
pub mod collect;
pub mod memjoin;
pub mod traffic;

pub use buffer::{BufferExceeded, DeviceBuffer};
pub use collect::{IcebergResult, ResultCollector};
pub use traffic::{run_traffic, DeviceOutcome, TrafficConfig, TrafficReport};
