//! Join result accumulation and iceberg aggregation.

use std::collections::HashMap;

use asj_geom::ObjectId;

/// Accumulates the join output on the device.
///
/// In the default **strict** mode pairs must arrive *exactly once* — the
/// duplicate-avoidance discipline upstream guarantees it on a frozen
/// snapshot, and debug builds verify it with a hash set (the set is
/// compiled out in release so the PDA memory model stays honest). Against
/// a **live** deployment that guarantee is not derivable: two reads of
/// disjoint windows are not one snapshot, and an object moving between
/// them while a writer races the join can honestly qualify in both. The
/// [`ResultCollector::deduplicating`] mode collapses such re-derived
/// pairs instead of treating them as a logic bug.
#[derive(Debug, Default)]
pub struct ResultCollector {
    pairs: Vec<(ObjectId, ObjectId)>,
    /// Matches per R-object, for iceberg semi-joins.
    r_counts: HashMap<ObjectId, u32>,
    /// `Some` in deduplicating mode (live deployments), in every build
    /// profile — the "exactly once" report contract then holds by
    /// construction rather than by upstream discipline.
    dedup: Option<std::collections::HashSet<(ObjectId, ObjectId)>>,
    #[cfg(debug_assertions)]
    seen: std::collections::HashSet<(ObjectId, ObjectId)>,
}

impl ResultCollector {
    pub fn new() -> Self {
        ResultCollector::default()
    }

    /// A collector that silently collapses duplicate pairs — for joins
    /// over live deployments, where snapshot skew between reads can
    /// re-derive a pair without any upstream bug.
    pub fn deduplicating() -> Self {
        ResultCollector {
            dedup: Some(std::collections::HashSet::new()),
            ..ResultCollector::default()
        }
    }

    /// Records one qualifying pair `(r, s)`.
    ///
    /// # Panics (strict mode, debug builds)
    /// If the pair was already reported — a duplicate-avoidance bug.
    pub fn push(&mut self, r: ObjectId, s: ObjectId) {
        if let Some(dedup) = &mut self.dedup {
            if !dedup.insert((r, s)) {
                return;
            }
        } else {
            #[cfg(debug_assertions)]
            assert!(
                self.seen.insert((r, s)),
                "pair ({r}, {s}) reported twice: duplicate-avoidance violation"
            );
        }
        self.pairs.push((r, s));
        *self.r_counts.entry(r).or_insert(0) += 1;
    }

    /// All pairs reported so far.
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }

    /// Number of reported pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no pair was reported.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Consumes the collector, returning the pair list.
    pub fn into_pairs(self) -> Vec<(ObjectId, ObjectId)> {
        self.pairs
    }

    /// Iceberg distance semi-join result: R-objects with at least
    /// `min_matches` qualifying partners, with their match counts
    /// (sorted by id for determinism).
    pub fn iceberg(&self, min_matches: u32) -> IcebergResult {
        let mut qualifying: Vec<(ObjectId, u32)> = self
            .r_counts
            .iter()
            .filter(|&(_, &c)| c >= min_matches)
            .map(|(&id, &c)| (id, c))
            .collect();
        qualifying.sort_unstable();
        IcebergResult {
            min_matches,
            qualifying,
        }
    }
}

/// Output of an iceberg distance semi-join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcebergResult {
    /// The `m` threshold of the query.
    pub min_matches: u32,
    /// `(r_id, match_count)` for every qualifying object, sorted by id.
    pub qualifying: Vec<(ObjectId, u32)>,
}

impl IcebergResult {
    /// Ids only.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.qualifying.iter().map(|&(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_pairs_and_counts() {
        let mut c = ResultCollector::new();
        c.push(1, 10);
        c.push(1, 11);
        c.push(2, 10);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.pairs(), &[(1, 10), (1, 11), (2, 10)]);
    }

    #[test]
    fn iceberg_threshold() {
        let mut c = ResultCollector::new();
        for s in 0..5 {
            c.push(1, s);
        }
        for s in 0..2 {
            c.push(2, 100 + s);
        }
        c.push(3, 200);
        let ice = c.iceberg(2);
        assert_eq!(ice.qualifying, vec![(1, 5), (2, 2)]);
        assert_eq!(ice.ids(), vec![1, 2]);
        assert_eq!(c.iceberg(6).qualifying, vec![]);
        // Threshold 1 = plain distance semi-join.
        assert_eq!(c.iceberg(1).ids(), vec![1, 2, 3]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate-avoidance violation")]
    fn duplicate_pair_panics_in_debug() {
        let mut c = ResultCollector::new();
        c.push(1, 1);
        c.push(1, 1);
    }

    #[test]
    fn into_pairs_consumes() {
        let mut c = ResultCollector::new();
        c.push(4, 2);
        assert_eq!(c.into_pairs(), vec![(4, 2)]);
    }
}
