//! Property tests: the in-memory join kernels and the exactly-once
//! discipline under arbitrary partitioning.

use asj_device::{memjoin, DeviceBuffer, ResultCollector};
use asj_geom::sweep::nested_loop_join;
use asj_geom::{JoinPredicate, Rect, SpatialObject};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (0i32..=4000).prop_map(|v| v as f64 * 0.25)
}

fn dataset(max: usize, id0: u32) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((coord(), coord(), 0.0f64..20.0, 0.0f64..20.0), 0..max).prop_map(
        move |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| {
                    SpatialObject::new(id0 + i as u32, Rect::from_coords(x, y, x + w, y + h))
                })
                .collect()
        },
    )
}

fn space() -> Rect {
    Rect::from_coords(0.0, 0.0, 1005.0, 1005.0)
}

fn oracle(r: &[SpatialObject], s: &[SpatialObject], pred: &JoinPredicate) -> Vec<(u32, u32)> {
    let mut v = nested_loop_join(r, s, pred);
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_hash_join_equals_oracle(
        r in dataset(60, 0),
        s in dataset(60, 10_000),
        eps in prop_oneof![Just(0.0), 1.0f64..150.0],
    ) {
        let pred = if eps == 0.0 {
            JoinPredicate::Intersects
        } else {
            JoinPredicate::WithinDistance(eps)
        };
        let mut out = ResultCollector::new();
        memjoin::grid_hash_join(&r, &s, &pred, &space(), &space(), &mut out);
        let mut got = out.into_pairs();
        got.sort_unstable();
        prop_assert_eq!(got, oracle(&r, &s, &pred));
    }

    #[test]
    fn partitioned_join_exactly_once(
        r in dataset(50, 0),
        s in dataset(50, 10_000),
        eps in 1.0f64..120.0,
        depth in 1u32..3,
    ) {
        // Join per cell of a 2^depth × 2^depth partition, simulating the
        // windowed downloads (extension covers ε/2 + max half-extent);
        // the union must equal the oracle with no duplicates. The
        // collector itself panics on duplicates in debug builds.
        let pred = JoinPredicate::WithinDistance(eps);
        let max_half = r.iter().chain(s.iter())
            .map(|o| o.mbr.width().hypot(o.mbr.height()) * 0.5)
            .fold(0.0f64, f64::max);
        let ext = eps / 2.0 + max_half;
        let k = 1u32 << depth;
        let grid = asj_geom::Grid::square(space(), k);
        let mut out = ResultCollector::new();
        for cell in grid.cells() {
            let cx = cell.expand(ext);
            let rc: Vec<_> = r.iter().filter(|o| o.mbr.intersects(&cx)).copied().collect();
            let sc: Vec<_> = s.iter().filter(|o| o.mbr.intersects(&cx)).copied().collect();
            memjoin::grid_hash_join(&rc, &sc, &pred, &cell, &space(), &mut out);
        }
        let mut got = out.into_pairs();
        got.sort_unstable();
        prop_assert_eq!(got, oracle(&r, &s, &pred));
    }

    #[test]
    fn iceberg_counts_match_oracle(
        r in dataset(40, 0),
        s in dataset(40, 10_000),
        eps in 1.0f64..100.0,
        m in 1u32..5,
    ) {
        let pred = JoinPredicate::WithinDistance(eps);
        let mut out = ResultCollector::new();
        memjoin::grid_hash_join(&r, &s, &pred, &space(), &space(), &mut out);
        let ice = out.iceberg(m);
        let pairs = oracle(&r, &s, &pred);
        let mut counts = std::collections::HashMap::new();
        for (rid, _) in pairs {
            *counts.entry(rid).or_insert(0u32) += 1;
        }
        let mut want: Vec<(u32, u32)> =
            counts.into_iter().filter(|&(_, c)| c >= m).collect();
        want.sort_unstable();
        prop_assert_eq!(ice.qualifying, want);
    }

    #[test]
    fn buffer_never_overcommits(
        capacity in 0usize..100,
        reserves in prop::collection::vec(0usize..40, 0..12),
    ) {
        let buf = DeviceBuffer::new(capacity);
        let mut held = Vec::new();
        for n in reserves {
            if let Ok(r) = buf.reserve(n) {
                held.push(r);
            }
            prop_assert!(buf.in_use() <= capacity);
            prop_assert!(buf.peak() <= capacity);
        }
        let total: usize = held.iter().map(|r| r.len()).sum();
        prop_assert_eq!(buf.in_use(), total);
        drop(held);
        prop_assert_eq!(buf.in_use(), 0);
    }
}
