//! Differential property tests: the three storage backends (linear scan,
//! aR-tree, grid file) must be observationally identical through the full
//! service protocol.

use asj_geom::{Point, Rect, SpatialObject};
use asj_net::{QueryHandler, Request, Response};
use asj_server::{GridStore, RTreeStore, ScanStore, SpatialService};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (0i32..=2000).prop_map(|v| v as f64 * 0.5)
}

fn dataset(max: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((coord(), coord(), 0.0f64..40.0, 0.0f64..40.0), 0..max).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| {
                    SpatialObject::new(i as u32, Rect::from_coords(x, y, x + w, y + h))
                })
                .collect()
        },
    )
}

fn norm(resp: Response) -> Vec<u32> {
    let mut ids: Vec<u32> = resp.into_objects().iter().map(|o| o.id).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backends_agree_through_the_protocol(
        data in dataset(120),
        w in (coord(), coord(), coord(), coord()),
        q in (coord(), coord()),
        eps in 0.0f64..400.0,
    ) {
        let window = Rect::new(Point::new(w.0, w.1), Point::new(w.2, w.3));
        let probe = Rect::point(Point::new(q.0, q.1));

        let scan = SpatialService::new(ScanStore::new(data.clone()));
        let tree = SpatialService::new(RTreeStore::with_fanout(data.clone(), 5));
        let grid = SpatialService::new(GridStore::with_resolution(data, 6));

        // WINDOW
        let a = norm(scan.handle(Request::Window(window)));
        prop_assert_eq!(&a, &norm(tree.handle(Request::Window(window))));
        prop_assert_eq!(&a, &norm(grid.handle(Request::Window(window))));

        // COUNT
        let c = scan.handle(Request::Count(window)).into_count();
        prop_assert_eq!(c, tree.handle(Request::Count(window)).into_count());
        prop_assert_eq!(c, grid.handle(Request::Count(window)).into_count());
        prop_assert_eq!(c, a.len() as u64, "COUNT must equal WINDOW cardinality");

        // ε-RANGE
        let r = norm(scan.handle(Request::EpsRange { q: probe, eps }));
        prop_assert_eq!(&r, &norm(tree.handle(Request::EpsRange { q: probe, eps })));
        prop_assert_eq!(&r, &norm(grid.handle(Request::EpsRange { q: probe, eps })));

        // AvgArea
        let area = |resp: Response| match resp {
            Response::Area(a) => a,
            other => panic!("expected Area, got {other:?}"),
        };
        let av = area(scan.handle(Request::AvgArea(window)));
        prop_assert!((av - area(tree.handle(Request::AvgArea(window)))).abs() < 1e-9);
        prop_assert!((av - area(grid.handle(Request::AvgArea(window)))).abs() < 1e-9);
    }

    #[test]
    fn bucket_probes_agree_across_backends(
        data in dataset(80),
        probes in prop::collection::vec((coord(), coord()), 0..15),
        eps in 0.0f64..200.0,
    ) {
        let probes: Vec<SpatialObject> = probes
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| SpatialObject::point(5000 + i as u32, x, y))
            .collect();
        let scan = SpatialService::new(ScanStore::new(data.clone()));
        let grid = SpatialService::new(GridStore::new(data));
        let norm_buckets = |r: Response| -> Vec<Vec<u32>> {
            r.into_buckets()
                .into_iter()
                .map(|b| {
                    let mut ids: Vec<u32> = b.iter().map(|o| o.id).collect();
                    ids.sort_unstable();
                    ids
                })
                .collect()
        };
        let a = norm_buckets(scan.handle(Request::BucketEpsRange {
            probes: probes.clone(),
            eps,
        }));
        let b = norm_buckets(grid.handle(Request::BucketEpsRange { probes, eps }));
        prop_assert_eq!(a, b);
    }
}
