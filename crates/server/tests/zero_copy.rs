//! Differential proof that the zero-copy serving path is byte-identical
//! to the materializing one.
//!
//! `SpatialService::handle_into` streams WINDOW/ε-RANGE answers straight
//! into the wire buffer (visitor stores + exact-capacity frame reserve);
//! `handle` materializes a `Response` that the codec then encodes. The two
//! must produce the same bytes for every request on every backend — this
//! is the invariant that lets the transports switch to the streaming path
//! without any differential suite noticing.

use asj_geom::{Point, Rect, SpatialObject};
use asj_net::codec::{encode_response, encode_response_into, WireVersion};
use asj_net::{QueryHandler, Request};
use asj_server::{GridStore, RTreeStore, ScanStore, ServicePolicy, SpatialService, SpatialStore};
use bytes::BytesMut;

/// Deterministic pseudo-random mix of points and boxes.
fn dataset(n: u32, seed: u64) -> Vec<SpatialObject> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / u32::MAX as f64) * 1000.0
    };
    (0..n)
        .map(|i| {
            let (x, y) = (next(), next());
            if i % 3 == 0 {
                SpatialObject::new(
                    i,
                    Rect::from_coords(x, y, x + next() * 0.05, y + next() * 0.05),
                )
            } else {
                SpatialObject::point(i, x, y)
            }
        })
        .collect()
}

fn requests(objs: &[SpatialObject]) -> Vec<Request> {
    let mut reqs = vec![
        Request::Window(Rect::from_coords(100.0, 100.0, 400.0, 700.0)),
        Request::Window(Rect::from_coords(-50.0, -50.0, 1100.0, 1100.0)), // everything
        Request::Window(Rect::from_coords(2000.0, 2000.0, 2100.0, 2100.0)), // nothing
        Request::Count(Rect::from_coords(0.0, 0.0, 500.0, 500.0)),
        Request::AvgArea(Rect::from_coords(0.0, 0.0, 800.0, 800.0)),
        Request::MultiCount(vec![
            Rect::from_coords(0.0, 0.0, 100.0, 100.0),
            Rect::from_coords(500.0, 500.0, 900.0, 900.0),
        ]),
        Request::CoopLevelMbrs(0),
        Request::CoopFilterByMbrs {
            mbrs: vec![Rect::from_coords(200.0, 200.0, 300.0, 300.0)],
            eps: 25.0,
        },
        Request::CoopJoinPush {
            objects: objs.iter().take(20).copied().collect(),
            eps: 40.0,
        },
    ];
    for eps in [0.0, 30.0, 400.0] {
        reqs.push(Request::EpsRange {
            q: Rect::point(Point::new(450.0, 450.0)),
            eps,
        });
    }
    reqs.push(Request::BucketEpsRange {
        probes: objs.iter().take(15).copied().collect(),
        eps: 60.0,
    });
    reqs
}

fn assert_paths_identical<S: SpatialStore>(svc: &SpatialService<S>, objs: &[SpatialObject]) {
    for req in requests(objs) {
        let materialized = encode_response(&svc.handle(req.clone()));
        let mut buf = BytesMut::new();
        svc.handle_into(req.clone(), WireVersion::V1, &mut buf);
        assert_eq!(
            materialized.as_slice(),
            &buf[..],
            "zero-copy bytes diverged for {req:?}"
        );
    }
}

#[test]
fn zero_copy_serving_is_byte_identical_on_every_backend() {
    for seed in [1, 7, 23] {
        let objs = dataset(300, seed);
        for policy in [ServicePolicy::NonCooperative, ServicePolicy::Cooperative] {
            assert_paths_identical(
                &SpatialService::new(ScanStore::new(objs.clone())).with_policy(policy),
                &objs,
            );
            assert_paths_identical(
                &SpatialService::new(RTreeStore::with_fanout(objs.clone(), 8)).with_policy(policy),
                &objs,
            );
            assert_paths_identical(
                &SpatialService::new(GridStore::with_resolution(objs.clone(), 9))
                    .with_policy(policy),
                &objs,
            );
        }
    }
}

#[test]
fn zero_copy_appends_like_the_materializing_encoder() {
    // Servers reuse one buffer across requests; appending after existing
    // content must frame exactly like a fresh encode.
    let objs = dataset(100, 5);
    let svc = SpatialService::new(RTreeStore::new(objs.clone()));
    let w = Rect::from_coords(0.0, 0.0, 600.0, 600.0);
    let mut buf = BytesMut::new();
    svc.handle_into(Request::Count(w), WireVersion::V1, &mut buf);
    let count_len = buf.len();
    svc.handle_into(Request::Window(w), WireVersion::V1, &mut buf);
    let fresh = {
        let mut b = BytesMut::new();
        svc.handle_into(Request::Window(w), WireVersion::V1, &mut b);
        b
    };
    assert_eq!(&buf[count_len..], &fresh[..]);
    // And an explicit materializing append agrees too.
    let mut mat = BytesMut::new();
    encode_response_into(&svc.handle(Request::Count(w)), &mut mat);
    encode_response_into(&svc.handle(Request::Window(w)), &mut mat);
    assert_eq!(&buf[..], &mat[..]);
}

#[test]
fn visitor_queries_match_materialized_order_on_every_backend() {
    // window()/eps_range() are provided *on top of* the visitors, so this
    // pins the canonical-order contract end to end per backend.
    let objs = dataset(250, 11);
    let stores: Vec<Box<dyn SpatialStore>> = vec![
        Box::new(ScanStore::new(objs.clone())),
        Box::new(RTreeStore::with_fanout(objs.clone(), 8)),
        Box::new(GridStore::with_resolution(objs, 7)),
    ];
    let w = Rect::from_coords(50.0, 50.0, 650.0, 800.0);
    let q = Rect::point(Point::new(500.0, 500.0));
    for store in &stores {
        let mut visited = Vec::new();
        store.for_each_in_window(&w, &mut |o| visited.push(*o));
        assert_eq!(visited, store.window(&w));
        assert_eq!(visited.len() as u64, store.count(&w));
        let mut ranged = Vec::new();
        store.for_each_eps_range(&q, 120.0, &mut |o| ranged.push(*o));
        assert_eq!(ranged, store.eps_range(&q, 120.0));
        assert_eq!(ranged.len() as u64, store.eps_count(&q, 120.0));
        assert!(!visited.is_empty() && !ranged.is_empty(), "non-vacuous");
    }
}
