//! Property tests for the shard partitioner: a sharded dataset must be
//! observationally identical to the flat dataset through window queries —
//! every object answerable from exactly the shards whose bounds cover it,
//! counts exactly additive, and the union of per-shard answers equal to
//! the unsharded answer after dedup, for arbitrary windows including
//! degenerate and boundary-aligned ones.

use asj_geom::{Point, Rect, SpatialObject};
use asj_server::{partition_objects, split_space, ScanStore, SpatialStore};
use proptest::prelude::*;

fn space() -> Rect {
    Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
}

fn coord() -> impl Strategy<Value = f64> {
    (0i32..=2000).prop_map(|v| v as f64 * 0.5)
}

fn dataset(max: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((coord(), coord(), 0.0f64..80.0, 0.0f64..80.0), 0..max).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| {
                    SpatialObject::new(
                        i as u32,
                        Rect::from_coords(x, y, (x + w).min(1000.0), (y + h).min(1000.0)),
                    )
                })
                .collect()
        },
    )
}

/// Windows that stress the split boundaries: arbitrary, degenerate
/// (zero-extent), and aligned exactly on a shard-cell edge.
fn windows(cells: &[Rect]) -> Vec<Rect> {
    let mut out = vec![
        Rect::from_coords(0.0, 0.0, 1000.0, 1000.0),
        Rect::point(Point::new(500.0, 500.0)), // degenerate
        Rect::from_coords(250.0, 0.0, 250.0, 1000.0), // degenerate line
        Rect::from_coords(1500.0, 1500.0, 1600.0, 1600.0), // off-space
    ];
    for c in cells {
        // Boundary-aligned: exactly one cell, and a sliver crossing its
        // max edges.
        out.push(*c);
        out.push(Rect::from_coords(
            c.max.x - 1.0,
            c.max.y - 1.0,
            (c.max.x + 1.0).min(2000.0),
            (c.max.y + 1.0).min(2000.0),
        ));
    }
    out
}

fn sorted_ids(objs: &[SpatialObject]) -> Vec<u32> {
    let mut ids: Vec<u32> = objs.iter().map(|o| o.id).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_windows_union_to_the_flat_answer(
        data in dataset(120),
        n in 1usize..8,
        wx in coord(), wy in coord(), ww in 0.0f64..600.0, wh in 0.0f64..600.0,
    ) {
        let s = space();
        let part = partition_objects(&s, n, data.clone());
        let bounds = part.bounds();
        let flat = ScanStore::new(data.clone());
        let shards: Vec<ScanStore> =
            part.members.iter().cloned().map(ScanStore::new).collect();

        // Every object is stored exactly once, and its home shard's bounds
        // cover it — so it is answerable from the shards whose bounds
        // cover its MBR, which is never the empty set.
        prop_assert_eq!(part.len(), data.len());
        // Merged bounds semantics: the union of shard bounds is exactly
        // the flat store's bounds (each weighted by what it holds).
        prop_assert_eq!(
            Rect::union_of(bounds.iter().flatten().copied()),
            flat.bounds()
        );
        for (shard, members) in part.members.iter().enumerate() {
            for o in members {
                let b = bounds[shard].expect("shard with members has bounds");
                prop_assert!(b.contains_rect(&o.mbr),
                    "shard {} bounds must cover member {}", shard, o.id);
            }
        }
        for o in &data {
            let covering: Vec<usize> = (0..n)
                .filter(|&i| bounds[i].is_some_and(|b| b.contains_rect(&o.mbr)))
                .collect();
            let answering: Vec<usize> = (0..n)
                .filter(|&i| shards[i].window(&o.mbr).iter().any(|x| x.id == o.id))
                .collect();
            prop_assert_eq!(answering.len(), 1, "object {} stored once", o.id);
            prop_assert!(covering.contains(&answering[0]),
                "object {} answerable only from bounds-covered shards", o.id);
        }

        // Union-equals-flat and exact additive counts, over stress windows
        // plus a random one.
        let mut probe = windows(&part.cells);
        probe.push(Rect::from_coords(wx, wy, wx + ww, wy + wh));
        for w in probe {
            let want = sorted_ids(&flat.window(&w));
            let mut got_all = Vec::new();
            let mut count_sum = 0u64;
            for (i, shard) in shards.iter().enumerate() {
                let hits = shard.window(&w);
                // Pruning soundness: a shard with answers must have
                // bounds intersecting the window.
                if !hits.is_empty() {
                    prop_assert!(bounds[i].unwrap().intersects(&w));
                }
                count_sum += shard.count(&w);
                got_all.extend(hits);
            }
            prop_assert_eq!(sorted_ids(&got_all), want.clone(), "window {:?}", w);
            prop_assert_eq!(count_sum, want.len() as u64, "counts additive: {:?}", w);
        }
    }

    #[test]
    fn cells_tile_and_assignment_is_total(
        n in 1usize..9,
        px in coord(), py in coord(),
    ) {
        let s = space();
        let cells = split_space(&s, n);
        prop_assert_eq!(cells.len(), n);
        let area: f64 = cells.iter().map(Rect::area).sum();
        prop_assert!((area - s.area()).abs() < 1e-3);
        // Any point (possibly outside the space) gets exactly one home.
        let home = asj_server::partition::assign_point(&cells, &s, Point::new(px, py));
        prop_assert!(home < n);
    }
}
