//! Storage backends for a spatial service.

use asj_geom::{Rect, SpatialObject};
use asj_net::Update;
use asj_rtree::RTree;

/// What a server's storage layer must answer. All methods are read-only;
/// services share a store across threads (`Sync`).
///
/// The **visitor methods are the primitives**: `window` / `eps_range` are
/// provided on top of them, so a backend's materialized results and its
/// streamed visits are identical — same objects, same order — by
/// construction. The zero-copy serving path in [`crate::service`] leans on
/// that: it announces the count (`count` / `eps_count` must agree exactly
/// with what the visitor yields), then encodes each visited object straight
/// into the wire buffer.
pub trait SpatialStore: Send + Sync {
    /// Visits every object intersecting `w`, exactly once, in the
    /// backend's canonical order.
    fn for_each_in_window(&self, w: &Rect, f: &mut dyn FnMut(&SpatialObject));
    /// Visits every object within `eps` of `q`, exactly once, in the
    /// backend's canonical order.
    fn for_each_eps_range(&self, q: &Rect, eps: f64, f: &mut dyn FnMut(&SpatialObject));
    /// Number of objects intersecting `w`.
    fn count(&self, w: &Rect) -> u64;
    /// Number of objects within `eps` of `q`. The default counts via the
    /// visitor; hierarchical backends override with an aggregate walk.
    fn eps_count(&self, q: &Rect, eps: f64) -> u64 {
        let mut n = 0;
        self.for_each_eps_range(q, eps, &mut |_| n += 1);
        n
    }
    /// The exact `WINDOW(w)` cardinality, **only when the backend can
    /// answer it more cheaply than the visit itself** (aggregate
    /// indexes). `None` — the default — tells the zero-copy serving path
    /// to stream single-pass and patch the frame length, instead of
    /// paying a second traversal just to pre-size the frame.
    fn window_count_hint(&self, _w: &Rect) -> Option<u64> {
        None
    }
    /// Objects intersecting `w` (materialized visitor order).
    fn window(&self, w: &Rect) -> Vec<SpatialObject> {
        let mut out = Vec::new();
        self.for_each_in_window(w, &mut |o| out.push(*o));
        out
    }
    /// Objects within `eps` of `q` (materialized visitor order).
    fn eps_range(&self, q: &Rect, eps: f64) -> Vec<SpatialObject> {
        let mut out = Vec::new();
        self.for_each_eps_range(q, eps, &mut |o| out.push(*o));
        out
    }
    /// Average MBR area among objects intersecting `w` (0.0 when none).
    fn avg_area(&self, w: &Rect) -> f64;
    /// MBRs of one index level (`levels_above_leaves`), if the backend is
    /// hierarchical; `None` otherwise. Cooperative extension only.
    fn level_mbrs(&self, levels_above_leaves: usize) -> Option<Vec<Rect>>;
    /// Total number of stored objects.
    fn len(&self) -> usize;
    /// `true` when the store holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// MBR of the entire dataset.
    fn bounds(&self) -> Option<Rect>;
    /// The snapshot generation this store currently serves. Frozen
    /// backends (everything except [`crate::versioned::VersionedStore`])
    /// are generation 0 forever — and generation-0 responses are encoded
    /// without a stamp, keeping their wire traffic bit-identical to the
    /// pre-generation format.
    fn generation(&self) -> u64 {
        0
    }
    /// Applies a batched update copy-on-write and publishes the result as
    /// a new generation, returning its number. `None` — the default —
    /// marks a frozen store; the service answers such requests with
    /// `Refused`.
    fn apply_updates(&self, _batch: &[Update]) -> Option<u64> {
        None
    }
    /// Runs `f` against one consistent `(snapshot, generation)` pair. The
    /// default serves `self` directly (a frozen store *is* its only
    /// snapshot); a live store overrides this to pin one published
    /// generation for the whole call, so a multi-part request never
    /// straddles a concurrent generation swap and the stamped generation
    /// always matches the snapshot that answered.
    fn with_frozen(&self, f: &mut dyn FnMut(&dyn SpatialStore, u64))
    where
        Self: Sized,
    {
        f(self, self.generation());
    }
}

/// Linear-scan backend: O(n) everything. The reference implementation the
/// property tests compare the R-tree against, and a fine choice for tiny
/// datasets.
#[derive(Debug, Clone, Default)]
pub struct ScanStore {
    objects: Vec<SpatialObject>,
}

impl ScanStore {
    pub fn new(objects: Vec<SpatialObject>) -> Self {
        ScanStore { objects }
    }

    /// Borrow the raw objects (test helper).
    pub fn objects(&self) -> &[SpatialObject] {
        &self.objects
    }
}

impl SpatialStore for ScanStore {
    fn for_each_in_window(&self, w: &Rect, f: &mut dyn FnMut(&SpatialObject)) {
        self.objects
            .iter()
            .filter(|o| o.mbr.intersects(w))
            .for_each(f)
    }

    fn for_each_eps_range(&self, q: &Rect, eps: f64, f: &mut dyn FnMut(&SpatialObject)) {
        self.objects
            .iter()
            .filter(|o| o.mbr.within_distance(q, eps))
            .for_each(f)
    }

    fn count(&self, w: &Rect) -> u64 {
        self.objects.iter().filter(|o| o.mbr.intersects(w)).count() as u64
    }

    fn avg_area(&self, w: &Rect) -> f64 {
        let mut n = 0u64;
        let mut sum = 0.0;
        for o in &self.objects {
            if o.mbr.intersects(w) {
                n += 1;
                sum += o.mbr.area();
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn level_mbrs(&self, _levels_above_leaves: usize) -> Option<Vec<Rect>> {
        None // no hierarchy to publish
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn bounds(&self) -> Option<Rect> {
        Rect::union_of(self.objects.iter().map(|o| o.mbr))
    }
}

/// aR-tree backend — the production store. `COUNT` queries are answered
/// from aggregate node counts without touching qualifying subtrees.
#[derive(Debug, Clone)]
pub struct RTreeStore {
    tree: RTree,
}

impl RTreeStore {
    /// Bulk-loads the dataset (STR) with the default fanout.
    pub fn new(objects: Vec<SpatialObject>) -> Self {
        RTreeStore {
            tree: RTree::bulk_load(objects, asj_rtree::RTree::default_max_entries()),
        }
    }

    /// Bulk-loads with an explicit fanout.
    pub fn with_fanout(objects: Vec<SpatialObject>, max_entries: usize) -> Self {
        RTreeStore {
            tree: RTree::bulk_load(objects, max_entries),
        }
    }

    /// The underlying tree (used by benches).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }
}

impl SpatialStore for RTreeStore {
    fn for_each_in_window(&self, w: &Rect, f: &mut dyn FnMut(&SpatialObject)) {
        self.tree.for_each_in_window(w, f)
    }

    fn for_each_eps_range(&self, q: &Rect, eps: f64, f: &mut dyn FnMut(&SpatialObject)) {
        self.tree.for_each_eps_range(q, eps, f)
    }

    fn count(&self, w: &Rect) -> u64 {
        self.tree.count(w)
    }

    fn eps_count(&self, q: &Rect, eps: f64) -> u64 {
        self.tree.eps_range_count(q, eps)
    }

    fn window_count_hint(&self, w: &Rect) -> Option<u64> {
        // The aR aggregate COUNT shortcuts whole covered subtrees, so it
        // is usually far cheaper than the visit (a thin window covering
        // no subtree degenerates to a second traversal — but one that
        // touches no payload and allocates nothing). Announcing it buys
        // the serving path an exact-capacity frame reserve, which the
        // in-process carrier's fresh-buffer replies depend on.
        Some(self.tree.count(w))
    }

    fn avg_area(&self, w: &Rect) -> f64 {
        // Answered from the aR area aggregates, like `count` — fully
        // covered subtrees contribute without being materialized. The sum
        // associates per subtree instead of per flat result vector, so
        // the f64 can differ in the last ulp from a linear fold; no join
        // algorithm consumes AvgArea (only the router's weighted merge
        // and the differential suites, which compare with tolerance), so
        // no decision or wire byte depends on those bits.
        let (n, sum) = self.tree.area_stats(w);
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn level_mbrs(&self, levels_above_leaves: usize) -> Option<Vec<Rect>> {
        Some(self.tree.level_mbrs(levels_above_leaves))
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn bounds(&self) -> Option<Rect> {
        self.tree.root_mbr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::Point;

    fn dataset() -> Vec<SpatialObject> {
        // 10×10 lattice of points at integer coordinates.
        (0..100)
            .map(|i| SpatialObject::point(i, (i % 10) as f64, (i / 10) as f64))
            .collect()
    }

    #[test]
    fn scan_and_rtree_agree() {
        let scan = ScanStore::new(dataset());
        let tree = RTreeStore::with_fanout(dataset(), 4);
        for w in [
            Rect::from_coords(0.0, 0.0, 3.0, 3.0),
            Rect::from_coords(2.5, 2.5, 7.5, 4.5),
            Rect::from_coords(20.0, 20.0, 30.0, 30.0),
        ] {
            assert_eq!(scan.count(&w), tree.count(&w));
            let mut a: Vec<u32> = scan.window(&w).iter().map(|o| o.id).collect();
            let mut b: Vec<u32> = tree.window(&w).iter().map(|o| o.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        let q = Rect::point(Point::new(5.0, 5.0));
        for eps in [0.0, 1.0, 2.5] {
            assert_eq!(
                scan.eps_range(&q, eps).len(),
                tree.eps_range(&q, eps).len(),
                "eps={eps}"
            );
        }
    }

    #[test]
    fn avg_area_of_points_is_zero() {
        let s = ScanStore::new(dataset());
        assert_eq!(s.avg_area(&Rect::from_coords(0.0, 0.0, 9.0, 9.0)), 0.0);
    }

    #[test]
    fn avg_area_of_rect_objects() {
        let objs = vec![
            SpatialObject::new(1, Rect::from_coords(0.0, 0.0, 2.0, 2.0)), // area 4
            SpatialObject::new(2, Rect::from_coords(0.0, 0.0, 1.0, 2.0)), // area 2
        ];
        let s = ScanStore::new(objs.clone());
        let t = RTreeStore::new(objs);
        let w = Rect::from_coords(-1.0, -1.0, 3.0, 3.0);
        assert_eq!(s.avg_area(&w), 3.0);
        assert_eq!(t.avg_area(&w), 3.0);
        // Empty window → 0.
        assert_eq!(s.avg_area(&Rect::from_coords(50.0, 50.0, 60.0, 60.0)), 0.0);
    }

    #[test]
    fn level_mbrs_only_from_hierarchical_store() {
        let scan = ScanStore::new(dataset());
        assert!(scan.level_mbrs(0).is_none());
        let tree = RTreeStore::with_fanout(dataset(), 4);
        let leaves = tree.level_mbrs(0).unwrap();
        assert!(!leaves.is_empty());
    }

    #[test]
    fn bounds() {
        let s = ScanStore::new(dataset());
        assert_eq!(s.bounds(), Some(Rect::from_coords(0.0, 0.0, 9.0, 9.0)));
        assert_eq!(ScanStore::default().bounds(), None);
        assert!(ScanStore::default().is_empty());
    }
}
