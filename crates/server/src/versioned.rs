//! Generational snapshots: a live-updating wrapper over any frozen store.
//!
//! [`VersionedStore`] never mutates a snapshot readers can see. An update
//! batch is applied **copy-on-write**: the current object set is cloned,
//! the batch applied, a fresh inner store built from scratch, and the
//! result atomically published as generation `n + 1` behind an `RwLock` +
//! `Arc` swap (the lcrr-tree discipline: writers build aside, readers
//! always hold one consistent frozen tree). Queries in flight keep the
//! `Arc` of the snapshot they started on, so a swap never invalidates a
//! traversal; [`SpatialStore::with_frozen`] pins one snapshot for an
//! entire multi-part request.

use std::sync::{Arc, Mutex, RwLock};

use asj_geom::{Rect, SpatialObject};
use asj_net::Update;

use crate::store::SpatialStore;

/// Applies one update batch, in order, to a materialized object set — the
/// single source of update semantics, shared by [`VersionedStore`] and the
/// offline replay oracles in the differential tests.
///
/// `Insert` replaces any existing object with the same id (else appends),
/// `Delete` of an absent id is a no-op, and `Move` is an upsert of the
/// object at its new MBR. Upsert-by-id keeps flat and sharded deployments
/// convergent without coordination: wherever an object currently lives,
/// re-inserting it settles it in exactly one place.
pub fn apply_updates_to(objects: &mut Vec<SpatialObject>, batch: &[Update]) {
    for u in batch {
        match u {
            Update::Insert(o) => upsert(objects, *o),
            Update::Delete(id) => objects.retain(|x| x.id != *id),
            Update::Move { id, to } => upsert(objects, SpatialObject::new(*id, *to)),
        }
    }
}

fn upsert(objects: &mut Vec<SpatialObject>, o: SpatialObject) {
    match objects.iter_mut().find(|x| x.id == o.id) {
        Some(slot) => *slot = o,
        None => objects.push(o),
    }
}

/// One published snapshot: the built store, the object set it was built
/// from (the base of the next copy-on-write), and its generation number.
struct Generation<S> {
    store: Arc<S>,
    objects: Arc<Vec<SpatialObject>>,
    number: u64,
}

impl<S> Clone for Generation<S> {
    fn clone(&self) -> Self {
        Generation {
            store: Arc::clone(&self.store),
            objects: Arc::clone(&self.objects),
            number: self.number,
        }
    }
}

/// A live store: serves the current generation, applies update batches
/// into fresh ones. Generic over the frozen backend it rebuilds (the
/// production deployments use `VersionedStore<RTreeStore>`).
pub struct VersionedStore<S: SpatialStore> {
    current: RwLock<Generation<S>>,
    build: Box<dyn Fn(Vec<SpatialObject>) -> S + Send + Sync>,
    /// Serializes writers so concurrent batches can't both build from the
    /// same base and lose one of the two. Readers never take this lock.
    writer: Mutex<()>,
}

impl<S: SpatialStore> VersionedStore<S> {
    /// Builds generation 0 from `objects`; `build` is reused to construct
    /// every later generation.
    pub fn new(
        objects: Vec<SpatialObject>,
        build: impl Fn(Vec<SpatialObject>) -> S + Send + Sync + 'static,
    ) -> Self {
        let store = Arc::new(build(objects.clone()));
        VersionedStore {
            current: RwLock::new(Generation {
                store,
                objects: Arc::new(objects),
                number: 0,
            }),
            build: Box::new(build),
            writer: Mutex::new(()),
        }
    }

    /// Builds the store at an arbitrary starting `generation` — the
    /// restart constructor: a crashed endpoint replays the object set it
    /// last published and resumes at that generation number, so clients'
    /// observed generation vectors never regress across a
    /// crash-then-restart window.
    pub fn with_generation(
        objects: Vec<SpatialObject>,
        generation: u64,
        build: impl Fn(Vec<SpatialObject>) -> S + Send + Sync + 'static,
    ) -> Self {
        let store = Arc::new(build(objects.clone()));
        VersionedStore {
            current: RwLock::new(Generation {
                store,
                objects: Arc::new(objects),
                number: generation,
            }),
            build: Box::new(build),
            writer: Mutex::new(()),
        }
    }

    fn snapshot(&self) -> Generation<S> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Applies `batch` copy-on-write and publishes the result, returning
    /// the new generation number. An **empty batch still bumps** — the
    /// generation tick the fleet router relies on so every shard advances
    /// exactly once per fleet-level batch, making the summed fleet
    /// generation injective in the batch count.
    pub fn apply(&self, batch: &[Update]) -> u64 {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();
        let mut objects = (*base.objects).clone();
        apply_updates_to(&mut objects, batch);
        // The expensive rebuild happens outside the snapshot lock: readers
        // keep serving the old generation until the one-pointer swap below.
        let next = Generation {
            store: Arc::new((self.build)(objects.clone())),
            objects: Arc::new(objects),
            number: base.number + 1,
        };
        let number = next.number;
        *self.current.write().expect("snapshot lock poisoned") = next;
        number
    }

    /// The current generation's materialized object set (shared, cheap).
    pub fn current_objects(&self) -> Arc<Vec<SpatialObject>> {
        self.snapshot().objects
    }

    /// Adopts a sibling replica's published state wholesale: rebuilds
    /// from `objects` and publishes it at exactly `generation`. The
    /// replica-restart path — a store that stayed dark while its
    /// siblings kept acking update batches resynchronizes from the
    /// freshest sibling before serving again, so the fleet's generation
    /// floor readmits it.
    ///
    /// A no-op when `generation` is not ahead of the current one: a
    /// racing local write that already published past the donor must not
    /// be rolled back (generations never regress).
    pub fn catch_up(&self, objects: Vec<SpatialObject>, generation: u64) {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        if generation <= self.generation() {
            return;
        }
        let next = Generation {
            store: Arc::new((self.build)(objects.clone())),
            objects: Arc::new(objects),
            number: generation,
        };
        *self.current.write().expect("snapshot lock poisoned") = next;
    }
}

/// Every query delegates to the generation current at call time. A single
/// query is always consistent (it holds that generation's `Arc` for its
/// whole traversal); callers needing *cross*-query consistency use
/// [`SpatialStore::with_frozen`].
impl<S: SpatialStore> SpatialStore for VersionedStore<S> {
    fn for_each_in_window(&self, w: &Rect, f: &mut dyn FnMut(&SpatialObject)) {
        self.snapshot().store.for_each_in_window(w, f)
    }

    fn for_each_eps_range(&self, q: &Rect, eps: f64, f: &mut dyn FnMut(&SpatialObject)) {
        self.snapshot().store.for_each_eps_range(q, eps, f)
    }

    fn count(&self, w: &Rect) -> u64 {
        self.snapshot().store.count(w)
    }

    fn eps_count(&self, q: &Rect, eps: f64) -> u64 {
        self.snapshot().store.eps_count(q, eps)
    }

    fn window_count_hint(&self, w: &Rect) -> Option<u64> {
        self.snapshot().store.window_count_hint(w)
    }

    fn avg_area(&self, w: &Rect) -> f64 {
        self.snapshot().store.avg_area(w)
    }

    fn level_mbrs(&self, levels_above_leaves: usize) -> Option<Vec<Rect>> {
        self.snapshot().store.level_mbrs(levels_above_leaves)
    }

    fn len(&self) -> usize {
        self.snapshot().store.len()
    }

    fn bounds(&self) -> Option<Rect> {
        self.snapshot().store.bounds()
    }

    fn generation(&self) -> u64 {
        self.current.read().expect("snapshot lock poisoned").number
    }

    fn apply_updates(&self, batch: &[Update]) -> Option<u64> {
        Some(self.apply(batch))
    }

    fn with_frozen(&self, f: &mut dyn FnMut(&dyn SpatialStore, u64)) {
        let snap = self.snapshot();
        f(&*snap.store, snap.number);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{RTreeStore, ScanStore};

    fn lattice(n: u32) -> Vec<SpatialObject> {
        (0..n * n)
            .map(|i| SpatialObject::point(i, (i % n) as f64, (i / n) as f64))
            .collect()
    }

    fn versioned(objects: Vec<SpatialObject>) -> VersionedStore<RTreeStore> {
        VersionedStore::new(objects, RTreeStore::new)
    }

    #[test]
    fn generation_zero_serves_like_the_frozen_store() {
        let frozen = RTreeStore::new(lattice(10));
        let live = versioned(lattice(10));
        assert_eq!(live.generation(), 0);
        let w = Rect::from_coords(0.0, 0.0, 3.0, 3.0);
        assert_eq!(live.count(&w), frozen.count(&w));
        assert_eq!(live.window(&w), frozen.window(&w));
        assert_eq!(live.bounds(), frozen.bounds());
        assert_eq!(live.len(), frozen.len());
        assert_eq!(live.window_count_hint(&w), frozen.window_count_hint(&w));
    }

    #[test]
    fn apply_semantics_match_offline_replay() {
        let live = versioned(lattice(4));
        let batch = vec![
            Update::Insert(SpatialObject::point(100, 9.0, 9.0)),
            Update::Delete(0),
            Update::Delete(999), // absent: no-op
            Update::Move {
                id: 5,
                to: Rect::point(asj_geom::Point::new(8.0, 8.0)),
            },
            Update::Move {
                id: 200, // absent: insert
                to: Rect::point(asj_geom::Point::new(7.0, 7.0)),
            },
            Update::Insert(SpatialObject::point(100, 6.0, 6.0)), // replace
        ];
        assert_eq!(live.apply(&batch), 1);
        assert_eq!(live.generation(), 1);
        let mut replay = lattice(4);
        apply_updates_to(&mut replay, &batch);
        assert_eq!(*live.current_objects(), replay);
        // The served store is rebuilt from exactly the replayed set.
        let everything = Rect::from_coords(-100.0, -100.0, 100.0, 100.0);
        let mut got = live.window(&everything);
        let mut want = ScanStore::new(replay).window(&everything);
        got.sort_unstable_by_key(|o| o.id);
        want.sort_unstable_by_key(|o| o.id);
        assert_eq!(got, want);
        // Exactly one object with the upserted id, at its final position.
        let at_100: Vec<_> = got.iter().filter(|o| o.id == 100).collect();
        assert_eq!(at_100.len(), 1);
        assert_eq!(at_100[0].mbr, Rect::point(asj_geom::Point::new(6.0, 6.0)));
    }

    #[test]
    fn empty_batch_still_bumps_the_generation() {
        let live = versioned(lattice(3));
        assert_eq!(live.apply(&[]), 1);
        assert_eq!(live.apply(&[]), 2);
        assert_eq!(live.generation(), 2);
        assert_eq!(live.len(), 9);
    }

    #[test]
    fn with_frozen_pins_one_snapshot() {
        let live = versioned(lattice(3));
        live.apply(&[Update::Delete(0)]);
        let mut seen = None;
        live.with_frozen(&mut |store, generation| {
            assert_eq!(generation, 1);
            // A swap published mid-request must not affect the pinned view.
            live.apply(&[Update::Delete(1)]);
            assert_eq!(store.len(), 8, "pinned snapshot changed under us");
            seen = Some(store.len());
        });
        assert_eq!(seen, Some(8));
        assert_eq!(live.len(), 7, "the concurrent batch did publish");
        assert_eq!(live.generation(), 2);
    }

    #[test]
    fn readers_holding_old_arcs_survive_swaps() {
        let live = Arc::new(versioned(lattice(8)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let live = Arc::clone(&live);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let w = Rect::from_coords(0.0, 0.0, 7.0, 7.0);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let c = live.count(&w);
                        assert!(c <= 64, "count {c} exceeds the dataset");
                        let objs = live.window(&w);
                        assert!(objs.len() <= 64);
                    }
                });
            }
            for round in 0..50u32 {
                let id = round % 64;
                live.apply(&[Update::Move {
                    id,
                    to: Rect::point(asj_geom::Point::new(
                        (round % 8) as f64,
                        (round / 8 % 8) as f64,
                    )),
                }]);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(live.generation(), 50);
        assert_eq!(live.len(), 64, "moves never change cardinality");
    }

    #[test]
    fn restart_resumes_at_the_published_generation() {
        let live = versioned(lattice(3));
        live.apply(&[Update::Delete(0)]);
        live.apply(&[Update::Insert(SpatialObject::point(100, 5.0, 5.0))]);
        let objects = (*live.current_objects()).clone();
        let generation = live.generation();
        // The crash-restart path: rebuild from the last published state.
        let reborn = VersionedStore::with_generation(objects, generation, RTreeStore::new);
        assert_eq!(reborn.generation(), 2);
        assert_eq!(reborn.len(), live.len());
        let w = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        assert_eq!(reborn.count(&w), live.count(&w));
        // Updates continue the numbering — no regression, no reuse.
        assert_eq!(reborn.apply(&[]), 3);
    }

    #[test]
    fn catch_up_adopts_ahead_state_and_never_regresses() {
        let donor = versioned(lattice(3));
        donor.apply(&[Update::Insert(SpatialObject::point(100, 5.0, 5.0))]);
        donor.apply(&[Update::Delete(0)]);
        let lagging = versioned(lattice(3));
        lagging.catch_up((*donor.current_objects()).clone(), donor.generation());
        assert_eq!(lagging.generation(), 2);
        assert_eq!(*lagging.current_objects(), *donor.current_objects());
        let w = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        assert_eq!(lagging.count(&w), donor.count(&w), "served store rebuilt");
        // At or behind the current generation: nothing moves.
        lagging.catch_up(lattice(3), 2);
        lagging.catch_up(lattice(3), 1);
        assert_eq!(lagging.generation(), 2);
        assert_eq!(*lagging.current_objects(), *donor.current_objects());
        // Numbering continues from the adopted generation.
        assert_eq!(lagging.apply(&[]), 3);
    }

    #[test]
    fn frozen_stores_refuse_updates_by_default() {
        let frozen = RTreeStore::new(lattice(3));
        assert_eq!(frozen.apply_updates(&[]), None);
        assert_eq!(frozen.generation(), 0);
        let live = versioned(lattice(3));
        assert_eq!(live.apply_updates(&[Update::Delete(0)]), Some(1));
    }
}
