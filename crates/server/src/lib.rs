//! # asj-server — the two remote spatial services
//!
//! Each dataset of the join lives on its own server. Servers are
//! **primitive and non-cooperative** (paper, Section 1): they answer only
//! `WINDOW`, `COUNT`, `ε-RANGE` (plus the bucket form and the average-area
//! aggregate) through a standard interface, publish no index internals, and
//! refuse anything else.
//!
//! * [`store`] — storage backends: a linear [`store::ScanStore`] (ground
//!   truth for tests) and the production [`store::RTreeStore`] (aR-tree:
//!   `COUNT` is answered from aggregate node counts, as footnote 2 of the
//!   paper prescribes);
//! * [`service`] — [`SpatialService`], the [`asj_net::QueryHandler`] that
//!   dispatches protocol requests onto a store, parallelizing large bucket
//!   queries across scoped threads (the server machines, unlike the PDA,
//!   have cores to spare);
//! * cooperative extension — `CoopLevelMbrs` / `CoopFilterByMbrs` /
//!   `CoopJoinPush` are enabled only when the service is built with
//!   [`ServicePolicy::Cooperative`]; the default non-cooperative policy
//!   answers them with `Refused`, exactly how the paper argues real
//!   services behave (SemiJoin "cannot be applied in our problem").

pub mod gridstore;
pub mod service;
pub mod store;

pub use gridstore::GridStore;
pub use service::{ServicePolicy, SpatialService};
pub use store::{RTreeStore, ScanStore, SpatialStore};
