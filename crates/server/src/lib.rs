//! # asj-server — the two remote spatial services
//!
//! Each dataset of the join lives on its own server. Servers are
//! **primitive and non-cooperative** (paper, Section 1): they answer only
//! `WINDOW`, `COUNT`, `ε-RANGE` (plus the bucket form and the average-area
//! aggregate) through a standard interface, publish no index internals, and
//! refuse anything else.
//!
//! * [`store`] — storage backends: a linear [`store::ScanStore`] (ground
//!   truth for tests) and the production [`store::RTreeStore`] (aR-tree:
//!   `COUNT` is answered from aggregate node counts, as footnote 2 of the
//!   paper prescribes);
//! * [`service`] — [`SpatialService`], the [`asj_net::QueryHandler`] that
//!   dispatches protocol requests onto a store, parallelizing large bucket
//!   queries across scoped threads (the server machines, unlike the PDA,
//!   have cores to spare);
//! * [`versioned`] — generational snapshots: [`versioned::VersionedStore`]
//!   wraps any frozen backend, applies batched updates copy-on-write into
//!   a fresh generation, and atomically publishes it (`RwLock` + `Arc`
//!   swap — readers always see one consistent frozen snapshot, never
//!   in-place mutation);
//! * [`partition`] — the spatial partitioner behind **sharded fleets**:
//!   splits the space into `n` cells (recursive longest-axis cuts, any
//!   `n`), assigns each object wholly to the cell holding its MBR center,
//!   and advertises per-shard bounds that cover boundary straddlers so the
//!   client-side `asj_net::ShardRouter` can prune without losing answers;
//! * cooperative extension — `CoopLevelMbrs` / `CoopFilterByMbrs` /
//!   `CoopJoinPush` are enabled only when the service is built with
//!   [`ServicePolicy::Cooperative`]; the default non-cooperative policy
//!   answers them with `Refused`, exactly how the paper argues real
//!   services behave (SemiJoin "cannot be applied in our problem").

pub mod gridstore;
pub mod partition;
pub mod service;
pub mod store;
pub mod versioned;

pub use gridstore::GridStore;
pub use partition::{partition_objects, split_space, Partition};
pub use service::{ServicePolicy, SpatialService};
pub use store::{RTreeStore, ScanStore, SpatialStore};
pub use versioned::{apply_updates_to, VersionedStore};
