//! Spatial partitioner for shard fleets.
//!
//! A fleet deployment splits one logical dataset across `n` shard servers.
//! The partitioner imposes a **space split**: the global space is cut into
//! `n` disjoint cells by recursive longest-axis proportional cuts (any
//! `n ≥ 1` works, not just powers of two — `n = 7` becomes a 3 : 4 cut
//! whose halves are split further), and every object is assigned *wholly*
//! to the cell containing its MBR center.
//!
//! **Boundary straddlers** — objects whose MBR crosses a cell edge — are
//! *not* replicated. Replication would make per-shard COUNTs overlap, and
//! exact additive counts are what keep a sharded deployment
//! result-identical to a flat one (every algorithm prunes and plans on
//! COUNTs). Instead, each shard *advertises bounds* equal to the union of
//! its members' full MBRs: the bounds grow past the cell edge to cover
//! straddlers, so the router's bounds-based pruning can never skip a shard
//! that holds a qualifying object.
//!
//! Invariants (pinned by the partition property tests):
//!
//! * every object lands in exactly one shard — counts are additive;
//! * an object is answerable from every shard whose advertised bounds
//!   cover its MBR, and its home shard is always among them;
//! * the union of per-shard window answers equals the flat answer.

use asj_geom::{Point, Rect, SpatialObject};

/// Splits `space` into `n` disjoint cells that tile it, by recursive
/// longest-axis proportional cuts. Cells come back in recursion order
/// (left/bottom halves first), which is deterministic.
pub fn split_space(space: &Rect, n: usize) -> Vec<Rect> {
    assert!(n >= 1, "cannot split a space into zero cells");
    let mut out = Vec::with_capacity(n);
    split_into(space, n, &mut out);
    out
}

fn split_into(region: &Rect, n: usize, out: &mut Vec<Rect>) {
    if n == 1 {
        out.push(*region);
        return;
    }
    let low_n = n / 2;
    let high_n = n - low_n;
    let frac = low_n as f64 / n as f64;
    if region.width() >= region.height() {
        let cut = region.min.x + region.width() * frac;
        split_into(
            &Rect::from_coords(region.min.x, region.min.y, cut, region.max.y),
            low_n,
            out,
        );
        split_into(
            &Rect::from_coords(cut, region.min.y, region.max.x, region.max.y),
            high_n,
            out,
        );
    } else {
        let cut = region.min.y + region.height() * frac;
        split_into(
            &Rect::from_coords(region.min.x, region.min.y, region.max.x, cut),
            low_n,
            out,
        );
        split_into(
            &Rect::from_coords(region.min.x, cut, region.max.x, region.max.y),
            high_n,
            out,
        );
    }
}

/// The cell index of `p` among `cells` tiling `space`. Cells are half-open
/// on the max edges they share with a neighbour and closed on the space
/// boundary, so every in-space point matches exactly one cell;
/// out-of-space points (possible under an explicit `with_space` smaller
/// than the data) are clamped onto the space first.
pub fn assign_point(cells: &[Rect], space: &Rect, p: Point) -> usize {
    let clamped = Point::new(
        p.x.clamp(space.min.x, space.max.x),
        p.y.clamp(space.min.y, space.max.y),
    );
    cells
        .iter()
        .position(|c| in_cell(c, space, clamped))
        .expect("cells tile the space, every clamped point matches one")
}

fn in_cell(cell: &Rect, space: &Rect, p: Point) -> bool {
    let hi_x = if cell.max.x >= space.max.x {
        p.x <= cell.max.x
    } else {
        p.x < cell.max.x
    };
    let hi_y = if cell.max.y >= space.max.y {
        p.y <= cell.max.y
    } else {
        p.y < cell.max.y
    };
    p.x >= cell.min.x && p.y >= cell.min.y && hi_x && hi_y
}

/// A dataset split across `n` shards.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The space cells, one per shard.
    pub cells: Vec<Rect>,
    /// The member objects, one list per shard (same order as `cells`).
    pub members: Vec<Vec<SpatialObject>>,
}

impl Partition {
    /// Advertised bounds per shard: the union of its members' MBRs
    /// (`None` for an empty shard — always prunable). May extend beyond
    /// the shard's cell when straddlers are present; that is the point.
    pub fn bounds(&self) -> Vec<Option<Rect>> {
        self.members
            .iter()
            .map(|m| Rect::union_of(m.iter().map(|o| o.mbr)))
            .collect()
    }

    /// Total objects across all shards.
    pub fn len(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// `true` when no shard holds anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Partitions `objects` across `n` shards of `space`. Each object goes to
/// exactly one shard: the cell containing its MBR center.
pub fn partition_objects(space: &Rect, n: usize, objects: Vec<SpatialObject>) -> Partition {
    let cells = split_space(space, n);
    let mut members = vec![Vec::new(); n];
    for o in objects {
        members[assign_point(&cells, space, o.mbr.center())].push(o);
    }
    Partition { cells, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Rect {
        Rect::from_coords(0.0, 0.0, 100.0, 50.0)
    }

    #[test]
    fn split_counts_and_tiling() {
        for n in 1..=9 {
            let cells = split_space(&space(), n);
            assert_eq!(cells.len(), n);
            let area: f64 = cells.iter().map(Rect::area).sum();
            assert!((area - space().area()).abs() < 1e-6, "n={n}: area {area}");
        }
    }

    #[test]
    fn first_cut_is_longest_axis_proportional() {
        let cells = split_space(&space(), 2);
        // 100 × 50 space: cut the x axis at 50.
        assert_eq!(cells[0], Rect::from_coords(0.0, 0.0, 50.0, 50.0));
        assert_eq!(cells[1], Rect::from_coords(50.0, 0.0, 100.0, 50.0));
        // n = 3: first cut at x = 100/3.
        let thirds = split_space(&space(), 3);
        assert_eq!(thirds.len(), 3);
        assert!((thirds[0].max.x - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn every_in_space_point_matches_exactly_one_cell() {
        let cells = split_space(&space(), 7);
        let s = space();
        // Probe a lattice including cell-boundary and space-boundary
        // coordinates.
        let mut xs: Vec<f64> = (0..=20).map(|i| i as f64 * 5.0).collect();
        let mut ys: Vec<f64> = (0..=10).map(|i| i as f64 * 5.0).collect();
        xs.extend(cells.iter().flat_map(|c| [c.min.x, c.max.x]));
        ys.extend(cells.iter().flat_map(|c| [c.min.y, c.max.y]));
        for &x in &xs {
            for &y in &ys {
                let p = Point::new(x, y);
                let matches = cells.iter().filter(|c| in_cell(c, &s, p)).count();
                assert_eq!(matches, 1, "point ({x}, {y}) matched {matches} cells");
            }
        }
    }

    #[test]
    fn out_of_space_objects_are_clamped_deterministically() {
        let cells = split_space(&space(), 4);
        let s = space();
        let far = Point::new(1e6, -1e6);
        let i = assign_point(&cells, &s, far);
        // Clamps to (100, 0): the bottom-right cell.
        assert!(cells[i].contains(&Point::new(100.0, 0.0)));
        // Same answer every time (determinism).
        assert_eq!(i, assign_point(&cells, &s, far));
    }

    #[test]
    fn partition_is_disjoint_and_total() {
        let objects: Vec<SpatialObject> = (0..200)
            .map(|i| SpatialObject::point(i, (i % 20) as f64 * 5.0, (i / 20) as f64 * 5.0))
            .collect();
        let p = partition_objects(&space(), 7, objects.clone());
        assert_eq!(p.len(), objects.len());
        let mut ids: Vec<u32> = p
            .members
            .iter()
            .flat_map(|m| m.iter().map(|o| o.id))
            .collect();
        ids.sort_unstable();
        let want: Vec<u32> = (0..200).collect();
        assert_eq!(ids, want, "every object in exactly one shard");
    }

    #[test]
    fn straddlers_grow_bounds_past_the_cell() {
        // A wide object whose center (x = 65) lies in the right cell but
        // whose MBR reaches x = 40, deep into the left cell: it is stored
        // once (right shard), and that shard's advertised bounds extend
        // past its cell edge to cover the straddling MBR.
        let wide = SpatialObject::new(1, Rect::from_coords(40.0, 10.0, 90.0, 20.0));
        let p = partition_objects(&space(), 2, vec![wide]);
        assert!(p.members[0].is_empty());
        assert_eq!(p.members[1].len(), 1);
        let bounds = p.bounds()[1].unwrap();
        assert!(
            bounds.min.x < p.cells[1].min.x,
            "bounds cover the straddler"
        );
        assert_eq!(bounds, wide.mbr);
    }

    #[test]
    fn empty_shard_has_no_bounds() {
        let left_only = vec![SpatialObject::point(1, 10.0, 10.0)];
        let p = partition_objects(&space(), 2, left_only);
        let bounds = p.bounds();
        assert!(bounds[0].is_some());
        assert!(bounds[1].is_none());
        assert!(!p.is_empty());
        assert!(partition_objects(&space(), 3, vec![]).is_empty());
    }

    #[test]
    fn n1_is_the_flat_dataset() {
        let objects = vec![
            SpatialObject::point(1, 10.0, 10.0),
            SpatialObject::point(2, 90.0, 40.0),
        ];
        let p = partition_objects(&space(), 1, objects.clone());
        assert_eq!(p.cells, vec![space()]);
        assert_eq!(p.members[0], objects);
    }
}
