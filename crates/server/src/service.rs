//! The request handler a server exposes over the network.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use asj_geom::{plane_sweep_join, JoinPredicate, Rect, SpatialObject};
use asj_net::codec::{DedupTag, ObjectsEncoder, QuantCtx, WireVersion};
use asj_net::{QueryHandler, Request, Response};
use bytes::BytesMut;

use crate::store::SpatialStore;

/// Cooperation policy (paper, Sections 1 and 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServicePolicy {
    /// The realistic default: only the primitive query set is answered;
    /// cooperative requests get [`Response::Refused`].
    #[default]
    NonCooperative,
    /// Enables the SemiJoin baseline's extension (level MBRs, semi-join
    /// filter, server-side final join). Used only for Figure 8(b).
    Cooperative,
}

/// Threshold above which bucket ε-RANGE probes are fanned out across
/// scoped threads. Below it, the spawn overhead exceeds the win.
const PARALLEL_BUCKET_THRESHOLD: usize = 512;

/// A spatial service: one dataset, one store, one policy.
///
/// `handle` is `&self` and the store is immutable, so one service instance
/// can serve any number of connections concurrently; the channel server in
/// `asj-net` relies on that.
pub struct SpatialService<S: SpatialStore> {
    store: Arc<S>,
    policy: ServicePolicy,
    /// Worker threads used for large bucket queries.
    bucket_workers: usize,
    /// At-most-once table of the retry-dedup envelope: sender nonce →
    /// (last applied batch seq, the generation its Ack carried). A
    /// duplicated delivery replays the remembered Ack instead of
    /// re-applying, so a retried batch can never double-bump the
    /// generation or double-apply a move.
    dedup: Mutex<HashMap<u64, (u64, u64)>>,
}

impl<S: SpatialStore> SpatialService<S> {
    /// Non-cooperative service over `store`.
    pub fn new(store: S) -> Self {
        SpatialService {
            store: Arc::new(store),
            policy: ServicePolicy::NonCooperative,
            bucket_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            dedup: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the cooperation policy.
    pub fn with_policy(mut self, policy: ServicePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the bucket-query worker count (tests / benches).
    pub fn with_bucket_workers(mut self, workers: usize) -> Self {
        self.bucket_workers = workers.max(1);
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// Dispatches an update batch — handled **before** a snapshot is
    /// pinned (it creates the next one), and never stamped: the Ack's
    /// payload already *is* the generation.
    fn apply(&self, batch: &[asj_net::Update]) -> Response {
        match self.store.apply_updates(batch) {
            Some(generation) => Response::Ack { generation },
            None => Response::Refused,
        }
    }
}

fn bucket_eps_range(
    store: &dyn SpatialStore,
    probes: &[SpatialObject],
    eps: f64,
    workers: usize,
) -> Vec<Vec<SpatialObject>> {
    if probes.len() < PARALLEL_BUCKET_THRESHOLD || workers == 1 {
        return probes
            .iter()
            .map(|p| store.eps_range(&p.mbr, eps))
            .collect();
    }
    // Fan the probes across scoped threads in contiguous chunks; probe
    // order (and thus the response framing) is preserved by reassembling
    // in chunk order. The borrowed store reference is the *pinned
    // snapshot*, so all workers answer from the same generation.
    let chunk = probes.len().div_ceil(workers);
    let mut results: Vec<Vec<Vec<SpatialObject>>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = probes
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    part.iter()
                        .map(|p| store.eps_range(&p.mbr, eps))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("bucket worker panicked"));
        }
    })
    .expect("bucket scope panicked");
    results.into_iter().flatten().collect()
}

/// Answers one query against a pinned store snapshot — the full dispatch,
/// shared by [`QueryHandler::handle`] and the zero-copy `handle_into`
/// (which overrides only the object-streaming arms). `ApplyUpdates` never
/// reaches this: it is dispatched before the snapshot is pinned.
fn answer(
    store: &dyn SpatialStore,
    policy: ServicePolicy,
    bucket_workers: usize,
    req: Request,
) -> Response {
    if req.is_cooperative() && policy == ServicePolicy::NonCooperative {
        return Response::Refused;
    }
    match req {
        Request::Window(w) => Response::Objects(store.window(&w)),
        Request::Count(w) => Response::Count(store.count(&w)),
        Request::EpsRange { q, eps } => Response::Objects(store.eps_range(&q, eps)),
        Request::BucketEpsRange { probes, eps } => {
            Response::Buckets(bucket_eps_range(store, &probes, eps, bucket_workers))
        }
        Request::AvgArea(w) => Response::Area(store.avg_area(&w)),
        Request::MultiCount(windows) => {
            // Batched statistics: one COUNT per window, answered in
            // probe order from the same store path as single COUNTs.
            Response::Counts(windows.iter().map(|w| store.count(w)).collect())
        }
        Request::CoopLevelMbrs(level) => match store.level_mbrs(level as usize) {
            Some(mbrs) => Response::Rects(mbrs),
            None => Response::Refused,
        },
        Request::CoopFilterByMbrs { mbrs, eps } => {
            // Objects within eps of ANY of the shipped MBRs, each once.
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for m in &mbrs {
                for o in store.eps_range(m, eps) {
                    if seen.insert(o.id) {
                        out.push(o);
                    }
                }
            }
            Response::Objects(out)
        }
        Request::CoopJoinPush { objects, eps } => {
            // Final join at the server: pushed (outer) × local (inner).
            let bounds = match Rect::union_of(objects.iter().map(|o| o.mbr)) {
                Some(b) => b.expand(eps),
                None => return Response::Pairs(Vec::new()),
            };
            let local = store.window(&bounds);
            let pred = if eps > 0.0 {
                JoinPredicate::WithinDistance(eps)
            } else {
                JoinPredicate::Intersects
            };
            Response::Pairs(plane_sweep_join(&objects, &local, &pred))
        }
        Request::ApplyUpdates(_) => unreachable!("ApplyUpdates is dispatched before pinning"),
    }
}

impl<S: SpatialStore> QueryHandler for SpatialService<S> {
    /// The at-most-once check behind the retry-dedup envelope. Holding the
    /// table lock across the apply serializes tagged batches, so two
    /// concurrent deliveries of the same `(nonce, seq)` can never both
    /// miss the table and double-apply. Refusals are not recorded — a
    /// frozen store's refusal is stateless and safely repeatable.
    fn handle_tagged_updates(&self, tag: DedupTag, updates: Vec<asj_net::Update>) -> Response {
        let mut table = self.dedup.lock().expect("dedup lock poisoned");
        match table.get(&tag.nonce) {
            Some(&(last_seq, last_gen)) if tag.seq == last_seq => {
                // Duplicate delivery of the batch just applied: replay its
                // remembered Ack.
                return Response::Ack {
                    generation: last_gen,
                };
            }
            Some(&(last_seq, _)) if tag.seq < last_seq => {
                // A straggler retry of a batch superseded by later ones.
                // Its sender moved on (the original delivery was either
                // acknowledged or abandoned); re-applying now would
                // reorder history, so refuse.
                return Response::Refused;
            }
            _ => {}
        }
        let resp = self.apply(&updates);
        if let Response::Ack { generation } = resp {
            table.insert(tag.nonce, (tag.seq, generation));
        }
        resp
    }

    fn handle(&self, req: Request) -> Response {
        if let Request::ApplyUpdates(batch) = req {
            return self.apply(&batch);
        }
        let mut req = Some(req);
        let mut out = None;
        self.store.with_frozen(&mut |store, _generation| {
            let req = req.take().expect("with_frozen invokes exactly once");
            out = Some(answer(store, self.policy, self.bucket_workers, req));
        });
        out.expect("with_frozen must invoke its closure")
    }

    /// The zero-copy serving path for the hot object-shipping queries:
    /// `WINDOW` and `ε-RANGE` answers are encoded **directly into the wire
    /// buffer** by the store's visitor — no intermediate object `Vec`, no
    /// `Response`, single store traversal. When the backend can announce
    /// the exact count more cheaply than the visit (the aR-tree's
    /// aggregate COUNT), the codec reserves the exact frame capacity from
    /// its published constants up front; otherwise the frame's length
    /// prefix is patched after the one and only pass. Byte-identical to
    /// the materializing default (differentially tested in
    /// `tests/zero_copy.rs`).
    /// Every frame served from a generation > 0 is prefixed with the
    /// generation stamp **inside the same pinned-snapshot closure** that
    /// answers, so the stamp can never disagree with the snapshot that
    /// produced the payload. Generation 0 stamps nothing: frozen-store
    /// traffic is bit-identical to the pre-generation wire format. Ack
    /// frames are never stamped (the payload already is the generation).
    /// The same single-traversal path serves both wire versions: the
    /// encoder is parameterized by the negotiated [`WireVersion`] and the
    /// request's quantization context, so v2 frames stream with the same
    /// exact-capacity reservation discipline (from the `*_BYTES_V2`
    /// bounds) as v1.
    fn handle_into(&self, req: Request, wire: WireVersion, buf: &mut BytesMut) {
        if let Request::ApplyUpdates(batch) = req {
            return asj_net::codec::encode_response_versioned(&self.apply(&batch), wire, None, buf);
        }
        // Derived from the *decoded* request — the post-f32-rounding
        // rectangle — so client and server agree on the grid bit-for-bit.
        let ctx = QuantCtx::for_request(&req);
        let mut req = Some(req);
        self.store.with_frozen(&mut |store, generation| {
            asj_net::codec::stamp_generation_versioned(generation, wire, buf);
            match req.take().expect("with_frozen invokes exactly once") {
                Request::Window(w) => {
                    let mut enc = match store.window_count_hint(&w) {
                        Some(n) => ObjectsEncoder::with_exact_count_versioned(buf, n, wire, ctx),
                        None => ObjectsEncoder::new_versioned(buf, wire, ctx),
                    };
                    store.for_each_in_window(&w, &mut |o| enc.push(o));
                    enc.finish();
                }
                Request::EpsRange { q, eps } => {
                    let mut enc = ObjectsEncoder::new_versioned(buf, wire, ctx);
                    store.for_each_eps_range(&q, eps, &mut |o| enc.push(o));
                    enc.finish();
                }
                // Everything else is either scalar (nothing to stream) or
                // cold (cooperative/bucket paths); the materializing
                // default stays the single source of semantics for those.
                other => asj_net::codec::encode_response_versioned(
                    &answer(store, self.policy, self.bucket_workers, other),
                    wire,
                    ctx.as_ref(),
                    buf,
                ),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{RTreeStore, ScanStore};

    fn lattice(n: u32) -> Vec<SpatialObject> {
        (0..n * n)
            .map(|i| SpatialObject::point(i, (i % n) as f64, (i / n) as f64))
            .collect()
    }

    #[test]
    fn primitive_queries_served() {
        let svc = SpatialService::new(ScanStore::new(lattice(10)));
        let w = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        assert_eq!(svc.handle(Request::Count(w)).into_count(), 9);
        assert_eq!(svc.handle(Request::Window(w)).into_objects().len(), 9);
        let objs = svc
            .handle(Request::EpsRange {
                q: Rect::point(asj_geom::Point::new(5.0, 5.0)),
                eps: 1.0,
            })
            .into_objects();
        assert_eq!(objs.len(), 5); // center + 4 axis neighbours
    }

    #[test]
    fn multi_count_matches_single_counts_on_both_stores() {
        let windows = vec![
            Rect::from_coords(0.0, 0.0, 2.0, 2.0),
            Rect::from_coords(3.5, 3.5, 6.5, 6.5),
            Rect::from_coords(50.0, 50.0, 60.0, 60.0), // empty
            Rect::from_coords(-5.0, -5.0, 20.0, 20.0), // everything
        ];
        let scan = SpatialService::new(ScanStore::new(lattice(10)));
        let tree = SpatialService::new(RTreeStore::with_fanout(lattice(10), 4));
        for svc in [
            &scan as &dyn asj_net::QueryHandler,
            &tree as &dyn asj_net::QueryHandler,
        ] {
            let batched = svc
                .handle(Request::MultiCount(windows.clone()))
                .into_counts();
            let singles: Vec<u64> = windows
                .iter()
                .map(|w| svc.handle(Request::Count(*w)).into_count())
                .collect();
            assert_eq!(batched, singles);
        }
        assert_eq!(
            scan.handle(Request::MultiCount(vec![])).into_counts(),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn cooperative_refused_by_default() {
        let svc = SpatialService::new(RTreeStore::new(lattice(10)));
        assert_eq!(svc.handle(Request::CoopLevelMbrs(0)), Response::Refused);
        assert_eq!(
            svc.handle(Request::CoopJoinPush {
                objects: vec![],
                eps: 1.0
            }),
            Response::Refused
        );
    }

    #[test]
    fn cooperative_served_when_enabled() {
        let svc = SpatialService::new(RTreeStore::new(lattice(10)))
            .with_policy(ServicePolicy::Cooperative);
        let mbrs = svc.handle(Request::CoopLevelMbrs(0)).into_rects();
        assert!(!mbrs.is_empty());
        let pairs = svc
            .handle(Request::CoopJoinPush {
                objects: vec![SpatialObject::point(500, 0.0, 0.0)],
                eps: 1.0,
            })
            .into_pairs();
        // (0,0) point joins lattice points (0,0), (1,0), (0,1).
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|&(outer, _)| outer == 500));
    }

    #[test]
    fn coop_level_mbrs_refused_without_hierarchy() {
        let svc =
            SpatialService::new(ScanStore::new(lattice(4))).with_policy(ServicePolicy::Cooperative);
        assert_eq!(svc.handle(Request::CoopLevelMbrs(0)), Response::Refused);
    }

    #[test]
    fn coop_filter_dedups_objects() {
        let svc = SpatialService::new(ScanStore::new(lattice(10)))
            .with_policy(ServicePolicy::Cooperative);
        // Two overlapping MBRs both covering the origin corner.
        let objs = svc
            .handle(Request::CoopFilterByMbrs {
                mbrs: vec![
                    Rect::from_coords(0.0, 0.0, 1.0, 1.0),
                    Rect::from_coords(0.0, 0.0, 1.0, 1.0),
                ],
                eps: 0.0,
            })
            .into_objects();
        let mut ids: Vec<u32> = objs.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), objs.len(), "duplicates leaked");
        assert_eq!(objs.len(), 4);
    }

    #[test]
    fn bucket_parallel_matches_sequential() {
        let store = RTreeStore::new(lattice(40)); // 1600 points
        let probes: Vec<SpatialObject> = lattice(40)
            .into_iter()
            .step_by(2)
            .take(PARALLEL_BUCKET_THRESHOLD + 100)
            .collect();

        let seq = SpatialService::new(RTreeStore::new(lattice(40))).with_bucket_workers(1);
        let par = SpatialService::new(store).with_bucket_workers(4);
        let a = seq
            .handle(Request::BucketEpsRange {
                probes: probes.clone(),
                eps: 1.5,
            })
            .into_buckets();
        let b = par
            .handle(Request::BucketEpsRange { probes, eps: 1.5 })
            .into_buckets();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            let mut xi: Vec<u32> = x.iter().map(|o| o.id).collect();
            let mut yi: Vec<u32> = y.iter().map(|o| o.id).collect();
            xi.sort_unstable();
            yi.sort_unstable();
            assert_eq!(xi, yi);
        }
    }

    #[test]
    fn frozen_service_refuses_updates() {
        let svc = SpatialService::new(ScanStore::new(lattice(4)));
        assert_eq!(
            svc.handle(Request::ApplyUpdates(vec![])),
            Response::Refused,
            "frozen stores must refuse updates"
        );
    }

    #[test]
    fn live_service_acks_updates_and_stamps_generations() {
        use crate::versioned::VersionedStore;
        use asj_net::codec::decode_response_gen;
        use asj_net::Update;

        let svc = SpatialService::new(VersionedStore::new(lattice(10), RTreeStore::new));
        let w = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        // Generation 0 serves bit-identically to a frozen service.
        let mut live_buf = BytesMut::new();
        svc.handle_into(Request::Window(w), WireVersion::V1, &mut live_buf);
        let frozen = SpatialService::new(RTreeStore::new(lattice(10)));
        let mut frozen_buf = BytesMut::new();
        frozen.handle_into(Request::Window(w), WireVersion::V1, &mut frozen_buf);
        assert_eq!(
            live_buf.freeze(),
            frozen_buf.freeze(),
            "generation 0 must be bit-identical to the frozen path"
        );
        // An update batch is acknowledged with the new generation,
        // unstamped.
        let mut ack_buf = BytesMut::new();
        svc.handle_into(
            Request::ApplyUpdates(vec![Update::Delete(0)]),
            WireVersion::V1,
            &mut ack_buf,
        );
        let (ack, stamp) = decode_response_gen(ack_buf.freeze()).unwrap();
        assert_eq!(stamp, 0, "Ack frames are never stamped");
        assert_eq!(ack, Response::Ack { generation: 1 });
        // Queries now serve generation 1 and say so on the wire.
        let mut buf = BytesMut::new();
        svc.handle_into(Request::Window(w), WireVersion::V1, &mut buf);
        let (resp, stamp) = decode_response_gen(buf.freeze()).unwrap();
        assert_eq!(stamp, 1);
        assert_eq!(resp.into_objects().len(), 8); // 9 lattice points minus id 0
        assert_eq!(svc.handle(Request::Count(w)).into_count(), 8);
        assert_eq!(
            svc.handle(Request::ApplyUpdates(vec![])),
            Response::Ack { generation: 2 },
            "empty batches still tick the generation"
        );
    }

    #[test]
    fn duplicate_tagged_deliveries_never_double_bump() {
        use crate::versioned::VersionedStore;
        use asj_net::Update;

        let svc = SpatialService::new(VersionedStore::new(lattice(4), RTreeStore::new));
        let tag = |nonce, seq| DedupTag { nonce, seq };
        let batch = vec![Update::Delete(0)];
        assert_eq!(
            svc.handle_tagged_updates(tag(1, 0), batch.clone()),
            Response::Ack { generation: 1 }
        );
        // The retried delivery replays the remembered Ack: same
        // generation, nothing re-applied.
        assert_eq!(
            svc.handle_tagged_updates(tag(1, 0), batch.clone()),
            Response::Ack { generation: 1 }
        );
        assert_eq!(svc.store().generation(), 1);
        assert_eq!(svc.store().len(), 15, "the delete applied exactly once");
        // The next batch from the same sender advances normally.
        assert_eq!(
            svc.handle_tagged_updates(tag(1, 1), vec![Update::Delete(1)]),
            Response::Ack { generation: 2 }
        );
        // A straggler retry of the superseded batch is refused, never
        // re-applied.
        assert_eq!(
            svc.handle_tagged_updates(tag(1, 0), batch),
            Response::Refused
        );
        assert_eq!(svc.store().generation(), 2);
        // Senders are independent: a different nonce with seq 0 applies.
        assert_eq!(
            svc.handle_tagged_updates(tag(2, 0), vec![]),
            Response::Ack { generation: 3 }
        );
    }

    #[test]
    fn frozen_service_refuses_tagged_updates_without_recording() {
        let svc = SpatialService::new(ScanStore::new(lattice(4)));
        let tag = DedupTag { nonce: 7, seq: 0 };
        assert_eq!(svc.handle_tagged_updates(tag, vec![]), Response::Refused);
        // The refusal was not recorded: the retry takes the same path and
        // is refused again (not replayed as a phantom Ack).
        assert_eq!(svc.handle_tagged_updates(tag, vec![]), Response::Refused);
    }

    #[test]
    fn join_push_empty_outer() {
        let svc =
            SpatialService::new(ScanStore::new(lattice(4))).with_policy(ServicePolicy::Cooperative);
        let pairs = svc
            .handle(Request::CoopJoinPush {
                objects: vec![],
                eps: 5.0,
            })
            .into_pairs();
        assert!(pairs.is_empty());
    }
}
