//! Grid-file storage backend — the classic alternative to the R-tree.
//!
//! A fixed regular grid over the dataset bounds; each cell holds the
//! objects whose MBR intersects it (objects spanning cells are
//! replicated, with id-dedup on query). Per-cell object counts give COUNT
//! queries a fast path for fully-covered cells, the same trick as the
//! aR-tree. Cheap to build (one pass), no balancing — what a simple
//! service might actually run, and a second implementation to
//! differential-test the R-tree against.

use std::collections::HashSet;

use asj_geom::{Grid, Rect, SpatialObject};

use crate::store::SpatialStore;

/// Grid-file store with `k × k` cells over the data bounds.
#[derive(Debug, Clone)]
pub struct GridStore {
    grid: Option<Grid>,
    /// Row-major cells; objects replicated per intersecting cell.
    cells: Vec<Vec<SpatialObject>>,
    /// Exact (non-replicated) object counts fully inside each cell would
    /// undercount; store per-cell intersecting counts for the covered
    /// fast path plus the true total.
    len: usize,
    bounds: Option<Rect>,
    k: u32,
}

impl GridStore {
    /// Builds a store with a grid sized so each cell holds ~64 objects on
    /// uniform data.
    pub fn new(objects: Vec<SpatialObject>) -> Self {
        let k = ((objects.len() as f64 / 64.0).sqrt().ceil() as u32).clamp(1, 512);
        GridStore::with_resolution(objects, k)
    }

    /// Builds with an explicit `k × k` resolution.
    pub fn with_resolution(objects: Vec<SpatialObject>, k: u32) -> Self {
        let bounds = Rect::union_of(objects.iter().map(|o| o.mbr));
        let Some(b) = bounds else {
            return GridStore {
                grid: None,
                cells: Vec::new(),
                len: 0,
                bounds: None,
                k,
            };
        };
        // Degenerate bounds (single point) get a tiny pad so the grid has
        // area.
        let b = if b.area() == 0.0 { b.expand(1.0) } else { b };
        let grid = Grid::square(b, k);
        let mut cells = vec![Vec::new(); grid.len()];
        for o in &objects {
            // Only the cells whose index range the MBR covers can
            // intersect it — O(covered cells) per object instead of
            // scanning all k² cells. The per-cell intersection re-check
            // keeps the contents identical to a full scan.
            let Some((is, js)) = grid.covering(&o.mbr) else {
                continue;
            };
            for j in js {
                for i in is.clone() {
                    if grid.cell(i, j).intersects(&o.mbr) {
                        cells[(j as usize) * k as usize + i as usize].push(*o);
                    }
                }
            }
        }
        GridStore {
            grid: Some(grid),
            cells,
            len: objects.len(),
            bounds: Some(b),
            k,
        }
    }

    /// Grid resolution per axis.
    pub fn resolution(&self) -> u32 {
        self.k
    }

    /// Visits each object intersecting `probe` exactly once.
    fn visit(&self, probe: &Rect, f: &mut dyn FnMut(&SpatialObject)) {
        let Some(grid) = &self.grid else { return };
        let mut seen = HashSet::new();
        for (idx, cell) in grid.cells().enumerate() {
            if !cell.intersects(probe) {
                continue;
            }
            for o in &self.cells[idx] {
                if o.mbr.intersects(probe) && seen.insert(o.id) {
                    f(o);
                }
            }
        }
    }
}

impl SpatialStore for GridStore {
    fn for_each_in_window(&self, w: &Rect, f: &mut dyn FnMut(&SpatialObject)) {
        self.visit(w, f)
    }

    fn for_each_eps_range(&self, q: &Rect, eps: f64, f: &mut dyn FnMut(&SpatialObject)) {
        let Some(grid) = &self.grid else { return };
        let probe = q.expand(eps);
        let mut seen = HashSet::new();
        for (idx, cell) in grid.cells().enumerate() {
            if cell.min_dist(q) > eps {
                continue;
            }
            for o in &self.cells[idx] {
                if o.mbr.within_distance(q, eps) && o.mbr.intersects(&probe) && seen.insert(o.id) {
                    f(o);
                }
            }
        }
    }

    fn count(&self, w: &Rect) -> u64 {
        let mut n = 0;
        self.visit(w, &mut |_| n += 1);
        n
    }

    fn avg_area(&self, w: &Rect) -> f64 {
        let mut n = 0u64;
        let mut sum = 0.0;
        self.visit(w, &mut |o| {
            n += 1;
            sum += o.mbr.area();
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn level_mbrs(&self, _levels_above_leaves: usize) -> Option<Vec<Rect>> {
        None // flat structure: nothing hierarchical to publish
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bounds(&self) -> Option<Rect> {
        self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ScanStore;
    use asj_geom::Point;

    fn dataset() -> Vec<SpatialObject> {
        // Mix of points and boxes, some spanning many cells.
        let mut v: Vec<SpatialObject> = (0..200)
            .map(|i| SpatialObject::point(i, (i % 20) as f64 * 5.0, (i / 20) as f64 * 10.0))
            .collect();
        v.push(SpatialObject::new(
            900,
            Rect::from_coords(0.0, 0.0, 95.0, 90.0),
        ));
        v.push(SpatialObject::new(
            901,
            Rect::from_coords(40.0, 40.0, 60.0, 60.0),
        ));
        v
    }

    #[test]
    fn matches_scan_store_on_all_queries() {
        let scan = ScanStore::new(dataset());
        let grid = GridStore::with_resolution(dataset(), 7);
        for w in [
            Rect::from_coords(0.0, 0.0, 30.0, 30.0),
            Rect::from_coords(42.0, 38.0, 58.0, 61.0),
            Rect::from_coords(-10.0, -10.0, 200.0, 200.0),
            Rect::from_coords(500.0, 500.0, 600.0, 600.0),
        ] {
            let mut a: Vec<u32> = scan.window(&w).iter().map(|o| o.id).collect();
            let mut b: Vec<u32> = grid.window(&w).iter().map(|o| o.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {w:?}");
            assert_eq!(scan.count(&w), grid.count(&w));
            assert!((scan.avg_area(&w) - grid.avg_area(&w)).abs() < 1e-9);
        }
        let q = Rect::point(Point::new(50.0, 50.0));
        for eps in [0.0, 5.0, 25.0, 500.0] {
            let mut a: Vec<u32> = scan.eps_range(&q, eps).iter().map(|o| o.id).collect();
            let mut b: Vec<u32> = grid.eps_range(&q, eps).iter().map(|o| o.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "eps={eps}");
        }
    }

    #[test]
    fn replication_never_duplicates_results() {
        // The big box intersects every cell; it must appear once.
        let grid = GridStore::with_resolution(dataset(), 7);
        let hits = grid.window(&Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let big = hits.iter().filter(|o| o.id == 900).count();
        assert_eq!(big, 1);
    }

    #[test]
    fn empty_and_degenerate_datasets() {
        let empty = GridStore::new(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.count(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)), 0);
        assert!(empty.bounds().is_none());
        assert!(empty.level_mbrs(0).is_none());

        let single = GridStore::new(vec![SpatialObject::point(1, 5.0, 5.0)]);
        assert_eq!(single.len(), 1);
        assert_eq!(single.count(&Rect::from_coords(0.0, 0.0, 10.0, 10.0)), 1);
    }

    /// The pre-optimization O(n·k²) construction: scan every cell per
    /// object. Kept as the differential oracle for the range-insert build.
    fn with_resolution_full_scan(objects: Vec<SpatialObject>, k: u32) -> GridStore {
        let mut store = GridStore::with_resolution(Vec::new(), k);
        let Some(b) = Rect::union_of(objects.iter().map(|o| o.mbr)) else {
            return store;
        };
        let b = if b.area() == 0.0 { b.expand(1.0) } else { b };
        let grid = asj_geom::Grid::square(b, k);
        let mut cells = vec![Vec::new(); grid.len()];
        for o in &objects {
            for (idx, cell) in grid.cells().enumerate() {
                if cell.intersects(&o.mbr) {
                    cells[idx].push(*o);
                }
            }
        }
        store.grid = Some(grid);
        store.cells = cells;
        store.len = objects.len();
        store.bounds = Some(b);
        store
    }

    #[test]
    fn range_insert_matches_full_scan_construction() {
        let fast = GridStore::with_resolution(dataset(), 7);
        let slow = with_resolution_full_scan(dataset(), 7);
        assert_eq!(fast.cells.len(), slow.cells.len());
        for (idx, (a, b)) in fast.cells.iter().zip(slow.cells.iter()).enumerate() {
            let ai: Vec<u32> = a.iter().map(|o| o.id).collect();
            let bi: Vec<u32> = b.iter().map(|o| o.id).collect();
            assert_eq!(ai, bi, "cell {idx} differs");
        }
    }

    #[test]
    fn clustered_high_resolution_build_is_fast_and_correct() {
        // 10 K objects clustered in a corner of a huge space, k = 512:
        // the old full-scan construction performs ~2.6 G cell tests here;
        // the range insert must finish well under a second.
        let mut objs: Vec<SpatialObject> = (0..10_000)
            .map(|i| SpatialObject::point(i, (i % 100) as f64 * 0.01, (i / 100) as f64 * 0.01))
            .collect();
        objs.push(SpatialObject::point(999_999, 10_000.0, 10_000.0)); // stretches bounds
        let start = std::time::Instant::now();
        let fast = GridStore::with_resolution(objs.clone(), 512);
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "k=512 build took {elapsed:?}"
        );
        // Differential against the full-scan oracle at a resolution the
        // oracle can afford, plus query-level checks at k = 512.
        let slow = with_resolution_full_scan(objs.clone(), 64);
        let mid = GridStore::with_resolution(objs, 64);
        for w in [
            Rect::from_coords(0.0, 0.0, 0.5, 0.5),
            Rect::from_coords(0.3, 0.3, 0.31, 0.31),
            Rect::from_coords(5_000.0, 5_000.0, 10_000.0, 10_000.0),
            Rect::from_coords(-1.0, -1.0, 10_001.0, 10_001.0),
        ] {
            assert_eq!(mid.count(&w), slow.count(&w), "window {w:?}");
            assert_eq!(fast.count(&w), slow.count(&w), "window {w:?}");
        }
    }

    #[test]
    fn resolution_is_clamped_and_scales() {
        assert!(GridStore::new(Vec::new()).resolution() >= 1);
        let big = GridStore::new(
            (0..10_000)
                .map(|i| SpatialObject::point(i, (i % 100) as f64, (i / 100) as f64))
                .collect(),
        );
        assert!(big.resolution() >= 10);
    }
}
