//! Property tests: the R-tree must be indistinguishable from a linear scan
//! for every query type, under both construction paths.

use asj_geom::{Point, Rect, SpatialObject};
use asj_rtree::RTree;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (0i32..=2000).prop_map(|v| v as f64 * 0.5)
}

fn object(id: u32) -> impl Strategy<Value = SpatialObject> {
    (coord(), coord(), 0.0f64..30.0, 0.0f64..30.0)
        .prop_map(move |(x, y, w, h)| SpatialObject::new(id, Rect::from_coords(x, y, x + w, y + h)))
}

fn dataset(max: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((coord(), coord(), 0.0f64..30.0, 0.0f64..30.0), 0..max).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| {
                    SpatialObject::new(i as u32, Rect::from_coords(x, y, x + w, y + h))
                })
                .collect()
        },
    )
}

fn ids(mut v: Vec<SpatialObject>) -> Vec<u32> {
    let mut out: Vec<u32> = v.drain(..).map(|o| o.id).collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_and_count_match_scan(data in dataset(120), w in (coord(), coord(), coord(), coord())) {
        let window = Rect::new(Point::new(w.0, w.1), Point::new(w.2, w.3));
        let tree = RTree::bulk_load(data.clone(), 6);
        tree.check_invariants();
        let want: Vec<u32> = {
            let mut v: Vec<u32> = data
                .iter()
                .filter(|o| o.mbr.intersects(&window))
                .map(|o| o.id)
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(ids(tree.window(&window)), want.clone());
        prop_assert_eq!(tree.count(&window), want.len() as u64);
    }

    #[test]
    fn eps_range_matches_scan(data in dataset(100), q in (coord(), coord()), eps in 0.0f64..300.0) {
        let probe = Rect::point(Point::new(q.0, q.1));
        let tree = RTree::bulk_load(data.clone(), 8);
        let want: Vec<u32> = {
            let mut v: Vec<u32> = data
                .iter()
                .filter(|o| o.mbr.within_distance(&probe, eps))
                .map(|o| o.id)
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(ids(tree.eps_range(&probe, eps)), want.clone());
        prop_assert_eq!(tree.eps_range_count(&probe, eps), want.len() as u64);
    }

    #[test]
    fn incremental_equals_bulk(data in dataset(150)) {
        let bulk = RTree::bulk_load(data.clone(), 5);
        let mut inc = RTree::new(5);
        for &o in &data {
            inc.insert(o);
        }
        bulk.check_invariants();
        inc.check_invariants();
        prop_assert_eq!(bulk.len(), inc.len());
        let everything = Rect::from_coords(-10.0, -10.0, 2000.0, 2000.0);
        prop_assert_eq!(ids(bulk.window(&everything)), ids(inc.window(&everything)));
    }

    #[test]
    fn insert_keeps_invariants_at_every_step(data in dataset(80), extra in object(9999)) {
        let mut tree = RTree::new(4);
        for &o in &data {
            tree.insert(o);
        }
        tree.check_invariants();
        tree.insert(extra);
        tree.check_invariants();
        prop_assert_eq!(tree.len(), data.len() + 1);
    }

    #[test]
    fn area_stats_match_scan_fold(
        data in dataset(120),
        w in (coord(), coord(), coord(), coord()),
    ) {
        // The aggregate (count, Σ area) walk — which shortcuts at fully
        // covered nodes — must agree with a linear fold over the same
        // window, for bulk-loaded and incrementally built trees alike.
        let window = Rect::new(Point::new(w.0, w.1), Point::new(w.2, w.3));
        let (want_n, want_sum) = data
            .iter()
            .filter(|o| o.mbr.intersects(&window))
            .fold((0u64, 0.0f64), |(n, a), o| (n + 1, a + o.mbr.area()));
        let bulk = RTree::bulk_load(data.clone(), 6);
        let mut inc = RTree::new(4);
        for &o in &data {
            inc.insert(o);
        }
        for tree in [&bulk, &inc] {
            let (n, sum) = tree.area_stats(&window);
            prop_assert_eq!(n, want_n);
            prop_assert!(
                (sum - want_sum).abs() <= 1e-9 * want_sum.max(1.0),
                "aggregate Σ area {} vs scan fold {}", sum, want_sum
            );
        }
    }

    #[test]
    fn leaf_level_mbrs_cover_everything(data in dataset(200)) {
        prop_assume!(!data.is_empty());
        let tree = RTree::bulk_load(data.clone(), 6);
        let leaves = tree.level_mbrs(0);
        for o in &data {
            prop_assert!(
                leaves.iter().any(|m| m.contains_rect(&o.mbr)),
                "object {} escapes all leaf MBRs", o.id
            );
        }
        // Level sizes shrink monotonically toward the root.
        let h = tree.height();
        for lvl in 1..h {
            prop_assert!(tree.level_mbrs(lvl).len() <= tree.level_mbrs(lvl - 1).len());
        }
    }
}
