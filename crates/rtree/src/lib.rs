//! # asj-rtree — a from-scratch aggregate R-tree
//!
//! The servers in the IPDPS 2006 paper answer `COUNT` queries "fast, by data
//! structures such as the aR-tree [11]". This crate implements that
//! substrate: a classic Guttman R-tree with
//!
//! * **quadratic-split insertion** for incremental loads,
//! * **STR (Sort-Tile-Recursive) bulk loading** for the 35 K-object rail
//!   dataset,
//! * **aggregate counts in every node** (the aR-tree of Papadias et al.),
//!   so `COUNT(window)` visits only nodes whose MBR straddles the window
//!   boundary,
//! * window, ε-range and count queries,
//! * **level-MBR extraction** — the "one level of MBRs" the SemiJoin [16]
//!   baseline ships between servers.
//!
//! The tree is single-threaded and immutable-after-build in server use;
//! concurrency lives in the server runtime, not here.

mod bulk;
mod node;
mod tree;

pub use tree::{RTree, DEFAULT_MAX_ENTRIES};
