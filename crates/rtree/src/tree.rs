//! The R-tree proper: insertion with quadratic split, and the query set the
//! spatial servers expose.

use crate::bulk;
use crate::node::{mbr_of_nodes, mbr_of_objects, Node, NodeKind};
use asj_geom::{Rect, SpatialObject};

/// Default maximum node fanout. 16 keeps trees shallow at the paper's
/// cardinalities (1 K–35 K objects) while exercising multi-level splits.
pub const DEFAULT_MAX_ENTRIES: usize = 16;

/// An aggregate R-tree over [`SpatialObject`]s.
///
/// See the crate docs for the feature set. `max_entries` is the Guttman `M`;
/// `min_entries` is fixed at `M / 2 ... actually ⌈40 % · M⌉`, the classic
/// sweet spot.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    max_entries: usize,
    min_entries: usize,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        RTree::new(DEFAULT_MAX_ENTRIES)
    }
}

impl RTree {
    /// The library-wide default fanout ([`DEFAULT_MAX_ENTRIES`]).
    pub fn default_max_entries() -> usize {
        DEFAULT_MAX_ENTRIES
    }

    /// Creates an empty tree with the given maximum fanout (`≥ 4`).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        RTree {
            root: None,
            max_entries,
            min_entries: (max_entries * 2).div_ceil(5).max(2),
            len: 0,
        }
    }

    /// Bulk loads with Sort-Tile-Recursive packing — O(n log n), produces a
    /// tree with near-100 % node utilization.
    pub fn bulk_load(objects: Vec<SpatialObject>, max_entries: usize) -> Self {
        let mut t = RTree::new(max_entries);
        t.len = objects.len();
        t.root = bulk::build(objects, max_entries);
        t
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height: 0 for empty, 1 for a single leaf root.
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut node = self.root.as_ref();
        while let Some(n) = node {
            h += 1;
            node = match &n.kind {
                NodeKind::Internal(cs) => cs.first(),
                NodeKind::Leaf(_) => None,
            };
        }
        h
    }

    /// MBR of the whole dataset, if any.
    pub fn root_mbr(&self) -> Option<Rect> {
        self.root.as_ref().map(|r| r.mbr)
    }

    /// Inserts one object (Guttman: least-enlargement descent, quadratic
    /// split on overflow, root split grows the tree).
    pub fn insert(&mut self, obj: SpatialObject) {
        self.len += 1;
        match self.root.take() {
            None => self.root = Some(Node::leaf(vec![obj])),
            Some(mut root) => {
                if let Some(sibling) = self.insert_rec(&mut root, obj) {
                    self.root = Some(Node::internal(vec![root, sibling]));
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    fn insert_rec(&self, node: &mut Node, obj: SpatialObject) -> Option<Node> {
        match &mut node.kind {
            NodeKind::Leaf(entries) => {
                entries.push(obj);
                if entries.len() > self.max_entries {
                    let spilled = std::mem::take(entries);
                    let (a, b) = quadratic_split(spilled, |o| o.mbr, self.min_entries);
                    *node = Node::leaf(a);
                    Some(Node::leaf(b))
                } else {
                    node.refresh();
                    None
                }
            }
            NodeKind::Internal(children) => {
                let idx = choose_subtree(children, &obj.mbr);
                let split = self.insert_rec(&mut children[idx], obj);
                if let Some(sibling) = split {
                    children.push(sibling);
                    if children.len() > self.max_entries {
                        let spilled = std::mem::take(children);
                        let (a, b) = quadratic_split(spilled, |n| n.mbr, self.min_entries);
                        *node = Node::internal(a);
                        return Some(Node::internal(b));
                    }
                }
                node.refresh();
                None
            }
        }
    }

    /// `WINDOW(w)`: all objects whose MBR intersects `w`.
    pub fn window(&self, w: &Rect) -> Vec<SpatialObject> {
        let mut out = Vec::new();
        self.for_each_in_window(w, &mut |o| out.push(*o));
        out
    }

    /// Visits every object intersecting `w`, in tree (traversal) order —
    /// the same order [`RTree::window`] materializes, which the zero-copy
    /// serving path in `asj-server` relies on for wire-byte identity.
    pub fn for_each_in_window(&self, w: &Rect, f: &mut dyn FnMut(&SpatialObject)) {
        if let Some(root) = &self.root {
            window_rec(root, w, f);
        }
    }

    /// Visits every object within distance `eps` of `q`, in tree order —
    /// the visitor form of [`RTree::eps_range`].
    pub fn for_each_eps_range(&self, q: &Rect, eps: f64, f: &mut dyn FnMut(&SpatialObject)) {
        if let Some(root) = &self.root {
            range_rec(root, q, eps, f);
        }
    }

    /// `COUNT(w)`: number of objects intersecting `w`. Uses the aggregate
    /// counts: subtrees fully inside `w` contribute without being visited.
    pub fn count(&self, w: &Rect) -> u64 {
        match &self.root {
            Some(root) => count_rec(root, w),
            None => 0,
        }
    }

    /// `ε-RANGE(q, ε)`: objects within Euclidean distance `eps` of the
    /// rectangle `q` (a degenerate `q` gives the paper's point form).
    pub fn eps_range(&self, q: &Rect, eps: f64) -> Vec<SpatialObject> {
        let mut out = Vec::new();
        self.for_each_eps_range(q, eps, &mut |o| out.push(*o));
        out
    }

    /// Count-only variant of [`RTree::eps_range`].
    pub fn eps_range_count(&self, q: &Rect, eps: f64) -> u64 {
        match &self.root {
            Some(root) => range_count_rec(root, q, eps),
            None => 0,
        }
    }

    /// `(count, Σ area)` of the objects intersecting `w`, answered from the
    /// aR aggregates: subtrees fully inside `w` contribute their
    /// pre-computed `(count, area_sum)` without being visited — `AvgArea`
    /// costs the same as `COUNT` instead of materializing the window.
    pub fn area_stats(&self, w: &Rect) -> (u64, f64) {
        match &self.root {
            Some(root) => area_stats_rec(root, w),
            None => (0, 0.0),
        }
    }

    /// The MBRs of all nodes `levels_above_leaves` levels above the leaf
    /// level (0 = the leaf nodes themselves). The SemiJoin baseline ships
    /// level 0 — the paper's "second to last level of the R-tree".
    ///
    /// Returns an empty vector when the tree is shorter than requested.
    pub fn level_mbrs(&self, levels_above_leaves: usize) -> Vec<Rect> {
        let h = self.height();
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            if levels_above_leaves < h {
                // Depth (from root) of the wanted level: leaves are depth
                // h-1; we want depth h-1-levels_above_leaves.
                let want = h - 1 - levels_above_leaves;
                collect_level(root, 0, want, &mut out);
            }
        }
        out
    }

    /// All stored objects, in tree order.
    pub fn objects(&self) -> Vec<SpatialObject> {
        let everything = self
            .root_mbr()
            .map(|m| m.expand(1.0))
            .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 0.0, 0.0));
        self.window(&everything)
    }

    /// Validates structural invariants (MBR containment, aggregate counts,
    /// fanout bounds); test / debug aid. Returns the number of nodes.
    pub fn check_invariants(&self) -> usize {
        match &self.root {
            None => 0,
            Some(root) => {
                let (nodes, count) = check_rec(root, self.max_entries, true);
                assert_eq!(
                    count, self.len as u64,
                    "aggregate count diverges from len()"
                );
                nodes
            }
        }
    }
}

fn choose_subtree(children: &[Node], mbr: &Rect) -> usize {
    // Least enlargement, ties by smallest area — Guttman's ChooseLeaf.
    let mut best = 0usize;
    let mut best_enl = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, c) in children.iter().enumerate() {
        let enl = c.mbr.enlargement(mbr);
        let area = c.mbr.area();
        if enl < best_enl || (enl == best_enl && area < best_area) {
            best = i;
            best_enl = enl;
            best_area = area;
        }
    }
    best
}

/// Guttman's quadratic split over any entry type with an MBR accessor.
fn quadratic_split<T, F: Fn(&T) -> Rect>(
    entries: Vec<T>,
    mbr_of: F,
    min_entries: usize,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(entries.len() >= 2);
    // Pick seeds: the pair wasting the most area when paired.
    let mut seed_a = 0;
    let mut seed_b = 1;
    let mut worst = f64::NEG_INFINITY;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let mi = mbr_of(&entries[i]);
            let mj = mbr_of(&entries[j]);
            let waste = mi.union(&mj).area() - mi.area() - mj.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a: Vec<T> = Vec::new();
    let mut group_b: Vec<T> = Vec::new();
    let mut mbr_a: Option<Rect> = None;
    let mut mbr_b: Option<Rect> = None;
    let mut rest: Vec<T> = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if i == seed_a {
            mbr_a = Some(mbr_of(&e));
            group_a.push(e);
        } else if i == seed_b {
            mbr_b = Some(mbr_of(&e));
            group_b.push(e);
        } else {
            rest.push(e);
        }
    }
    let mut mbr_a = mbr_a.expect("seed a");
    let mut mbr_b = mbr_b.expect("seed b");

    // Assign the rest by least enlargement, forcing assignment when a group
    // must absorb everything left to reach the minimum.
    while let Some(e) = rest.pop() {
        let remaining = rest.len();
        if group_a.len() + remaining < min_entries {
            mbr_a = mbr_a.union(&mbr_of(&e));
            group_a.push(e);
            continue;
        }
        if group_b.len() + remaining < min_entries {
            mbr_b = mbr_b.union(&mbr_of(&e));
            group_b.push(e);
            continue;
        }
        let m = mbr_of(&e);
        let enl_a = mbr_a.enlargement(&m);
        let enl_b = mbr_b.enlargement(&m);
        if enl_a < enl_b || (enl_a == enl_b && mbr_a.area() <= mbr_b.area()) {
            mbr_a = mbr_a.union(&m);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.union(&m);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

fn window_rec(node: &Node, w: &Rect, f: &mut dyn FnMut(&SpatialObject)) {
    if !node.mbr.intersects(w) {
        return;
    }
    match &node.kind {
        NodeKind::Leaf(es) => es.iter().filter(|o| o.mbr.intersects(w)).for_each(f),
        NodeKind::Internal(cs) => cs.iter().for_each(|c| window_rec(c, w, f)),
    }
}

fn count_rec(node: &Node, w: &Rect) -> u64 {
    if !node.mbr.intersects(w) {
        return 0;
    }
    if w.contains_rect(&node.mbr) {
        return node.count; // aR-tree shortcut: whole subtree qualifies.
    }
    match &node.kind {
        NodeKind::Leaf(es) => es.iter().filter(|o| o.mbr.intersects(w)).count() as u64,
        NodeKind::Internal(cs) => cs.iter().map(|c| count_rec(c, w)).sum(),
    }
}

fn range_rec(node: &Node, q: &Rect, eps: f64, f: &mut dyn FnMut(&SpatialObject)) {
    if node.mbr.min_dist(q) > eps {
        return;
    }
    match &node.kind {
        NodeKind::Leaf(es) => es
            .iter()
            .filter(|o| o.mbr.within_distance(q, eps))
            .for_each(f),
        NodeKind::Internal(cs) => cs.iter().for_each(|c| range_rec(c, q, eps, f)),
    }
}

fn area_stats_rec(node: &Node, w: &Rect) -> (u64, f64) {
    if !node.mbr.intersects(w) {
        return (0, 0.0);
    }
    if w.contains_rect(&node.mbr) {
        return (node.count, node.area_sum); // aR shortcut, as for COUNT
    }
    match &node.kind {
        NodeKind::Leaf(es) => es
            .iter()
            .filter(|o| o.mbr.intersects(w))
            .fold((0, 0.0), |(n, a), o| (n + 1, a + o.mbr.area())),
        NodeKind::Internal(cs) => cs
            .iter()
            .map(|c| area_stats_rec(c, w))
            .fold((0, 0.0), |(n, a), (cn, ca)| (n + cn, a + ca)),
    }
}

fn range_count_rec(node: &Node, q: &Rect, eps: f64) -> u64 {
    if node.mbr.min_dist(q) > eps {
        return 0;
    }
    match &node.kind {
        NodeKind::Leaf(es) => es.iter().filter(|o| o.mbr.within_distance(q, eps)).count() as u64,
        NodeKind::Internal(cs) => cs.iter().map(|c| range_count_rec(c, q, eps)).sum(),
    }
}

fn collect_level(node: &Node, depth: usize, want: usize, out: &mut Vec<Rect>) {
    if depth == want {
        out.push(node.mbr);
        return;
    }
    if let NodeKind::Internal(cs) = &node.kind {
        for c in cs {
            collect_level(c, depth + 1, want, out);
        }
    }
}

fn check_rec(node: &Node, max_entries: usize, is_root: bool) -> (usize, u64) {
    assert!(
        node.fanout() <= max_entries,
        "node overflow: {} > {max_entries}",
        node.fanout()
    );
    if !is_root {
        assert!(node.fanout() >= 1, "empty non-root node");
    }
    match &node.kind {
        NodeKind::Leaf(es) => {
            assert_eq!(node.count, es.len() as u64, "leaf count mismatch");
            // Aggregates are always recomputed from direct content in
            // entry order, so the stored sum must be *bit*-identical to
            // this recompute — no tolerance.
            assert_eq!(
                node.area_sum,
                crate::node::area_of_objects(es),
                "leaf area aggregate stale"
            );
            assert_eq!(node.mbr, mbr_of_objects(es), "leaf mbr stale");
            (1, node.count)
        }
        NodeKind::Internal(cs) => {
            assert_eq!(node.mbr, mbr_of_nodes(cs), "internal mbr stale");
            assert_eq!(
                node.area_sum,
                cs.iter().map(|c| c.area_sum).sum::<f64>(),
                "internal area aggregate stale"
            );
            let mut nodes = 1;
            let mut count = 0;
            for c in cs {
                assert!(node.mbr.contains_rect(&c.mbr), "child escapes parent mbr");
                let (n, cnt) = check_rec(c, max_entries, false);
                nodes += n;
                count += cnt;
            }
            assert_eq!(node.count, count, "internal aggregate mismatch");
            (nodes, count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so the tests need no rand dependency here.
    fn lcg_points(n: usize, seed: u64) -> Vec<SpatialObject> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        (0..n)
            .map(|i| SpatialObject::point(i as u32, next() * 1000.0, next() * 1000.0))
            .collect()
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = RTree::default();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.count(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)), 0);
        assert!(t.window(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.level_mbrs(0).is_empty());
        assert_eq!(t.check_invariants(), 0);
    }

    #[test]
    fn insert_then_query_small() {
        let mut t = RTree::new(4);
        for o in lcg_points(3, 1) {
            t.insert(o);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.height(), 1);
        let all = t.window(&Rect::from_coords(-1.0, -1.0, 1001.0, 1001.0));
        assert_eq!(all.len(), 3);
        t.check_invariants();
    }

    #[test]
    fn insert_splits_grow_tree() {
        let mut t = RTree::new(4);
        for o in lcg_points(500, 2) {
            t.insert(o);
        }
        assert_eq!(t.len(), 500);
        assert!(
            t.height() >= 3,
            "expected multi-level tree, h={}",
            t.height()
        );
        t.check_invariants();
    }

    #[test]
    fn window_matches_linear_scan() {
        let pts = lcg_points(800, 3);
        let mut t = RTree::new(8);
        for &o in &pts {
            t.insert(o);
        }
        for w in [
            Rect::from_coords(0.0, 0.0, 100.0, 100.0),
            Rect::from_coords(250.0, 250.0, 750.0, 600.0),
            Rect::from_coords(990.0, 990.0, 1000.0, 1000.0),
            Rect::from_coords(-50.0, -50.0, -1.0, -1.0),
        ] {
            let mut got: Vec<u32> = t.window(&w).iter().map(|o| o.id).collect();
            let mut want: Vec<u32> = pts
                .iter()
                .filter(|o| o.mbr.intersects(&w))
                .map(|o| o.id)
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(t.count(&w), want.len() as u64);
        }
    }

    #[test]
    fn eps_range_matches_linear_scan() {
        let pts = lcg_points(600, 4);
        let t = RTree::bulk_load(pts.clone(), 8);
        let q = Rect::point(asj_geom::Point::new(500.0, 500.0));
        for eps in [0.0, 10.0, 120.0, 2000.0] {
            let mut got: Vec<u32> = t.eps_range(&q, eps).iter().map(|o| o.id).collect();
            let mut want: Vec<u32> = pts
                .iter()
                .filter(|o| o.mbr.within_distance(&q, eps))
                .map(|o| o.id)
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "eps={eps}");
            assert_eq!(t.eps_range_count(&q, eps), want.len() as u64);
        }
    }

    #[test]
    fn bulk_load_equivalent_to_inserts() {
        let pts = lcg_points(1000, 5);
        let bulk = RTree::bulk_load(pts.clone(), 16);
        let mut inc = RTree::new(16);
        for &o in &pts {
            inc.insert(o);
        }
        bulk.check_invariants();
        inc.check_invariants();
        let w = Rect::from_coords(100.0, 100.0, 400.0, 900.0);
        assert_eq!(bulk.count(&w), inc.count(&w));
        assert_eq!(bulk.len(), inc.len());
        // Bulk-loaded trees are well packed: height near log_M(n).
        assert!(bulk.height() <= inc.height());
    }

    #[test]
    fn level_mbrs_cover_dataset() {
        let pts = lcg_points(2000, 6);
        let t = RTree::bulk_load(pts.clone(), 16);
        let h = t.height();
        assert!(h >= 3);
        // Leaf-level MBRs (the SemiJoin payload) jointly cover every object.
        let leaf_mbrs = t.level_mbrs(0);
        assert!(!leaf_mbrs.is_empty());
        for o in &pts {
            assert!(
                leaf_mbrs.iter().any(|m| m.contains_rect(&o.mbr)),
                "object {} not covered",
                o.id
            );
        }
        // Root level has exactly one MBR.
        assert_eq!(t.level_mbrs(h - 1).len(), 1);
        // Too-high level: empty.
        assert!(t.level_mbrs(h).is_empty());
        // Levels shrink going up.
        assert!(t.level_mbrs(0).len() >= t.level_mbrs(1).len());
    }

    #[test]
    fn area_stats_match_window_materialization() {
        // Rect objects (nonzero areas) in both bulk-loaded and
        // incrementally built trees: the aggregate answer must match the
        // window-materializing fold to float tolerance on every query,
        // and exactly on full coverage of exactly-representable areas.
        let boxes: Vec<SpatialObject> = (0..400)
            .map(|i| {
                let x = (i % 20) as f64 * 50.0;
                let y = (i / 20) as f64 * 50.0;
                let w = 1.0 + (i % 7) as f64; // integral side lengths
                SpatialObject::new(i, Rect::from_coords(x, y, x + w, y + w))
            })
            .collect();
        let bulk = RTree::bulk_load(boxes.clone(), 8);
        let mut inc = RTree::new(4);
        for &o in &boxes {
            inc.insert(o);
        }
        bulk.check_invariants();
        inc.check_invariants();
        for w in [
            Rect::from_coords(0.0, 0.0, 2000.0, 2000.0), // everything
            Rect::from_coords(100.0, 100.0, 480.0, 770.0),
            Rect::from_coords(-10.0, -10.0, -1.0, -1.0), // nothing
        ] {
            for t in [&bulk, &inc] {
                let (n, sum) = t.area_stats(&w);
                let objs = t.window(&w);
                assert_eq!(n, objs.len() as u64, "window {w:?}");
                let naive: f64 = objs.iter().map(|o| o.mbr.area()).sum();
                assert!((sum - naive).abs() <= 1e-9 * naive.max(1.0), "window {w:?}");
            }
        }
        // Full coverage hits the root aggregate: both trees agree exactly
        // (integral areas sum exactly in f64 at this scale).
        let everything = Rect::from_coords(-1.0, -1.0, 2000.0, 2000.0);
        assert_eq!(bulk.area_stats(&everything), inc.area_stats(&everything));
        assert_eq!(RTree::default().area_stats(&everything), (0, 0.0));
    }

    #[test]
    fn visitors_match_materializing_queries_in_order() {
        let pts = lcg_points(500, 9);
        let t = RTree::bulk_load(pts, 8);
        let w = Rect::from_coords(200.0, 200.0, 700.0, 600.0);
        let mut visited = Vec::new();
        t.for_each_in_window(&w, &mut |o| visited.push(*o));
        assert_eq!(visited, t.window(&w), "same objects, same order");
        let q = Rect::point(asj_geom::Point::new(500.0, 500.0));
        let mut ranged = Vec::new();
        t.for_each_eps_range(&q, 150.0, &mut |o| ranged.push(*o));
        assert_eq!(ranged, t.eps_range(&q, 150.0));
        assert!(!visited.is_empty() && !ranged.is_empty());
    }

    #[test]
    fn objects_roundtrip() {
        let pts = lcg_points(123, 7);
        let t = RTree::bulk_load(pts.clone(), 8);
        let mut got: Vec<u32> = t.objects().iter().map(|o| o.id).collect();
        got.sort_unstable();
        let want: Vec<u32> = (0..123).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_positions_are_kept() {
        let mut t = RTree::new(4);
        for i in 0..50 {
            t.insert(SpatialObject::point(i, 5.0, 5.0));
        }
        assert_eq!(t.count(&Rect::from_coords(0.0, 0.0, 10.0, 10.0)), 50);
        t.check_invariants();
    }

    #[test]
    fn count_uses_closed_window_semantics() {
        let mut t = RTree::new(4);
        t.insert(SpatialObject::point(1, 10.0, 10.0));
        // Point on the window edge counts (closed semantics).
        assert_eq!(t.count(&Rect::from_coords(0.0, 0.0, 10.0, 10.0)), 1);
        assert_eq!(t.count(&Rect::from_coords(10.0, 10.0, 20.0, 20.0)), 1);
        assert_eq!(t.count(&Rect::from_coords(10.1, 10.1, 20.0, 20.0)), 0);
    }
}
