//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Leutenegger et al.'s packing: sort by x-center, cut into `⌈√(n/M)⌉`
//! vertical slabs, sort each slab by y-center, pack runs of `M` into leaves;
//! then pack the produced nodes level by level with the same recipe until a
//! single root remains. Produces ~100 % utilization and a tree of minimal
//! height — what a production server would build over a static dataset like
//! the 35 K-segment rail map.

use crate::node::Node;
use asj_geom::SpatialObject;

/// Builds the root node for `objects`, or `None` when empty.
pub(crate) fn build(objects: Vec<SpatialObject>, max_entries: usize) -> Option<Node> {
    if objects.is_empty() {
        return None;
    }
    let leaves = pack_leaves(objects, max_entries);
    let mut level = leaves;
    while level.len() > 1 {
        level = pack_nodes(level, max_entries);
    }
    level.into_iter().next()
}

fn pack_leaves(mut objects: Vec<SpatialObject>, max_entries: usize) -> Vec<Node> {
    let n = objects.len();
    let leaf_count = n.div_ceil(max_entries);
    let slabs = (leaf_count as f64).sqrt().ceil() as usize;
    let per_slab = n.div_ceil(slabs);

    objects.sort_unstable_by(|a, b| a.center().x.total_cmp(&b.center().x));
    let mut leaves = Vec::with_capacity(leaf_count);
    for slab in objects.chunks_mut(per_slab.max(1)) {
        slab.sort_unstable_by(|a, b| a.center().y.total_cmp(&b.center().y));
        for run in slab.chunks(max_entries) {
            leaves.push(Node::leaf(run.to_vec()));
        }
    }
    leaves
}

fn pack_nodes(mut nodes: Vec<Node>, max_entries: usize) -> Vec<Node> {
    let n = nodes.len();
    let parent_count = n.div_ceil(max_entries);
    let slabs = (parent_count as f64).sqrt().ceil() as usize;
    let per_slab = n.div_ceil(slabs);

    nodes.sort_unstable_by(|a, b| a.mbr.center().x.total_cmp(&b.mbr.center().x));
    let mut parents = Vec::with_capacity(parent_count);
    let mut buf = Vec::new();
    for chunk in chunked(nodes, per_slab.max(1)) {
        let mut slab = chunk;
        slab.sort_unstable_by(|a, b| a.mbr.center().y.total_cmp(&b.mbr.center().y));
        for node in slab {
            buf.push(node);
            if buf.len() == max_entries {
                parents.push(Node::internal(std::mem::take(&mut buf)));
            }
        }
        if !buf.is_empty() {
            parents.push(Node::internal(std::mem::take(&mut buf)));
        }
    }
    parents
}

/// Consuming chunker for `Vec<T>` (std's `chunks` only borrows).
fn chunked<T>(v: Vec<T>, size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::with_capacity(v.len().div_ceil(size));
    let mut cur = Vec::with_capacity(size);
    for item in v {
        cur.push(item);
        if cur.len() == size {
            out.push(std::mem::replace(&mut cur, Vec::with_capacity(size)));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTree;
    use asj_geom::Rect;

    #[test]
    fn single_object_builds_leaf_root() {
        let t = RTree::bulk_load(vec![SpatialObject::point(1, 3.0, 4.0)], 8);
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn packing_is_tight() {
        // 256 objects, M = 16 → exactly 16 leaves, height 2.
        let objects: Vec<_> = (0..256)
            .map(|i| SpatialObject::point(i, (i % 16) as f64, (i / 16) as f64))
            .collect();
        let t = RTree::bulk_load(objects, 16);
        assert_eq!(t.height(), 2);
        assert_eq!(t.level_mbrs(0).len(), 16);
        t.check_invariants();
    }

    #[test]
    fn uneven_sizes_build_valid_trees() {
        for n in [2usize, 5, 17, 33, 100, 257, 1001] {
            let objects: Vec<_> = (0..n)
                .map(|i| {
                    SpatialObject::point(i as u32, (i * 37 % 101) as f64, (i * 61 % 97) as f64)
                })
                .collect();
            let t = RTree::bulk_load(objects, 8);
            assert_eq!(t.len(), n);
            t.check_invariants();
            assert_eq!(
                t.count(&Rect::from_coords(-1.0, -1.0, 102.0, 102.0)),
                n as u64
            );
        }
    }

    #[test]
    fn chunked_exact_and_remainder() {
        assert_eq!(chunked(vec![1, 2, 3, 4], 2), vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(chunked(vec![1, 2, 3], 2), vec![vec![1, 2], vec![3]]);
        assert_eq!(chunked(Vec::<i32>::new(), 3), Vec::<Vec<i32>>::new());
    }
}
