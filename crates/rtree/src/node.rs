//! R-tree nodes with aggregate counts.

use asj_geom::{Rect, SpatialObject};

/// A tree node: its MBR, the number of objects in its subtree (the aR-tree
/// aggregate) and either leaf entries or child nodes.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub mbr: Rect,
    /// Objects in this subtree — maintained on every structural change so
    /// `COUNT` queries can stop at fully-covered nodes.
    pub count: u64,
    pub kind: NodeKind,
}

#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    Leaf(Vec<SpatialObject>),
    Internal(Vec<Node>),
}

impl Node {
    pub fn leaf(entries: Vec<SpatialObject>) -> Node {
        let mbr = mbr_of_objects(&entries);
        Node {
            mbr,
            count: entries.len() as u64,
            kind: NodeKind::Leaf(entries),
        }
    }

    pub fn internal(children: Vec<Node>) -> Node {
        let mbr = mbr_of_nodes(&children);
        let count = children.iter().map(|c| c.count).sum();
        Node {
            mbr,
            count,
            kind: NodeKind::Internal(children),
        }
    }

    /// Recomputes this node's MBR and count from its content (after a
    /// mutation of children / entries).
    pub fn refresh(&mut self) {
        match &self.kind {
            NodeKind::Leaf(es) => {
                self.mbr = mbr_of_objects(es);
                self.count = es.len() as u64;
            }
            NodeKind::Internal(cs) => {
                self.mbr = mbr_of_nodes(cs);
                self.count = cs.iter().map(|c| c.count).sum();
            }
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Number of slots in this node (entries or children).
    pub fn fanout(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(es) => es.len(),
            NodeKind::Internal(cs) => cs.len(),
        }
    }
}

/// MBR of a slice of objects; the degenerate empty case maps to a zero rect
/// at the origin (an empty node only exists transiently during builds).
pub(crate) fn mbr_of_objects(objects: &[SpatialObject]) -> Rect {
    Rect::union_of(objects.iter().map(|o| o.mbr))
        .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 0.0, 0.0))
}

pub(crate) fn mbr_of_nodes(nodes: &[Node]) -> Rect {
    Rect::union_of(nodes.iter().map(|n| n.mbr))
        .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 0.0, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_aggregates() {
        let n = Node::leaf(vec![
            SpatialObject::point(1, 0.0, 0.0),
            SpatialObject::point(2, 4.0, 2.0),
        ]);
        assert_eq!(n.count, 2);
        assert_eq!(n.mbr, Rect::from_coords(0.0, 0.0, 4.0, 2.0));
        assert!(n.is_leaf());
        assert_eq!(n.fanout(), 2);
    }

    #[test]
    fn internal_aggregates_sum_children() {
        let a = Node::leaf(vec![SpatialObject::point(1, 0.0, 0.0)]);
        let b = Node::leaf(vec![
            SpatialObject::point(2, 2.0, 2.0),
            SpatialObject::point(3, 3.0, 3.0),
        ]);
        let n = Node::internal(vec![a, b]);
        assert_eq!(n.count, 3);
        assert_eq!(n.mbr, Rect::from_coords(0.0, 0.0, 3.0, 3.0));
        assert!(!n.is_leaf());
    }

    #[test]
    fn refresh_recomputes() {
        let mut n = Node::leaf(vec![SpatialObject::point(1, 0.0, 0.0)]);
        if let NodeKind::Leaf(es) = &mut n.kind {
            es.push(SpatialObject::point(2, 5.0, 5.0));
        }
        n.refresh();
        assert_eq!(n.count, 2);
        assert_eq!(n.mbr.max.x, 5.0);
    }
}
