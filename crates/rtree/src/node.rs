//! R-tree nodes with aggregate counts.

use asj_geom::{Rect, SpatialObject};

/// A tree node: its MBR, the aR-tree aggregates of its subtree (object
/// count and MBR-area sum) and either leaf entries or child nodes.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub mbr: Rect,
    /// Objects in this subtree — maintained on every structural change so
    /// `COUNT` queries can stop at fully-covered nodes.
    pub count: u64,
    /// Σ of the subtree's object MBR areas — the second aR aggregate, so
    /// `AvgArea` queries stop at fully-covered nodes exactly like `COUNT`.
    /// Always recomputed bottom-up from direct content (never adjusted
    /// incrementally), so the stored value is bit-reproducible.
    pub area_sum: f64,
    pub kind: NodeKind,
}

#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    Leaf(Vec<SpatialObject>),
    Internal(Vec<Node>),
}

impl Node {
    pub fn leaf(entries: Vec<SpatialObject>) -> Node {
        let mbr = mbr_of_objects(&entries);
        Node {
            mbr,
            count: entries.len() as u64,
            area_sum: area_of_objects(&entries),
            kind: NodeKind::Leaf(entries),
        }
    }

    pub fn internal(children: Vec<Node>) -> Node {
        let mbr = mbr_of_nodes(&children);
        let count = children.iter().map(|c| c.count).sum();
        let area_sum = children.iter().map(|c| c.area_sum).sum();
        Node {
            mbr,
            count,
            area_sum,
            kind: NodeKind::Internal(children),
        }
    }

    /// Recomputes this node's MBR and aggregates from its content (after a
    /// mutation of children / entries).
    pub fn refresh(&mut self) {
        match &self.kind {
            NodeKind::Leaf(es) => {
                self.mbr = mbr_of_objects(es);
                self.count = es.len() as u64;
                self.area_sum = area_of_objects(es);
            }
            NodeKind::Internal(cs) => {
                self.mbr = mbr_of_nodes(cs);
                self.count = cs.iter().map(|c| c.count).sum();
                self.area_sum = cs.iter().map(|c| c.area_sum).sum();
            }
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Number of slots in this node (entries or children).
    pub fn fanout(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(es) => es.len(),
            NodeKind::Internal(cs) => cs.len(),
        }
    }
}

/// MBR of a slice of objects; the degenerate empty case maps to a zero rect
/// at the origin (an empty node only exists transiently during builds).
pub(crate) fn mbr_of_objects(objects: &[SpatialObject]) -> Rect {
    Rect::union_of(objects.iter().map(|o| o.mbr))
        .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 0.0, 0.0))
}

pub(crate) fn mbr_of_nodes(nodes: &[Node]) -> Rect {
    Rect::union_of(nodes.iter().map(|n| n.mbr))
        .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 0.0, 0.0))
}

/// Σ of the objects' MBR areas, folded in entry order (the canonical order
/// the invariant checker reproduces).
pub(crate) fn area_of_objects(objects: &[SpatialObject]) -> f64 {
    objects.iter().map(|o| o.mbr.area()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_aggregates() {
        let n = Node::leaf(vec![
            SpatialObject::point(1, 0.0, 0.0),
            SpatialObject::point(2, 4.0, 2.0),
        ]);
        assert_eq!(n.count, 2);
        assert_eq!(n.area_sum, 0.0, "points have zero area");
        assert_eq!(n.mbr, Rect::from_coords(0.0, 0.0, 4.0, 2.0));
        assert!(n.is_leaf());
        assert_eq!(n.fanout(), 2);
    }

    #[test]
    fn area_aggregates_sum_bottom_up() {
        let a = Node::leaf(vec![SpatialObject::new(
            1,
            Rect::from_coords(0.0, 0.0, 2.0, 2.0), // area 4
        )]);
        let b = Node::leaf(vec![
            SpatialObject::new(2, Rect::from_coords(3.0, 3.0, 4.0, 5.0)), // area 2
            SpatialObject::new(3, Rect::from_coords(5.0, 5.0, 6.0, 6.0)), // area 1
        ]);
        assert_eq!(a.area_sum, 4.0);
        assert_eq!(b.area_sum, 3.0);
        let n = Node::internal(vec![a, b]);
        assert_eq!(n.area_sum, 7.0);
    }

    #[test]
    fn internal_aggregates_sum_children() {
        let a = Node::leaf(vec![SpatialObject::point(1, 0.0, 0.0)]);
        let b = Node::leaf(vec![
            SpatialObject::point(2, 2.0, 2.0),
            SpatialObject::point(3, 3.0, 3.0),
        ]);
        let n = Node::internal(vec![a, b]);
        assert_eq!(n.count, 3);
        assert_eq!(n.mbr, Rect::from_coords(0.0, 0.0, 3.0, 3.0));
        assert!(!n.is_leaf());
    }

    #[test]
    fn refresh_recomputes() {
        let mut n = Node::leaf(vec![SpatialObject::point(1, 0.0, 0.0)]);
        if let NodeKind::Leaf(es) = &mut n.kind {
            es.push(SpatialObject::point(2, 5.0, 5.0));
        }
        n.refresh();
        assert_eq!(n.count, 2);
        assert_eq!(n.mbr.max.x, 5.0);
    }
}
