//! # asj-net — the simulated wireless link
//!
//! The paper's metric is **total transferred bytes** between the PDA and the
//! two servers, under telecom per-byte pricing. This crate reproduces that
//! substrate:
//!
//! * [`PacketModel`] — Equation (1) of the paper:
//!   `TB(B) = B + BH·⌈B/(MTU−BH)⌉`, the bytes a B-byte payload occupies on
//!   the wire once TCP/IP headers (BH = 40) and the MTU are accounted for;
//! * [`proto`] — the request/response protocol of a *non-cooperative*
//!   spatial server (`WINDOW`, `COUNT`, `ε-RANGE`, bucket ε-RANGE, the
//!   average-area aggregate) plus the cooperative extension used only by
//!   the SemiJoin baseline;
//! * the **batched statistics extension** — `Request::MultiCount` carries
//!   any number of COUNT windows in one message and `Response::Counts`
//!   answers them together, amortizing message framing and packet headers
//!   across a repartitioning round's `2k²` aggregate probes. It is gated
//!   by [`NetConfig::batched_stats`] and **off by default**: in the default
//!   per-query mode every meter total is byte-identical to the
//!   paper-faithful protocol, and turning the flag on changes statistics
//!   traffic only — never join results;
//! * [`codec`] — a compact binary wire format (`Bobj` = 20 bytes/object,
//!   mirroring the paper's constant object size);
//! * [`LinkMeter`] — atomically counts uplink/downlink wire bytes and query
//!   mix per link; *this is where every reported number comes from*;
//! * [`transport`] — synchronous RPC over two interchangeable carriers: an
//!   in-process call (fast, used by the experiment sweeps) and a
//!   crossbeam-channel connection to a server thread (the "distributed"
//!   deployment used by examples and integration tests);
//! * [`event_loop`] — the **many-device carrier**: one reactor thread
//!   multiplexing every server endpoint and every device connection over
//!   a ready-queue, per-connection `HELLO`/`ACCEPT` negotiation state
//!   owned by the reactor, typed error frames for garbled input, and
//!   per-endpoint queue-depth gauges — thousands of simulated devices
//!   without a thread per connection;
//! * [`router`] — the **scatter-gather extension**: a [`ShardRouter`]
//!   fronts a fleet of shard servers behind the same carrier seam, pruning
//!   shards by advertised bounds, sub-batching batched requests, merging
//!   and deduplicating answers, and metering both per shard and in
//!   aggregate. A fleet of one is a byte-transparent proxy, so sharding is
//!   wire-identical to a flat deployment at N = 1;
//! * [`cache`] — the **client-cache extension**: a [`CacheLayer`] on the
//!   same carrier seam (in front of a flat server *or* a whole fleet)
//!   answers repeated `COUNT`s from an exact statistics tier and
//!   contained `WINDOW`/ε-RANGE requests from a byte-budgeted window
//!   tier. Entries are keyed by the **serving generation** each response
//!   frame is stamped with, so live updates need no invalidation
//!   protocol: a generation bump simply stops matching and stale entries
//!   age out of the LRU budget. Gated by [`NetConfig::client_cache`] and
//!   **off by default** (off ⇒ byte-identical wire traffic);
//!   hits/misses/saved bytes are tallied in a [`CacheSnapshot`];
//! * [`fault`] — the **deterministic fault injector**: a [`FaultLayer`]
//!   on the same carrier seam replays scripted drops, delays, garbled
//!   frames and crash-then-restart windows from a seeded [`FaultPlan`],
//!   so every chaos run is reproducible. Pairs with the
//!   [`packet::RetryPolicy`] retry/backoff discipline (off by default —
//!   off ⇒ byte-identical wire traffic) that re-issues failed exchanges,
//!   dedup-enveloping `ApplyUpdates` so retried deliveries are
//!   at-most-once;
//! * [`health`] — the **replica failover extension**: per-replica-edge
//!   circuit breakers (closed → open after K consecutive failures →
//!   half-open probe after a deterministic, exchange-counted cooldown)
//!   and integer EWMA failure tracking. The [`ShardRouter`] spreads reads
//!   across a shard's replicas by request hash, skips open breakers,
//!   fails a lost exchange over to the next sibling *before* consuming
//!   retry budget, and rejects replies below the shard's observed
//!   generation floor so handoff never serves stale state. Gated by
//!   [`NetConfig::breaker`] / replica count and **off by default** (one
//!   replica ⇒ byte-identical wire traffic);
//! * the **generation stamp** — servers answering from a generation > 0
//!   prefix every response frame with `[R_GEN][u64 generation]`
//!   ([`codec::stamp_generation`]); generation-0 (frozen) traffic carries
//!   no stamp and stays bit-for-bit the pre-generation wire format.
//!   `Request::ApplyUpdates` ships batched inserts/deletes/moves and is
//!   acknowledged with `Response::Ack { generation }`.
//!
//! Every message — including the queries themselves, as the paper insists —
//! is packetized and metered.

pub mod cache;
pub mod codec;
pub mod event_loop;
pub mod fault;
pub mod health;
pub mod meter;
pub mod packet;
pub mod proto;
pub mod router;
pub mod transport;

/// Test support: one linear-scan [`QueryHandler`] oracle with the
/// reference server semantics for the primitive (non-cooperative)
/// queries, shared by this crate's unit and integration suites so there
/// is a single copy to keep in lockstep with the real server.
#[doc(hidden)]
pub mod testutil {
    use asj_geom::SpatialObject;

    use crate::proto::{QueryHandler, Request, Response};

    /// Scan-backed handler: O(n) everything, cooperative queries refused.
    pub struct ScanHandler(pub Vec<SpatialObject>);

    impl QueryHandler for ScanHandler {
        fn handle(&self, req: Request) -> Response {
            match req {
                Request::Window(w) => Response::Objects(
                    self.0
                        .iter()
                        .filter(|o| o.mbr.intersects(&w))
                        .copied()
                        .collect(),
                ),
                Request::Count(w) => {
                    Response::Count(self.0.iter().filter(|o| o.mbr.intersects(&w)).count() as u64)
                }
                Request::MultiCount(ws) => Response::Counts(
                    ws.iter()
                        .map(|w| self.0.iter().filter(|o| o.mbr.intersects(w)).count() as u64)
                        .collect(),
                ),
                Request::EpsRange { q, eps } => Response::Objects(
                    self.0
                        .iter()
                        .filter(|o| o.mbr.within_distance(&q, eps))
                        .copied()
                        .collect(),
                ),
                Request::AvgArea(w) => {
                    let areas: Vec<f64> = self
                        .0
                        .iter()
                        .filter(|o| o.mbr.intersects(&w))
                        .map(|o| o.mbr.area())
                        .collect();
                    Response::Area(if areas.is_empty() {
                        0.0
                    } else {
                        areas.iter().sum::<f64>() / areas.len() as f64
                    })
                }
                Request::BucketEpsRange { probes, eps } => Response::Buckets(
                    probes
                        .iter()
                        .map(|p| {
                            self.0
                                .iter()
                                .filter(|o| o.mbr.within_distance(&p.mbr, eps))
                                .copied()
                                .collect()
                        })
                        .collect(),
                ),
                _ => Response::Refused,
            }
        }
    }
}

pub use cache::{CacheConfig, CacheLayer, CacheView, ClientCache};
pub use event_loop::{ConnState, EndpointStats, EventConnection, EventEndpoint, EventLoop};
pub use fault::{CrashPlan, FaultLayer, FaultPlan, FaultStats};
pub use health::{BreakerConfig, BreakerState, EdgeHealth, HealthSnapshot, ReplicaSetHealth};
pub use meter::{CacheSnapshot, CacheTelemetry, LinkMeter, LinkSnapshot};
pub use packet::{NetConfig, PacketModel, RetryPolicy};
pub use proto::{QueryHandler, Request, Response, Update};
pub use router::{FleetSnapshot, ShardEndpoint, ShardMeta, ShardRouter, ShardTelemetry};
pub use transport::{ChannelServer, Link, RawExchange, ServerHandle};
