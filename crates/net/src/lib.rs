//! # asj-net — the simulated wireless link
//!
//! The paper's metric is **total transferred bytes** between the PDA and the
//! two servers, under telecom per-byte pricing. This crate reproduces that
//! substrate:
//!
//! * [`PacketModel`] — Equation (1) of the paper:
//!   `TB(B) = B + BH·⌈B/(MTU−BH)⌉`, the bytes a B-byte payload occupies on
//!   the wire once TCP/IP headers (BH = 40) and the MTU are accounted for;
//! * [`proto`] — the request/response protocol of a *non-cooperative*
//!   spatial server (`WINDOW`, `COUNT`, `ε-RANGE`, bucket ε-RANGE, the
//!   average-area aggregate) plus the cooperative extension used only by
//!   the SemiJoin baseline;
//! * the **batched statistics extension** — `Request::MultiCount` carries
//!   any number of COUNT windows in one message and `Response::Counts`
//!   answers them together, amortizing message framing and packet headers
//!   across a repartitioning round's `2k²` aggregate probes. It is gated
//!   by [`NetConfig::batched_stats`] and **off by default**: in the default
//!   per-query mode every meter total is byte-identical to the
//!   paper-faithful protocol, and turning the flag on changes statistics
//!   traffic only — never join results;
//! * [`codec`] — a compact binary wire format (`Bobj` = 20 bytes/object,
//!   mirroring the paper's constant object size);
//! * [`LinkMeter`] — atomically counts uplink/downlink wire bytes and query
//!   mix per link; *this is where every reported number comes from*;
//! * [`transport`] — synchronous RPC over two interchangeable carriers: an
//!   in-process call (fast, used by the experiment sweeps) and a
//!   crossbeam-channel connection to a server thread (the "distributed"
//!   deployment used by examples and integration tests);
//! * [`router`] — the **scatter-gather extension**: a [`ShardRouter`]
//!   fronts a fleet of shard servers behind the same carrier seam, pruning
//!   shards by advertised bounds, sub-batching batched requests, merging
//!   and deduplicating answers, and metering both per shard and in
//!   aggregate. A fleet of one is a byte-transparent proxy, so sharding is
//!   wire-identical to a flat deployment at N = 1.
//!
//! Every message — including the queries themselves, as the paper insists —
//! is packetized and metered.

pub mod codec;
pub mod meter;
pub mod packet;
pub mod proto;
pub mod router;
pub mod transport;

pub use meter::{LinkMeter, LinkSnapshot};
pub use packet::{NetConfig, PacketModel};
pub use proto::{QueryHandler, Request, Response};
pub use router::{FleetSnapshot, ShardEndpoint, ShardRouter, ShardTelemetry};
pub use transport::{ChannelServer, Link, RawExchange, ServerHandle};
