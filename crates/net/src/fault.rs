//! Deterministic fault injection on the [`RawExchange`] seam.
//!
//! A [`FaultLayer`] wraps any carrier — the composition trick the
//! [`crate::router::ShardRouter`] and [`crate::cache::CacheLayer`]
//! established — and injects the failure modes of the paper's ad-hoc
//! wireless setting from a scripted [`FaultPlan`]: **drops** (the exchange
//! never happens; the layer fabricates the local `R_UNAVAILABLE`
//! pseudo-frame, so metering layers correctly charge nothing), **delays**
//! (a fixed sleep before the exchange — wall-clock only, never results),
//! **garbled replies** (byte 0 of the reply is stamped with the
//! [`crate::codec::op::GARBLE`] marker, so it decodes to a typed
//! `Malformed` and can never silently become a different valid value),
//! and **crash-then-restart** (a scripted window of exchanges answers
//! unavailable; when it ends, an optional restart hook swaps in a fresh
//! carrier — typically a server replaying its `VersionedStore` at its
//! last published generation).
//!
//! # Determinism contract
//!
//! Every per-request fault decision is a pure function of `(plan.seed,
//! request bytes, attempt index)` — the attempt index counts consecutive
//! faulted deliveries of that exact byte string and resets on a clean
//! delivery. Thread scheduling therefore cannot change which fault an
//! attempt draws: a chaos run is replayable from its seed alone, and
//! raising a retry budget only *appends* attempts (attempts `0..k` roll
//! identically at every budget ≥ `k`), which is what makes join success
//! rate structurally monotone in the retry budget at a fixed drop rate.
//! The crash window is keyed by the layer's exchange counter instead, so
//! it is deterministic for a serial request stream and approximately
//! placed under concurrency.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use bytes::Bytes;

use crate::codec::{garble_frame, is_unavailable, unavailable_frame};
use crate::transport::RawExchange;

/// Scripted crash of the endpoint behind a [`FaultLayer`]: exchanges
/// `at .. at + dark` (0-based, counted at the layer) answer unavailable;
/// the first exchange past the window triggers the restart hook, once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Exchange index at which the endpoint goes dark.
    pub at: u64,
    /// Number of consecutive exchanges the endpoint stays dark for.
    pub dark: u64,
}

/// The script of one [`FaultLayer`]. `FaultPlan::default()` injects
/// nothing — a layer with the default plan is a byte-transparent proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of every per-request fault roll.
    pub seed: u64,
    /// Probability an exchange is dropped entirely (locally fabricated
    /// `R_UNAVAILABLE`; the inner carrier is never touched).
    pub drop_rate: f64,
    /// Probability an exchange is delayed by [`FaultPlan::delay_us`].
    pub delay_rate: f64,
    /// Deterministic delay duration in microseconds.
    pub delay_us: u64,
    /// Probability the frame is garbled (byte 0 stamped with the garble
    /// marker). Applies to the reply, or to the request when
    /// [`FaultPlan::garble_requests`] is set.
    pub garble_rate: f64,
    /// Garble the *request* before it reaches the server instead of the
    /// reply — exercises the server-side typed-error path and the event
    /// loop's injected-garble gauge.
    pub garble_requests: bool,
    /// Optional scripted crash-then-restart window.
    pub crash: Option<CrashPlan>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay_us: 0,
            garble_rate: 0.0,
            garble_requests: false,
            crash: None,
        }
    }
}

impl FaultPlan {
    /// A no-fault plan with the given seed; compose with the `with_*`
    /// builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Drops each exchange with probability `rate`.
    pub fn with_drops(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be in [0, 1]");
        self.drop_rate = rate;
        self
    }

    /// Delays each exchange by `us` microseconds with probability `rate`.
    pub fn with_delays(mut self, rate: f64, us: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "delay rate must be in [0, 1]");
        self.delay_rate = rate;
        self.delay_us = us;
        self
    }

    /// Garbles each reply with probability `rate`.
    pub fn with_garbles(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "garble rate must be in [0, 1]");
        self.garble_rate = rate;
        self
    }

    /// Redirects garbling at request frames instead of replies.
    pub fn garbling_requests(mut self) -> Self {
        self.garble_requests = true;
        self
    }

    /// Scripts a crash window: exchanges `at .. at + dark` go dark.
    pub fn with_crash(mut self, at: u64, dark: u64) -> Self {
        self.crash = Some(CrashPlan { at, dark });
        self
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.garble_rate == 0.0
            && self.crash.is_none()
    }
}

/// Point-in-time injection tally of one [`FaultLayer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Exchanges answered with the locally fabricated unavailable frame
    /// (nothing touched the inner carrier).
    pub dropped: u64,
    /// Exchanges delayed before delivery.
    pub delayed: u64,
    /// Frames stamped with the garble marker.
    pub garbled: u64,
    /// Exchanges swallowed by the scripted crash window.
    pub blacked_out: u64,
    /// Restart hooks fired (0 or 1).
    pub restarts: u64,
}

#[derive(Debug, Default)]
struct Counters {
    dropped: AtomicU64,
    delayed: AtomicU64,
    garbled: AtomicU64,
    blacked_out: AtomicU64,
    restarts: AtomicU64,
}

/// A fresh carrier for the restarted endpoint — typically connected to a
/// server rebuilt over `VersionedStore::with_generation`, so the restart
/// resumes at the crashed endpoint's last published generation and
/// clients' generation vectors never regress.
pub type RestartFn = Box<dyn Fn() -> Box<dyn RawExchange> + Send + Sync>;

/// Deterministic, seeded fault injector implementing [`RawExchange`] —
/// stacks at the physical edge, under `Link`/`CacheLayer`/`ShardRouter`,
/// exactly like the cache does. See the module docs for the determinism
/// contract.
pub struct FaultLayer {
    inner: RwLock<Box<dyn RawExchange>>,
    plan: FaultPlan,
    /// Consecutive faulted-delivery count per request byte string (FNV
    /// hash); reset on every clean delivery. The attempt index of the
    /// fault roll.
    attempts: Mutex<HashMap<u64, u64>>,
    exchanges: AtomicU64,
    restart: Option<RestartFn>,
    restarted: AtomicBool,
    counters: Counters,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// What one attempt's roll decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Roll {
    drop: bool,
    delay: bool,
    garble: bool,
}

impl FaultLayer {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: Box<dyn RawExchange>, plan: FaultPlan) -> Self {
        FaultLayer {
            inner: RwLock::new(inner),
            plan,
            attempts: Mutex::new(HashMap::new()),
            exchanges: AtomicU64::new(0),
            restart: None,
            restarted: AtomicBool::new(false),
            counters: Counters::default(),
        }
    }

    /// Installs the crash-restart hook: invoked exactly once, on the
    /// first exchange past the scripted dark window, and its carrier
    /// replaces the crashed one.
    pub fn with_restart(mut self, hook: RestartFn) -> Self {
        self.restart = Some(hook);
        self
    }

    /// The plan this layer injects from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection tally so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            garbled: self.counters.garbled.load(Ordering::Relaxed),
            blacked_out: self.counters.blacked_out.load(Ordering::Relaxed),
            restarts: self.counters.restarts.load(Ordering::Relaxed),
        }
    }

    /// The pure fault roll of `(seed, request hash, attempt)` — see the
    /// module-level determinism contract.
    fn roll_at(&self, hash: u64, attempt: u64) -> Roll {
        let base = self
            .plan
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(hash)
            .wrapping_add(attempt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        Roll {
            drop: unit(splitmix64(base)) < self.plan.drop_rate,
            delay: unit(splitmix64(base.wrapping_add(1))) < self.plan.delay_rate,
            garble: unit(splitmix64(base.wrapping_add(2))) < self.plan.garble_rate,
        }
    }

    /// Draws the next attempt's roll for this request byte string and
    /// advances (or resets) its consecutive-fault counter.
    fn next_roll(&self, request: &[u8]) -> Roll {
        let hash = fnv64(request);
        let mut attempts = self.attempts.lock().expect("fault attempt lock");
        let attempt = attempts.entry(hash).or_insert(0);
        let roll = self.roll_at(hash, *attempt);
        if roll.drop || roll.garble {
            *attempt += 1;
        } else {
            attempts.remove(&hash);
        }
        roll
    }

    fn ensure_restarted(&self) {
        if self.restarted.load(Ordering::Acquire) {
            return;
        }
        let mut inner = self.inner.write().expect("fault inner lock");
        if self.restarted.load(Ordering::Acquire) {
            return;
        }
        if let Some(hook) = &self.restart {
            *inner = hook();
            self.counters.restarts.fetch_add(1, Ordering::Relaxed);
        }
        self.restarted.store(true, Ordering::Release);
    }
}

impl RawExchange for FaultLayer {
    fn exchange(&self, request: Bytes) -> Bytes {
        let n = self.exchanges.fetch_add(1, Ordering::SeqCst);
        if let Some(crash) = &self.plan.crash {
            if n >= crash.at && n < crash.at + crash.dark {
                self.counters.blacked_out.fetch_add(1, Ordering::Relaxed);
                return unavailable_frame();
            }
            if n >= crash.at + crash.dark {
                self.ensure_restarted();
            }
        }
        let roll = self.next_roll(&request);
        if roll.drop {
            // The exchange never happens: the inner carrier is not
            // touched and the fabricated frame must stay unmetered.
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return unavailable_frame();
        }
        if roll.delay {
            self.counters.delayed.fetch_add(1, Ordering::Relaxed);
            if self.plan.delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(self.plan.delay_us));
            }
        }
        if roll.garble && self.plan.garble_requests {
            self.counters.garbled.fetch_add(1, Ordering::Relaxed);
            let garbled = garble_frame(&request);
            return self
                .inner
                .read()
                .expect("fault inner lock")
                .exchange(garbled);
        }
        let reply = self
            .inner
            .read()
            .expect("fault inner lock")
            .exchange(request);
        if roll.garble {
            if is_unavailable(&reply) {
                // Nothing crossed the wire; there is no frame to garble.
                return reply;
            }
            self.counters.garbled.fetch_add(1, Ordering::Relaxed);
            return garble_frame(&reply);
        }
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_response, encode_request};
    use crate::proto::{Request, Response};
    use crate::testutil::ScanHandler;
    use crate::transport::InProcExchange;
    use asj_geom::{Rect, SpatialObject};
    use std::sync::Arc;

    fn inner() -> Box<dyn RawExchange> {
        Box::new(InProcExchange::new(Arc::new(ScanHandler(vec![
            SpatialObject::point(1, 1.0, 1.0),
            SpatialObject::point(2, 5.0, 5.0),
        ]))))
    }

    fn count_req(i: u32) -> Bytes {
        encode_request(&Request::Count(Rect::from_coords(
            0.0,
            0.0,
            f64::from(i) + 1.0,
            10.0,
        )))
    }

    #[test]
    fn default_plan_is_byte_transparent() {
        let layer = FaultLayer::new(inner(), FaultPlan::default());
        let direct = inner();
        for i in 0..20 {
            assert_eq!(
                layer.exchange(count_req(i)).as_ref(),
                direct.exchange(count_req(i)).as_ref()
            );
        }
        assert_eq!(layer.stats(), FaultStats::default());
        assert!(FaultPlan::default().is_noop());
    }

    #[test]
    fn runs_replay_identically_by_seed() {
        let plan = FaultPlan::seeded(42).with_drops(0.3).with_garbles(0.3);
        let run = |_: u32| {
            let layer = FaultLayer::new(inner(), plan);
            let replies: Vec<Bytes> = (0..50).map(|i| layer.exchange(count_req(i % 7))).collect();
            (replies, layer.stats())
        };
        let (a, sa) = run(0);
        let (b, sb) = run(1);
        assert_eq!(sa, sb);
        assert!(sa.dropped > 0 && sa.garbled > 0, "plan must actually fire");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_ref(), y.as_ref());
        }
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let run = |seed: u64| {
            let layer = FaultLayer::new(inner(), FaultPlan::seeded(seed).with_drops(0.5));
            (0..64).for_each(|i| {
                layer.exchange(count_req(i));
            });
            layer.stats()
        };
        // Not a tautology (both could coincide), but these two seeds are
        // pinned to differ — the replayability story depends on the seed
        // actually steering the rolls.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn dropped_exchanges_fabricate_unavailable_without_touching_inner() {
        struct Panicking;
        impl RawExchange for Panicking {
            fn exchange(&self, _request: Bytes) -> Bytes {
                panic!("a dropped exchange must never reach the inner carrier");
            }
        }
        let layer = FaultLayer::new(Box::new(Panicking), FaultPlan::seeded(7).with_drops(1.0));
        let reply = layer.exchange(count_req(0));
        assert!(is_unavailable(&reply));
        assert_eq!(layer.stats().dropped, 1);
    }

    #[test]
    fn garbled_replies_decode_to_typed_malformed() {
        let layer = FaultLayer::new(inner(), FaultPlan::seeded(3).with_garbles(1.0));
        let reply = layer.exchange(count_req(0));
        assert!(crate::codec::is_injected_garble(&reply));
        assert!(decode_response(reply).is_err());
        assert_eq!(layer.stats().garbled, 1);
    }

    #[test]
    fn garbled_requests_surface_as_server_side_malformed() {
        let layer = FaultLayer::new(
            inner(),
            FaultPlan::seeded(3).with_garbles(1.0).garbling_requests(),
        );
        let reply = layer.exchange(count_req(0));
        assert_eq!(decode_response(reply).unwrap(), Response::Malformed);
    }

    #[test]
    fn attempt_rolls_are_budget_stable_and_reset_on_clean_delivery() {
        // Attempts 0..k of one request roll identically regardless of how
        // many more attempts follow — the structural monotonicity the
        // fault-matrix CI check rests on.
        let plan = FaultPlan::seeded(11).with_drops(0.6);
        let layer_a = FaultLayer::new(inner(), plan);
        let layer_b = FaultLayer::new(inner(), plan);
        let req = count_req(0);
        let a: Vec<bool> = (0..3)
            .map(|_| is_unavailable(&layer_a.exchange(req.clone())))
            .collect();
        let b: Vec<bool> = (0..6)
            .map(|_| is_unavailable(&layer_b.exchange(req.clone())))
            .collect();
        assert_eq!(a, b[..3], "shorter budgets are prefixes of longer ones");
        // After a clean delivery the attempt counter resets: the next
        // delivery of the same bytes re-rolls attempt 0.
        if let Some(first_clean) = b.iter().position(|dropped| !dropped) {
            let again = is_unavailable(&layer_b.exchange(req.clone()));
            assert_eq!(
                again, b[0],
                "attempt 0 re-rolls identically after a reset (clean at {first_clean})"
            );
        }
    }

    #[test]
    fn crash_window_goes_dark_then_restart_hook_fires_once() {
        let swapped: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
        let hook_swaps = Arc::clone(&swapped);
        let layer = FaultLayer::new(inner(), FaultPlan::seeded(0).with_crash(2, 3)).with_restart(
            Box::new(move |/* fresh carrier for the restarted endpoint */| {
                hook_swaps.fetch_add(1, Ordering::SeqCst);
                inner()
            }),
        );
        let outcomes: Vec<bool> = (0..8)
            .map(|i| is_unavailable(&layer.exchange(count_req(i))))
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, true, true, false, false, false]
        );
        assert_eq!(swapped.load(Ordering::SeqCst), 1, "hook fires exactly once");
        assert_eq!(layer.stats().blacked_out, 3);
        assert_eq!(layer.stats().restarts, 1);
    }
}
