//! Event-loop carrier: one reactor thread serving every endpoint.
//!
//! The channel carrier of [`crate::transport`] spends one OS thread per
//! server — fine for the paper's two-server prototype, fatal for a
//! many-device harness where a fleet of shard servers times two sides
//! times N simulated devices would otherwise demand hundreds of threads.
//! This module multiplexes *all* serving onto a single reactor thread:
//!
//! * an [`EventLoop`] owns the reactor — a plain poll loop draining one
//!   MPMC ready-queue (crossbeam channel; there is no tokio here, and
//!   none is needed: requests are already discrete ready-to-run events);
//! * each [`EventEndpoint`] is one logical server (a [`QueryHandler`])
//!   registered on the loop; any number of endpoints share the reactor;
//! * each [`EventConnection`] is one device's socket to one endpoint,
//!   carrying its own **per-connection state** ([`ConnState`]).
//!
//! # Connection-state ownership
//!
//! The reactor *owns* all mutable per-connection state. A connection's
//! [`ConnState`] — today the negotiated wire version, the carrier's
//! analogue of a real socket's handshake state — is written exclusively
//! by the reactor thread while it answers that connection's
//! `HELLO`/`ACCEPT` frames, and only read (for telemetry and tests) from
//! the client side. Likewise the reactor owns the single reusable encode
//! buffer every reply is built in; client handles never touch it. This
//! is what lets thousands of connections coexist without per-connection
//! locks: the reactor serializes every state transition, and the shared
//! `Arc`s are append-only counters or atomics published with
//! release/acquire ordering.
//!
//! Negotiation therefore moves *into connection setup*: the `HELLO`
//! probe a [`Link::negotiate`](crate::Link::negotiate) sends travels the
//! ready-queue like any request, the reactor answers it with `ACCEPT`
//! and records the accepted version into that connection's state — two
//! connections to the same endpoint can be at different versions, and
//! concurrent handshakes from many devices cannot race: the reactor
//! processes them one at a time.
//!
//! # Robustness contract
//!
//! The reactor thread is shared by every device, so it must never die on
//! bad input: an undecodable frame answers the typed
//! [`Response::Malformed`](crate::Response::Malformed) error frame and
//! serving continues. Dropping the [`EventLoop`] enqueues a shutdown
//! sentinel behind in-flight requests (FIFO — they all still complete);
//! connections that outlive the loop degrade to
//! [`Response::Unavailable`](crate::Response::Unavailable) instead of
//! panicking, exactly like the channel carrier.
//!
//! Per-endpoint [`EndpointStats`] gauge the instantaneous ready-queue
//! depth (enqueued on send, decremented when served) with a high-water
//! mark, the serving counters, and malformed-frame counts — the
//! per-shard queue-depth axis of the device-scaling benchmarks.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use crate::codec::WireVersion;
use crate::proto::QueryHandler;
use crate::transport::RawExchange;

/// Per-connection state, owned by the reactor (see module docs). The
/// client side holds the same `Arc` but only ever reads it.
#[derive(Debug)]
pub struct ConnState {
    /// Negotiated wire version: 1 until the reactor answers this
    /// connection's `HELLO` with an `ACCEPT`, then whatever it accepted.
    wire: AtomicU8,
}

impl ConnState {
    fn new() -> Self {
        ConnState {
            wire: AtomicU8::new(1),
        }
    }

    /// The version the reactor negotiated on this connection (`V1`
    /// before any handshake — exactly a fresh socket's state).
    pub fn negotiated(&self) -> WireVersion {
        match self.wire.load(Ordering::Acquire) {
            v if v >= 2 => WireVersion::V2,
            _ => WireVersion::V1,
        }
    }
}

/// Counters one endpoint's serving publishes; shared by every connection
/// to that endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Requests currently sitting in the ready-queue (or being served).
    pending: AtomicU64,
    /// High-water mark of `pending`: the deepest this endpoint's share
    /// of the queue ever got — the contention gauge the scaling
    /// benchmarks report per shard.
    max_depth: AtomicU64,
    /// Query frames served (handshakes and malformed frames excluded).
    served: AtomicU64,
    /// Undecodable frames with a recognizable-but-broken shape (alien
    /// opcode, truncated payload) answered with the typed error.
    malformed: AtomicU64,
    /// Undecodable frames bearing the fault layer's garble marker
    /// (first byte [`crate::codec::op::GARBLE`]) — corruption injected
    /// in transit, counted apart from genuinely alien traffic.
    garbled: AtomicU64,
    /// Duplicate deliveries of an already-seen retry-dedup tag — each
    /// one is a client retry the endpoint absorbed at-most-once.
    retried: AtomicU64,
    /// Replies that could not be delivered because the client had
    /// already given up on the exchange.
    abandoned: AtomicU64,
}

impl EndpointStats {
    fn enqueued(&self) {
        let depth = self.pending.fetch_add(1, Ordering::AcqRel) + 1;
        self.max_depth.fetch_max(depth, Ordering::AcqRel);
    }

    fn dequeued(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// Deepest observed ready-queue depth.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_depth.load(Ordering::Acquire)
    }

    /// Query frames served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Acquire)
    }

    /// Undecodable non-garble frames answered with
    /// [`crate::Response::Malformed`].
    pub fn malformed(&self) -> u64 {
        self.malformed.load(Ordering::Acquire)
    }

    /// Injected-garble frames (first byte `0xEE`) answered with
    /// [`crate::Response::Malformed`], counted apart from alien opcodes.
    pub fn garbled(&self) -> u64 {
        self.garbled.load(Ordering::Acquire)
    }

    /// Duplicate dedup-tagged deliveries absorbed at-most-once.
    pub fn retried(&self) -> u64 {
        self.retried.load(Ordering::Acquire)
    }

    /// Replies dropped because the client abandoned the exchange.
    pub fn abandoned(&self) -> u64 {
        self.abandoned.load(Ordering::Acquire)
    }
}

/// One unit of work on the ready-queue.
enum Event {
    Rpc {
        request: Bytes,
        reply: Sender<Bytes>,
        /// This connection's reactor-owned state.
        conn: Arc<ConnState>,
        /// The endpoint's handler rides on the event, so the reactor
        /// needs no endpoint registry at all — registration is just
        /// handing out another sender.
        handler: Arc<dyn QueryHandler>,
        stats: Arc<EndpointStats>,
    },
    Shutdown,
}

/// The reactor: one thread multiplexing every endpoint and connection
/// registered on it. Dropping it shuts the thread down without
/// deadlocking on live connections (shutdown sentinel, like
/// [`crate::ChannelServer`]).
pub struct EventLoop {
    tx: Sender<Event>,
    thread: Option<std::thread::JoinHandle<u64>>,
}

impl EventLoop {
    /// Spawns the reactor thread.
    pub fn spawn(name: &str) -> Self {
        let (tx, rx): (Sender<Event>, Receiver<Event>) = unbounded();
        let thread = std::thread::Builder::new()
            .name(format!("asj-reactor-{name}"))
            .spawn(move || Self::run(rx))
            .expect("failed to spawn reactor thread");
        EventLoop {
            tx,
            thread: Some(thread),
        }
    }

    /// The poll loop. One reusable encode buffer serves every endpoint —
    /// reactor-owned, per the module's state-ownership contract.
    fn run(rx: Receiver<Event>) -> u64 {
        let mut served = 0u64;
        let mut buf = BytesMut::with_capacity(4096);
        // Reactor-owned retry-observability table: the last dedup seq
        // seen per (endpoint, nonce). A re-delivery of the same seq is a
        // client retry the endpoint's handler absorbs at-most-once —
        // counted here without touching the handler's own dedup state.
        let mut last_tags: std::collections::HashMap<(usize, u64), u64> =
            std::collections::HashMap::new();
        while let Ok(event) = rx.recv() {
            let (request, reply, conn, handler, stats) = match event {
                Event::Rpc {
                    request,
                    reply,
                    conn,
                    handler,
                    stats,
                } => (request, reply, conn, handler, stats),
                Event::Shutdown => break,
            };
            if let Some(accept) = crate::codec::try_answer_hello(&request) {
                // Connection setup: record the accepted version into
                // *this connection's* state, then answer. Only the
                // reactor ever writes here, so concurrent handshakes
                // from many devices serialize cleanly.
                if let Some(version) = crate::codec::decode_accept(&accept) {
                    conn.wire.store(version, Ordering::Release);
                }
                stats.dequeued();
                let _ = reply.send(accept);
                continue;
            }
            // Classification peek before serving: the body an envelope
            // wraps (or the frame itself) decides garbled-vs-malformed,
            // and a repeated tag is a retry the stats surface.
            let body_head = match crate::codec::peel_dedup(&request) {
                Some((tag, body)) => {
                    let key = (Arc::as_ptr(&stats) as usize, tag.nonce);
                    if last_tags.insert(key, tag.seq) == Some(tag.seq) {
                        stats.retried.fetch_add(1, Ordering::AcqRel);
                    }
                    body.as_ref().first().copied()
                }
                None => request.as_ref().first().copied(),
            };
            buf.clear();
            if crate::transport::serve_frame_into(handler.as_ref(), request, &mut buf) {
                served += 1;
                stats.served.fetch_add(1, Ordering::AcqRel);
            } else {
                // The reactor serves every device: a garbled frame gets
                // the typed error (already encoded into `buf`) and the
                // loop keeps running. Injected corruption (the fault
                // layer's 0xEE marker) is counted apart from genuinely
                // alien opcodes.
                if body_head == Some(crate::codec::op::GARBLE) {
                    stats.garbled.fetch_add(1, Ordering::AcqRel);
                } else {
                    stats.malformed.fetch_add(1, Ordering::AcqRel);
                }
            }
            stats.dequeued();
            // A dropped reply receiver just means the client gave up.
            if reply.send(Bytes::copy_from_slice(&buf)).is_err() {
                stats.abandoned.fetch_add(1, Ordering::AcqRel);
            }
        }
        served
    }

    /// Registers one logical server on the loop. Any number of endpoints
    /// (and connections per endpoint) share the one reactor thread.
    pub fn serve(&self, handler: Arc<dyn QueryHandler>) -> EventEndpoint {
        EventEndpoint {
            tx: self.tx.clone(),
            handler,
            stats: Arc::new(EndpointStats::default()),
        }
    }

    /// Stops the reactor (after draining everything already enqueued)
    /// and returns the number of query frames it served.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Event::Shutdown);
        self.thread
            .take()
            .expect("already shut down")
            .join()
            .expect("reactor thread panicked")
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            // FIFO sentinel: everything enqueued before the drop is
            // still served; live connections afterwards degrade to
            // `Unavailable` instead of deadlocking this join.
            let _ = self.tx.send(Event::Shutdown);
            let _ = t.join();
        }
    }
}

/// One logical server registered on an [`EventLoop`].
pub struct EventEndpoint {
    tx: Sender<Event>,
    handler: Arc<dyn QueryHandler>,
    stats: Arc<EndpointStats>,
}

impl EventEndpoint {
    /// Opens a new connection with fresh per-connection state.
    pub fn connect(&self) -> EventConnection {
        EventConnection {
            tx: self.tx.clone(),
            handler: Arc::clone(&self.handler),
            stats: Arc::clone(&self.stats),
            conn: Arc::new(ConnState::new()),
        }
    }

    /// This endpoint's serving counters and queue-depth gauge.
    pub fn stats(&self) -> &Arc<EndpointStats> {
        &self.stats
    }
}

/// One connection from a device to an [`EventEndpoint`]: the event-loop
/// analogue of a socket. Implements [`RawExchange`], so it slots under a
/// [`Link`](crate::Link), a [`ShardRouter`](crate::ShardRouter) edge, or
/// a [`CacheLayer`](crate::CacheLayer) unchanged.
pub struct EventConnection {
    tx: Sender<Event>,
    handler: Arc<dyn QueryHandler>,
    stats: Arc<EndpointStats>,
    conn: Arc<ConnState>,
}

impl EventConnection {
    /// This connection's state (reactor-owned; read-only here).
    pub fn state(&self) -> &Arc<ConnState> {
        &self.conn
    }
}

impl RawExchange for EventConnection {
    fn exchange(&self, request: Bytes) -> Bytes {
        self.begin(request)()
    }

    fn begin<'a>(&'a self, request: Bytes) -> Box<dyn FnOnce() -> Bytes + Send + 'a> {
        let (reply_tx, reply_rx) = bounded(1);
        self.stats.enqueued();
        if self
            .tx
            .send(Event::Rpc {
                request,
                reply: reply_tx,
                conn: Arc::clone(&self.conn),
                handler: Arc::clone(&self.handler),
                stats: Arc::clone(&self.stats),
            })
            .is_err()
        {
            // The reactor is gone: same graceful degradation as a dead
            // channel server.
            self.stats.dequeued();
            return Box::new(crate::codec::unavailable_frame);
        }
        Box::new(move || {
            reply_rx
                .recv()
                .unwrap_or_else(|_| crate::codec::unavailable_frame())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketModel;
    use crate::proto::{Request, Response};
    use crate::testutil::ScanHandler;
    use crate::transport::Link;
    use asj_geom::{Rect, SpatialObject};

    fn objects(n: u32) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect()
    }

    fn w(hi: f64) -> Rect {
        Rect::from_coords(-1.0, -1.0, hi, 1.0)
    }

    #[test]
    fn event_loop_serves_byte_identically_to_in_process() {
        let reactor = EventLoop::spawn("unit");
        let endpoint = reactor.serve(Arc::new(ScanHandler(objects(20))));
        let looped = Link::new(Box::new(endpoint.connect()), PacketModel::default(), 1.0);
        let inproc = Link::in_process(
            Arc::new(ScanHandler(objects(20))),
            PacketModel::default(),
            1.0,
        );
        for hi in [3.0, 7.5, 19.0] {
            assert_eq!(
                looped.request(&Request::Window(w(hi))),
                inproc.request(&Request::Window(w(hi)))
            );
            assert_eq!(
                looped.request(&Request::Count(w(hi))),
                inproc.request(&Request::Count(w(hi)))
            );
        }
        assert_eq!(
            looped.meter().snapshot(),
            inproc.meter().snapshot(),
            "the carrier must not change accounting"
        );
        drop(looped);
        assert_eq!(reactor.shutdown(), 6);
    }

    #[test]
    fn many_endpoints_share_one_reactor_thread() {
        let reactor = EventLoop::spawn("multi");
        let endpoints: Vec<EventEndpoint> = (0..8)
            .map(|i| reactor.serve(Arc::new(ScanHandler(objects(i + 1)))))
            .collect();
        for (i, e) in endpoints.iter().enumerate() {
            let link = Link::new(Box::new(e.connect()), PacketModel::default(), 1.0);
            assert_eq!(
                link.request(&Request::Count(w(100.0))).into_count(),
                i as u64 + 1
            );
        }
        for e in &endpoints {
            assert_eq!(e.stats().served(), 1);
            assert!(e.stats().max_queue_depth() >= 1);
        }
        assert_eq!(reactor.shutdown(), 8);
    }

    #[test]
    fn garbled_frame_answers_typed_error_and_reactor_survives() {
        let reactor = EventLoop::spawn("garbled");
        let endpoint = reactor.serve(Arc::new(ScanHandler(objects(5))));
        let conn = endpoint.connect();
        // An injected-garble frame (0xEE marker) and a genuinely alien
        // opcode are both answered typed but counted apart.
        let reply = conn.exchange(Bytes::copy_from_slice(&[0xEE, 0x01, 0x02]));
        assert_eq!(
            crate::codec::decode_response(reply).unwrap(),
            Response::Malformed
        );
        let reply = conn.exchange(Bytes::copy_from_slice(&[0x5A, 0x01, 0x02]));
        assert_eq!(
            crate::codec::decode_response(reply).unwrap(),
            Response::Malformed
        );
        assert_eq!(endpoint.stats().garbled(), 1, "injected corruption");
        assert_eq!(endpoint.stats().malformed(), 1, "alien opcode");
        // Healthy traffic still flows on the same reactor.
        let link = Link::new(Box::new(endpoint.connect()), PacketModel::default(), 1.0);
        assert_eq!(link.request(&Request::Count(w(100.0))).into_count(), 5);
    }

    #[test]
    fn duplicate_tagged_deliveries_count_as_retries() {
        use crate::codec::DedupTag;
        use crate::proto::Update;
        let reactor = EventLoop::spawn("dedup");
        let endpoint = reactor.serve(Arc::new(ScanHandler(objects(5))));
        let conn = endpoint.connect();
        let inner = crate::codec::encode_request(&Request::ApplyUpdates(vec![Update::Delete(1)]));
        let tagged = crate::codec::wrap_dedup(DedupTag { nonce: 11, seq: 0 }, &inner);
        // Same tag delivered twice: the second is a retry. ScanHandler
        // refuses updates, but the retry gauge counts deliveries, not
        // outcomes.
        let first = conn.exchange(tagged.clone());
        let second = conn.exchange(tagged);
        assert_eq!(first, second);
        assert_eq!(endpoint.stats().retried(), 1);
        // A fresh seq on the same nonce is new work, not a retry.
        let next = crate::codec::wrap_dedup(DedupTag { nonce: 11, seq: 1 }, &inner);
        conn.exchange(next);
        assert_eq!(endpoint.stats().retried(), 1);
        reactor.shutdown();
    }

    #[test]
    fn undeliverable_replies_count_as_abandoned() {
        // A handler that blocks until released, so the client can give
        // up on a queued exchange *before* the reactor serves it.
        struct Gated(Receiver<()>);
        impl QueryHandler for Gated {
            fn handle(&self, _req: Request) -> Response {
                let _ = self.0.recv();
                Response::Count(0)
            }
        }
        let (release, gate) = unbounded::<()>();
        let reactor = EventLoop::spawn("abandon");
        let endpoint = reactor.serve(Arc::new(Gated(gate)));
        let conn = endpoint.connect();
        let first = conn.begin(crate::codec::encode_request(&Request::Count(w(2.0))));
        let second = conn.begin(crate::codec::encode_request(&Request::Count(w(2.0))));
        // The client abandons the queued second exchange, then the
        // reactor is released to serve both.
        drop(second);
        release.send(()).unwrap();
        release.send(()).unwrap();
        assert_eq!(
            crate::codec::decode_response(first()).unwrap(),
            Response::Count(0)
        );
        assert_eq!(
            reactor.shutdown(),
            2,
            "the abandoned frame was still served"
        );
        assert_eq!(endpoint.stats().abandoned(), 1);
        assert_eq!(endpoint.stats().served(), 2);
    }

    #[test]
    fn dropping_the_loop_with_live_connections_does_not_hang() {
        let reactor = EventLoop::spawn("drop-first");
        let endpoint = reactor.serve(Arc::new(ScanHandler(objects(5))));
        let conn = endpoint.connect();
        drop(reactor);
        let link = Link::new(Box::new(conn), PacketModel::default(), 1.0);
        assert_eq!(link.request(&Request::Count(w(1.0))), Response::Unavailable);
        // Nothing crossed the wire, so nothing was metered.
        assert_eq!(link.meter().snapshot().total_bytes(), 0);
    }

    #[test]
    fn negotiation_is_per_connection_state() {
        let reactor = EventLoop::spawn("hello");
        let endpoint = reactor.serve(Arc::new(ScanHandler(objects(5))));
        let negotiated = endpoint.connect();
        let plain = endpoint.connect();
        let conn_state = Arc::clone(negotiated.state());
        assert_eq!(conn_state.negotiated(), WireVersion::V1);
        let link = Link::new(Box::new(negotiated), PacketModel::default(), 1.0).negotiate();
        assert_eq!(link.wire(), WireVersion::V2);
        // The reactor recorded the handshake on exactly the connection
        // that sent it.
        assert_eq!(conn_state.negotiated(), WireVersion::V2);
        assert_eq!(plain.state().negotiated(), WireVersion::V1);
    }
}
