//! The query protocol of a non-cooperative spatial server.

use asj_geom::{Rect, SpatialObject};

/// A request from the device to one server.
///
/// The first five variants are the paper's primitive interface (Section 3):
/// `WINDOW`, `COUNT`, `ε-RANGE`, the bucket ε-RANGE of Section 3.1, and the
/// average-MBR-area aggregate mentioned for polygon datasets. The
/// `Coop*` variants are the *cooperative extension* that only the SemiJoin
/// baseline uses (Section 5.3) — real non-cooperative servers would reject
/// them, and [`crate::proto::Request::is_cooperative`] lets servers do so.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// All objects intersecting `w`.
    Window(Rect),
    /// Number of objects intersecting `w` (the aggregate/COUNT query).
    Count(Rect),
    /// All objects within distance `eps` of `q` (degenerate `q` = a point,
    /// the paper's original form; a proper rectangle subsumes the
    /// "WINDOW with sides 2ε" simulation the paper describes).
    EpsRange { q: Rect, eps: f64 },
    /// Bucket submission: one ε-RANGE probe per object, answered together
    /// so TCP header overhead is amortized (Section 3.1).
    BucketEpsRange {
        probes: Vec<SpatialObject>,
        eps: f64,
    },
    /// Average MBR area of objects intersecting `w` — the extra aggregate
    /// the paper piggybacks on COUNT for polygon datasets.
    AvgArea(Rect),
    /// Batched statistics: one COUNT per window, answered together in a
    /// single [`Response::Counts`] so message framing and packet headers
    /// are amortized across all probes (the `2k²·Taq` of one
    /// repartitioning round collapses to two round trips). An *extension*
    /// to the paper's interface — devices only send it when
    /// `NetConfig::batched_stats` is on; the default is the paper-faithful
    /// per-query COUNT.
    MultiCount(Vec<Rect>),
    /// Cooperative: the MBRs of one R-tree level (`levels_above_leaves`).
    CoopLevelMbrs(u8),
    /// Cooperative: objects within `eps` of any of the given MBRs (the
    /// semi-join filter step executed at the other server).
    CoopFilterByMbrs { mbrs: Vec<Rect>, eps: f64 },
    /// Cooperative: join the pushed objects against the local dataset and
    /// return qualifying `(pushed_id, local_id)` pairs.
    CoopJoinPush {
        objects: Vec<SpatialObject>,
        eps: f64,
    },
    /// A batched dataset update (inserts/deletes/moves), applied
    /// copy-on-write into a fresh store generation and acknowledged with
    /// the new generation number. Frozen stores answer [`Response::Refused`].
    ApplyUpdates(Vec<Update>),
}

/// One element of a batched dataset update.
///
/// Semantics are upsert-like so flat and sharded deployments agree without
/// coordination: `Insert` replaces any existing object with the same id,
/// `Delete` of an absent id is a no-op, and `Move` is an upsert of the
/// object at its new MBR.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Insert (or replace, by id) one object.
    Insert(SpatialObject),
    /// Remove the object with this id, if present.
    Delete(u32),
    /// Re-place object `id` at MBR `to` (insert if absent).
    Move { id: u32, to: Rect },
}

impl Request {
    /// `true` for the cooperative-extension queries that a faithful
    /// non-cooperative server refuses.
    pub fn is_cooperative(&self) -> bool {
        matches!(
            self,
            Request::CoopLevelMbrs(_)
                | Request::CoopFilterByMbrs { .. }
                | Request::CoopJoinPush { .. }
        )
    }

    /// `true` for aggregate (statistics) queries, the paper's `Taq` class.
    pub fn is_aggregate(&self) -> bool {
        matches!(
            self,
            Request::Count(_) | Request::AvgArea(_) | Request::MultiCount(_)
        )
    }
}

/// A server's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Objects, for `WINDOW` / `ε-RANGE` / `CoopFilterByMbrs`.
    Objects(Vec<SpatialObject>),
    /// Scalar count (`BA` = 8 bytes on the wire, "one long integer").
    Count(u64),
    /// Per-window counts for [`Request::MultiCount`], probe order
    /// preserved.
    Counts(Vec<u64>),
    /// Scalar area average.
    Area(f64),
    /// Per-probe result lists for `BucketEpsRange`, probe order preserved.
    Buckets(Vec<Vec<SpatialObject>>),
    /// MBRs for `CoopLevelMbrs`.
    Rects(Vec<Rect>),
    /// Qualifying id pairs for `CoopJoinPush`.
    Pairs(Vec<(u32, u32)>),
    /// The server refuses the request (e.g. cooperative query to a
    /// non-cooperative server).
    Refused,
    /// Acknowledges [`Request::ApplyUpdates`]: the generation number of the
    /// freshly published snapshot.
    Ack { generation: u64 },
    /// The server could not decode the request frame. A *typed* error
    /// reply — answering it instead of panicking is what keeps a shared
    /// server thread serving its other devices when one client garbles a
    /// frame. One opcode byte on the wire.
    Malformed,
    /// The carrier's peer is gone (server dropped mid-session). This
    /// variant never crosses the wire: carriers fabricate it locally in
    /// place of a reply, and meters must not charge either direction for
    /// it — nothing was sent or received.
    Unavailable,
}

impl Response {
    /// Spatial objects this answer carries — what the meters charge as
    /// "objects received". The single source of truth for that count:
    /// every metering site (plain link, shard router, cache layer) must
    /// agree, or the differential byte-identity suites diverge.
    pub fn object_count(&self) -> u64 {
        match self {
            Response::Objects(v) => v.len() as u64,
            Response::Buckets(b) => b.iter().map(|x| x.len() as u64).sum(),
            _ => 0,
        }
    }

    /// Unwraps an update acknowledgement into its generation number.
    pub fn into_ack(self) -> u64 {
        match self {
            Response::Ack { generation } => generation,
            other => panic!("protocol mismatch: expected Ack, got {other:?}"),
        }
    }

    /// Unwraps an object list, panicking on protocol mismatch — server
    /// implementations in this repo are type-correct by construction, so a
    /// mismatch is a bug, not a runtime condition.
    pub fn into_objects(self) -> Vec<SpatialObject> {
        match self {
            Response::Objects(v) => v,
            other => panic!("protocol mismatch: expected Objects, got {other:?}"),
        }
    }

    /// Unwraps a count.
    pub fn into_count(self) -> u64 {
        match self {
            Response::Count(c) => c,
            other => panic!("protocol mismatch: expected Count, got {other:?}"),
        }
    }

    /// Unwraps a batched count list.
    pub fn into_counts(self) -> Vec<u64> {
        match self {
            Response::Counts(c) => c,
            other => panic!("protocol mismatch: expected Counts, got {other:?}"),
        }
    }

    /// Unwraps bucket lists.
    pub fn into_buckets(self) -> Vec<Vec<SpatialObject>> {
        match self {
            Response::Buckets(b) => b,
            other => panic!("protocol mismatch: expected Buckets, got {other:?}"),
        }
    }

    /// Unwraps level MBRs.
    pub fn into_rects(self) -> Vec<Rect> {
        match self {
            Response::Rects(r) => r,
            other => panic!("protocol mismatch: expected Rects, got {other:?}"),
        }
    }

    /// Unwraps join pairs.
    pub fn into_pairs(self) -> Vec<(u32, u32)> {
        match self {
            Response::Pairs(p) => p,
            other => panic!("protocol mismatch: expected Pairs, got {other:?}"),
        }
    }
}

/// `HELLO` — the version probe a negotiating client opens a physical link
/// with (`[HELLO][u8 max_version]`, 2 bytes). Sent only when
/// `NetConfig::wire_v2` is enabled; with the flag off no handshake frame
/// exists anywhere and every link speaks v1 byte-identically. Handshake
/// frames are link control, not query traffic: transport adapters answer
/// them before the [`QueryHandler`] (via `codec::try_answer_hello`) and
/// no meter charges them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Highest wire version the sender speaks.
    pub max_version: u8,
}

impl Hello {
    /// The probe's wire frame.
    pub fn encode(&self) -> bytes::Bytes {
        crate::codec::encode_hello(self.max_version)
    }
}

/// `ACCEPT` — the server's handshake reply (`[ACCEPT][u8 version]`,
/// 2 bytes): the version the link will speak from now on. A v1-only peer
/// never sends one (it rejects the unknown `HELLO` opcode), which the
/// negotiating client treats as "fall back to v1" — mixed-version fleets
/// degrade per link, never fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accept {
    /// The negotiated wire version.
    pub version: u8,
}

impl Accept {
    /// Parses a raw reply; `None` means the peer is v1-only.
    pub fn decode(raw: &[u8]) -> Option<Accept> {
        crate::codec::decode_accept(raw).map(|version| Accept { version })
    }
}

/// Server-side request handler. Implemented by `asj-server`; `asj-net` only
/// needs the shape to wire transports.
pub trait QueryHandler: Send + Sync {
    fn handle(&self, req: Request) -> Response;

    /// Handles a request by encoding the answer directly into `buf`
    /// (appending; callers clear between requests to reuse the
    /// allocation) in the wire version the request arrived in. The
    /// default materializes a [`Response`] and encodes it; servers with
    /// streaming storage (the visitor-style `SpatialStore` queries)
    /// override this to encode qualifying objects into the wire buffer as
    /// they are visited — **byte-identical** to the default, without the
    /// intermediate `Vec` and `Response`.
    fn handle_into(
        &self,
        req: Request,
        wire: crate::codec::WireVersion,
        buf: &mut bytes::BytesMut,
    ) {
        let ctx = crate::codec::QuantCtx::for_request(&req);
        crate::codec::encode_response_versioned(&self.handle(req), wire, ctx.as_ref(), buf);
    }

    /// Handles an `ApplyUpdates` batch delivered under the retry-dedup
    /// envelope (`codec::wrap_dedup`): `tag` identifies this delivery's
    /// `(sender nonce, batch seq)`, identical across every retry of the
    /// same batch. The default ignores the tag and applies the batch
    /// plainly — correct for handlers that refuse updates anyway.
    /// Stateful update servers (`SpatialService` over a live store)
    /// override this with an at-most-once check: a duplicate `(nonce,
    /// seq)` replays the remembered `Ack` instead of re-applying, so a
    /// retried delivery can never double-bump a generation or
    /// double-apply a move.
    fn handle_tagged_updates(
        &self,
        _tag: crate::codec::DedupTag,
        updates: Vec<Update>,
    ) -> Response {
        self.handle(Request::ApplyUpdates(updates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooperative_classification() {
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!(!Request::Window(w).is_cooperative());
        assert!(!Request::Count(w).is_cooperative());
        assert!(Request::CoopLevelMbrs(0).is_cooperative());
        assert!(Request::CoopJoinPush {
            objects: vec![],
            eps: 1.0
        }
        .is_cooperative());
    }

    #[test]
    fn aggregate_classification() {
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!(Request::Count(w).is_aggregate());
        assert!(Request::AvgArea(w).is_aggregate());
        assert!(Request::MultiCount(vec![w, w]).is_aggregate());
        assert!(!Request::Window(w).is_aggregate());
        assert!(!Request::MultiCount(vec![w]).is_cooperative());
    }

    #[test]
    fn update_requests_are_neither_cooperative_nor_aggregate() {
        let batch = Request::ApplyUpdates(vec![
            Update::Insert(SpatialObject::point(1, 0.0, 0.0)),
            Update::Delete(2),
            Update::Move {
                id: 3,
                to: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            },
        ]);
        assert!(!batch.is_cooperative());
        assert!(!batch.is_aggregate());
        assert_eq!(Response::Ack { generation: 4 }.object_count(), 0);
        assert_eq!(Response::Ack { generation: 4 }.into_ack(), 4);
    }

    #[test]
    fn unwrap_helpers() {
        assert_eq!(Response::Count(5).into_count(), 5);
        assert_eq!(Response::Counts(vec![1, 2, 3]).into_counts(), vec![1, 2, 3]);
        assert_eq!(Response::Objects(vec![]).into_objects(), vec![]);
        assert_eq!(Response::Pairs(vec![(1, 2)]).into_pairs(), vec![(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "protocol mismatch")]
    fn unwrap_mismatch_panics() {
        Response::Count(1).into_objects();
    }
}
