//! Binary wire format.
//!
//! Objects travel as `id: u32 + 4 × f32` = **20 bytes** — the `Bobj` of the
//! paper's cost model (constant across point and MBR workloads). Rectangles
//! are 16 bytes, counts 8 ("one long integer", the paper's `BA`).
//!
//! Coordinates are carried as `f32`. For the round trip to be lossless the
//! dataset coordinates must be f32-representable; every generator in
//! `asj-workloads` rounds coordinates through `f32` at creation time, which
//! the integration tests rely on when comparing against brute-force ground
//! truth computed on the original data.

use asj_geom::{Point, Rect, SpatialObject};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::proto::{Request, Response, Update};

/// Wire size of one spatial object (`Bobj`).
pub const OBJ_BYTES: u64 = 20;
/// Wire size of one rectangle.
pub const RECT_BYTES: u64 = 16;
/// Wire size of a `WINDOW`/`COUNT`/`AvgArea` request (opcode + rect): the
/// paper's `BQ` for simple queries.
pub const QUERY_BYTES: u64 = 1 + RECT_BYTES;
/// Wire size of a scalar `Count` response (opcode + u64): the paper's `BA`.
pub const ANSWER_BYTES: u64 = 1 + 8;
/// Wire size of a single ε-RANGE request (opcode + rect + f32 ε).
pub const EPS_QUERY_BYTES: u64 = 1 + RECT_BYTES + 4;
/// Fixed overhead of a bucket ε-RANGE request (opcode + f32 ε + u32 n);
/// each probe adds [`OBJ_BYTES`].
pub const BUCKET_REQ_HEADER_BYTES: u64 = 1 + 4 + 4;
/// Fixed overhead of an `Objects` response (opcode + u32 length).
pub const OBJECTS_HEADER_BYTES: u64 = 1 + 4;
/// Per-probe framing overhead inside a `Buckets` response (u32 length).
pub const BUCKET_FRAME_BYTES: u64 = 4;
/// Fixed overhead of a batched `MultiCount` request (opcode + u32 n);
/// each probe window adds [`RECT_BYTES`].
pub const MULTI_COUNT_HEADER_BYTES: u64 = 1 + 4;
/// Fixed overhead of a `Counts` response (opcode + u32 n); each count adds
/// [`COUNT_ENTRY_BYTES`].
pub const COUNTS_HEADER_BYTES: u64 = 1 + 4;
/// Wire size of one count inside a `Counts` response (u64).
pub const COUNT_ENTRY_BYTES: u64 = 8;
/// Wire size of a scalar `Area` response (opcode + f64).
pub const AREA_BYTES: u64 = 1 + 8;
/// Wire size of a `CoopLevelMbrs` request (opcode + u8 level).
pub const COOP_LEVEL_REQ_BYTES: u64 = 1 + 1;
/// Fixed overhead of a `CoopFilterByMbrs` request (opcode + f32 ε + u32 n);
/// each MBR adds [`RECT_BYTES`].
pub const COOP_FILTER_HEADER_BYTES: u64 = 1 + 4 + 4;
/// Fixed overhead of a `CoopJoinPush` request (opcode + f32 ε + u32 n);
/// each object adds [`OBJ_BYTES`].
pub const COOP_JOIN_HEADER_BYTES: u64 = 1 + 4 + 4;
/// Fixed overhead of a `Rects` response (opcode + u32 n); each rectangle
/// adds [`RECT_BYTES`].
pub const RECTS_HEADER_BYTES: u64 = 1 + 4;
/// Fixed overhead of a `Pairs` response (opcode + u32 n); each pair adds
/// [`PAIR_BYTES`].
pub const PAIRS_HEADER_BYTES: u64 = 1 + 4;
/// Wire size of one id pair inside a `Pairs` response (2 × u32).
pub const PAIR_BYTES: u64 = 8;
/// Wire size of a `Refused` response (opcode only).
pub const REFUSED_BYTES: u64 = 1;
/// Fixed overhead of an `ApplyUpdates` request (opcode + u32 n); each
/// update adds its tagged wire size ([`UPDATE_INSERT_BYTES`],
/// [`UPDATE_DELETE_BYTES`] or [`UPDATE_MOVE_BYTES`]).
pub const UPDATES_HEADER_BYTES: u64 = 1 + 4;
/// Wire size of one `Insert` update (tag + object).
pub const UPDATE_INSERT_BYTES: u64 = 1 + OBJ_BYTES;
/// Wire size of one `Delete` update (tag + u32 id).
pub const UPDATE_DELETE_BYTES: u64 = 1 + 4;
/// Wire size of one `Move` update (tag + u32 id + rect).
pub const UPDATE_MOVE_BYTES: u64 = 1 + 4 + RECT_BYTES;
/// Wire size of an `Ack` response (opcode + u64 generation).
pub const ACK_BYTES: u64 = 1 + 8;
/// Wire size of the generation-stamp envelope prefixed to response frames
/// served from a generation > 0 (opcode + u64 generation). Generation-0
/// frames carry **no** stamp, so frozen-store traffic is bit-for-bit the
/// pre-generation wire format.
pub const GEN_STAMP_BYTES: u64 = 1 + 8;

/// Decoding failure: corrupt or truncated message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    Truncated,
    UnknownOpcode(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
        }
    }
}

impl std::error::Error for CodecError {}

pub(crate) mod op {
    pub const WINDOW: u8 = 0x01;
    pub const COUNT: u8 = 0x02;
    pub const EPS_RANGE: u8 = 0x03;
    pub const BUCKET_EPS_RANGE: u8 = 0x04;
    pub const AVG_AREA: u8 = 0x05;
    pub const MULTI_COUNT: u8 = 0x06;
    pub const APPLY_UPDATES: u8 = 0x07;
    pub const COOP_LEVEL_MBRS: u8 = 0x10;
    pub const COOP_FILTER: u8 = 0x11;
    pub const COOP_JOIN_PUSH: u8 = 0x12;

    pub const R_OBJECTS: u8 = 0x81;
    pub const R_COUNT: u8 = 0x82;
    pub const R_AREA: u8 = 0x83;
    pub const R_BUCKETS: u8 = 0x84;
    pub const R_RECTS: u8 = 0x85;
    pub const R_PAIRS: u8 = 0x86;
    pub const R_REFUSED: u8 = 0x87;
    pub const R_COUNTS: u8 = 0x88;
    pub const R_ACK: u8 = 0x89;
    /// Not a response in its own right: the generation-stamp envelope
    /// prefix. `[R_GEN][u64 generation][response frame]`.
    pub const R_GEN: u8 = 0x8A;

    /// Wire tags of the three [`crate::proto::Update`] kinds.
    pub const UPD_INSERT: u8 = 0x01;
    pub const UPD_DELETE: u8 = 0x02;
    pub const UPD_MOVE: u8 = 0x03;
}

/// Exact wire size of one encoded update.
pub fn update_wire_bytes(u: &Update) -> u64 {
    match u {
        Update::Insert(_) => UPDATE_INSERT_BYTES,
        Update::Delete(_) => UPDATE_DELETE_BYTES,
        Update::Move { .. } => UPDATE_MOVE_BYTES,
    }
}

fn put_rect(buf: &mut BytesMut, r: &Rect) {
    buf.put_f32(r.min.x as f32);
    buf.put_f32(r.min.y as f32);
    buf.put_f32(r.max.x as f32);
    buf.put_f32(r.max.y as f32);
}

/// Exact wire size of an encoded request, from the published constants —
/// what [`encode_request_into`] reserves and debug-asserts against, so the
/// cost-model constants can never drift from the real wire format.
pub fn request_wire_bytes(req: &Request) -> u64 {
    match req {
        Request::Window(_) | Request::Count(_) | Request::AvgArea(_) => QUERY_BYTES,
        Request::EpsRange { .. } => EPS_QUERY_BYTES,
        Request::BucketEpsRange { probes, .. } => {
            BUCKET_REQ_HEADER_BYTES + probes.len() as u64 * OBJ_BYTES
        }
        Request::MultiCount(windows) => {
            MULTI_COUNT_HEADER_BYTES + windows.len() as u64 * RECT_BYTES
        }
        Request::CoopLevelMbrs(_) => COOP_LEVEL_REQ_BYTES,
        Request::CoopFilterByMbrs { mbrs, .. } => {
            COOP_FILTER_HEADER_BYTES + mbrs.len() as u64 * RECT_BYTES
        }
        Request::CoopJoinPush { objects, .. } => {
            COOP_JOIN_HEADER_BYTES + objects.len() as u64 * OBJ_BYTES
        }
        Request::ApplyUpdates(batch) => {
            UPDATES_HEADER_BYTES + batch.iter().map(update_wire_bytes).sum::<u64>()
        }
    }
}

/// Exact wire size of an encoded response, from the published constants —
/// what [`encode_response_into`] reserves and debug-asserts against.
pub fn response_wire_bytes(resp: &Response) -> u64 {
    match resp {
        Response::Objects(objs) => OBJECTS_HEADER_BYTES + objs.len() as u64 * OBJ_BYTES,
        Response::Count(_) => ANSWER_BYTES,
        Response::Counts(counts) => COUNTS_HEADER_BYTES + counts.len() as u64 * COUNT_ENTRY_BYTES,
        Response::Area(_) => AREA_BYTES,
        Response::Buckets(buckets) => {
            OBJECTS_HEADER_BYTES
                + buckets
                    .iter()
                    .map(|b| BUCKET_FRAME_BYTES + b.len() as u64 * OBJ_BYTES)
                    .sum::<u64>()
        }
        Response::Rects(rects) => RECTS_HEADER_BYTES + rects.len() as u64 * RECT_BYTES,
        Response::Pairs(pairs) => PAIRS_HEADER_BYTES + pairs.len() as u64 * PAIR_BYTES,
        Response::Refused => REFUSED_BYTES,
        Response::Ack { .. } => ACK_BYTES,
    }
}

fn get_rect(buf: &mut Bytes) -> Result<Rect, CodecError> {
    if buf.remaining() < 16 {
        return Err(CodecError::Truncated);
    }
    let min_x = buf.get_f32() as f64;
    let min_y = buf.get_f32() as f64;
    let max_x = buf.get_f32() as f64;
    let max_y = buf.get_f32() as f64;
    Ok(Rect::new(
        Point::new(min_x, min_y),
        Point::new(max_x, max_y),
    ))
}

fn put_object(buf: &mut BytesMut, o: &SpatialObject) {
    buf.put_u32(o.id);
    put_rect(buf, &o.mbr);
}

fn get_object(buf: &mut Bytes) -> Result<SpatialObject, CodecError> {
    if buf.remaining() < 20 {
        return Err(CodecError::Truncated);
    }
    let id = buf.get_u32();
    let mbr = get_rect(buf)?;
    Ok(SpatialObject::new(id, mbr))
}

fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32())
}

fn get_f32(buf: &mut Bytes) -> Result<f32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_f32())
}

/// Encodes a request.
pub fn encode_request(req: &Request) -> Bytes {
    let mut buf = BytesMut::new();
    encode_request_into(req, &mut buf);
    buf.freeze()
}

/// Encodes a request by appending to `buf`, reserving the exact capacity
/// [`request_wire_bytes`] publishes up front (one allocation at most) and
/// debug-asserting the encoded length against it.
pub fn encode_request_into(req: &Request, buf: &mut BytesMut) {
    let expected = request_wire_bytes(req);
    let start = buf.len();
    buf.reserve(expected as usize);
    match req {
        Request::Window(w) => {
            buf.put_u8(op::WINDOW);
            put_rect(buf, w);
        }
        Request::Count(w) => {
            buf.put_u8(op::COUNT);
            put_rect(buf, w);
        }
        Request::EpsRange { q, eps } => {
            buf.put_u8(op::EPS_RANGE);
            put_rect(buf, q);
            buf.put_f32(*eps as f32);
        }
        Request::BucketEpsRange { probes, eps } => {
            buf.put_u8(op::BUCKET_EPS_RANGE);
            buf.put_f32(*eps as f32);
            buf.put_u32(probes.len() as u32);
            for p in probes {
                put_object(buf, p);
            }
        }
        Request::AvgArea(w) => {
            buf.put_u8(op::AVG_AREA);
            put_rect(buf, w);
        }
        Request::MultiCount(windows) => {
            buf.put_u8(op::MULTI_COUNT);
            buf.put_u32(windows.len() as u32);
            for w in windows {
                put_rect(buf, w);
            }
        }
        Request::CoopLevelMbrs(level) => {
            buf.put_u8(op::COOP_LEVEL_MBRS);
            buf.put_u8(*level);
        }
        Request::CoopFilterByMbrs { mbrs, eps } => {
            buf.put_u8(op::COOP_FILTER);
            buf.put_f32(*eps as f32);
            buf.put_u32(mbrs.len() as u32);
            for m in mbrs {
                put_rect(buf, m);
            }
        }
        Request::CoopJoinPush { objects, eps } => {
            buf.put_u8(op::COOP_JOIN_PUSH);
            buf.put_f32(*eps as f32);
            buf.put_u32(objects.len() as u32);
            for o in objects {
                put_object(buf, o);
            }
        }
        Request::ApplyUpdates(batch) => {
            buf.put_u8(op::APPLY_UPDATES);
            buf.put_u32(batch.len() as u32);
            for u in batch {
                match u {
                    Update::Insert(o) => {
                        buf.put_u8(op::UPD_INSERT);
                        put_object(buf, o);
                    }
                    Update::Delete(id) => {
                        buf.put_u8(op::UPD_DELETE);
                        buf.put_u32(*id);
                    }
                    Update::Move { id, to } => {
                        buf.put_u8(op::UPD_MOVE);
                        buf.put_u32(*id);
                        put_rect(buf, to);
                    }
                }
            }
        }
    }
    debug_assert_eq!(
        (buf.len() - start) as u64,
        expected,
        "request wire size diverged from the published constants"
    );
}

/// Decodes a request.
pub fn decode_request(mut buf: Bytes) -> Result<Request, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let opcode = buf.get_u8();
    match opcode {
        op::WINDOW => Ok(Request::Window(get_rect(&mut buf)?)),
        op::COUNT => Ok(Request::Count(get_rect(&mut buf)?)),
        op::EPS_RANGE => {
            let q = get_rect(&mut buf)?;
            let eps = get_f32(&mut buf)? as f64;
            Ok(Request::EpsRange { q, eps })
        }
        op::BUCKET_EPS_RANGE => {
            let eps = get_f32(&mut buf)? as f64;
            let n = get_u32(&mut buf)? as usize;
            let mut probes = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                probes.push(get_object(&mut buf)?);
            }
            Ok(Request::BucketEpsRange { probes, eps })
        }
        op::AVG_AREA => Ok(Request::AvgArea(get_rect(&mut buf)?)),
        op::MULTI_COUNT => {
            let n = get_u32(&mut buf)? as usize;
            let mut windows = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                windows.push(get_rect(&mut buf)?);
            }
            Ok(Request::MultiCount(windows))
        }
        op::COOP_LEVEL_MBRS => {
            if buf.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            Ok(Request::CoopLevelMbrs(buf.get_u8()))
        }
        op::COOP_FILTER => {
            let eps = get_f32(&mut buf)? as f64;
            let n = get_u32(&mut buf)? as usize;
            let mut mbrs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                mbrs.push(get_rect(&mut buf)?);
            }
            Ok(Request::CoopFilterByMbrs { mbrs, eps })
        }
        op::COOP_JOIN_PUSH => {
            let eps = get_f32(&mut buf)? as f64;
            let n = get_u32(&mut buf)? as usize;
            let mut objects = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                objects.push(get_object(&mut buf)?);
            }
            Ok(Request::CoopJoinPush { objects, eps })
        }
        op::APPLY_UPDATES => {
            let n = get_u32(&mut buf)? as usize;
            let mut batch = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                batch.push(match buf.get_u8() {
                    op::UPD_INSERT => Update::Insert(get_object(&mut buf)?),
                    op::UPD_DELETE => Update::Delete(get_u32(&mut buf)?),
                    op::UPD_MOVE => Update::Move {
                        id: get_u32(&mut buf)?,
                        to: get_rect(&mut buf)?,
                    },
                    tag => return Err(CodecError::UnknownOpcode(tag)),
                });
            }
            Ok(Request::ApplyUpdates(batch))
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Encodes a response.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut buf = BytesMut::new();
    encode_response_into(resp, &mut buf);
    buf.freeze()
}

/// Encodes a response by appending to `buf`, reserving the exact capacity
/// [`response_wire_bytes`] publishes up front (one allocation at most) and
/// debug-asserting the encoded length against it. Servers call this with a
/// reused buffer, so steady-state encoding allocates nothing.
pub fn encode_response_into(resp: &Response, buf: &mut BytesMut) {
    let expected = response_wire_bytes(resp);
    let start = buf.len();
    buf.reserve(expected as usize);
    match resp {
        Response::Objects(objs) => {
            buf.put_u8(op::R_OBJECTS);
            buf.put_u32(objs.len() as u32);
            for o in objs {
                put_object(buf, o);
            }
        }
        Response::Count(c) => {
            buf.put_u8(op::R_COUNT);
            buf.put_u64(*c);
        }
        Response::Counts(counts) => {
            buf.put_u8(op::R_COUNTS);
            buf.put_u32(counts.len() as u32);
            for c in counts {
                buf.put_u64(*c);
            }
        }
        Response::Area(a) => {
            buf.put_u8(op::R_AREA);
            buf.put_f64(*a);
        }
        Response::Buckets(buckets) => {
            buf.put_u8(op::R_BUCKETS);
            buf.put_u32(buckets.len() as u32);
            for b in buckets {
                buf.put_u32(b.len() as u32);
                for o in b {
                    put_object(buf, o);
                }
            }
        }
        Response::Rects(rects) => {
            buf.put_u8(op::R_RECTS);
            buf.put_u32(rects.len() as u32);
            for r in rects {
                put_rect(buf, r);
            }
        }
        Response::Pairs(pairs) => {
            buf.put_u8(op::R_PAIRS);
            buf.put_u32(pairs.len() as u32);
            for (a, b) in pairs {
                buf.put_u32(*a);
                buf.put_u32(*b);
            }
        }
        Response::Refused => {
            buf.put_u8(op::R_REFUSED);
        }
        Response::Ack { generation } => {
            buf.put_u8(op::R_ACK);
            buf.put_u64(*generation);
        }
    }
    debug_assert_eq!(
        (buf.len() - start) as u64,
        expected,
        "response wire size diverged from the published constants"
    );
}

/// Streaming encoder for an `Objects` response — the zero-copy serving
/// path. The header and every object go **directly into the wire
/// buffer**: no intermediate object `Vec`, no `Response`. Two modes:
///
/// * [`ObjectsEncoder::new`] — count unknown: a placeholder length prefix
///   is written and **patched** on [`finish`](ObjectsEncoder::finish), so
///   the store is traversed exactly once (a second counting pass would
///   cost a scan-backed store as much as the query itself). Only the
///   header is reserved; a reused server buffer grows to its high-water
///   capacity once and never again.
/// * [`ObjectsEncoder::with_exact_count`] — count known exactly *and
///   cheaply* (the aR-tree's aggregate `COUNT`): the exact frame capacity
///   is reserved up front from the published constants and the count is
///   hard-asserted on finish (in every build — a frame whose length
///   prefix lies would corrupt the stream for the peer).
///
/// Either mode produces bytes identical to encoding `Response::Objects`
/// over the same object sequence.
pub struct ObjectsEncoder<'a> {
    buf: &'a mut BytesMut,
    announced: Option<u64>,
    len_at: usize,
    written: u64,
}

impl<'a> ObjectsEncoder<'a> {
    /// Opens a frame whose length prefix is patched on `finish`.
    pub fn new(buf: &'a mut BytesMut) -> Self {
        buf.reserve(OBJECTS_HEADER_BYTES as usize);
        buf.put_u8(op::R_OBJECTS);
        let len_at = buf.len();
        buf.put_u32(0);
        ObjectsEncoder {
            buf,
            announced: None,
            len_at,
            written: 0,
        }
    }

    /// Opens a frame for exactly `count` objects, reserving the exact
    /// frame capacity.
    pub fn with_exact_count(buf: &'a mut BytesMut, count: u64) -> Self {
        buf.reserve((OBJECTS_HEADER_BYTES + count * OBJ_BYTES) as usize);
        buf.put_u8(op::R_OBJECTS);
        let len_at = buf.len();
        buf.put_u32(count as u32);
        ObjectsEncoder {
            buf,
            announced: Some(count),
            len_at,
            written: 0,
        }
    }

    /// Appends one object to the frame.
    pub fn push(&mut self, o: &SpatialObject) {
        put_object(self.buf, o);
        self.written += 1;
    }

    /// Closes the frame: patches the streamed count in, or asserts the
    /// announced one was honoured.
    pub fn finish(self) {
        match self.announced {
            Some(count) => assert_eq!(
                self.written, count,
                "objects-response framing mismatch: announced {count} objects, streamed {}",
                self.written
            ),
            None => self.buf[self.len_at..self.len_at + 4]
                .copy_from_slice(&(self.written as u32).to_be_bytes()),
        }
    }
}

/// Decodes a response.
pub fn decode_response(mut buf: Bytes) -> Result<Response, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let opcode = buf.get_u8();
    match opcode {
        op::R_OBJECTS => {
            let n = get_u32(&mut buf)? as usize;
            let mut objs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                objs.push(get_object(&mut buf)?);
            }
            Ok(Response::Objects(objs))
        }
        op::R_COUNT => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Response::Count(buf.get_u64()))
        }
        op::R_AREA => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Response::Area(buf.get_f64()))
        }
        op::R_BUCKETS => {
            let n = get_u32(&mut buf)? as usize;
            let mut buckets = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let len = get_u32(&mut buf)? as usize;
                let mut objs = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    objs.push(get_object(&mut buf)?);
                }
                buckets.push(objs);
            }
            Ok(Response::Buckets(buckets))
        }
        op::R_RECTS => {
            let n = get_u32(&mut buf)? as usize;
            let mut rects = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                rects.push(get_rect(&mut buf)?);
            }
            Ok(Response::Rects(rects))
        }
        op::R_PAIRS => {
            let n = get_u32(&mut buf)? as usize;
            let mut pairs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                pairs.push((get_u32(&mut buf)?, get_u32(&mut buf)?));
            }
            Ok(Response::Pairs(pairs))
        }
        op::R_COUNTS => {
            let n = get_u32(&mut buf)? as usize;
            let mut counts = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                if buf.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                counts.push(buf.get_u64());
            }
            Ok(Response::Counts(counts))
        }
        op::R_REFUSED => Ok(Response::Refused),
        op::R_ACK => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Response::Ack {
                generation: buf.get_u64(),
            })
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Prefixes `buf` (appending) with the generation-stamp envelope — a no-op
/// at generation 0, so frozen-store frames stay bit-identical to the
/// pre-generation wire format. Callers stamp **before** encoding the
/// response frame: `[R_GEN][u64 gen][frame]`.
pub fn stamp_generation(generation: u64, buf: &mut BytesMut) {
    if generation > 0 {
        buf.reserve(GEN_STAMP_BYTES as usize);
        buf.put_u8(op::R_GEN);
        buf.put_u64(generation);
    }
}

/// Decodes a response frame that may carry a generation stamp. Unstamped
/// frames (everything a frozen, generation-0 store serves) decode exactly
/// as [`decode_response`] and report generation 0.
pub fn decode_response_gen(mut buf: Bytes) -> Result<(Response, u64), CodecError> {
    if buf.remaining() >= 1 && buf[0] == op::R_GEN {
        buf.advance(1);
        if buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let generation = buf.get_u64();
        Ok((decode_response(buf)?, generation))
    } else {
        Ok((decode_response(buf)?, 0))
    }
}

/// Splits a raw response frame into its generation and the unstamped
/// remainder **without decoding the payload** — the cheap peek the
/// premetered forwarding paths use. Unstamped frames report generation 0
/// and come back unchanged.
pub fn peel_generation(buf: Bytes) -> Result<(u64, Bytes), CodecError> {
    if buf.remaining() >= 1 && buf[0] == op::R_GEN {
        if buf.remaining() < GEN_STAMP_BYTES as usize {
            return Err(CodecError::Truncated);
        }
        let generation = u64::from_be_bytes(buf[1..9].try_into().expect("9-byte stamp"));
        let rest = buf.slice(GEN_STAMP_BYTES as usize..buf.len());
        Ok((generation, rest))
    } else {
        Ok((0, buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u32, x: f64, y: f64) -> SpatialObject {
        SpatialObject::point(id, x, y)
    }

    #[test]
    fn request_roundtrips() {
        let w = Rect::from_coords(1.0, 2.0, 3.0, 4.0);
        let reqs = vec![
            Request::Window(w),
            Request::Count(w),
            Request::EpsRange { q: w, eps: 0.5 },
            Request::BucketEpsRange {
                probes: vec![obj(1, 1.0, 2.0), obj(2, 3.0, 4.0)],
                eps: 2.0,
            },
            Request::AvgArea(w),
            Request::MultiCount(vec![w, w, w]),
            Request::MultiCount(vec![]),
            Request::CoopLevelMbrs(3),
            Request::CoopFilterByMbrs {
                mbrs: vec![w, w],
                eps: 1.5,
            },
            Request::CoopJoinPush {
                objects: vec![obj(9, 5.0, 5.0)],
                eps: 0.25,
            },
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            let back = decode_request(bytes).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let resps = vec![
            Response::Objects(vec![obj(1, 1.0, 1.0), obj(2, 2.0, 2.0)]),
            Response::Count(123_456),
            Response::Counts(vec![0, 7, u64::MAX]),
            Response::Counts(vec![]),
            Response::Area(42.5),
            Response::Buckets(vec![vec![obj(1, 0.0, 0.0)], vec![], vec![obj(2, 1.0, 1.0)]]),
            Response::Rects(vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0)]),
            Response::Pairs(vec![(1, 2), (3, 4)]),
            Response::Refused,
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            let back = decode_response(bytes).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn wire_sizes_match_constants() {
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert_eq!(
            encode_request(&Request::Window(w)).len() as u64,
            QUERY_BYTES
        );
        assert_eq!(encode_request(&Request::Count(w)).len() as u64, QUERY_BYTES);
        assert_eq!(
            encode_response(&Response::Count(7)).len() as u64,
            ANSWER_BYTES
        );
        let objs = vec![obj(1, 0.0, 0.0), obj(2, 1.0, 1.0), obj(3, 2.0, 2.0)];
        assert_eq!(
            encode_response(&Response::Objects(objs)).len() as u64,
            OBJECTS_HEADER_BYTES + 3 * OBJ_BYTES
        );
    }

    #[test]
    fn eps_and_bucket_request_sizes() {
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert_eq!(
            encode_request(&Request::EpsRange { q: w, eps: 1.0 }).len() as u64,
            EPS_QUERY_BYTES
        );
        let probes = vec![obj(1, 0.0, 0.0), obj(2, 1.0, 1.0)];
        assert_eq!(
            encode_request(&Request::BucketEpsRange { probes, eps: 1.0 }).len() as u64,
            BUCKET_REQ_HEADER_BYTES + 2 * OBJ_BYTES
        );
    }

    #[test]
    fn multi_count_wire_sizes() {
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        // One MultiCount of 4 windows replaces 4 COUNT round trips.
        assert_eq!(
            encode_request(&Request::MultiCount(vec![w; 4])).len() as u64,
            MULTI_COUNT_HEADER_BYTES + 4 * RECT_BYTES
        );
        assert_eq!(
            encode_response(&Response::Counts(vec![1, 2, 3, 4])).len() as u64,
            COUNTS_HEADER_BYTES + 4 * COUNT_ENTRY_BYTES
        );
        // Raw payload is a wash (106 vs 104 bytes for k=4); the win is the
        // per-message packet headers the batch amortizes.
        let p = crate::packet::PacketModel::default();
        let batched = p.tb(MULTI_COUNT_HEADER_BYTES + 4 * RECT_BYTES)
            + p.tb(COUNTS_HEADER_BYTES + 4 * COUNT_ENTRY_BYTES);
        let single = 4 * (p.tb(QUERY_BYTES) + p.tb(ANSWER_BYTES));
        assert!(batched < single, "batched {batched} vs single {single}");
    }

    #[test]
    fn multi_count_truncation_rejected() {
        let full = encode_request(&Request::MultiCount(vec![
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(1.0, 1.0, 2.0, 2.0),
        ]));
        for cut in [1, 4, 5, 20, 36] {
            assert_eq!(
                decode_request(full.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
        let resp = encode_response(&Response::Counts(vec![1, 2]));
        for cut in [1, 4, 12, 20] {
            assert_eq!(
                decode_response(resp.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bucket_wire_size() {
        let b = Response::Buckets(vec![vec![obj(1, 0.0, 0.0)], vec![]]);
        // opcode + outer u32 + (frame + obj) + frame
        assert_eq!(
            encode_response(&b).len() as u64,
            OBJECTS_HEADER_BYTES + (BUCKET_FRAME_BYTES + OBJ_BYTES) + BUCKET_FRAME_BYTES
        );
    }

    #[test]
    fn truncated_messages_rejected() {
        let full = encode_request(&Request::Window(Rect::from_coords(0.0, 0.0, 1.0, 1.0)));
        for cut in [0, 1, 5, 16] {
            let r = decode_request(full.slice(0..cut));
            assert_eq!(r, Err(CodecError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let bad = Bytes::from_static(&[0x7f, 0, 0, 0]);
        assert_eq!(
            decode_request(bad.clone()),
            Err(CodecError::UnknownOpcode(0x7f))
        );
        assert_eq!(decode_response(bad), Err(CodecError::UnknownOpcode(0x7f)));
    }

    #[test]
    fn update_batch_roundtrips_and_matches_constants() {
        let batch = Request::ApplyUpdates(vec![
            Update::Insert(obj(1, 1.0, 2.0)),
            Update::Delete(7),
            Update::Move {
                id: 9,
                to: Rect::from_coords(1.0, 1.0, 2.0, 2.0),
            },
        ]);
        let bytes = encode_request(&batch);
        assert_eq!(
            bytes.len() as u64,
            UPDATES_HEADER_BYTES + UPDATE_INSERT_BYTES + UPDATE_DELETE_BYTES + UPDATE_MOVE_BYTES
        );
        assert_eq!(decode_request(bytes).unwrap(), batch);
        let empty = Request::ApplyUpdates(vec![]);
        assert_eq!(
            decode_request(encode_request(&empty)).unwrap(),
            Request::ApplyUpdates(vec![])
        );
    }

    #[test]
    fn update_truncation_and_bad_tag_rejected() {
        let full = encode_request(&Request::ApplyUpdates(vec![
            Update::Insert(obj(1, 1.0, 2.0)),
            Update::Delete(7),
        ]));
        for cut in [1, 4, 5, 6, 25, 26] {
            assert_eq!(
                decode_request(full.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
        let mut bad = full.as_slice().to_vec();
        bad[UPDATES_HEADER_BYTES as usize] = 0x7e; // corrupt the first tag
        assert_eq!(
            decode_request(Bytes::from(bad)),
            Err(CodecError::UnknownOpcode(0x7e))
        );
    }

    #[test]
    fn ack_roundtrips() {
        let ack = Response::Ack { generation: 42 };
        let bytes = encode_response(&ack);
        assert_eq!(bytes.len() as u64, ACK_BYTES);
        assert_eq!(decode_response(bytes.clone()).unwrap(), ack);
        assert_eq!(decode_response_gen(bytes).unwrap(), (ack, 0));
        assert_eq!(
            decode_response(encode_response(&Response::Ack { generation: 42 }).slice(0..5)),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn generation_zero_stamps_nothing() {
        // The bit-for-bit compatibility proof at the codec level: stamping
        // generation 0 appends no bytes, so a frozen store's frames are
        // exactly the pre-generation encoding, and they decode to gen 0.
        let resp = Response::Objects(vec![obj(1, 1.0, 1.0)]);
        let mut buf = BytesMut::new();
        stamp_generation(0, &mut buf);
        assert!(buf.is_empty());
        encode_response_into(&resp, &mut buf);
        assert_eq!(buf.freeze(), encode_response(&resp));
        let (back, gen) = decode_response_gen(encode_response(&resp)).unwrap();
        assert_eq!((back, gen), (resp, 0));
    }

    #[test]
    fn stamped_frames_roundtrip_and_peel() {
        let resp = Response::Objects(vec![obj(1, 1.0, 1.0), obj(2, 2.0, 2.0)]);
        let mut buf = BytesMut::new();
        stamp_generation(3, &mut buf);
        encode_response_into(&resp, &mut buf);
        let raw = buf.freeze();
        assert_eq!(
            raw.len() as u64,
            GEN_STAMP_BYTES + response_wire_bytes(&resp)
        );
        assert_eq!(decode_response_gen(raw.clone()).unwrap(), (resp.clone(), 3));
        let (gen, rest) = peel_generation(raw.clone()).unwrap();
        assert_eq!(gen, 3);
        assert_eq!(rest, encode_response(&resp));
        // Peeling an unstamped frame is the identity.
        let plain = encode_response(&resp);
        assert_eq!(peel_generation(plain.clone()).unwrap(), (0, plain));
        // A truncated stamp is rejected, not misread as generation 0.
        for cut in [1, 5, 8] {
            assert_eq!(
                decode_response_gen(raw.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
            assert_eq!(
                peel_generation(raw.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
        // A bare stamp with no frame behind it is also truncated.
        assert_eq!(
            decode_response_gen(raw.slice(0..GEN_STAMP_BYTES as usize)),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn f32_representable_coordinates_are_lossless() {
        // The generator invariant: coords rounded through f32 survive.
        let x = 1234.5678_f32 as f64;
        let y = 9_876.543_f32 as f64;
        let o = obj(7, x, y);
        let back = decode_response(encode_response(&Response::Objects(vec![o])))
            .unwrap()
            .into_objects();
        assert_eq!(back[0], o);
    }
}
