//! Binary wire format.
//!
//! Objects travel as `id: u32 + 4 × f32` = **20 bytes** — the `Bobj` of the
//! paper's cost model (constant across point and MBR workloads). Rectangles
//! are 16 bytes, counts 8 ("one long integer", the paper's `BA`).
//!
//! Coordinates are carried as `f32`. For the round trip to be lossless the
//! dataset coordinates must be f32-representable; every generator in
//! `asj-workloads` rounds coordinates through `f32` at creation time, which
//! the integration tests rely on when comparing against brute-force ground
//! truth computed on the original data.

use asj_geom::{Point, Rect, SpatialObject};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::proto::{Request, Response, Update};

/// Wire size of one spatial object (`Bobj`).
pub const OBJ_BYTES: u64 = 20;
/// Wire size of one rectangle.
pub const RECT_BYTES: u64 = 16;
/// Wire size of a `WINDOW`/`COUNT`/`AvgArea` request (opcode + rect): the
/// paper's `BQ` for simple queries.
pub const QUERY_BYTES: u64 = 1 + RECT_BYTES;
/// Wire size of a scalar `Count` response (opcode + u64): the paper's `BA`.
pub const ANSWER_BYTES: u64 = 1 + 8;
/// Wire size of a single ε-RANGE request (opcode + rect + f32 ε).
pub const EPS_QUERY_BYTES: u64 = 1 + RECT_BYTES + 4;
/// Fixed overhead of a bucket ε-RANGE request (opcode + f32 ε + u32 n);
/// each probe adds [`OBJ_BYTES`].
pub const BUCKET_REQ_HEADER_BYTES: u64 = 1 + 4 + 4;
/// Fixed overhead of an `Objects` response (opcode + u32 length).
pub const OBJECTS_HEADER_BYTES: u64 = 1 + 4;
/// Per-probe framing overhead inside a `Buckets` response (u32 length).
pub const BUCKET_FRAME_BYTES: u64 = 4;
/// Fixed overhead of a batched `MultiCount` request (opcode + u32 n);
/// each probe window adds [`RECT_BYTES`].
pub const MULTI_COUNT_HEADER_BYTES: u64 = 1 + 4;
/// Fixed overhead of a `Counts` response (opcode + u32 n); each count adds
/// [`COUNT_ENTRY_BYTES`].
pub const COUNTS_HEADER_BYTES: u64 = 1 + 4;
/// Wire size of one count inside a `Counts` response (u64).
pub const COUNT_ENTRY_BYTES: u64 = 8;
/// Wire size of a scalar `Area` response (opcode + f64).
pub const AREA_BYTES: u64 = 1 + 8;
/// Wire size of a `CoopLevelMbrs` request (opcode + u8 level).
pub const COOP_LEVEL_REQ_BYTES: u64 = 1 + 1;
/// Fixed overhead of a `CoopFilterByMbrs` request (opcode + f32 ε + u32 n);
/// each MBR adds [`RECT_BYTES`].
pub const COOP_FILTER_HEADER_BYTES: u64 = 1 + 4 + 4;
/// Fixed overhead of a `CoopJoinPush` request (opcode + f32 ε + u32 n);
/// each object adds [`OBJ_BYTES`].
pub const COOP_JOIN_HEADER_BYTES: u64 = 1 + 4 + 4;
/// Fixed overhead of a `Rects` response (opcode + u32 n); each rectangle
/// adds [`RECT_BYTES`].
pub const RECTS_HEADER_BYTES: u64 = 1 + 4;
/// Fixed overhead of a `Pairs` response (opcode + u32 n); each pair adds
/// [`PAIR_BYTES`].
pub const PAIRS_HEADER_BYTES: u64 = 1 + 4;
/// Wire size of one id pair inside a `Pairs` response (2 × u32).
pub const PAIR_BYTES: u64 = 8;
/// Wire size of a `Refused` response (opcode only).
pub const REFUSED_BYTES: u64 = 1;
/// Wire size of a `Malformed` response (opcode only) — the typed error
/// frame a server answers an undecodable request with, instead of dying.
pub const MALFORMED_BYTES: u64 = 1;
/// Wire size of the `Unavailable` pseudo-frame (opcode only). Never sent
/// by a server: carriers fabricate it locally when the peer is gone, so
/// the client degrades to a typed [`crate::proto::Response::Unavailable`]
/// instead of panicking. Zero wire bytes actually cross for it.
pub const UNAVAILABLE_BYTES: u64 = 1;
/// Fixed overhead of an `ApplyUpdates` request (opcode + u32 n); each
/// update adds its tagged wire size ([`UPDATE_INSERT_BYTES`],
/// [`UPDATE_DELETE_BYTES`] or [`UPDATE_MOVE_BYTES`]).
pub const UPDATES_HEADER_BYTES: u64 = 1 + 4;
/// Wire size of one `Insert` update (tag + object).
pub const UPDATE_INSERT_BYTES: u64 = 1 + OBJ_BYTES;
/// Wire size of one `Delete` update (tag + u32 id).
pub const UPDATE_DELETE_BYTES: u64 = 1 + 4;
/// Wire size of one `Move` update (tag + u32 id + rect).
pub const UPDATE_MOVE_BYTES: u64 = 1 + 4 + RECT_BYTES;
/// Wire size of an `Ack` response (opcode + u64 generation).
pub const ACK_BYTES: u64 = 1 + 8;
/// Wire size of the generation-stamp envelope prefixed to response frames
/// served from a generation > 0 (opcode + u64 generation). Generation-0
/// frames carry **no** stamp, so frozen-store traffic is bit-for-bit the
/// pre-generation wire format.
pub const GEN_STAMP_BYTES: u64 = 1 + 8;
/// Wire size of the retry-dedup envelope prefixed to `ApplyUpdates`
/// requests when a [`crate::packet::RetryPolicy`] is enabled (opcode +
/// u64 nonce + u64 seq). With retries off the envelope is never attached
/// and update traffic is bit-for-bit the plain format.
pub const DEDUP_HEADER_BYTES: u64 = 1 + 8 + 8;

/// Frame-layout strategy of one physical link — the negotiated wire
/// protocol version. `V1` is the seed format every peer speaks; `V2` is a
/// strict superset a link may upgrade to via the `HELLO`/`ACCEPT`
/// handshake (see [`crate::proto::Hello`]): requests gain a 1-byte
/// envelope marker, object frames switch to the compact layout
/// ([`ObjectsEncoder`]), counts and acks travel as LEB128 varints, and
/// generation stamps shrink to a varint. Everything else keeps its v1
/// layout — a v2 decoder accepts both, so the upgrade is per-frame
/// self-describing and stateless on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireVersion {
    /// The seed wire format — always spoken when negotiation is off.
    #[default]
    V1,
    /// Compact frames: varint ids/counts, quantized coordinates.
    V2,
}

/// Highest wire protocol version this build speaks.
pub const MAX_WIRE_VERSION: u8 = 2;
/// Wire size of a `HELLO` handshake probe (opcode + u8 max version).
pub const HELLO_BYTES: u64 = 2;
/// Wire size of an `ACCEPT` handshake reply (opcode + u8 version).
pub const ACCEPT_BYTES: u64 = 2;
/// Per-request envelope overhead on a v2 link (the marker byte that asks
/// the server to answer in v2 framing).
pub const V2_MARK_BYTES: u64 = 1;
/// Worst-case wire size of one object inside a v2 `Objects` frame: tag
/// byte + 5-byte zigzag id delta + full exact-`f32` rect escape. This is
/// the per-object bound the exact-count reservation uses; typical point
/// objects encode in 6–11 bytes (see the quantization contract on
/// [`QuantCtx`]).
pub const OBJ_BYTES_V2_MAX: u64 = 1 + 5 + RECT_BYTES;
/// Best-case wire size of one v2 object: a fully quantized point (tag +
/// 1-byte id delta + one u16 per axis).
pub const OBJ_BYTES_V2_MIN: u64 = 1 + 1 + 4;
/// Planning estimate of the v2 per-object wire size the cost model prices
/// window downloads with when [`crate::NetConfig::wire_v2`] is on: tag +
/// short id delta + one escaped-`f32` point pair (the dominant shape on
/// the point workloads). Deliberately conservative — quantized points are
/// smaller, full-rect escapes larger.
pub const OBJ_BYTES_V2_EST: f64 = 11.0;
/// Worst-case wire size of a v2 generation stamp (opcode + 10-byte
/// varint); small generations take 2–3 bytes instead of v1's fixed 9.
pub const GEN_STAMP_BYTES_V2_MAX: u64 = 1 + 10;

/// Decoding failure: corrupt or truncated message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    Truncated,
    UnknownOpcode(u8),
    /// A compact v2 frame carries quantized coordinates but the decoder
    /// was given no request window to dequantize against.
    MissingContext,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            CodecError::MissingContext => {
                write!(f, "quantized frame requires the request window context")
            }
        }
    }
}

impl std::error::Error for CodecError {}

pub(crate) mod op {
    pub const WINDOW: u8 = 0x01;
    pub const COUNT: u8 = 0x02;
    pub const EPS_RANGE: u8 = 0x03;
    pub const BUCKET_EPS_RANGE: u8 = 0x04;
    pub const AVG_AREA: u8 = 0x05;
    pub const MULTI_COUNT: u8 = 0x06;
    pub const APPLY_UPDATES: u8 = 0x07;
    /// Idempotency envelope for retried update deliveries:
    /// `[APPLY_UPDATES_SEQ][u64 nonce][u64 seq][inner request frame]`.
    /// Attached by a link only when its retry policy is enabled; every
    /// re-delivery of the same batch carries the same `(nonce, seq)`, so
    /// the server can detect a duplicate and replay the remembered `Ack`
    /// instead of double-applying (see `QueryHandler::
    /// handle_tagged_updates`).
    pub const APPLY_UPDATES_SEQ: u8 = 0x08;
    pub const COOP_LEVEL_MBRS: u8 = 0x10;
    pub const COOP_FILTER: u8 = 0x11;
    pub const COOP_JOIN_PUSH: u8 = 0x12;

    pub const R_OBJECTS: u8 = 0x81;
    pub const R_COUNT: u8 = 0x82;
    pub const R_AREA: u8 = 0x83;
    pub const R_BUCKETS: u8 = 0x84;
    pub const R_RECTS: u8 = 0x85;
    pub const R_PAIRS: u8 = 0x86;
    pub const R_REFUSED: u8 = 0x87;
    pub const R_COUNTS: u8 = 0x88;
    pub const R_ACK: u8 = 0x89;
    /// Not a response in its own right: the generation-stamp envelope
    /// prefix. `[R_GEN][u64 generation][response frame]`.
    pub const R_GEN: u8 = 0x8A;

    /// Wire tags of the three [`crate::proto::Update`] kinds.
    pub const UPD_INSERT: u8 = 0x01;
    pub const UPD_DELETE: u8 = 0x02;
    pub const UPD_MOVE: u8 = 0x03;

    // ---- wire protocol v2 (negotiated; see `WireVersion`) ----

    /// Link-control probe `[HELLO][u8 max_version]` — the only frame a
    /// negotiating client sends before knowing the peer's version.
    pub const HELLO: u8 = 0x70;
    /// Request-envelope prefix `[V2_MARK][v1-layout request]`: marks a
    /// request whose sender wants the reply in v2 framing. Stateless —
    /// a server can interleave v1 and v2 peers on one queue.
    pub const V2_MARK: u8 = 0x71;
    /// Handshake reply `[R_ACCEPT][u8 version]`.
    pub const R_ACCEPT: u8 = 0x8B;
    /// Compact objects frame: `[R_OBJECTS_V2][u32 count]` then per-object
    /// `[tag][zigzag varint Δid][coords]` (see [`QuantCtx`]).
    pub const R_OBJECTS_V2: u8 = 0x8C;
    /// Compact count: `[R_COUNT_V2][varint]`.
    pub const R_COUNT_V2: u8 = 0x8D;
    /// Compact batched counts: `[R_COUNTS_V2][varint n][varint × n]`.
    pub const R_COUNTS_V2: u8 = 0x8E;
    /// Compact update ack: `[R_ACK_V2][varint generation]`.
    pub const R_ACK_V2: u8 = 0x8F;
    /// Compact generation-stamp envelope: `[R_GEN_V2][varint generation]`.
    pub const R_GEN_V2: u8 = 0x90;
    /// Typed decode-error reply `[R_MALFORMED]`: the server could not
    /// decode the request and is telling the sender so — and nobody
    /// else. A garbled frame from one client must never take down a
    /// server thread shared by every other client.
    pub const R_MALFORMED: u8 = 0x91;
    /// Local transport-failure pseudo-frame `[R_UNAVAILABLE]`: fabricated
    /// by a carrier whose peer is gone (server thread terminated, reply
    /// channel dropped). Reserved — a live server never sends it.
    pub const R_UNAVAILABLE: u8 = 0x92;
    /// Marker a deterministic fault injector stamps over byte 0 of a
    /// frame it garbles (see `crate::fault::FaultLayer`). Deliberately
    /// outside every valid opcode range so a garbled frame can never
    /// silently decode as a different valid value — decoders reject it as
    /// `UnknownOpcode(0xEE)` — while chaos-aware stats (the event loop's
    /// `garbled` gauge) can still tell an injected garble from a
    /// genuinely alien frame.
    pub const GARBLE: u8 = 0xEE;

    /// v2 object tag bit: min == max on both axes (a point) — the max
    /// coordinates are omitted entirely.
    pub const V2_POINT: u8 = 0x01;
    /// v2 object tag bit: x coordinates are u16 grid cells, not f32.
    pub const V2_QX: u8 = 0x02;
    /// v2 object tag bit: y coordinates are u16 grid cells, not f32.
    pub const V2_QY: u8 = 0x04;
}

/// Exact wire size of one encoded update.
pub fn update_wire_bytes(u: &Update) -> u64 {
    match u {
        Update::Insert(_) => UPDATE_INSERT_BYTES,
        Update::Delete(_) => UPDATE_DELETE_BYTES,
        Update::Move { .. } => UPDATE_MOVE_BYTES,
    }
}

fn put_rect(buf: &mut BytesMut, r: &Rect) {
    buf.put_f32(r.min.x as f32);
    buf.put_f32(r.min.y as f32);
    buf.put_f32(r.max.x as f32);
    buf.put_f32(r.max.y as f32);
}

/// Exact wire size of an encoded request, from the published constants —
/// what [`encode_request_into`] reserves and debug-asserts against, so the
/// cost-model constants can never drift from the real wire format.
pub fn request_wire_bytes(req: &Request) -> u64 {
    match req {
        Request::Window(_) | Request::Count(_) | Request::AvgArea(_) => QUERY_BYTES,
        Request::EpsRange { .. } => EPS_QUERY_BYTES,
        Request::BucketEpsRange { probes, .. } => {
            BUCKET_REQ_HEADER_BYTES + probes.len() as u64 * OBJ_BYTES
        }
        Request::MultiCount(windows) => {
            MULTI_COUNT_HEADER_BYTES + windows.len() as u64 * RECT_BYTES
        }
        Request::CoopLevelMbrs(_) => COOP_LEVEL_REQ_BYTES,
        Request::CoopFilterByMbrs { mbrs, .. } => {
            COOP_FILTER_HEADER_BYTES + mbrs.len() as u64 * RECT_BYTES
        }
        Request::CoopJoinPush { objects, .. } => {
            COOP_JOIN_HEADER_BYTES + objects.len() as u64 * OBJ_BYTES
        }
        Request::ApplyUpdates(batch) => {
            UPDATES_HEADER_BYTES + batch.iter().map(update_wire_bytes).sum::<u64>()
        }
    }
}

/// Exact wire size of an encoded response, from the published constants —
/// what [`encode_response_into`] reserves and debug-asserts against.
pub fn response_wire_bytes(resp: &Response) -> u64 {
    match resp {
        Response::Objects(objs) => OBJECTS_HEADER_BYTES + objs.len() as u64 * OBJ_BYTES,
        Response::Count(_) => ANSWER_BYTES,
        Response::Counts(counts) => COUNTS_HEADER_BYTES + counts.len() as u64 * COUNT_ENTRY_BYTES,
        Response::Area(_) => AREA_BYTES,
        Response::Buckets(buckets) => {
            OBJECTS_HEADER_BYTES
                + buckets
                    .iter()
                    .map(|b| BUCKET_FRAME_BYTES + b.len() as u64 * OBJ_BYTES)
                    .sum::<u64>()
        }
        Response::Rects(rects) => RECTS_HEADER_BYTES + rects.len() as u64 * RECT_BYTES,
        Response::Pairs(pairs) => PAIRS_HEADER_BYTES + pairs.len() as u64 * PAIR_BYTES,
        Response::Refused => REFUSED_BYTES,
        Response::Malformed => MALFORMED_BYTES,
        Response::Unavailable => UNAVAILABLE_BYTES,
        Response::Ack { .. } => ACK_BYTES,
    }
}

fn get_rect(buf: &mut Bytes) -> Result<Rect, CodecError> {
    if buf.remaining() < 16 {
        return Err(CodecError::Truncated);
    }
    let min_x = buf.get_f32() as f64;
    let min_y = buf.get_f32() as f64;
    let max_x = buf.get_f32() as f64;
    let max_y = buf.get_f32() as f64;
    Ok(Rect::new(
        Point::new(min_x, min_y),
        Point::new(max_x, max_y),
    ))
}

fn put_object(buf: &mut BytesMut, o: &SpatialObject) {
    buf.put_u32(o.id);
    put_rect(buf, &o.mbr);
}

fn get_object(buf: &mut Bytes) -> Result<SpatialObject, CodecError> {
    if buf.remaining() < 20 {
        return Err(CodecError::Truncated);
    }
    let id = buf.get_u32();
    let mbr = get_rect(buf)?;
    Ok(SpatialObject::new(id, mbr))
}

fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32())
}

fn get_f32(buf: &mut Bytes) -> Result<f32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_f32())
}

/// Encodes a request.
pub fn encode_request(req: &Request) -> Bytes {
    let mut buf = BytesMut::new();
    encode_request_into(req, &mut buf);
    buf.freeze()
}

/// Encodes a request by appending to `buf`, reserving the exact capacity
/// [`request_wire_bytes`] publishes up front (one allocation at most) and
/// debug-asserting the encoded length against it.
pub fn encode_request_into(req: &Request, buf: &mut BytesMut) {
    let expected = request_wire_bytes(req);
    let start = buf.len();
    buf.reserve(expected as usize);
    match req {
        Request::Window(w) => {
            buf.put_u8(op::WINDOW);
            put_rect(buf, w);
        }
        Request::Count(w) => {
            buf.put_u8(op::COUNT);
            put_rect(buf, w);
        }
        Request::EpsRange { q, eps } => {
            buf.put_u8(op::EPS_RANGE);
            put_rect(buf, q);
            buf.put_f32(*eps as f32);
        }
        Request::BucketEpsRange { probes, eps } => {
            buf.put_u8(op::BUCKET_EPS_RANGE);
            buf.put_f32(*eps as f32);
            buf.put_u32(probes.len() as u32);
            for p in probes {
                put_object(buf, p);
            }
        }
        Request::AvgArea(w) => {
            buf.put_u8(op::AVG_AREA);
            put_rect(buf, w);
        }
        Request::MultiCount(windows) => {
            buf.put_u8(op::MULTI_COUNT);
            buf.put_u32(windows.len() as u32);
            for w in windows {
                put_rect(buf, w);
            }
        }
        Request::CoopLevelMbrs(level) => {
            buf.put_u8(op::COOP_LEVEL_MBRS);
            buf.put_u8(*level);
        }
        Request::CoopFilterByMbrs { mbrs, eps } => {
            buf.put_u8(op::COOP_FILTER);
            buf.put_f32(*eps as f32);
            buf.put_u32(mbrs.len() as u32);
            for m in mbrs {
                put_rect(buf, m);
            }
        }
        Request::CoopJoinPush { objects, eps } => {
            buf.put_u8(op::COOP_JOIN_PUSH);
            buf.put_f32(*eps as f32);
            buf.put_u32(objects.len() as u32);
            for o in objects {
                put_object(buf, o);
            }
        }
        Request::ApplyUpdates(batch) => {
            buf.put_u8(op::APPLY_UPDATES);
            buf.put_u32(batch.len() as u32);
            for u in batch {
                match u {
                    Update::Insert(o) => {
                        buf.put_u8(op::UPD_INSERT);
                        put_object(buf, o);
                    }
                    Update::Delete(id) => {
                        buf.put_u8(op::UPD_DELETE);
                        buf.put_u32(*id);
                    }
                    Update::Move { id, to } => {
                        buf.put_u8(op::UPD_MOVE);
                        buf.put_u32(*id);
                        put_rect(buf, to);
                    }
                }
            }
        }
    }
    debug_assert_eq!(
        (buf.len() - start) as u64,
        expected,
        "request wire size diverged from the published constants"
    );
}

/// Encodes a request in the negotiated wire version: v1 requests are
/// exactly [`encode_request`]; v2 requests prepend the 1-byte
/// [`op::V2_MARK`] envelope to the unchanged v1 body, telling the server
/// to answer in v2 framing. Request bodies are not recoded — they are
/// dominated by rectangles both peers must read exactly, and the marker
/// keeps the server stateless.
pub fn encode_request_versioned(req: &Request, wire: WireVersion) -> Bytes {
    let mut buf = BytesMut::new();
    encode_request_versioned_into(req, wire, &mut buf);
    buf.freeze()
}

/// Appending form of [`encode_request_versioned`].
pub fn encode_request_versioned_into(req: &Request, wire: WireVersion, buf: &mut BytesMut) {
    if wire == WireVersion::V2 {
        buf.reserve((V2_MARK_BYTES + request_wire_bytes(req)) as usize);
        buf.put_u8(op::V2_MARK);
    }
    encode_request_into(req, buf);
}

/// Decodes a request, accepting both the bare v1 layout and the
/// v2-marked envelope; the returned [`WireVersion`] is the framing the
/// sender wants the *reply* in.
pub fn decode_request_versioned(mut buf: Bytes) -> Result<(Request, WireVersion), CodecError> {
    if buf.remaining() >= 1 && buf[0] == op::V2_MARK {
        buf.advance(1);
        Ok((decode_request_body(buf)?, WireVersion::V2))
    } else {
        Ok((decode_request_body(buf)?, WireVersion::V1))
    }
}

/// Decodes a request (either version), discarding the reply framing.
pub fn decode_request(buf: Bytes) -> Result<Request, CodecError> {
    Ok(decode_request_versioned(buf)?.0)
}

fn decode_request_body(mut buf: Bytes) -> Result<Request, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let opcode = buf.get_u8();
    match opcode {
        op::WINDOW => Ok(Request::Window(get_rect(&mut buf)?)),
        op::COUNT => Ok(Request::Count(get_rect(&mut buf)?)),
        op::EPS_RANGE => {
            let q = get_rect(&mut buf)?;
            let eps = get_f32(&mut buf)? as f64;
            Ok(Request::EpsRange { q, eps })
        }
        op::BUCKET_EPS_RANGE => {
            let eps = get_f32(&mut buf)? as f64;
            let n = get_u32(&mut buf)? as usize;
            let mut probes = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                probes.push(get_object(&mut buf)?);
            }
            Ok(Request::BucketEpsRange { probes, eps })
        }
        op::AVG_AREA => Ok(Request::AvgArea(get_rect(&mut buf)?)),
        op::MULTI_COUNT => {
            let n = get_u32(&mut buf)? as usize;
            let mut windows = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                windows.push(get_rect(&mut buf)?);
            }
            Ok(Request::MultiCount(windows))
        }
        op::COOP_LEVEL_MBRS => {
            if buf.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            Ok(Request::CoopLevelMbrs(buf.get_u8()))
        }
        op::COOP_FILTER => {
            let eps = get_f32(&mut buf)? as f64;
            let n = get_u32(&mut buf)? as usize;
            let mut mbrs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                mbrs.push(get_rect(&mut buf)?);
            }
            Ok(Request::CoopFilterByMbrs { mbrs, eps })
        }
        op::COOP_JOIN_PUSH => {
            let eps = get_f32(&mut buf)? as f64;
            let n = get_u32(&mut buf)? as usize;
            let mut objects = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                objects.push(get_object(&mut buf)?);
            }
            Ok(Request::CoopJoinPush { objects, eps })
        }
        op::APPLY_UPDATES => {
            let n = get_u32(&mut buf)? as usize;
            let mut batch = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                batch.push(match buf.get_u8() {
                    op::UPD_INSERT => Update::Insert(get_object(&mut buf)?),
                    op::UPD_DELETE => Update::Delete(get_u32(&mut buf)?),
                    op::UPD_MOVE => Update::Move {
                        id: get_u32(&mut buf)?,
                        to: get_rect(&mut buf)?,
                    },
                    tag => return Err(CodecError::UnknownOpcode(tag)),
                });
            }
            Ok(Request::ApplyUpdates(batch))
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Encodes a response.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut buf = BytesMut::new();
    encode_response_into(resp, &mut buf);
    buf.freeze()
}

/// Encodes a response by appending to `buf`, reserving the exact capacity
/// [`response_wire_bytes`] publishes up front (one allocation at most) and
/// debug-asserting the encoded length against it. Servers call this with a
/// reused buffer, so steady-state encoding allocates nothing.
pub fn encode_response_into(resp: &Response, buf: &mut BytesMut) {
    let expected = response_wire_bytes(resp);
    let start = buf.len();
    buf.reserve(expected as usize);
    match resp {
        Response::Objects(objs) => {
            buf.put_u8(op::R_OBJECTS);
            buf.put_u32(objs.len() as u32);
            for o in objs {
                put_object(buf, o);
            }
        }
        Response::Count(c) => {
            buf.put_u8(op::R_COUNT);
            buf.put_u64(*c);
        }
        Response::Counts(counts) => {
            buf.put_u8(op::R_COUNTS);
            buf.put_u32(counts.len() as u32);
            for c in counts {
                buf.put_u64(*c);
            }
        }
        Response::Area(a) => {
            buf.put_u8(op::R_AREA);
            buf.put_f64(*a);
        }
        Response::Buckets(buckets) => {
            buf.put_u8(op::R_BUCKETS);
            buf.put_u32(buckets.len() as u32);
            for b in buckets {
                buf.put_u32(b.len() as u32);
                for o in b {
                    put_object(buf, o);
                }
            }
        }
        Response::Rects(rects) => {
            buf.put_u8(op::R_RECTS);
            buf.put_u32(rects.len() as u32);
            for r in rects {
                put_rect(buf, r);
            }
        }
        Response::Pairs(pairs) => {
            buf.put_u8(op::R_PAIRS);
            buf.put_u32(pairs.len() as u32);
            for (a, b) in pairs {
                buf.put_u32(*a);
                buf.put_u32(*b);
            }
        }
        Response::Refused => {
            buf.put_u8(op::R_REFUSED);
        }
        Response::Malformed => {
            buf.put_u8(op::R_MALFORMED);
        }
        Response::Unavailable => {
            buf.put_u8(op::R_UNAVAILABLE);
        }
        Response::Ack { generation } => {
            buf.put_u8(op::R_ACK);
            buf.put_u64(*generation);
        }
    }
    debug_assert_eq!(
        (buf.len() - start) as u64,
        expected,
        "response wire size diverged from the published constants"
    );
}

/// Streaming encoder for an `Objects` response — the zero-copy serving
/// path. The header and every object go **directly into the wire
/// buffer**: no intermediate object `Vec`, no `Response`. Two modes:
///
/// * [`ObjectsEncoder::new`] — count unknown: a placeholder length prefix
///   is written and **patched** on [`finish`](ObjectsEncoder::finish), so
///   the store is traversed exactly once (a second counting pass would
///   cost a scan-backed store as much as the query itself). Only the
///   header is reserved; a reused server buffer grows to its high-water
///   capacity once and never again.
/// * [`ObjectsEncoder::with_exact_count`] — count known exactly *and
///   cheaply* (the aR-tree's aggregate `COUNT`): the exact frame capacity
///   is reserved up front from the published constants and the count is
///   hard-asserted on finish (in every build — a frame whose length
///   prefix lies would corrupt the stream for the peer).
///
/// Either mode produces bytes identical to encoding `Response::Objects`
/// over the same object sequence.
pub struct ObjectsEncoder<'a> {
    buf: &'a mut BytesMut,
    announced: Option<u64>,
    len_at: usize,
    written: u64,
    wire: WireVersion,
    ctx: Option<QuantCtx>,
    prev_id: u32,
}

impl<'a> ObjectsEncoder<'a> {
    /// Opens a v1 frame whose length prefix is patched on `finish`.
    pub fn new(buf: &'a mut BytesMut) -> Self {
        Self::new_versioned(buf, WireVersion::V1, None)
    }

    /// Opens a v1 frame for exactly `count` objects, reserving the exact
    /// frame capacity.
    pub fn with_exact_count(buf: &'a mut BytesMut, count: u64) -> Self {
        Self::with_exact_count_versioned(buf, count, WireVersion::V1, None)
    }

    /// Opens a patched-length frame in the negotiated wire version. Under
    /// [`WireVersion::V2`] objects stream in the compact layout, quantized
    /// against `ctx` when one exists (escaping per the [`QuantCtx`]
    /// contract); under `V1` this is exactly [`ObjectsEncoder::new`].
    pub fn new_versioned(buf: &'a mut BytesMut, wire: WireVersion, ctx: Option<QuantCtx>) -> Self {
        buf.reserve(OBJECTS_HEADER_BYTES as usize);
        buf.put_u8(match wire {
            WireVersion::V1 => op::R_OBJECTS,
            WireVersion::V2 => op::R_OBJECTS_V2,
        });
        let len_at = buf.len();
        buf.put_u32(0);
        ObjectsEncoder {
            buf,
            announced: None,
            len_at,
            written: 0,
            wire,
            ctx,
            prev_id: 0,
        }
    }

    /// Opens an exact-count frame in the negotiated wire version. v2
    /// objects are variable-width, so the reservation uses the published
    /// per-object *bound* [`OBJ_BYTES_V2_MAX`] — still one allocation at
    /// most, never less than the frame needs.
    pub fn with_exact_count_versioned(
        buf: &'a mut BytesMut,
        count: u64,
        wire: WireVersion,
        ctx: Option<QuantCtx>,
    ) -> Self {
        let (opcode, per_obj) = match wire {
            WireVersion::V1 => (op::R_OBJECTS, OBJ_BYTES),
            WireVersion::V2 => (op::R_OBJECTS_V2, OBJ_BYTES_V2_MAX),
        };
        buf.reserve((OBJECTS_HEADER_BYTES + count * per_obj) as usize);
        buf.put_u8(opcode);
        let len_at = buf.len();
        buf.put_u32(count as u32);
        ObjectsEncoder {
            buf,
            announced: Some(count),
            len_at,
            written: 0,
            wire,
            ctx,
            prev_id: 0,
        }
    }

    /// Appends one object to the frame.
    pub fn push(&mut self, o: &SpatialObject) {
        match self.wire {
            WireVersion::V1 => put_object(self.buf, o),
            WireVersion::V2 => {
                put_object_v2(self.buf, o, self.prev_id, self.ctx.as_ref());
                self.prev_id = o.id;
            }
        }
        self.written += 1;
    }

    /// Closes the frame: patches the streamed count in, or asserts the
    /// announced one was honoured.
    pub fn finish(self) {
        match self.announced {
            Some(count) => assert_eq!(
                self.written, count,
                "objects-response framing mismatch: announced {count} objects, streamed {}",
                self.written
            ),
            None => self.buf[self.len_at..self.len_at + 4]
                .copy_from_slice(&(self.written as u32).to_be_bytes()),
        }
    }
}

/// Decodes a response.
pub fn decode_response(mut buf: Bytes) -> Result<Response, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let opcode = buf.get_u8();
    match opcode {
        op::R_OBJECTS => {
            let n = get_u32(&mut buf)? as usize;
            let mut objs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                objs.push(get_object(&mut buf)?);
            }
            Ok(Response::Objects(objs))
        }
        op::R_COUNT => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Response::Count(buf.get_u64()))
        }
        op::R_AREA => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Response::Area(buf.get_f64()))
        }
        op::R_BUCKETS => {
            let n = get_u32(&mut buf)? as usize;
            let mut buckets = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let len = get_u32(&mut buf)? as usize;
                let mut objs = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    objs.push(get_object(&mut buf)?);
                }
                buckets.push(objs);
            }
            Ok(Response::Buckets(buckets))
        }
        op::R_RECTS => {
            let n = get_u32(&mut buf)? as usize;
            let mut rects = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                rects.push(get_rect(&mut buf)?);
            }
            Ok(Response::Rects(rects))
        }
        op::R_PAIRS => {
            let n = get_u32(&mut buf)? as usize;
            let mut pairs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                pairs.push((get_u32(&mut buf)?, get_u32(&mut buf)?));
            }
            Ok(Response::Pairs(pairs))
        }
        op::R_COUNTS => {
            let n = get_u32(&mut buf)? as usize;
            let mut counts = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                if buf.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                counts.push(buf.get_u64());
            }
            Ok(Response::Counts(counts))
        }
        op::R_REFUSED => Ok(Response::Refused),
        op::R_MALFORMED => Ok(Response::Malformed),
        op::R_UNAVAILABLE => Ok(Response::Unavailable),
        op::R_ACK => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Response::Ack {
                generation: buf.get_u64(),
            })
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Prefixes `buf` (appending) with the generation-stamp envelope — a no-op
/// at generation 0, so frozen-store frames stay bit-identical to the
/// pre-generation wire format. Callers stamp **before** encoding the
/// response frame: `[R_GEN][u64 gen][frame]`.
pub fn stamp_generation(generation: u64, buf: &mut BytesMut) {
    if generation > 0 {
        buf.reserve(GEN_STAMP_BYTES as usize);
        buf.put_u8(op::R_GEN);
        buf.put_u64(generation);
    }
}

/// Decodes a response frame that may carry a generation stamp. Unstamped
/// frames (everything a frozen, generation-0 store serves) decode exactly
/// as [`decode_response`] and report generation 0.
pub fn decode_response_gen(mut buf: Bytes) -> Result<(Response, u64), CodecError> {
    if buf.remaining() >= 1 && buf[0] == op::R_GEN {
        buf.advance(1);
        if buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let generation = buf.get_u64();
        Ok((decode_response(buf)?, generation))
    } else {
        Ok((decode_response(buf)?, 0))
    }
}

/// Splits a raw response frame into its generation and the unstamped
/// remainder **without decoding the payload** — the cheap peek the
/// premetered forwarding paths use. Handles both stamp envelopes (v1's
/// fixed `[R_GEN][u64]` and v2's `[R_GEN_V2][varint]`); unstamped frames
/// report generation 0 and come back unchanged.
pub fn peel_generation(buf: Bytes) -> Result<(u64, Bytes), CodecError> {
    if buf.remaining() >= 1 && buf[0] == op::R_GEN {
        if buf.remaining() < GEN_STAMP_BYTES as usize {
            return Err(CodecError::Truncated);
        }
        let generation = u64::from_be_bytes(buf[1..9].try_into().expect("9-byte stamp"));
        let rest = buf.slice(GEN_STAMP_BYTES as usize..buf.len());
        Ok((generation, rest))
    } else if buf.remaining() >= 1 && buf[0] == op::R_GEN_V2 {
        let mut generation = 0u64;
        let mut shift = 0u32;
        let mut at = 1usize;
        loop {
            if at >= buf.len() || shift > 63 {
                return Err(CodecError::Truncated);
            }
            let b = buf[at];
            at += 1;
            generation |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        if at >= buf.len() {
            // A bare stamp with no frame behind it.
            return Err(CodecError::Truncated);
        }
        Ok((generation, buf.slice(at..buf.len())))
    } else {
        Ok((0, buf))
    }
}

// ---------------------------------------------------------------------------
// Wire protocol v2: varint primitives, the quantization grid, compact frames.
// ---------------------------------------------------------------------------

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let b = buf.get_u8();
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Truncated);
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_u16be(buf: &mut BytesMut, v: u16) {
    buf.put_u8((v >> 8) as u8);
    buf.put_u8(v as u8);
}

fn get_u16be(buf: &mut Bytes) -> Result<u16, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    Ok(u16::from(buf.get_u8()) << 8 | u16::from(buf.get_u8()))
}

fn snap_rect_f32(r: &Rect) -> Rect {
    Rect::new(
        Point::new((r.min.x as f32) as f64, (r.min.y as f32) as f64),
        Point::new((r.max.x as f32) as f64, (r.max.y as f32) as f64),
    )
}

/// The u16 coordinate grid of one request/response exchange — the request
/// window both peers of a v2 link derive it from.
///
/// # The quantization contract
///
/// v2 object frames may carry coordinates as u16 grid cells relative to
/// the request window instead of exact `f32` values. Three clauses make
/// that safe:
///
/// 1. **Shared grid.** Both peers derive the grid from the *wire form* of
///    the request: rect coordinates and ε are snapped through `f32`
///    exactly as [`decode_request`] delivers them, so the server (which
///    only sees the decoded request) and the client (which knows the
///    original) compute bit-identical grids. `WINDOW` grids over the
///    window itself, `ε-RANGE` over the probe expanded by ε; requests
///    without a natural window have no grid and every coordinate escapes.
/// 2. **Verified round trip.** The encoder quantizes a coordinate only if
///    dequantizing the candidate cell reproduces — compared bitwise — the
///    exact `f64` value v1's `f32` wire cast would deliver (`(v as f32)
///    as f64`). Anything else (out-of-window, off-grid, degenerate or
///    non-finite spans) **escapes** to the exact `f32`. A v2 decode is
///    therefore bit-equal to the v1 decode of the same objects, always:
///    join results cannot depend on the negotiated version.
/// 3. **Exact endpoints.** Cell 0 dequantizes to exactly the window min
///    and cell 65535 to exactly the max, so window-edge and grid-aligned
///    coordinates always quantize.
///
/// Density on the point workloads comes mostly from the tag's POINT bit
/// (min == max ships one coordinate pair, not two) and the delta-varint
/// ids; quantization adds a further 2× on grid-aligned data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantCtx {
    rect: Rect,
}

impl QuantCtx {
    /// Grid over the f32-snapped `rect`; `None` when either axis span is
    /// degenerate or non-finite (no grid exists — every coordinate would
    /// escape anyway).
    pub fn new(rect: Rect) -> Option<QuantCtx> {
        let r = snap_rect_f32(&rect);
        let ok = |min: f64, max: f64| (max - min).is_finite() && max - min > 0.0;
        (ok(r.min.x, r.max.x) && ok(r.min.y, r.max.y)).then_some(QuantCtx { rect: r })
    }

    /// The grid both peers of `req` agree on (clause 1 of the contract).
    /// Callers on the *client* side pass the request they are about to
    /// encode; the server passes the request it decoded — both land on
    /// the same grid because the derivation starts from the f32 wire
    /// form.
    pub fn for_request(req: &Request) -> Option<QuantCtx> {
        match req {
            Request::Window(w) => QuantCtx::new(*w),
            Request::EpsRange { q, eps } => {
                QuantCtx::new(snap_rect_f32(q).expand((*eps as f32) as f64))
            }
            _ => None,
        }
    }

    fn quant(min: f64, max: f64, v: f64) -> Option<u16> {
        if !(v >= min && v <= max) {
            return None;
        }
        let t = ((v - min) / (max - min) * 65535.0).round();
        if !(0.0..=65535.0).contains(&t) {
            return None;
        }
        let q = t as u16;
        (Self::dequant(min, max, q).to_bits() == v.to_bits()).then_some(q)
    }

    fn dequant(min: f64, max: f64, q: u16) -> f64 {
        match q {
            0 => min,
            u16::MAX => max,
            q => min + (f64::from(q) / 65535.0) * (max - min),
        }
    }

    fn quant_x(&self, v: f64) -> Option<u16> {
        Self::quant(self.rect.min.x, self.rect.max.x, v)
    }

    fn quant_y(&self, v: f64) -> Option<u16> {
        Self::quant(self.rect.min.y, self.rect.max.y, v)
    }

    fn dequant_x(&self, q: u16) -> f64 {
        Self::dequant(self.rect.min.x, self.rect.max.x, q)
    }

    fn dequant_y(&self, q: u16) -> f64 {
        Self::dequant(self.rect.min.y, self.rect.max.y, q)
    }
}

fn put_object_v2(buf: &mut BytesMut, o: &SpatialObject, prev_id: u32, ctx: Option<&QuantCtx>) {
    // The f32 values a v1 frame would deliver — the bit-faithfulness
    // target every quantization candidate is verified against.
    let xmin = (o.mbr.min.x as f32) as f64;
    let ymin = (o.mbr.min.y as f32) as f64;
    let xmax = (o.mbr.max.x as f32) as f64;
    let ymax = (o.mbr.max.y as f32) as f64;
    let point = xmin.to_bits() == xmax.to_bits() && ymin.to_bits() == ymax.to_bits();
    let qx = ctx.and_then(|c| {
        let lo = c.quant_x(xmin)?;
        let hi = if point { lo } else { c.quant_x(xmax)? };
        Some((lo, hi))
    });
    let qy = ctx.and_then(|c| {
        let lo = c.quant_y(ymin)?;
        let hi = if point { lo } else { c.quant_y(ymax)? };
        Some((lo, hi))
    });
    let mut tag = 0u8;
    if point {
        tag |= op::V2_POINT;
    }
    if qx.is_some() {
        tag |= op::V2_QX;
    }
    if qy.is_some() {
        tag |= op::V2_QY;
    }
    buf.put_u8(tag);
    put_varint(buf, zigzag(i64::from(o.id) - i64::from(prev_id)));
    match qx {
        Some((lo, hi)) => {
            put_u16be(buf, lo);
            if !point {
                put_u16be(buf, hi);
            }
        }
        None => {
            buf.put_f32(xmin as f32);
            if !point {
                buf.put_f32(xmax as f32);
            }
        }
    }
    match qy {
        Some((lo, hi)) => {
            put_u16be(buf, lo);
            if !point {
                put_u16be(buf, hi);
            }
        }
        None => {
            buf.put_f32(ymin as f32);
            if !point {
                buf.put_f32(ymax as f32);
            }
        }
    }
}

fn get_object_v2(
    buf: &mut Bytes,
    prev_id: u32,
    ctx: Option<&QuantCtx>,
) -> Result<SpatialObject, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    let point = tag & op::V2_POINT != 0;
    let delta = unzigzag(get_varint(buf)?);
    let id =
        u32::try_from(i64::from(prev_id).wrapping_add(delta)).map_err(|_| CodecError::Truncated)?;
    let (xmin, xmax) = if tag & op::V2_QX != 0 {
        let c = ctx.ok_or(CodecError::MissingContext)?;
        let lo = c.dequant_x(get_u16be(buf)?);
        let hi = if point {
            lo
        } else {
            c.dequant_x(get_u16be(buf)?)
        };
        (lo, hi)
    } else {
        let lo = get_f32(buf)? as f64;
        let hi = if point { lo } else { get_f32(buf)? as f64 };
        (lo, hi)
    };
    let (ymin, ymax) = if tag & op::V2_QY != 0 {
        let c = ctx.ok_or(CodecError::MissingContext)?;
        let lo = c.dequant_y(get_u16be(buf)?);
        let hi = if point {
            lo
        } else {
            c.dequant_y(get_u16be(buf)?)
        };
        (lo, hi)
    } else {
        let lo = get_f32(buf)? as f64;
        let hi = if point { lo } else { get_f32(buf)? as f64 };
        (lo, hi)
    };
    Ok(SpatialObject::new(
        id,
        Rect::new(Point::new(xmin, ymin), Point::new(xmax, ymax)),
    ))
}

/// Encodes a response in the negotiated wire version. `V1` is exactly
/// [`encode_response_into`]. `V2` swaps in the compact layouts — objects
/// (delta-varint ids, quantized/escaped coordinates), varint counts and
/// acks — and keeps the v1 layout for everything else (buckets, rects,
/// pairs, areas, refusals): v2 is a superset, the decoder dispatches on
/// the opcode.
pub fn encode_response_versioned(
    resp: &Response,
    wire: WireVersion,
    ctx: Option<&QuantCtx>,
    buf: &mut BytesMut,
) {
    if wire == WireVersion::V1 {
        return encode_response_into(resp, buf);
    }
    match resp {
        Response::Objects(objs) => {
            let mut enc = ObjectsEncoder::with_exact_count_versioned(
                buf,
                objs.len() as u64,
                wire,
                ctx.copied(),
            );
            for o in objs {
                enc.push(o);
            }
            enc.finish();
        }
        Response::Count(c) => {
            buf.put_u8(op::R_COUNT_V2);
            put_varint(buf, *c);
        }
        Response::Counts(counts) => {
            buf.put_u8(op::R_COUNTS_V2);
            put_varint(buf, counts.len() as u64);
            for c in counts {
                put_varint(buf, *c);
            }
        }
        Response::Ack { generation } => {
            buf.put_u8(op::R_ACK_V2);
            put_varint(buf, *generation);
        }
        other => encode_response_into(other, buf),
    }
}

/// Decodes a response frame of either version. `ctx` is the request's
/// quantization grid ([`QuantCtx::for_request`]); it is only consulted for
/// quantized v2 object frames — pass `None` when the request had no
/// window (such frames never quantize).
pub fn decode_response_ctx(mut buf: Bytes, ctx: Option<&QuantCtx>) -> Result<Response, CodecError> {
    if buf.remaining() >= 1 && buf[0] == op::R_OBJECTS_V2 {
        buf.advance(1);
        let n = get_u32(&mut buf)? as usize;
        let mut objs = Vec::with_capacity(n.min(1 << 20));
        let mut prev_id = 0u32;
        for _ in 0..n {
            let o = get_object_v2(&mut buf, prev_id, ctx)?;
            prev_id = o.id;
            objs.push(o);
        }
        return Ok(Response::Objects(objs));
    }
    if buf.remaining() >= 1 {
        match buf[0] {
            op::R_COUNT_V2 => {
                buf.advance(1);
                return Ok(Response::Count(get_varint(&mut buf)?));
            }
            op::R_COUNTS_V2 => {
                buf.advance(1);
                let n = get_varint(&mut buf)? as usize;
                let mut counts = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    counts.push(get_varint(&mut buf)?);
                }
                return Ok(Response::Counts(counts));
            }
            op::R_ACK_V2 => {
                buf.advance(1);
                return Ok(Response::Ack {
                    generation: get_varint(&mut buf)?,
                });
            }
            _ => {}
        }
    }
    decode_response(buf)
}

/// Versioned [`stamp_generation`]: v1 stamps the fixed 9-byte envelope,
/// v2 a varint one ([`op::R_GEN_V2`]). Generation 0 stamps nothing in
/// either version.
pub fn stamp_generation_versioned(generation: u64, wire: WireVersion, buf: &mut BytesMut) {
    match wire {
        WireVersion::V1 => stamp_generation(generation, buf),
        WireVersion::V2 => {
            if generation > 0 {
                buf.reserve(GEN_STAMP_BYTES_V2_MAX as usize);
                buf.put_u8(op::R_GEN_V2);
                put_varint(buf, generation);
            }
        }
    }
}

/// [`decode_response_gen`] for frames of either version: handles both
/// stamp envelopes, then decodes with `ctx`.
pub fn decode_response_gen_ctx(
    buf: Bytes,
    ctx: Option<&QuantCtx>,
) -> Result<(Response, u64), CodecError> {
    let (generation, rest) = peel_generation(buf)?;
    Ok((decode_response_ctx(rest, ctx)?, generation))
}

/// Encodes the `HELLO` probe a negotiating client opens a link with.
pub fn encode_hello(max_version: u8) -> Bytes {
    Bytes::copy_from_slice(&[op::HELLO, max_version])
}

///// Answers a raw frame if — and only if — it is a `HELLO` probe: the
/// transport-adapter intercept servers use so version negotiation never
/// reaches the query handler. Returns the `ACCEPT` reply to send back, or
/// `None` for every non-handshake frame.
pub fn try_answer_hello(raw: &[u8]) -> Option<Bytes> {
    (raw.len() == HELLO_BYTES as usize && raw[0] == op::HELLO).then(|| {
        let version = raw[1].clamp(1, MAX_WIRE_VERSION);
        Bytes::copy_from_slice(&[op::R_ACCEPT, version])
    })
}

/// Parses an `ACCEPT` handshake reply. Anything else — including a v1
/// peer's `UnknownOpcode` refusal or garbage — means the link must fall
/// back to v1, so this returns `Option`, not `Result`.
pub fn decode_accept(raw: &[u8]) -> Option<u8> {
    (raw.len() == ACCEPT_BYTES as usize && raw[0] == op::R_ACCEPT).then(|| raw[1])
}

/// The typed error reply a transport adapter sends back when it cannot
/// decode a request frame ([`op::R_MALFORMED`]). Answering — instead of
/// `expect`ing — is what keeps a shared server thread alive when one
/// client garbles a frame.
pub fn malformed_frame() -> Bytes {
    Bytes::copy_from_slice(&[op::R_MALFORMED])
}

/// The locally fabricated pseudo-reply of a carrier whose peer is gone
/// ([`op::R_UNAVAILABLE`]). Decodes to
/// [`crate::proto::Response::Unavailable`]; metering layers must treat it
/// as zero wire traffic — nothing crossed.
pub fn unavailable_frame() -> Bytes {
    Bytes::copy_from_slice(&[op::R_UNAVAILABLE])
}

/// `true` iff `raw` is the carrier-fabricated [`unavailable_frame`] — the
/// check metering sites use to skip charging an exchange that never
/// happened.
pub fn is_unavailable(raw: &[u8]) -> bool {
    raw.len() == UNAVAILABLE_BYTES as usize && raw[0] == op::R_UNAVAILABLE
}

/// Identity of one at-most-once update delivery: `nonce` names the sender
/// (one per link, process-unique), `seq` the batch within that sender.
/// Every retry of the same batch carries the identical tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DedupTag {
    pub nonce: u64,
    pub seq: u64,
}

/// Wraps an encoded `ApplyUpdates` frame in the retry-dedup envelope
/// `[APPLY_UPDATES_SEQ][u64 nonce][u64 seq][inner frame]`. Only attached
/// when retries are enabled — see [`DEDUP_HEADER_BYTES`].
pub fn wrap_dedup(tag: DedupTag, inner: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(DEDUP_HEADER_BYTES as usize + inner.len());
    buf.push(op::APPLY_UPDATES_SEQ);
    buf.extend_from_slice(&tag.nonce.to_be_bytes());
    buf.extend_from_slice(&tag.seq.to_be_bytes());
    buf.extend_from_slice(inner);
    Bytes::from(buf)
}

/// Splits a retry-dedup envelope off a request frame: `Some((tag,
/// inner))` when `raw` is a well-formed envelope, `None` for every other
/// frame (including a truncated envelope, which the caller's ordinary
/// request decoder then rejects as malformed).
pub fn peel_dedup(raw: &Bytes) -> Option<(DedupTag, Bytes)> {
    if raw.len() < DEDUP_HEADER_BYTES as usize || raw[0] != op::APPLY_UPDATES_SEQ {
        return None;
    }
    let nonce = u64::from_be_bytes(raw[1..9].try_into().expect("8-byte nonce"));
    let seq = u64::from_be_bytes(raw[9..17].try_into().expect("8-byte seq"));
    Some((
        DedupTag { nonce, seq },
        raw.slice(DEDUP_HEADER_BYTES as usize..raw.len()),
    ))
}

/// Stamps [`op::GARBLE`] over byte 0 of a frame — the deterministic
/// fault injector's reply corruption. The result never decodes to any
/// valid value (the marker is outside every opcode range), so a garbled
/// reply always surfaces as a typed `Malformed`, never as a silently
/// different answer.
pub fn garble_frame(raw: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(raw.len().max(1));
    out.push(op::GARBLE);
    if raw.len() > 1 {
        out.extend_from_slice(&raw[1..]);
    }
    Bytes::from(out)
}

/// `true` iff `raw` leads with the injected-garble marker — how
/// chaos-aware stats distinguish injected corruption from genuinely
/// alien frames.
pub fn is_injected_garble(raw: &[u8]) -> bool {
    !raw.is_empty() && raw[0] == op::GARBLE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u32, x: f64, y: f64) -> SpatialObject {
        SpatialObject::point(id, x, y)
    }

    #[test]
    fn dedup_envelope_roundtrips_and_rejects_short_frames() {
        let inner = encode_request(&Request::ApplyUpdates(vec![Update::Delete(7)]));
        let tag = DedupTag {
            nonce: 0xDEAD_BEEF,
            seq: 42,
        };
        let wrapped = wrap_dedup(tag, &inner);
        assert_eq!(
            wrapped.len() as u64,
            DEDUP_HEADER_BYTES + inner.len() as u64
        );
        let (back_tag, back_inner) = peel_dedup(&wrapped).expect("well-formed envelope");
        assert_eq!(back_tag, tag);
        assert_eq!(back_inner.as_ref(), inner.as_ref());
        // The inner frame still decodes as the plain request.
        assert_eq!(
            decode_request(back_inner).unwrap(),
            Request::ApplyUpdates(vec![Update::Delete(7)])
        );
        // Non-envelope and truncated-envelope frames peel to None; the
        // truncated one then fails ordinary decoding (typed, no panic).
        assert!(peel_dedup(&inner).is_none());
        let truncated = wrapped.slice(0..DEDUP_HEADER_BYTES as usize - 1);
        assert!(peel_dedup(&truncated).is_none());
        assert!(decode_request(truncated).is_err());
    }

    #[test]
    fn garbled_frames_are_typed_errors_never_values() {
        let frames = [
            encode_response(&Response::Count(7)),
            encode_response(&Response::Objects(vec![obj(1, 1.0, 2.0)])),
            encode_response(&Response::Ack { generation: 3 }),
        ];
        for f in frames {
            let g = garble_frame(&f);
            assert!(is_injected_garble(&g));
            assert_eq!(g.len(), f.len());
            assert_eq!(
                decode_response(g.clone()),
                Err(CodecError::UnknownOpcode(op::GARBLE))
            );
            assert_eq!(
                decode_response_gen_ctx(g, None),
                Err(CodecError::UnknownOpcode(op::GARBLE))
            );
        }
        assert!(!is_injected_garble(&encode_response(&Response::Refused)));
        assert!(!is_injected_garble(&[]));
    }

    #[test]
    fn request_roundtrips() {
        let w = Rect::from_coords(1.0, 2.0, 3.0, 4.0);
        let reqs = vec![
            Request::Window(w),
            Request::Count(w),
            Request::EpsRange { q: w, eps: 0.5 },
            Request::BucketEpsRange {
                probes: vec![obj(1, 1.0, 2.0), obj(2, 3.0, 4.0)],
                eps: 2.0,
            },
            Request::AvgArea(w),
            Request::MultiCount(vec![w, w, w]),
            Request::MultiCount(vec![]),
            Request::CoopLevelMbrs(3),
            Request::CoopFilterByMbrs {
                mbrs: vec![w, w],
                eps: 1.5,
            },
            Request::CoopJoinPush {
                objects: vec![obj(9, 5.0, 5.0)],
                eps: 0.25,
            },
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            let back = decode_request(bytes).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let resps = vec![
            Response::Objects(vec![obj(1, 1.0, 1.0), obj(2, 2.0, 2.0)]),
            Response::Count(123_456),
            Response::Counts(vec![0, 7, u64::MAX]),
            Response::Counts(vec![]),
            Response::Area(42.5),
            Response::Buckets(vec![vec![obj(1, 0.0, 0.0)], vec![], vec![obj(2, 1.0, 1.0)]]),
            Response::Rects(vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0)]),
            Response::Pairs(vec![(1, 2), (3, 4)]),
            Response::Refused,
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            let back = decode_response(bytes).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn wire_sizes_match_constants() {
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert_eq!(
            encode_request(&Request::Window(w)).len() as u64,
            QUERY_BYTES
        );
        assert_eq!(encode_request(&Request::Count(w)).len() as u64, QUERY_BYTES);
        assert_eq!(
            encode_response(&Response::Count(7)).len() as u64,
            ANSWER_BYTES
        );
        let objs = vec![obj(1, 0.0, 0.0), obj(2, 1.0, 1.0), obj(3, 2.0, 2.0)];
        assert_eq!(
            encode_response(&Response::Objects(objs)).len() as u64,
            OBJECTS_HEADER_BYTES + 3 * OBJ_BYTES
        );
    }

    #[test]
    fn eps_and_bucket_request_sizes() {
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert_eq!(
            encode_request(&Request::EpsRange { q: w, eps: 1.0 }).len() as u64,
            EPS_QUERY_BYTES
        );
        let probes = vec![obj(1, 0.0, 0.0), obj(2, 1.0, 1.0)];
        assert_eq!(
            encode_request(&Request::BucketEpsRange { probes, eps: 1.0 }).len() as u64,
            BUCKET_REQ_HEADER_BYTES + 2 * OBJ_BYTES
        );
    }

    #[test]
    fn multi_count_wire_sizes() {
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        // One MultiCount of 4 windows replaces 4 COUNT round trips.
        assert_eq!(
            encode_request(&Request::MultiCount(vec![w; 4])).len() as u64,
            MULTI_COUNT_HEADER_BYTES + 4 * RECT_BYTES
        );
        assert_eq!(
            encode_response(&Response::Counts(vec![1, 2, 3, 4])).len() as u64,
            COUNTS_HEADER_BYTES + 4 * COUNT_ENTRY_BYTES
        );
        // Raw payload is a wash (106 vs 104 bytes for k=4); the win is the
        // per-message packet headers the batch amortizes.
        let p = crate::packet::PacketModel::default();
        let batched = p.tb(MULTI_COUNT_HEADER_BYTES + 4 * RECT_BYTES)
            + p.tb(COUNTS_HEADER_BYTES + 4 * COUNT_ENTRY_BYTES);
        let single = 4 * (p.tb(QUERY_BYTES) + p.tb(ANSWER_BYTES));
        assert!(batched < single, "batched {batched} vs single {single}");
    }

    #[test]
    fn multi_count_truncation_rejected() {
        let full = encode_request(&Request::MultiCount(vec![
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(1.0, 1.0, 2.0, 2.0),
        ]));
        for cut in [1, 4, 5, 20, 36] {
            assert_eq!(
                decode_request(full.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
        let resp = encode_response(&Response::Counts(vec![1, 2]));
        for cut in [1, 4, 12, 20] {
            assert_eq!(
                decode_response(resp.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bucket_wire_size() {
        let b = Response::Buckets(vec![vec![obj(1, 0.0, 0.0)], vec![]]);
        // opcode + outer u32 + (frame + obj) + frame
        assert_eq!(
            encode_response(&b).len() as u64,
            OBJECTS_HEADER_BYTES + (BUCKET_FRAME_BYTES + OBJ_BYTES) + BUCKET_FRAME_BYTES
        );
    }

    #[test]
    fn truncated_messages_rejected() {
        let full = encode_request(&Request::Window(Rect::from_coords(0.0, 0.0, 1.0, 1.0)));
        for cut in [0, 1, 5, 16] {
            let r = decode_request(full.slice(0..cut));
            assert_eq!(r, Err(CodecError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let bad = Bytes::from_static(&[0x7f, 0, 0, 0]);
        assert_eq!(
            decode_request(bad.clone()),
            Err(CodecError::UnknownOpcode(0x7f))
        );
        assert_eq!(decode_response(bad), Err(CodecError::UnknownOpcode(0x7f)));
    }

    #[test]
    fn update_batch_roundtrips_and_matches_constants() {
        let batch = Request::ApplyUpdates(vec![
            Update::Insert(obj(1, 1.0, 2.0)),
            Update::Delete(7),
            Update::Move {
                id: 9,
                to: Rect::from_coords(1.0, 1.0, 2.0, 2.0),
            },
        ]);
        let bytes = encode_request(&batch);
        assert_eq!(
            bytes.len() as u64,
            UPDATES_HEADER_BYTES + UPDATE_INSERT_BYTES + UPDATE_DELETE_BYTES + UPDATE_MOVE_BYTES
        );
        assert_eq!(decode_request(bytes).unwrap(), batch);
        let empty = Request::ApplyUpdates(vec![]);
        assert_eq!(
            decode_request(encode_request(&empty)).unwrap(),
            Request::ApplyUpdates(vec![])
        );
    }

    #[test]
    fn update_truncation_and_bad_tag_rejected() {
        let full = encode_request(&Request::ApplyUpdates(vec![
            Update::Insert(obj(1, 1.0, 2.0)),
            Update::Delete(7),
        ]));
        for cut in [1, 4, 5, 6, 25, 26] {
            assert_eq!(
                decode_request(full.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
        let mut bad = full.as_slice().to_vec();
        bad[UPDATES_HEADER_BYTES as usize] = 0x7e; // corrupt the first tag
        assert_eq!(
            decode_request(Bytes::from(bad)),
            Err(CodecError::UnknownOpcode(0x7e))
        );
    }

    #[test]
    fn ack_roundtrips() {
        let ack = Response::Ack { generation: 42 };
        let bytes = encode_response(&ack);
        assert_eq!(bytes.len() as u64, ACK_BYTES);
        assert_eq!(decode_response(bytes.clone()).unwrap(), ack);
        assert_eq!(decode_response_gen(bytes).unwrap(), (ack, 0));
        assert_eq!(
            decode_response(encode_response(&Response::Ack { generation: 42 }).slice(0..5)),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn generation_zero_stamps_nothing() {
        // The bit-for-bit compatibility proof at the codec level: stamping
        // generation 0 appends no bytes, so a frozen store's frames are
        // exactly the pre-generation encoding, and they decode to gen 0.
        let resp = Response::Objects(vec![obj(1, 1.0, 1.0)]);
        let mut buf = BytesMut::new();
        stamp_generation(0, &mut buf);
        assert!(buf.is_empty());
        encode_response_into(&resp, &mut buf);
        assert_eq!(buf.freeze(), encode_response(&resp));
        let (back, gen) = decode_response_gen(encode_response(&resp)).unwrap();
        assert_eq!((back, gen), (resp, 0));
    }

    #[test]
    fn stamped_frames_roundtrip_and_peel() {
        let resp = Response::Objects(vec![obj(1, 1.0, 1.0), obj(2, 2.0, 2.0)]);
        let mut buf = BytesMut::new();
        stamp_generation(3, &mut buf);
        encode_response_into(&resp, &mut buf);
        let raw = buf.freeze();
        assert_eq!(
            raw.len() as u64,
            GEN_STAMP_BYTES + response_wire_bytes(&resp)
        );
        assert_eq!(decode_response_gen(raw.clone()).unwrap(), (resp.clone(), 3));
        let (gen, rest) = peel_generation(raw.clone()).unwrap();
        assert_eq!(gen, 3);
        assert_eq!(rest, encode_response(&resp));
        // Peeling an unstamped frame is the identity.
        let plain = encode_response(&resp);
        assert_eq!(peel_generation(plain.clone()).unwrap(), (0, plain));
        // A truncated stamp is rejected, not misread as generation 0.
        for cut in [1, 5, 8] {
            assert_eq!(
                decode_response_gen(raw.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
            assert_eq!(
                peel_generation(raw.slice(0..cut)),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
        // A bare stamp with no frame behind it is also truncated.
        assert_eq!(
            decode_response_gen(raw.slice(0..GEN_STAMP_BYTES as usize)),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn f32_representable_coordinates_are_lossless() {
        // The generator invariant: coords rounded through f32 survive.
        let x = 1234.5678_f32 as f64;
        let y = 9_876.543_f32 as f64;
        let o = obj(7, x, y);
        let back = decode_response(encode_response(&Response::Objects(vec![o])))
            .unwrap()
            .into_objects();
        assert_eq!(back[0], o);
    }

    #[test]
    fn hello_accept_handshake() {
        let hello = encode_hello(2);
        assert_eq!(hello.len() as u64, HELLO_BYTES);
        let accept = try_answer_hello(&hello).expect("a HELLO probe must be intercepted");
        assert_eq!(accept.len() as u64, ACCEPT_BYTES);
        assert_eq!(decode_accept(&accept), Some(2));
        // An over-eager client is clamped to what the server speaks; an
        // ancient one is lifted to v1.
        let answer = |max| decode_accept(&try_answer_hello(&encode_hello(max)).unwrap());
        assert_eq!(answer(9), Some(MAX_WIRE_VERSION));
        assert_eq!(answer(0), Some(1));
        // Ordinary request frames are not the handshake's business.
        let count = encode_request(&Request::Count(Rect::from_coords(0.0, 0.0, 1.0, 1.0)));
        assert_eq!(try_answer_hello(&count), None);
        // A v1 peer's refusal byte — or any garbage — is not an ACCEPT:
        // the link must fall back, not error.
        assert_eq!(decode_accept(&[0x00]), None);
        assert_eq!(decode_accept(&encode_response(&Response::Refused)), None);
        assert_eq!(decode_accept(&[]), None);
    }

    #[test]
    fn v2_object_frames_hit_published_bounds() {
        let ctx = QuantCtx::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        // Densest layout: a point on the window corner (cell 0 is exact
        // by construction) one id away from its predecessor.
        let densest = Response::Objects(vec![obj(1, 0.0, 0.0)]);
        let mut buf = BytesMut::new();
        encode_response_versioned(&densest, WireVersion::V2, ctx.as_ref(), &mut buf);
        assert_eq!(buf.len() as u64, OBJECTS_HEADER_BYTES + OBJ_BYTES_V2_MIN);
        // Widest layout: an out-of-window rectangle (both axes escape to
        // exact f32 pairs) under the worst-case id delta.
        let widest = Response::Objects(vec![SpatialObject::new(
            u32::MAX,
            Rect::from_coords(5.0, 5.0, 6.0, 7.0),
        )]);
        let mut buf = BytesMut::new();
        encode_response_versioned(&widest, WireVersion::V2, ctx.as_ref(), &mut buf);
        assert_eq!(buf.len() as u64, OBJECTS_HEADER_BYTES + OBJ_BYTES_V2_MAX);
        // Either extreme decodes bit-equal to its v1 self.
        for resp in [densest, widest] {
            let mut buf = BytesMut::new();
            encode_response_versioned(&resp, WireVersion::V2, ctx.as_ref(), &mut buf);
            assert_eq!(
                decode_response_ctx(buf.freeze(), ctx.as_ref()).unwrap(),
                decode_response(encode_response(&resp)).unwrap()
            );
        }
    }

    #[test]
    fn versioned_encoders_at_v1_are_the_v1_encoders() {
        // The structural half of the off-means-off guarantee: asking the
        // versioned entry points for V1 produces the v1 bytes exactly.
        let resps = [
            Response::Objects(vec![obj(1, 1.0, 1.0), obj(2, 2.0, 2.0)]),
            Response::Count(123_456),
            Response::Counts(vec![0, 7, u64::MAX]),
            Response::Ack { generation: 4 },
            Response::Refused,
        ];
        for resp in resps {
            let mut buf = BytesMut::new();
            encode_response_versioned(&resp, WireVersion::V1, None, &mut buf);
            assert_eq!(buf.freeze(), encode_response(&resp));
        }
        let mut versioned = BytesMut::new();
        stamp_generation_versioned(5, WireVersion::V1, &mut versioned);
        let mut plain = BytesMut::new();
        stamp_generation(5, &mut plain);
        assert_eq!(versioned.freeze(), plain.freeze());
        // And v2's generation-0 stamp is as silent as v1's.
        let mut empty = BytesMut::new();
        stamp_generation_versioned(0, WireVersion::V2, &mut empty);
        assert!(empty.is_empty());
    }
}
