//! Per-endpoint health: deterministic circuit breakers and EWMA failure
//! tracking for replicated shard fleets.
//!
//! # The breaker contract
//!
//! Every replica edge of a [`ShardRouter`](crate::router::ShardRouter)
//! carries one [`EdgeHealth`]. The breaker is a three-state machine:
//!
//! * **Closed** — the edge is routable. Each failed exchange increments a
//!   consecutive-failure counter; reaching `BreakerConfig::threshold`
//!   trips the breaker to Open. Any success resets the counter.
//! * **Open** — the edge is skipped by replica picks and failover
//!   rotations (it still gets traffic as a *last resort*, when every
//!   sibling of the set is open too — a breaker must never blank the only
//!   remaining candidates). The state holds for
//!   `BreakerConfig::cooldown` ticks of the replica set's exchange clock.
//! * **HalfOpen** — once the cooldown elapses the edge is eligible again
//!   and the next exchange through it is the probe: success closes the
//!   breaker, failure re-opens it (restarting the cooldown and counting
//!   another trip).
//!
//! **Determinism.** Every transition is driven by exchange *outcomes*, and
//! the cooldown is measured on a per-replica-set exchange counter — never
//! a wall clock. Replaying the same request sequence against the same
//! fault seed therefore replays the exact same breaker states, which is
//! what lets the chaos suites assert on them.
//!
//! # The generation-floor contract
//!
//! Failover must not trade availability for staleness. The router keeps,
//! per shard, the highest snapshot generation ever observed from *any*
//! replica (fetch-maxed from every response stamp and update `Ack` — see
//! [`ShardMeta::note_generation`](crate::router::ShardMeta::note_generation)).
//! That maximum is the shard's **generation floor**: a read reply stamped
//! *below* the floor comes from a replica that lags a state the client has
//! already seen, so it is rejected — metered as real traffic, counted as a
//! failure against the replica's health, and refetched from a sibling.
//! The floor makes replica handoff invisible to everything above the
//! router: the generation-keyed client cache never stores a stale window
//! under a fresh key, and the never-wrong envelope of the chaos suites
//! survives arbitrary failover orders.
//!
//! EWMA failure rates are tracked per edge in integer parts-per-million
//! (fixed point, window [`EWMA_WINDOW`]) so snapshots stay `Eq`-comparable
//! and bit-reproducible across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Circuit-breaker knobs of one fleet. Disabled by default: an inert
/// breaker never alters routing, keeping replica-less deployments
/// byte-identical to pre-breaker builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// When `false` (the default) EWMA and consecutive-failure tracking
    /// still run — they are observability — but the state machine stays
    /// Closed and routing never skips an edge.
    pub enabled: bool,
    /// Consecutive failures that trip a Closed breaker to Open.
    pub threshold: u32,
    /// Exchange-clock ticks an Open breaker holds before HalfOpen.
    pub cooldown: u64,
}

impl BreakerConfig {
    pub const DEFAULT_THRESHOLD: u32 = 3;
    pub const DEFAULT_COOLDOWN: u64 = 8;

    /// Breakers off (the default): tracking only, no routing effect.
    pub fn disabled() -> Self {
        BreakerConfig {
            enabled: false,
            threshold: Self::DEFAULT_THRESHOLD,
            cooldown: Self::DEFAULT_COOLDOWN,
        }
    }

    /// Breakers on with explicit knobs.
    pub fn new(threshold: u32, cooldown: u64) -> Self {
        assert!(threshold >= 1, "a breaker needs a positive trip threshold");
        BreakerConfig {
            enabled: true,
            threshold,
            cooldown,
        }
    }

    /// Breakers on with the default knobs.
    pub fn enabled() -> Self {
        BreakerConfig::new(Self::DEFAULT_THRESHOLD, Self::DEFAULT_COOLDOWN)
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig::disabled()
    }
}

/// The breaker states. See the module docs for the transition rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    #[default]
    Closed,
    Open,
    HalfOpen,
}

/// EWMA window: each sample moves the tracked failure rate by 1/8 of the
/// distance to the new observation. Integer arithmetic in ppm, so the
/// trace is deterministic and snapshots stay `Eq`.
pub const EWMA_WINDOW: u64 = 8;

const PPM: u64 = 1_000_000;

#[derive(Debug, Default)]
struct EdgeState {
    /// Consecutive failed exchanges since the last success.
    consecutive: u32,
    /// Exchange-clock reading at the moment the breaker last opened;
    /// `None` while Closed.
    opened_at: Option<u64>,
    /// EWMA failure rate in parts-per-million.
    ewma_ppm: u64,
    /// Times the breaker transitioned to Open (first trips and half-open
    /// probe failures both count).
    trips: u64,
}

/// Health of one replica edge: breaker state plus EWMA failure tracking.
/// All methods take the owning replica set's exchange clock, never a wall
/// clock — see the module docs.
#[derive(Debug, Default)]
pub struct EdgeHealth {
    state: Mutex<EdgeState>,
}

impl EdgeHealth {
    pub fn new() -> Self {
        EdgeHealth::default()
    }

    fn ewma(prev: u64, sample: u64) -> u64 {
        (prev * (EWMA_WINDOW - 1) + sample) / EWMA_WINDOW
    }

    /// Records a successful exchange: resets the consecutive-failure
    /// counter and closes the breaker (a HalfOpen probe succeeding is the
    /// close transition; an Open edge succeeding as a last resort heals
    /// too — the outcome is the evidence, not the state we expected).
    pub fn on_success(&self) {
        let mut s = self.state.lock().expect("health lock poisoned");
        s.consecutive = 0;
        s.opened_at = None;
        s.ewma_ppm = Self::ewma(s.ewma_ppm, 0);
    }

    /// Records a failed exchange at exchange-clock reading `clock`.
    /// Returns `true` when this failure *trips* the breaker to Open (a
    /// Closed edge reaching the threshold, or a HalfOpen probe failing) —
    /// the caller meters those as `breaker_open` events.
    pub fn on_failure(&self, cfg: &BreakerConfig, clock: u64) -> bool {
        let mut s = self.state.lock().expect("health lock poisoned");
        s.consecutive = s.consecutive.saturating_add(1);
        s.ewma_ppm = Self::ewma(s.ewma_ppm, PPM);
        if !cfg.enabled {
            return false;
        }
        match s.opened_at {
            // A failed HalfOpen probe re-opens and restarts the cooldown.
            Some(at) if clock >= at.saturating_add(cfg.cooldown) => {
                s.opened_at = Some(clock);
                s.trips += 1;
                true
            }
            // Still Open (last-resort traffic failed): hold the state.
            Some(_) => false,
            None if s.consecutive >= cfg.threshold => {
                s.opened_at = Some(clock);
                s.trips += 1;
                true
            }
            None => false,
        }
    }

    /// The breaker state at exchange-clock reading `clock`.
    pub fn state(&self, cfg: &BreakerConfig, clock: u64) -> BreakerState {
        if !cfg.enabled {
            return BreakerState::Closed;
        }
        let s = self.state.lock().expect("health lock poisoned");
        match s.opened_at {
            None => BreakerState::Closed,
            Some(at) if clock >= at.saturating_add(cfg.cooldown) => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// `true` when routing may pick this edge: Closed, or HalfOpen (the
    /// probe). Open edges are skipped — unless every sibling is open too,
    /// in which case the caller falls back to the full set.
    pub fn admits(&self, cfg: &BreakerConfig, clock: u64) -> bool {
        self.state(cfg, clock) != BreakerState::Open
    }

    /// Point-in-time copy of this edge's health.
    pub fn snapshot(&self, cfg: &BreakerConfig, clock: u64) -> HealthSnapshot {
        let state = self.state(cfg, clock);
        let s = self.state.lock().expect("health lock poisoned");
        HealthSnapshot {
            state,
            consecutive_failures: s.consecutive,
            failure_ewma_ppm: s.ewma_ppm,
            trips: s.trips,
        }
    }
}

/// A point-in-time copy of one replica edge's health. Integer-encoded
/// (ppm fixed point) so the containing
/// [`FleetSnapshot`](crate::router::FleetSnapshot) stays `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSnapshot {
    pub state: BreakerState,
    /// Consecutive failed exchanges since the last success.
    pub consecutive_failures: u32,
    /// EWMA failure rate in parts-per-million (0 = healthy, 1_000_000 =
    /// every recent exchange failed), window [`EWMA_WINDOW`].
    pub failure_ewma_ppm: u64,
    /// Times the breaker tripped to Open.
    pub trips: u64,
}

/// Health of one shard's replica set: one [`EdgeHealth`] per replica plus
/// the set's exchange clock — a counter of physical tries issued against
/// the set, the deterministic time base every cooldown is measured on.
#[derive(Debug)]
pub struct ReplicaSetHealth {
    clock: AtomicU64,
    edges: Vec<EdgeHealth>,
}

impl ReplicaSetHealth {
    pub fn new(replicas: usize) -> Self {
        ReplicaSetHealth {
            clock: AtomicU64::new(0),
            edges: (0..replicas).map(|_| EdgeHealth::new()).collect(),
        }
    }

    /// Advances the exchange clock by one issued try and returns the
    /// reading *before* the tick.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Current clock reading.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Number of replica edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Health of replica `j`.
    pub fn edge(&self, j: usize) -> &EdgeHealth {
        &self.edges[j]
    }

    /// Per-replica health snapshots, in replica order.
    pub fn snapshot(&self, cfg: &BreakerConfig) -> Vec<HealthSnapshot> {
        let now = self.now();
        self.edges.iter().map(|e| e.snapshot(cfg, now)).collect()
    }
}

/// FNV-1a over a request's encoded bytes: the deterministic spread that
/// picks a replica. Same bytes, same pick — across links, runs and
/// machines.
pub fn spread_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: BreakerConfig = BreakerConfig {
        enabled: true,
        threshold: 3,
        cooldown: 5,
    };

    #[test]
    fn closed_trips_open_after_threshold_consecutive_failures() {
        let e = EdgeHealth::new();
        assert!(!e.on_failure(&CFG, 0));
        assert!(!e.on_failure(&CFG, 1));
        assert_eq!(e.state(&CFG, 2), BreakerState::Closed);
        assert!(e.on_failure(&CFG, 2), "third consecutive failure trips");
        assert_eq!(e.state(&CFG, 3), BreakerState::Open);
        assert_eq!(e.snapshot(&CFG, 3).trips, 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let e = EdgeHealth::new();
        e.on_failure(&CFG, 0);
        e.on_failure(&CFG, 1);
        e.on_success();
        e.on_failure(&CFG, 2);
        assert!(!e.on_failure(&CFG, 3), "count restarted after the success");
        assert_eq!(e.state(&CFG, 4), BreakerState::Closed);
    }

    #[test]
    fn open_holds_for_the_cooldown_then_half_opens() {
        let e = EdgeHealth::new();
        for clock in 0..3 {
            e.on_failure(&CFG, clock);
        }
        // Tripped at clock 2; holds through 2..2+5.
        assert_eq!(e.state(&CFG, 2), BreakerState::Open);
        assert_eq!(e.state(&CFG, 6), BreakerState::Open);
        assert_eq!(e.state(&CFG, 7), BreakerState::HalfOpen);
        assert!(!e.admits(&CFG, 6));
        assert!(e.admits(&CFG, 7), "the half-open probe is admitted");
    }

    #[test]
    fn half_open_probe_success_closes_failure_reopens() {
        let a = EdgeHealth::new();
        let b = EdgeHealth::new();
        for clock in 0..3 {
            a.on_failure(&CFG, clock);
            b.on_failure(&CFG, clock);
        }
        // Probe at clock 7 (half-open).
        a.on_success();
        assert_eq!(a.state(&CFG, 7), BreakerState::Closed);
        assert!(b.on_failure(&CFG, 7), "a failed probe is a fresh trip");
        assert_eq!(b.state(&CFG, 8), BreakerState::Open);
        assert_eq!(b.state(&CFG, 12), BreakerState::HalfOpen);
        assert_eq!(b.snapshot(&CFG, 12).trips, 2);
    }

    #[test]
    fn disabled_breakers_track_but_never_open() {
        let cfg = BreakerConfig::disabled();
        let e = EdgeHealth::new();
        for clock in 0..10 {
            assert!(!e.on_failure(&cfg, clock));
        }
        assert_eq!(e.state(&cfg, 10), BreakerState::Closed);
        assert!(e.admits(&cfg, 10));
        let snap = e.snapshot(&cfg, 10);
        assert_eq!(snap.consecutive_failures, 10);
        assert!(snap.failure_ewma_ppm > 0, "EWMA still observes");
        assert_eq!(snap.trips, 0);
    }

    #[test]
    fn ewma_is_integer_deterministic_and_bounded() {
        let e = EdgeHealth::new();
        let mut expect = 0u64;
        for clock in 0..20 {
            e.on_failure(&CFG, clock);
            expect = (expect * (EWMA_WINDOW - 1) + PPM) / EWMA_WINDOW;
        }
        assert_eq!(e.snapshot(&CFG, 20).failure_ewma_ppm, expect);
        assert!(expect < PPM);
        for _ in 0..200 {
            e.on_success();
        }
        assert_eq!(
            e.snapshot(&CFG, 20).failure_ewma_ppm,
            0,
            "integer EWMA decays all the way to zero"
        );
    }

    /// Same outcome sequence ⇒ same state trace: the determinism pin the
    /// chaos replays rely on.
    #[test]
    fn same_outcome_sequence_replays_the_same_states() {
        let script: Vec<bool> = (0..64).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let run = |script: &[bool]| -> Vec<(BreakerState, u64, u64)> {
            let e = EdgeHealth::new();
            script
                .iter()
                .enumerate()
                .map(|(clock, &ok)| {
                    let clock = clock as u64;
                    if ok {
                        e.on_success();
                    } else {
                        e.on_failure(&CFG, clock);
                    }
                    let s = e.snapshot(&CFG, clock + 1);
                    (s.state, s.failure_ewma_ppm, s.trips)
                })
                .collect()
        };
        assert_eq!(run(&script), run(&script));
    }

    #[test]
    fn replica_set_clock_ticks_and_snapshots_in_order() {
        let set = ReplicaSetHealth::new(3);
        assert_eq!(set.len(), 3);
        assert_eq!(set.tick(), 0);
        assert_eq!(set.tick(), 1);
        assert_eq!(set.now(), 2);
        set.edge(1).on_failure(&CFG, 0);
        let snaps = set.snapshot(&CFG);
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].consecutive_failures, 0);
        assert_eq!(snaps[1].consecutive_failures, 1);
    }

    #[test]
    fn spread_hash_is_stable_and_input_sensitive() {
        assert_eq!(spread_hash(b"abc"), spread_hash(b"abc"));
        assert_ne!(spread_hash(b"abc"), spread_hash(b"abd"));
        assert_eq!(spread_hash(b""), 0xcbf2_9ce4_8422_2325);
    }
}
