//! Client-side semantic statistics/window cache on the [`RawExchange`]
//! seam.
//!
//! The paper's premise is that wireless transfer dominates join cost —
//! yet the device keeps re-paying for the same bytes: quadrant recursion
//! re-COUNTs windows an earlier round already priced, a failed HBSJ
//! attempt re-downloads its outer window for the NLSJ fallback, and a
//! session of joins against the same servers repeats whole query streams.
//! Servers serve **generational snapshots**: every response is (implicitly
//! or explicitly) stamped with the generation it was answered from, and
//! the cache keys *both tiers* by `(generation, rectangle)`. Invalidation
//! falls out of the keying — when an update bumps the serving generation,
//! entries from older generations simply stop matching and age out of the
//! LRU budget; no invalidation protocol crosses the wire. Against a
//! frozen (generation-0) server the cache behaves exactly as before:
//! every hit simply deletes a round trip and its wire bytes.
//!
//! [`CacheLayer`] uses the same composition trick as
//! [`ShardRouter`](crate::router::ShardRouter): it implements
//! [`RawExchange`], so it stacks under an ordinary [`Link`] — in front of
//! a flat server *or* a whole shard fleet — and every join algorithm
//! benefits unchanged. Two tiers:
//!
//! * **Exact statistics tier** — `COUNT` answers keyed by the bit-exact
//!   query rectangle (a total-order `f64::to_bits` key, so `-0.0 ≠ 0.0`
//!   and NaN-free wire rects never alias). A `MultiCount` batch is
//!   resolved *per entry*: windows with cached counts are answered
//!   locally, only the misses ship (in one sub-batch), and the answers
//!   are spliced back in probe order.
//! * **Semantic window tier** — a byte-budgeted LRU of downloaded
//!   windows. A `WINDOW` (or ε-RANGE) request whose reach is contained in
//!   a cached window is answered locally by filtering; the containment
//!   index also derives `COUNT` answers for covered windows.
//!
//! # Containment invariant
//!
//! For any query window `w` contained in a cached window `W`, every
//! object the server would return for `w` intersects `w ⊆ W`, hence was
//! in the `W` download; filtering the cached objects with the *server's
//! own predicate* (`intersects` for `WINDOW`/`COUNT`, `within_distance`
//! for ε-RANGE — whose reach `q.expand(eps)` bounds the qualifying MBRs)
//! therefore reproduces the server's answer exactly, as a set. All checks
//! run on the *decoded* request, i.e. after the codec's f32 rounding —
//! the very rectangle the server would evaluate — so float rounding can
//! never make a local answer diverge from a remote one.
//!
//! # Eviction invariant
//!
//! Eviction only ever *forgets*: the LRU drops whole window entries until
//! the tier fits its byte budget, never mutating a retained entry, so a
//! hit is always served from a complete, verbatim server download.
//! Admission keeps the index canonical: a window covered by an existing
//! entry is not admitted (it is derivable), and admitting a window drops
//! any cached entries it covers. Exact statistics entries are ~40 bytes
//! each and invalidation-free; their tier is capped at the same byte
//! scale as the window budget, replacing an arbitrary entry at the cap
//! (forgetting a count is always safe — it just re-pays one `Taq`).
//!
//! # Accounting
//!
//! The layer is *premetered* in the sense of [`Link`]: the fronting link
//! records nothing, and the layer meters exactly the physical exchanges
//! that pass through to the inner carrier (or lets an inner
//! [`ShardRouter`](crate::router::ShardRouter) meter its own scatter
//! traffic). Locally answered requests touch no meter — they are not
//! messages — and are instead tallied in a per-link
//! [`CacheTelemetry`](crate::meter::CacheTelemetry), with saved wire
//! bytes estimated at the logical-request seam.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use asj_geom::{Rect, SpatialObject};
use bytes::{Bytes, BytesMut};

use crate::codec::{
    decode_request, decode_response_gen, decode_response_gen_ctx, encode_request,
    encode_request_versioned, encode_response, encode_response_into, peel_generation,
    stamp_generation, QuantCtx, WireVersion, OBJECTS_HEADER_BYTES, OBJ_BYTES,
};
use crate::meter::{CacheSnapshot, CacheTelemetry, LinkMeter};
use crate::packet::{PacketModel, RetryPolicy};
use crate::proto::{Request, Response};
use crate::transport::RawExchange;

/// Client-cache knob of a deployment's network configuration. Off by
/// default: with `enabled = false` no [`CacheLayer`] is constructed at
/// all, so wire traffic is byte-identical to a build without the
/// extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Construct a [`CacheLayer`] in front of every server/fleet.
    pub enabled: bool,
    /// Byte budget of the window tier's LRU (wire-format bytes).
    pub window_budget_bytes: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            window_budget_bytes: 256 * 1024,
        }
    }
}

/// Bit-exact total-order key of a query rectangle. `Ord` so victim
/// selection can break ties deterministically (std `HashMap` iteration
/// order is process-random).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct RectKey([u64; 4]);

impl RectKey {
    fn of(r: &Rect) -> Self {
        RectKey([
            r.min.x.to_bits(),
            r.min.y.to_bits(),
            r.max.x.to_bits(),
            r.max.y.to_bits(),
        ])
    }
}

/// One cached window download, pinned to the generation it was served
/// from: a lookup at any other generation never matches it.
struct WindowEntry {
    window: Rect,
    generation: u64,
    objects: Vec<SpatialObject>,
    /// Wire-format size charged against the budget.
    bytes: u64,
    /// LRU recency tick (bumped on every hit).
    last_used: u64,
}

/// Stats-tier key: the serving generation plus the bit-exact rectangle.
type CountKey = (u64, RectKey);

#[derive(Default)]
struct CacheState {
    counts: HashMap<CountKey, u64>,
    /// Insertion order of `counts` keys — the deterministic FIFO victim
    /// queue of the stats tier (std `HashMap` iteration order is
    /// process-randomized, which would break the repo's bit-identical
    /// pinned-seed reproducibility once the cap is hit).
    count_order: VecDeque<CountKey>,
    windows: Vec<WindowEntry>,
    tick: u64,
}

/// The shared cache store behind one logical server (or fleet).
///
/// One `ClientCache` is created per *side* of a deployment and shared by
/// every link the deployment hands out, so a session of joins against the
/// same immutable servers reuses earlier downloads across joins. All
/// methods are `&self` (internally locked): concurrent device threads may
/// share one cache.
pub struct ClientCache {
    state: Mutex<CacheState>,
    window_budget: u64,
    /// Entry cap of the exact statistics tier, derived from the window
    /// budget (an exact entry is ~40 bytes of device memory): the device
    /// the system models is memory-constrained, and a long-lived session
    /// store must not grow without bound.
    stats_cap: usize,
    resident_bytes: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    /// Highest serving generation observed from the server(s) behind this
    /// cache. Lookups only match entries at this generation.
    current_generation: AtomicU64,
}

impl ClientCache {
    /// An empty cache with the given window-tier byte budget. The exact
    /// statistics tier is capped at roughly the same byte scale
    /// (`budget / 40` entries, at least 256).
    pub fn new(window_budget_bytes: u64) -> Self {
        ClientCache {
            state: Mutex::new(CacheState::default()),
            window_budget: window_budget_bytes,
            stats_cap: ((window_budget_bytes / 40) as usize).max(256),
            resident_bytes: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            current_generation: AtomicU64::new(0),
        }
    }

    /// The highest serving generation observed so far (0 until the
    /// servers go live — frozen responses carry no stamp).
    pub fn generation(&self) -> u64 {
        self.current_generation.load(Ordering::Acquire)
    }

    /// Records an observed serving generation (monotone max). Entries
    /// keyed at older generations stop matching from here on and age out
    /// of the LRU budget; nothing is actively purged.
    pub fn note_generation(&self, generation: u64) {
        self.current_generation
            .fetch_max(generation, Ordering::AcqRel);
    }

    /// Looks up `COUNT(w)` at `generation`: the exact statistics tier
    /// first (bit-exact key — a poisoned exact entry *must* win over
    /// derivation, which the non-vacuity test relies on), then derivation
    /// from any cached same-generation window containing `w`.
    pub fn count(&self, w: &Rect, generation: u64) -> Option<u64> {
        let mut state = self.state.lock().expect("cache poisoned");
        if let Some(&c) = state.counts.get(&(generation, RectKey::of(w))) {
            return Some(c);
        }
        let i = state
            .windows
            .iter()
            .position(|e| e.generation == generation && e.window.contains_rect(w))?;
        let c = state.windows[i]
            .objects
            .iter()
            .filter(|o| o.mbr.intersects(w))
            .count() as u64;
        state.tick += 1;
        let tick = state.tick;
        state.windows[i].last_used = tick;
        Some(c)
    }

    /// Records an authoritative `COUNT(w)` answer. At the tier's entry
    /// cap the *oldest* entry is replaced — deterministic FIFO, so
    /// pinned-seed runs stay bit-identical — which is correctness-safe:
    /// forgetting a count only re-pays one `Taq`. A long-lived session
    /// store therefore stays bounded.
    pub fn observe_count(&self, w: &Rect, count: u64, generation: u64) {
        let mut state = self.state.lock().expect("cache poisoned");
        let key = (generation, RectKey::of(w));
        if let Some(resident) = state.counts.get_mut(&key) {
            *resident = count;
            return;
        }
        if state.counts.len() >= self.stats_cap {
            let victim = state
                .count_order
                .pop_front()
                .expect("cap reached with an empty order queue");
            state.counts.remove(&victim);
        }
        state.counts.insert(key, count);
        state.count_order.push_back(key);
    }

    /// Looks up `WINDOW(w)` at `generation` via containment: filtered
    /// objects of a cached same-generation window containing `w`.
    pub fn window(&self, w: &Rect, generation: u64) -> Option<Vec<SpatialObject>> {
        self.filter_contained(w, generation, |o| o.mbr.intersects(w))
    }

    /// Looks up `ε-RANGE(q, eps)` at `generation` via containment: a
    /// qualifying object's MBR is within `eps` of `q` and therefore
    /// intersects `q.expand(eps)`; any cached same-generation window
    /// containing that reach holds every answer.
    pub fn eps_range(&self, q: &Rect, eps: f64, generation: u64) -> Option<Vec<SpatialObject>> {
        let reach = q.expand(eps);
        self.filter_contained(&reach, generation, |o| o.mbr.within_distance(q, eps))
    }

    fn filter_contained(
        &self,
        reach: &Rect,
        generation: u64,
        keep: impl Fn(&SpatialObject) -> bool,
    ) -> Option<Vec<SpatialObject>> {
        let mut state = self.state.lock().expect("cache poisoned");
        let i = state
            .windows
            .iter()
            .position(|e| e.generation == generation && e.window.contains_rect(reach))?;
        let out = state.windows[i]
            .objects
            .iter()
            .filter(|o| keep(o))
            .copied()
            .collect();
        state.tick += 1;
        let tick = state.tick;
        state.windows[i].last_used = tick;
        Some(out)
    }

    /// Admits a `WINDOW(w)` download served at `generation`, evicting
    /// least-recently-used entries until the byte budget holds. Skipped
    /// when the window is already derivable from a same-generation entry
    /// or alone exceeds the budget; same-generation entries covered by
    /// `w` are dropped (they become derivable). Entries from *other*
    /// generations are left alone — they are unreachable for lookups at
    /// the current generation and age out through the LRU budget.
    pub fn admit_window(&self, w: &Rect, objects: &[SpatialObject], generation: u64) {
        let bytes = OBJECTS_HEADER_BYTES + objects.len() as u64 * OBJ_BYTES;
        if bytes > self.window_budget {
            return;
        }
        let mut state = self.state.lock().expect("cache poisoned");
        if state
            .windows
            .iter()
            .any(|e| e.generation == generation && e.window.contains_rect(w))
        {
            return;
        }
        let mut freed = 0u64;
        state.windows.retain(|e| {
            let covered = e.generation == generation && w.contains_rect(&e.window);
            if covered {
                freed += e.bytes;
            }
            !covered
        });
        let mut resident = self.resident_bytes.load(Ordering::Relaxed) - freed;
        while resident + bytes > self.window_budget {
            let (i, _) = state
                .windows
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("budget overflow with no entries");
            resident -= state.windows.remove(i).bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        state.tick += 1;
        let entry = WindowEntry {
            window: *w,
            generation,
            objects: objects.to_vec(),
            bytes,
            last_used: state.tick,
        };
        state.windows.push(entry);
        self.resident_bytes
            .store(resident + bytes, Ordering::Relaxed);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently resident in the window tier.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Number of cached window entries.
    pub fn cached_windows(&self) -> usize {
        self.state.lock().expect("cache poisoned").windows.len()
    }

    /// Number of exact statistics entries.
    pub fn cached_counts(&self) -> usize {
        self.state.lock().expect("cache poisoned").counts.len()
    }

    /// Test instrument: flips the largest cached exact count to a wrong
    /// value (0, or 1 if it was already 0) and returns `true` when an
    /// entry existed. The differential suites use this to prove they are
    /// non-vacuous — a single corrupted cached statistic must be caught
    /// by the result oracle. Compiled only for this crate's own tests and
    /// for downstream suites that opt in via the `testing` feature: a
    /// production build carries no cache-corruption entry point.
    #[cfg(any(test, feature = "testing"))]
    pub fn poison_one_count(&self) -> bool {
        let mut state = self.state.lock().expect("cache poisoned");
        // Ties broken by key so the victim is deterministic across
        // processes (HashMap iteration order is randomly seeded).
        match state.counts.iter_mut().max_by_key(|(k, c)| (**c, **k)) {
            Some((_, c)) => {
                *c = if *c == 0 { 1 } else { 0 };
                true
            }
            None => false,
        }
    }

    fn gauges(&self) -> (u64, u64, u64) {
        (
            self.insertions.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.resident_bytes.load(Ordering::Relaxed),
        )
    }
}

/// One link's view of its cache: the per-link telemetry plus the
/// (possibly session-shared) store. Snapshot at will.
#[derive(Clone)]
pub struct CacheView {
    cache: Arc<ClientCache>,
    telemetry: Arc<CacheTelemetry>,
}

impl CacheView {
    /// Point-in-time copy: this link's hit/miss/saved counters plus the
    /// shared store's resident gauges.
    pub fn snapshot(&self) -> CacheSnapshot {
        let (
            stats_hits,
            stats_misses,
            window_hits,
            window_misses,
            probe_hits,
            probe_misses,
            bytes_saved,
        ) = self.telemetry.counters();
        let (insertions, evictions, resident_bytes) = self.cache.gauges();
        CacheSnapshot {
            stats_hits,
            stats_misses,
            window_hits,
            window_misses,
            probe_hits,
            probe_misses,
            bytes_saved,
            insertions,
            evictions,
            resident_bytes,
        }
    }

    /// The shared store (for session inspection and test poisoning).
    pub fn store(&self) -> &Arc<ClientCache> {
        &self.cache
    }
}

/// The caching carrier. See the module docs for tiers and invariants.
pub struct CacheLayer {
    inner: Box<dyn RawExchange>,
    packet: PacketModel,
    meter: Arc<LinkMeter>,
    /// `true` when the inner carrier meters its own physical traffic (a
    /// shard router): forwarded exchanges must not be re-recorded here.
    inner_premetered: bool,
    fleet: Option<Arc<crate::router::ShardTelemetry>>,
    cache: Arc<ClientCache>,
    telemetry: Arc<CacheTelemetry>,
    /// Wire version of the inner physical link. Stays [`WireVersion::V1`]
    /// unless [`CacheLayer::negotiate_v2`] ran (only meaningful when the
    /// inner carrier is a direct server edge — a premetered inner router
    /// negotiates its own shard links instead). The cache itself is
    /// version-agnostic: it admits and serves *decoded* objects, so a
    /// window downloaded over v2 answers later v1-framed lookups and
    /// vice versa.
    wire: WireVersion,
    /// Retry policy for this layer's *own* physical edge. Off by
    /// default; meaningful only when the inner carrier is a direct
    /// server link — a premetered inner [`ShardRouter`] runs its own
    /// per-shard recovery, and retrying above it would double-deliver.
    retry: RetryPolicy,
    /// At-most-once identity of this layer's retried update batches.
    dedup_nonce: u64,
    dedup_seq: AtomicU64,
}

impl CacheLayer {
    /// A cache in front of a plain (unmetered) carrier: this layer meters
    /// every forwarded exchange into its own fresh link meter.
    pub fn new(inner: Box<dyn RawExchange>, packet: PacketModel, cache: Arc<ClientCache>) -> Self {
        CacheLayer {
            inner,
            packet,
            meter: Arc::new(LinkMeter::new()),
            inner_premetered: false,
            fleet: None,
            cache,
            telemetry: Arc::new(CacheTelemetry::new()),
            wire: WireVersion::V1,
            retry: RetryPolicy::default(),
            dedup_nonce: crate::transport::next_link_nonce(),
            dedup_seq: AtomicU64::new(0),
        }
    }

    /// A cache stacked over a whole shard fleet: forwarded requests
    /// scatter as usual and the router keeps metering every physical
    /// per-shard exchange; the fronting link adopts the router's
    /// aggregate meter and fleet telemetry unchanged.
    pub fn over_router(router: crate::router::ShardRouter, cache: Arc<ClientCache>) -> Self {
        CacheLayer {
            packet: router.packet(),
            meter: Arc::clone(router.aggregate_meter()),
            inner_premetered: true,
            fleet: Some(Arc::clone(router.telemetry())),
            inner: Box::new(router),
            cache,
            telemetry: Arc::new(CacheTelemetry::new()),
            wire: WireVersion::V1,
            retry: RetryPolicy::default(),
            dedup_nonce: crate::transport::next_link_nonce(),
            dedup_seq: AtomicU64::new(0),
        }
    }

    /// Enables retry/backoff on this layer's own physical edge. Leave
    /// off (the default) when the inner carrier is a premetered fleet
    /// router — the router recovers its own scatter slots.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        debug_assert!(
            !(retry.enabled() && self.inner_premetered),
            "retry above a fleet router double-delivers; configure the router instead"
        );
        self.retry = retry;
        self
    }

    /// Negotiates wire protocol v2 with the server behind this layer's
    /// *own* physical edge (one `HELLO`/`ACCEPT` round trip, 4 unmetered
    /// link-control bytes). Meaningful only for a cache over a direct
    /// server carrier: a premetered inner (a [`ShardRouter`]) owns its
    /// physical links and negotiates per shard itself. Only the
    /// deployment layer calls this, and only when `NetConfig::wire_v2`
    /// is on; a peer that never `ACCEPT`s leaves the link at v1.
    pub fn negotiate_v2(&mut self) {
        debug_assert!(
            !self.inner_premetered,
            "a premetered inner carrier negotiates its own physical links"
        );
        self.wire = crate::transport::negotiate_wire(self.inner.as_ref());
    }

    /// The meter the fronting [`Link`] should expose.
    pub fn meter(&self) -> &Arc<LinkMeter> {
        &self.meter
    }

    /// Per-shard telemetry when the inner carrier is a fleet router.
    pub fn fleet(&self) -> Option<&Arc<crate::router::ShardTelemetry>> {
        self.fleet.as_ref()
    }

    /// The packet model forwarded exchanges are metered under.
    pub fn packet(&self) -> PacketModel {
        self.packet
    }

    /// This layer's cache view (telemetry + shared store).
    pub fn view(&self) -> CacheView {
        CacheView {
            cache: Arc::clone(&self.cache),
            telemetry: Arc::clone(&self.telemetry),
        }
    }

    /// Ships `raw` to the inner carrier, metering it here unless the
    /// inner carrier premeters its own traffic. Returns the raw reply,
    /// its decoded form when metering already had to decode it — callers
    /// that need the decoded reply anyway reuse it via
    /// [`CacheLayer::decoded`], and callers that don't (ε-RANGE misses,
    /// raw pass-through over a premetered router) never pay a decode —
    /// and the serving generation the reply was stamped with (0 when
    /// unstamped), which is also noted into the shared store so older
    /// generations stop matching.
    fn forward(&self, raw: Bytes, req: &Request) -> (Bytes, Option<Response>, u64) {
        if self.inner_premetered {
            let reply = self.inner.exchange(raw);
            if crate::codec::is_unavailable(&reply) {
                // The fleet below died: the fabricated frame propagates
                // verbatim — nothing is metered, no generation noted.
                return (reply, Some(Response::Unavailable), 0);
            }
            // Peek the stamp only — the reply is forwarded verbatim. An
            // undecodable stamp degrades to "unstamped" and the fronting
            // link surfaces the malformed payload itself.
            let (generation, _) =
                peel_generation(reply.clone()).unwrap_or((0, Bytes::from_static(&[])));
            self.cache.note_generation(generation);
            return (reply, None, generation);
        }
        // On a v2 inner link the request is re-framed compact; the reply
        // comes back v2 and is handed upstream as-is (the fronting link
        // decodes either version), so the meter below prices exactly the
        // frames that crossed the physical edge.
        let mut encoded = if self.wire == WireVersion::V2 {
            encode_request_versioned(req, WireVersion::V2)
        } else {
            raw
        };
        if self.retry.enabled() && matches!(req, Request::ApplyUpdates(_)) {
            // Same tag on every retry: duplicated delivery replays the
            // server's recorded Ack instead of re-applying.
            encoded = crate::codec::wrap_dedup(
                crate::codec::DedupTag {
                    nonce: self.dedup_nonce,
                    seq: self.dedup_seq.fetch_add(1, Ordering::Relaxed),
                },
                &encoded,
            );
        }
        let up_len = encoded.len() as u64;
        let ctx = QuantCtx::for_request(req);
        let attempts = if self.retry.enabled() {
            self.retry.max_attempts
        } else {
            1
        };
        let mut outcome = (
            crate::codec::unavailable_frame(),
            Some(Response::Unavailable),
            0,
        );
        for attempt in 0..attempts {
            if attempt > 0 {
                self.meter.record_retry();
                self.retry.sleep(attempt);
            }
            let reply = self.inner.exchange(encoded.clone());
            if crate::codec::is_unavailable(&reply) {
                // Dead server: meter neither direction — only completed
                // exchanges count.
                outcome = (reply, Some(Response::Unavailable), 0);
                continue;
            }
            self.meter.record_request(req, up_len, &self.packet);
            let (resp, generation) = decode_response_gen_ctx(reply.clone(), ctx.as_ref())
                .unwrap_or((Response::Malformed, 0));
            self.meter.record_response(
                reply.len() as u64,
                resp.object_count(),
                &self.packet,
                req.is_aggregate(),
            );
            if resp == Response::Malformed {
                // A garbled reply crossed the wire (metered above) but
                // must never key a cache entry or note a generation.
                outcome = (reply, Some(Response::Malformed), 0);
                continue;
            }
            self.cache.note_generation(generation);
            return (reply, Some(resp), generation);
        }
        if self.retry.enabled() {
            self.meter.record_abandon();
        }
        outcome
    }

    /// The decoded reply: reuses what metering decoded, or decodes now.
    fn decoded(reply: &Bytes, prior: Option<Response>) -> Response {
        prior.unwrap_or_else(|| {
            decode_response_gen(reply.clone())
                .map(|(resp, _)| resp)
                .unwrap_or(Response::Malformed)
        })
    }

    /// Pass-through for non-cacheable opcodes. A premetered inner
    /// carrier gets the bytes verbatim with a stamp peek only (the
    /// router decodes and meters on its own); otherwise the layer must
    /// decode for the meter's query-mix and object counters, exactly as
    /// an uncached [`Link`] would have.
    fn forward_raw(&self, raw: Bytes) -> Bytes {
        if self.inner_premetered {
            let reply = self.inner.exchange(raw);
            if crate::codec::is_unavailable(&reply) {
                return reply;
            }
            let (generation, _) =
                peel_generation(reply.clone()).unwrap_or((0, Bytes::from_static(&[])));
            self.cache.note_generation(generation);
            return reply;
        }
        let req = match decode_request(raw.clone()) {
            Ok(req) => req,
            // Same contract as every other shared serving path: garbage
            // in, typed error out, layer keeps serving.
            Err(_) => return crate::codec::malformed_frame(),
        };
        self.forward(raw, &req).0
    }

    /// A locally answered request: encode at `generation`, stamped
    /// exactly as the server would have stamped it (generation 0 carries
    /// no stamp — byte-identical to the frozen wire format).
    fn local_reply(&self, resp: &Response, generation: u64) -> Bytes {
        let mut buf = BytesMut::new();
        stamp_generation(generation, &mut buf);
        encode_response_into(resp, &mut buf);
        buf.freeze()
    }

    /// Wire bytes (both directions, packetized) a fully local answer
    /// avoided.
    fn saved(&self, req_len: usize, resp_len: usize) -> u64 {
        self.packet.tb(req_len as u64) + self.packet.tb(resp_len as u64)
    }

    fn handle_count(&self, raw: Bytes, w: Rect) -> Bytes {
        let generation = self.cache.generation();
        if let Some(c) = self.cache.count(&w, generation) {
            self.telemetry.record_stats(1, 0);
            let reply = self.local_reply(&Response::Count(c), generation);
            self.telemetry
                .record_saved(self.saved(raw.len(), reply.len()));
            return reply;
        }
        self.telemetry.record_stats(0, 1);
        let req = Request::Count(w);
        let (reply, resp, generation) = self.forward(raw, &req);
        if let Response::Count(c) = Self::decoded(&reply, resp) {
            self.cache.observe_count(&w, c, generation);
        }
        reply
    }

    fn handle_multi_count(&self, raw: Bytes, windows: Vec<Rect>) -> Bytes {
        let generation = self.cache.generation();
        let answers: Vec<Option<u64>> = windows
            .iter()
            .map(|w| self.cache.count(w, generation))
            .collect();
        let miss_idx: Vec<usize> = (0..windows.len())
            .filter(|&i| answers[i].is_none())
            .collect();
        self.telemetry.record_stats(
            (windows.len() - miss_idx.len()) as u64,
            miss_idx.len() as u64,
        );
        if miss_idx.is_empty() {
            // Every entry answered locally: the whole round trip vanishes.
            let counts = answers.into_iter().map(|c| c.expect("all hits")).collect();
            let reply = self.local_reply(&Response::Counts(counts), generation);
            self.telemetry
                .record_saved(self.saved(raw.len(), reply.len()));
            return reply;
        }
        if miss_idx.len() == windows.len() {
            // Full miss: forward the original bytes unchanged.
            let req = Request::MultiCount(windows);
            let (reply, resp, generation) = self.forward(raw, &req);
            if let (Request::MultiCount(ws), Response::Counts(cs)) =
                (&req, Self::decoded(&reply, resp))
            {
                if cs.len() == ws.len() {
                    for (w, c) in ws.iter().zip(cs) {
                        self.cache.observe_count(w, c, generation);
                    }
                }
            }
            return reply;
        }
        // Partial hit: ship only the misses, splice the answers back in
        // probe order.
        let sub = Request::MultiCount(miss_idx.iter().map(|&i| windows[i]).collect());
        let sub_raw = encode_request(&sub);
        let sub_len = sub_raw.len();
        let (sub_reply, resp, fresh_generation) = self.forward(sub_raw, &sub);
        if fresh_generation != generation {
            // The servers advanced between our local answers and the
            // sub-batch reply: the splice would mix generations. Re-ask
            // the full batch at the new generation — correctness first;
            // this only costs bytes when an update races the query.
            let req = Request::MultiCount(windows.clone());
            let (reply, resp, generation) = self.forward(raw, &req);
            if let Response::Counts(cs) = Self::decoded(&reply, resp) {
                if cs.len() == windows.len() {
                    for (w, c) in windows.iter().zip(cs) {
                        self.cache.observe_count(w, c, generation);
                    }
                }
            }
            return reply;
        }
        let fresh = match Self::decoded(&sub_reply, resp) {
            Response::Counts(cs) if cs.len() == miss_idx.len() => cs,
            Response::Refused => return encode_response(&Response::Refused),
            // A failed sub-exchange surfaces typed — the locally answered
            // entries are discarded rather than spliced against an error,
            // and nothing from this reply is admitted to the cache.
            Response::Unavailable => return crate::codec::unavailable_frame(),
            _ => return crate::codec::malformed_frame(),
        };
        let mut counts: Vec<u64> = answers.into_iter().map(|c| c.unwrap_or(0)).collect();
        for (&i, &c) in miss_idx.iter().zip(&fresh) {
            counts[i] = c;
            self.cache.observe_count(&windows[i], c, generation);
        }
        let reply = self.local_reply(&Response::Counts(counts), generation);
        // Saved: the framing/entries the sub-batch did not carry.
        let saved_up = self.packet.tb(raw.len() as u64) - self.packet.tb(sub_len as u64);
        let saved_down =
            self.packet.tb(reply.len() as u64) - self.packet.tb(sub_reply.len() as u64);
        self.telemetry.record_saved(saved_up + saved_down);
        reply
    }

    fn handle_window(&self, raw: Bytes, w: Rect) -> Bytes {
        let generation = self.cache.generation();
        if let Some(objects) = self.cache.window(&w, generation) {
            self.telemetry.record_window(true);
            let reply = self.local_reply(&Response::Objects(objects), generation);
            self.telemetry
                .record_saved(self.saved(raw.len(), reply.len()));
            return reply;
        }
        self.telemetry.record_window(false);
        let req = Request::Window(w);
        let (reply, resp, generation) = self.forward(raw, &req);
        if let Response::Objects(objects) = Self::decoded(&reply, resp) {
            self.cache.admit_window(&w, &objects, generation);
        }
        reply
    }

    fn handle_eps_range(&self, raw: Bytes, q: Rect, eps: f64) -> Bytes {
        let generation = self.cache.generation();
        if let Some(objects) = self.cache.eps_range(&q, eps, generation) {
            self.telemetry.record_probe(true);
            let reply = self.local_reply(&Response::Objects(objects), generation);
            self.telemetry
                .record_saved(self.saved(raw.len(), reply.len()));
            return reply;
        }
        self.telemetry.record_probe(false);
        self.forward(raw, &Request::EpsRange { q, eps }).0
    }
}

impl RawExchange for CacheLayer {
    fn exchange(&self, raw: Bytes) -> Bytes {
        // Dispatch on the wire opcode so non-cacheable requests (bucket
        // probes, avg-area, the cooperative extension) are not decoded
        // just to be re-serialized — a bucket window can carry thousands
        // of probes, and the lookup path should never re-pay for them.
        match raw.as_ref().first().copied() {
            Some(crate::codec::op::COUNT)
            | Some(crate::codec::op::WINDOW)
            | Some(crate::codec::op::EPS_RANGE)
            | Some(crate::codec::op::MULTI_COUNT) => {
                match decode_request(raw.clone()) {
                    Ok(Request::Count(w)) => self.handle_count(raw, w),
                    Ok(Request::MultiCount(windows)) => self.handle_multi_count(raw, windows),
                    Ok(Request::Window(w)) => self.handle_window(raw, w),
                    Ok(Request::EpsRange { q, eps }) => self.handle_eps_range(raw, q, eps),
                    Ok(_) => unreachable!("opcode dispatch matches the decoder"),
                    // A known opcode with a garbled payload (truncated
                    // window, bad varint) still answers typed.
                    Err(_) => crate::codec::malformed_frame(),
                }
            }
            Some(crate::codec::op::APPLY_UPDATES) => {
                // Updates always ship (the cache never absorbs a write);
                // the `Ack` carries the new serving generation, which the
                // store must learn *before* the next lookup so stale
                // entries stop matching immediately.
                let reply = self.forward_raw(raw);
                // `Ack`s need no window context to decode in either wire
                // version.
                if let Ok((Response::Ack { generation }, _)) =
                    decode_response_gen_ctx(reply.clone(), None)
                {
                    self.cache.note_generation(generation);
                }
                reply
            }
            Some(crate::codec::op::APPLY_UPDATES_SEQ) => {
                // An update already enveloped by an upstream retry layer:
                // ship it verbatim so the original dedup tag survives to
                // the server's at-most-once table (re-framing would mint
                // a fresh tag and defeat the replay). Metered as the one
                // update exchange it is when this layer owns the meter.
                let reply = self.inner.exchange(raw.clone());
                if !self.inner_premetered && !crate::codec::is_unavailable(&reply) {
                    if let Some((_, body)) = crate::codec::peel_dedup(&raw) {
                        if let Ok(req) = decode_request(body) {
                            self.meter
                                .record_request(&req, raw.len() as u64, &self.packet);
                            self.meter.record_response(
                                reply.len() as u64,
                                0,
                                &self.packet,
                                req.is_aggregate(),
                            );
                        }
                    }
                }
                if let Ok((Response::Ack { generation }, _)) =
                    decode_response_gen_ctx(reply.clone(), None)
                {
                    self.cache.note_generation(generation);
                }
                reply
            }
            _ => self.forward_raw(raw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{ShardEndpoint, ShardRouter};
    use crate::testutil::ScanHandler as Scan;
    use crate::transport::{InProcExchange, Link};

    fn lattice(n: u32) -> Vec<SpatialObject> {
        (0..n * n)
            .map(|i| SpatialObject::point(i, (i % n) as f64, (i / n) as f64))
            .collect()
    }

    fn cached_link(objects: Vec<SpatialObject>, budget: u64) -> Link {
        let layer = CacheLayer::new(
            Box::new(InProcExchange::new(Arc::new(Scan(objects)))),
            PacketModel::default(),
            Arc::new(ClientCache::new(budget)),
        );
        Link::cached(layer, 1.0)
    }

    fn plain_link(objects: Vec<SpatialObject>) -> Link {
        Link::in_process(Arc::new(Scan(objects)), PacketModel::default(), 1.0)
    }

    fn w(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::from_coords(a, b, c, d)
    }

    #[test]
    fn generation_bump_makes_old_entries_unreachable() {
        let store = Arc::new(ClientCache::new(1 << 20));
        let objs = lattice(4);
        let big = w(0.0, 0.0, 4.0, 4.0);
        store.admit_window(&big, &objs, 0);
        store.observe_count(&big, 16, 0);
        assert_eq!(store.count(&big, 0), Some(16));
        assert!(store.window(&w(1.0, 1.0, 2.0, 2.0), 0).is_some());
        // The servers advance: generation-0 entries stop matching.
        store.note_generation(3);
        assert_eq!(store.generation(), 3);
        assert_eq!(store.count(&big, 3), None, "stale count must not serve");
        assert!(store.window(&w(1.0, 1.0, 2.0, 2.0), 3).is_none());
        assert!(store.eps_range(&w(1.0, 1.0, 1.0, 1.0), 0.5, 3).is_none());
        // Same rect at the new generation is a distinct entry.
        store.observe_count(&big, 15, 3);
        assert_eq!(store.count(&big, 3), Some(15));
        assert_eq!(store.count(&big, 0), Some(16), "old key still intact");
        // note_generation is monotone: a late gen-1 stamp cannot regress.
        store.note_generation(1);
        assert_eq!(store.generation(), 3);
    }

    #[test]
    fn layer_switches_generations_on_an_ack() {
        // A server double that serves gen 0 until it sees ApplyUpdates,
        // then serves a changed dataset stamped gen 1.
        struct Flip {
            objects: Mutex<Vec<SpatialObject>>,
            generation: AtomicU64,
        }
        impl RawExchange for Flip {
            fn exchange(&self, raw: Bytes) -> Bytes {
                let req = decode_request(raw).expect("malformed request");
                let generation = self.generation.load(Ordering::SeqCst);
                let resp = match req {
                    Request::ApplyUpdates(batch) => {
                        let mut objs = self.objects.lock().unwrap();
                        for u in &batch {
                            match u {
                                crate::proto::Update::Delete(id) => objs.retain(|o| o.id != *id),
                                crate::proto::Update::Insert(o) => objs.push(*o),
                                crate::proto::Update::Move { id, to } => {
                                    objs.retain(|o| o.id != *id);
                                    objs.push(SpatialObject::new(*id, *to));
                                }
                            }
                        }
                        let g = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
                        return encode_response(&Response::Ack { generation: g });
                    }
                    Request::Count(w) => Response::Count(
                        self.objects
                            .lock()
                            .unwrap()
                            .iter()
                            .filter(|o| o.mbr.intersects(&w))
                            .count() as u64,
                    ),
                    Request::Window(w) => Response::Objects(
                        self.objects
                            .lock()
                            .unwrap()
                            .iter()
                            .filter(|o| o.mbr.intersects(&w))
                            .copied()
                            .collect(),
                    ),
                    _ => Response::Refused,
                };
                let mut buf = BytesMut::new();
                stamp_generation(generation, &mut buf);
                encode_response_into(&resp, &mut buf);
                buf.freeze()
            }
        }
        let server = Arc::new(Flip {
            objects: Mutex::new(lattice(4)),
            generation: AtomicU64::new(0),
        });
        struct Shared(Arc<Flip>);
        impl RawExchange for Shared {
            fn exchange(&self, raw: Bytes) -> Bytes {
                self.0.exchange(raw)
            }
        }
        let link = Link::cached(
            CacheLayer::new(
                Box::new(Shared(Arc::clone(&server))),
                PacketModel::default(),
                Arc::new(ClientCache::new(1 << 20)),
            ),
            1.0,
        );
        let big = w(0.0, 0.0, 4.0, 4.0);
        assert_eq!(link.request(&Request::Count(big)).into_count(), 16);
        assert_eq!(link.request(&Request::Count(big)).into_count(), 16, "hit");
        assert_eq!(link.cache().unwrap().snapshot().stats_hits, 1);
        // Delete one object through the cache layer: the Ack bumps the
        // cache's generation, so the primed count must NOT be served.
        let ack = link.request(&Request::ApplyUpdates(vec![crate::proto::Update::Delete(
            0,
        )]));
        assert_eq!(ack, Response::Ack { generation: 1 });
        assert_eq!(link.last_generation(), 1);
        assert_eq!(
            link.request(&Request::Count(big)).into_count(),
            15,
            "a stale cached count must never be served after the bump"
        );
        // And the fresh gen-1 entry is hot again.
        let before = link.meter().snapshot();
        assert_eq!(link.request(&Request::Count(big)).into_count(), 15);
        assert_eq!(link.meter().snapshot(), before);
    }

    #[test]
    fn repeated_count_is_free_and_identical() {
        let cached = cached_link(lattice(10), 1 << 20);
        let plain = plain_link(lattice(10));
        let q = w(0.0, 0.0, 3.0, 3.0);
        assert_eq!(
            cached.request(&Request::Count(q)).into_count(),
            plain.request(&Request::Count(q)).into_count()
        );
        let before = cached.meter().snapshot();
        assert_eq!(cached.request(&Request::Count(q)).into_count(), 16);
        assert_eq!(
            cached.meter().snapshot(),
            before,
            "a stats hit must not touch the wire"
        );
        let snap = cached.cache().unwrap().snapshot();
        assert_eq!((snap.stats_hits, snap.stats_misses), (1, 1));
        assert!(snap.bytes_saved > 0);
    }

    #[test]
    fn multi_count_partial_hit_ships_only_the_misses() {
        let cached = cached_link(lattice(10), 1 << 20);
        let a = w(0.0, 0.0, 2.0, 2.0);
        let b = w(5.0, 5.0, 9.0, 9.0);
        let c = w(20.0, 20.0, 30.0, 30.0);
        cached.request(&Request::Count(a)); // prime a
        let before = cached.meter().snapshot();
        let counts = cached
            .request(&Request::MultiCount(vec![a, b, c]))
            .into_counts();
        assert_eq!(counts, vec![9, 25, 0]);
        let delta = cached.meter().snapshot().since(&before);
        // The sub-batch carried exactly the two missing windows.
        let sub = encode_request(&Request::MultiCount(vec![b, c]));
        assert_eq!(delta.up_bytes, PacketModel::default().tb(sub.len() as u64));
        assert_eq!(delta.count_queries, 1);
        // A repeat is now fully local.
        let before = cached.meter().snapshot();
        let again = cached
            .request(&Request::MultiCount(vec![a, b, c]))
            .into_counts();
        assert_eq!(again, vec![9, 25, 0]);
        assert_eq!(cached.meter().snapshot(), before);
        let snap = cached.cache().unwrap().snapshot();
        assert_eq!(snap.stats_hits, 1 + 3);
        assert_eq!(snap.stats_misses, 1 + 2);
    }

    #[test]
    fn contained_window_count_and_eps_range_answered_locally() {
        let cached = cached_link(lattice(10), 1 << 20);
        let plain = plain_link(lattice(10));
        let big = w(0.0, 0.0, 6.0, 6.0);
        let small = w(1.0, 1.0, 3.0, 3.0);
        assert_eq!(
            cached.request(&Request::Window(big)).into_objects(),
            plain.request(&Request::Window(big)).into_objects()
        );
        let before = cached.meter().snapshot();
        // Contained WINDOW, derived COUNT, contained ε-RANGE: all local.
        assert_eq!(
            cached.request(&Request::Window(small)).into_objects(),
            plain.request(&Request::Window(small)).into_objects()
        );
        assert_eq!(
            cached.request(&Request::Count(small)).into_count(),
            plain.request(&Request::Count(small)).into_count()
        );
        let q = Rect::point(asj_geom::Point::new(3.0, 3.0));
        assert_eq!(
            cached
                .request(&Request::EpsRange { q, eps: 1.5 })
                .into_objects(),
            plain
                .request(&Request::EpsRange { q, eps: 1.5 })
                .into_objects()
        );
        assert_eq!(
            cached.meter().snapshot(),
            before,
            "contained lookups must not touch the wire"
        );
        let snap = cached.cache().unwrap().snapshot();
        assert_eq!(snap.window_hits, 1); // Window(small)
        assert_eq!(snap.probe_hits, 1); // EpsRange, counted apart
        assert_eq!(snap.stats_hits, 1); // derived Count(small)
    }

    #[test]
    fn uncontained_eps_range_passes_through() {
        let cached = cached_link(lattice(10), 1 << 20);
        cached.request(&Request::Window(w(0.0, 0.0, 4.0, 4.0)));
        // Reach [1,1]..[5,5] sticks out of the cached window.
        let q = Rect::point(asj_geom::Point::new(3.0, 3.0));
        let before = cached.meter().snapshot();
        let got = cached
            .request(&Request::EpsRange { q, eps: 2.0 })
            .into_objects();
        assert_eq!(got.len(), 13);
        assert!(cached.meter().snapshot().total_bytes() > before.total_bytes());
    }

    #[test]
    fn budget_lru_evicts_and_tracks_residency() {
        // The 100-object window is 5 + 2000 bytes; budget fits one.
        let cached = cached_link(lattice(10), 2200);
        let whole = w(0.0, 0.0, 9.0, 9.0);
        cached.request(&Request::Window(whole));
        let view = cached.cache().unwrap();
        assert_eq!(view.snapshot().resident_bytes, 2005);
        assert_eq!(view.store().cached_windows(), 1);
        // An overlapping (but not nested) window: 81 objects, 1625 bytes.
        // Both together overflow the budget, so the older entry goes.
        let shifted = w(0.5, 0.5, 9.5, 9.5);
        cached.request(&Request::Window(shifted));
        let snap = view.snapshot();
        assert_eq!(snap.resident_bytes, 1625);
        assert_eq!(snap.insertions, 2);
        assert_eq!(snap.evictions, 1);
        // The evicted window is a miss again — eviction only forgets.
        let before = cached.meter().snapshot();
        assert_eq!(
            cached.request(&Request::Window(whole)).into_objects().len(),
            100
        );
        assert!(cached.meter().snapshot().total_bytes() > before.total_bytes());
        let snap = view.snapshot();
        assert_eq!((snap.insertions, snap.evictions), (3, 2));
        assert_eq!(snap.resident_bytes, 2005);
    }

    #[test]
    fn admission_skips_derivable_and_oversized_windows() {
        let store = Arc::new(ClientCache::new(1000));
        let objs = lattice(4);
        store.admit_window(&w(0.0, 0.0, 4.0, 4.0), &objs, 0);
        assert_eq!(store.cached_windows(), 1);
        // Contained window: derivable, not admitted.
        store.admit_window(&w(1.0, 1.0, 2.0, 2.0), &objs[..2], 0);
        assert_eq!(store.cached_windows(), 1);
        // Covering window: admitted, covered entry dropped.
        store.admit_window(&w(-1.0, -1.0, 5.0, 5.0), &objs, 0);
        assert_eq!(store.cached_windows(), 1);
        assert_eq!(store.resident_bytes(), 5 + 16 * 20);
        // Oversized: silently skipped.
        let big = lattice(8);
        store.admit_window(&w(-2.0, -2.0, 9.0, 9.0), &big, 0);
        assert_eq!(store.cached_windows(), 1);
    }

    #[test]
    fn stats_tier_is_bounded_by_the_cap() {
        // Budget 400 → cap max(256, 10) = 256 exact entries.
        let store = Arc::new(ClientCache::new(400));
        for i in 0..1000 {
            store.observe_count(&w(i as f64, 0.0, i as f64 + 1.0, 1.0), i, 0);
        }
        assert_eq!(store.cached_counts(), 256, "cap must hold");
        // Further churn replaces entries one-for-one, never grows.
        let before = store.cached_counts();
        for i in 900..1000 {
            store.observe_count(&w(i as f64, 0.0, i as f64 + 1.0, 1.0), i, 0);
        }
        assert_eq!(store.cached_counts(), before);
        // The latest observation is always resident.
        assert_eq!(store.count(&w(999.0, 0.0, 1000.0, 1.0), 0), Some(999));
    }

    #[test]
    fn poison_flips_the_largest_count() {
        let store = Arc::new(ClientCache::new(1000));
        assert!(!store.poison_one_count(), "nothing to poison yet");
        store.observe_count(&w(0.0, 0.0, 1.0, 1.0), 3, 0);
        store.observe_count(&w(0.0, 0.0, 2.0, 2.0), 9, 0);
        assert!(store.poison_one_count());
        let poisoned = store.count(&w(0.0, 0.0, 2.0, 2.0), 0).unwrap();
        assert_eq!(poisoned, 0, "largest entry flipped to 0");
        assert_eq!(store.count(&w(0.0, 0.0, 1.0, 1.0), 0), Some(3));
    }

    #[test]
    fn non_cached_requests_pass_through_byte_identically() {
        let cached = cached_link(lattice(6), 1 << 20);
        let plain = plain_link(lattice(6));
        for req in [
            Request::AvgArea(w(0.0, 0.0, 3.0, 3.0)),
            Request::BucketEpsRange {
                probes: vec![SpatialObject::point(99, 2.0, 2.0)],
                eps: 1.0,
            },
            Request::CoopLevelMbrs(0),
        ] {
            assert_eq!(cached.request(&req), plain.request(&req));
            // Twice: no caching of these opcodes.
            assert_eq!(cached.request(&req), plain.request(&req));
        }
        assert_eq!(cached.meter().snapshot(), plain.meter().snapshot());
        let snap = cached.cache().unwrap().snapshot();
        assert_eq!(snap.hit_rate(), 0.0);
    }

    #[test]
    fn cache_over_fleet_reuses_router_metering() {
        let left: Vec<SpatialObject> = (0..8)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let right: Vec<SpatialObject> = (0..8)
            .map(|i| SpatialObject::point(100 + i, 100.0 + i as f64, 0.0))
            .collect();
        let endpoint = |objects: Vec<SpatialObject>| {
            let bounds = Rect::union_of(objects.iter().map(|o| o.mbr));
            ShardEndpoint::new(
                bounds,
                Box::new(InProcExchange::new(Arc::new(Scan(objects)))),
            )
        };
        let router = ShardRouter::new(
            vec![endpoint(left), endpoint(right)],
            PacketModel::default(),
        );
        let layer = CacheLayer::over_router(router, Arc::new(ClientCache::new(1 << 20)));
        let link = Link::cached(layer, 1.0);
        let all = w(-1.0, -1.0, 200.0, 1.0);
        assert_eq!(link.request(&Request::Count(all)).into_count(), 16);
        let fleet = link.fleet().expect("fleet telemetry").snapshot();
        assert_eq!(fleet.scattered, 2, "both shards asked once");
        assert_eq!(
            fleet.summed(),
            link.meter().snapshot(),
            "conservation law holds under the cache"
        );
        // The repeat is a cache hit: no new scatter, meters frozen.
        let before = link.meter().snapshot();
        assert_eq!(link.request(&Request::Count(all)).into_count(), 16);
        assert_eq!(link.meter().snapshot(), before);
        assert_eq!(link.fleet().unwrap().snapshot().scattered, 2);
        assert_eq!(link.cache().unwrap().snapshot().stats_hits, 1);
    }

    #[test]
    fn shared_store_carries_hits_across_links() {
        // Two links (a "session") over one store: the second link's first
        // lookup hits what the first link downloaded.
        let store = Arc::new(ClientCache::new(1 << 20));
        let make = |store: &Arc<ClientCache>| {
            Link::cached(
                CacheLayer::new(
                    Box::new(InProcExchange::new(Arc::new(Scan(lattice(10))))),
                    PacketModel::default(),
                    Arc::clone(store),
                ),
                1.0,
            )
        };
        let first = make(&store);
        first.request(&Request::Window(w(0.0, 0.0, 5.0, 5.0)));
        let second = make(&store);
        let got = second
            .request(&Request::Window(w(1.0, 1.0, 4.0, 4.0)))
            .into_objects();
        assert_eq!(got.len(), 16);
        assert_eq!(second.meter().snapshot().total_bytes(), 0);
        // Telemetry is per link; the store is shared.
        assert_eq!(second.cache().unwrap().snapshot().window_hits, 1);
        assert_eq!(first.cache().unwrap().snapshot().window_hits, 0);
    }

    /// Garbles the first `garble` replies on their way back, then
    /// forwards clean — a lossy edge whose payloads get corrupted.
    struct GarbleReplies {
        garble: AtomicU64,
        inner: Box<dyn RawExchange>,
    }

    impl RawExchange for GarbleReplies {
        fn exchange(&self, raw: Bytes) -> Bytes {
            let reply = self.inner.exchange(raw);
            if self.garble.load(Ordering::SeqCst) > 0 {
                self.garble.fetch_sub(1, Ordering::SeqCst);
                return crate::codec::garble_frame(&reply);
            }
            reply
        }
    }

    fn lossy_cached_link(garble: u64, retry: RetryPolicy, budget: u64) -> Link {
        let layer = CacheLayer::new(
            Box::new(GarbleReplies {
                garble: AtomicU64::new(garble),
                inner: Box::new(InProcExchange::new(Arc::new(Scan(lattice(10))))),
            }),
            PacketModel::default(),
            Arc::new(ClientCache::new(budget)),
        )
        .with_retry(retry);
        Link::cached(layer, 1.0)
    }

    #[test]
    fn garbled_attempt_never_poisons_the_cache() {
        let cached = lossy_cached_link(1, RetryPolicy::attempts(3), 1 << 20);
        let q = w(0.0, 0.0, 3.0, 3.0);
        // Attempt 1 comes back garbled, attempt 2 succeeds: the answer is
        // authoritative and only that answer is keyed.
        assert_eq!(cached.request(&Request::Count(q)).into_count(), 16);
        let view = cached.cache().unwrap();
        assert_eq!(view.store().cached_counts(), 1);
        let m = cached.meter().snapshot();
        assert_eq!(m.retried, 1);
        assert_eq!(m.abandoned, 0);
        // The repeat serves the *correct* cached value, locally.
        let before = cached.meter().snapshot();
        assert_eq!(cached.request(&Request::Count(q)).into_count(), 16);
        assert_eq!(cached.meter().snapshot(), before);
    }

    #[test]
    fn error_replies_are_never_admitted_or_keyed() {
        // Every attempt garbled: the final outcome is typed Malformed and
        // the cache stays empty — nothing admitted, no generation noted.
        let cached = lossy_cached_link(u64::MAX, RetryPolicy::attempts(2), 1 << 20);
        let q = w(0.0, 0.0, 3.0, 3.0);
        assert_eq!(cached.request(&Request::Count(q)), Response::Malformed);
        assert_eq!(cached.request(&Request::Window(q)), Response::Malformed);
        let view = cached.cache().unwrap();
        assert_eq!(view.store().cached_counts(), 0, "no poisoned count keyed");
        assert_eq!(
            view.store().cached_windows(),
            0,
            "no poisoned window admitted"
        );
        assert_eq!(view.store().generation(), 0);
        let m = cached.meter().snapshot();
        assert_eq!(m.retried, 2);
        assert_eq!(m.abandoned, 2);
    }

    #[test]
    fn partial_hit_splice_failure_surfaces_typed_not_panicked() {
        let server = Box::new(InProcExchange::new(Arc::new(Scan(lattice(10)))));
        let garbler = Box::new(GarbleReplies {
            garble: AtomicU64::new(0),
            inner: server,
        });
        // Keep a raw pointer-free handle on the knob via Arc.
        struct Knob(Arc<AtomicU64>, Box<dyn RawExchange>);
        impl RawExchange for Knob {
            fn exchange(&self, raw: Bytes) -> Bytes {
                let reply = self.1.exchange(raw);
                if self.0.load(Ordering::SeqCst) > 0 {
                    self.0.fetch_sub(1, Ordering::SeqCst);
                    return crate::codec::garble_frame(&reply);
                }
                reply
            }
        }
        let knob = Arc::new(AtomicU64::new(0));
        let layer = CacheLayer::new(
            Box::new(Knob(Arc::clone(&knob), garbler)),
            PacketModel::default(),
            Arc::new(ClientCache::new(1 << 20)),
        );
        let cached = Link::cached(layer, 1.0);
        let a = w(0.0, 0.0, 2.0, 2.0);
        let b = w(5.0, 5.0, 9.0, 9.0);
        cached.request(&Request::Count(a)); // prime a: the next batch is a partial hit
        knob.store(u64::MAX, Ordering::SeqCst);
        // Retries are off: the garbled sub-reply must degrade typed.
        assert_eq!(
            cached.request(&Request::MultiCount(vec![a, b])),
            Response::Malformed,
            "splice against a garbled sub-reply must not panic"
        );
        assert_eq!(
            cached.cache().unwrap().store().cached_counts(),
            1,
            "only the primed entry"
        );
    }

    #[test]
    fn exhausted_cache_edge_surfaces_unavailable_without_admission() {
        struct Dead;
        impl RawExchange for Dead {
            fn exchange(&self, _: Bytes) -> Bytes {
                crate::codec::unavailable_frame()
            }
        }
        let layer = CacheLayer::new(
            Box::new(Dead),
            PacketModel::default(),
            Arc::new(ClientCache::new(1 << 20)),
        )
        .with_retry(RetryPolicy::attempts(3));
        let cached = Link::cached(layer, 1.0);
        let q = w(0.0, 0.0, 3.0, 3.0);
        assert_eq!(cached.request(&Request::Count(q)), Response::Unavailable);
        let m = cached.meter().snapshot();
        assert_eq!(m.total_bytes(), 0, "nothing ever crossed");
        assert_eq!(m.retried, 2);
        assert_eq!(m.abandoned, 1);
        assert_eq!(cached.cache().unwrap().store().cached_counts(), 0);
    }

    #[test]
    fn enveloped_updates_pass_through_with_tag_intact() {
        use crate::proto::Update;
        // A server double that peels the envelope and acks, recording the
        // tags it saw.
        struct TagWitness {
            tags: Mutex<Vec<crate::codec::DedupTag>>,
        }
        impl RawExchange for TagWitness {
            fn exchange(&self, raw: Bytes) -> Bytes {
                let (tag, _body) = crate::codec::peel_dedup(&raw).expect("enveloped");
                self.tags.lock().unwrap().push(tag);
                encode_response(&Response::Ack { generation: 7 })
            }
        }
        let witness = Arc::new(TagWitness {
            tags: Mutex::new(Vec::new()),
        });
        struct Shared(Arc<TagWitness>);
        impl RawExchange for Shared {
            fn exchange(&self, raw: Bytes) -> Bytes {
                self.0.exchange(raw)
            }
        }
        let layer = CacheLayer::new(
            Box::new(Shared(Arc::clone(&witness))),
            PacketModel::default(),
            Arc::new(ClientCache::new(1 << 20)),
        );
        let inner = encode_request(&Request::ApplyUpdates(vec![Update::Delete(3)]));
        let tag = crate::codec::DedupTag { nonce: 42, seq: 9 };
        let reply = layer.exchange(crate::codec::wrap_dedup(tag, &inner));
        let (resp, _) = decode_response_gen(reply).unwrap();
        assert_eq!(resp, Response::Ack { generation: 7 });
        assert_eq!(
            *witness.tags.lock().unwrap(),
            vec![tag],
            "tag survives verbatim"
        );
        // The Ack's generation was noted so stale entries stop matching.
        assert_eq!(layer.view().store().generation(), 7);
    }
}
