//! Client-side scatter-gather router for sharded server fleets.
//!
//! A production-scale deployment serves each logical dataset from a
//! *fleet* of shard servers, each holding a spatial partition of the
//! objects (see `asj_server::partition`). The [`ShardRouter`] is the
//! device-side library that makes a fleet look like one server: it
//! implements [`RawExchange`], so it slots under an ordinary [`Link`] and
//! every join algorithm works unchanged.
//!
//! For each logical request the router
//!
//! 1. **prunes** shards whose advertised bounds cannot contain an answer
//!    (a shard's bounds cover the full MBRs of all its objects, including
//!    boundary straddlers, so pruning never loses a result);
//! 2. **scatters** sub-requests to the survivors — split-phase via
//!    [`RawExchange::begin`], so threaded shard servers work concurrently;
//!    batched requests (`MultiCount`, `BucketEpsRange`) are *sub-batched*:
//!    each shard receives only the probes that can touch it;
//! 3. **merges** the responses: object lists are concatenated and
//!    deduplicated by id, counts are summed (exact, because the
//!    partitioner assigns every object to exactly one shard), average
//!    areas are weighted by matching-object count, and cooperative level
//!    MBRs concatenate into a forest level (the fleet's defined
//!    cooperative-mode answer);
//! 4. **meters** every physical exchange into a per-shard [`LinkMeter`]
//!    *and* the aggregate meter the fronting [`Link`] exposes — reported
//!    bytes are the scatter traffic that actually crossed the wire.
//!
//! The router lives at the *byte* seam deliberately: it slots under any
//! [`Link`] without a new interface, at the price of one extra
//! encode/decode of the merged response per logical RPC (µs-scale CPU in
//! a simulation whose metric is bytes — a decoded side-channel would
//! remove it if that ever mattered).
//!
//! A fleet of **one** shard is a byte-transparent proxy: the encoded
//! request and response pass through unchanged and nothing is ever pruned,
//! so a 1-shard deployment is wire-identical to a flat one — the anchor of
//! the differential test suite.
//!
//! **Live updates.** `Request::ApplyUpdates` scatters to *owning* shards:
//! each insert or move is routed to the shard whose partition cell holds
//! the object's new center (every other shard receives a `Delete` of that
//! id, so an object migrating across a cell boundary settles in exactly
//! one place), while deletes broadcast. Every shard is contacted on every
//! fleet-level batch — an empty sub-batch still bumps that shard's
//! generation — so the **fleet generation**, defined as the *sum* of the
//! per-shard generations, advances by exactly the shard count per batch
//! and is injective in the number of applied batches. The router learns
//! shard generations from the `Ack`s and from the generation stamps on
//! query responses, tracks them in per-shard [`ShardMeta`]s, and stamps
//! every merged response with the fleet generation (a frozen fleet sums
//! to 0 and stays stamp-free, i.e. bit-identical to the pre-generation
//! wire format). Owner routing needs a declared partition: a fleet whose
//! shards carry no cells refuses updates.
//!
//! If any contacted shard answers [`Response::Refused`] (e.g. a
//! cooperative query against a non-cooperative fleet), the merged answer
//! is `Refused`. Cooperative requests are therefore never pruned-to-zero:
//! every shard is contacted (with a payload trimmed to its bounds) so the
//! policy refusal propagates exactly as it would from a flat server.

use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use asj_geom::{Point, Rect, SpatialObject};
use bytes::{Bytes, BytesMut};

use crate::codec::{
    decode_request, decode_response_gen, decode_response_gen_ctx, encode_request_versioned,
    encode_response_into, stamp_generation, DedupTag, QuantCtx, WireVersion,
};
use crate::health::{spread_hash, BreakerConfig, HealthSnapshot, ReplicaSetHealth};
use crate::meter::{LinkMeter, LinkSnapshot};
use crate::packet::{PacketModel, RetryPolicy};
use crate::proto::{Request, Response, Update};
use crate::transport::RawExchange;

/// Client-side knowledge about one shard, shared between the router and
/// whoever built the fleet (a `Deployment` keeps its own `Arc`s so update
/// routing and query routing always agree):
///
/// * **bounds** — the advertised union of the shard's objects' MBRs, the
///   pruning predicate. Updates only ever *grow* bounds (a delete never
///   shrinks them): over-covering bounds cost pruning efficiency, never
///   correctness;
/// * **cell** — the shard's partition cell, the *ownership* predicate for
///   routing inserts and moves. `None` on fleets built without a declared
///   partition (such fleets refuse updates);
/// * **generation** — the highest snapshot generation observed from this
///   shard (monotone; fed by `Ack`s and response stamps).
#[derive(Debug)]
pub struct ShardMeta {
    bounds: RwLock<Option<Rect>>,
    cell: Option<Rect>,
    generation: AtomicU64,
}

impl ShardMeta {
    /// Meta for a shard with no declared partition cell.
    pub fn new(bounds: Option<Rect>) -> Self {
        ShardMeta::with_cell(bounds, None)
    }

    /// Meta for a shard owning `cell` of the partitioned space.
    pub fn with_cell(bounds: Option<Rect>, cell: Option<Rect>) -> Self {
        ShardMeta {
            bounds: RwLock::new(bounds),
            cell,
            generation: AtomicU64::new(0),
        }
    }

    /// Current advertised bounds (`None` = empty shard, always prunable).
    pub fn bounds(&self) -> Option<Rect> {
        *self.bounds.read().expect("bounds lock poisoned")
    }

    /// The shard's partition cell, if the fleet declared one.
    pub fn cell(&self) -> Option<Rect> {
        self.cell
    }

    /// Highest generation observed from this shard so far.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Records an observed generation (monotone max).
    pub fn note_generation(&self, generation: u64) {
        self.generation.fetch_max(generation, Ordering::AcqRel);
    }

    /// Grows the advertised bounds to cover `r` (union; only-grow).
    pub fn grow_bounds(&self, r: &Rect) {
        let mut b = self.bounds.write().expect("bounds lock poisoned");
        *b = Some(match *b {
            Some(old) => old.union(r),
            None => *r,
        });
    }
}

/// One shard of a fleet: its client-side meta (bounds, cell, observed
/// generation) and the replica carriers that reach it. Every replica
/// serves the same partition cell and member set; the router spreads
/// reads across them and broadcasts updates to all of them.
pub struct ShardEndpoint {
    meta: Arc<ShardMeta>,
    replicas: Vec<Box<dyn RawExchange>>,
    /// Wire version of this shard's physical links: [`WireVersion::V1`]
    /// until [`ShardRouter::negotiate_v2`] runs and **every** replica
    /// `ACCEPT`s (a mixed replica set stays v1 so failover never changes
    /// the frame format mid-request).
    wire: WireVersion,
}

impl ShardEndpoint {
    /// Endpoint with fresh meta and no partition cell (query routing
    /// only; a fleet of such endpoints refuses updates).
    pub fn new(bounds: Option<Rect>, carrier: Box<dyn RawExchange>) -> Self {
        ShardEndpoint::with_meta(Arc::new(ShardMeta::new(bounds)), carrier)
    }

    /// Endpoint over externally shared meta (a deployment keeps the
    /// `Arc` so several links to the same fleet share one view).
    pub fn with_meta(meta: Arc<ShardMeta>, carrier: Box<dyn RawExchange>) -> Self {
        ShardEndpoint::with_replicas(meta, vec![carrier])
    }

    /// Endpoint over a replica set: `carriers[0]` is the primary edge,
    /// the rest are siblings serving the same data.
    pub fn with_replicas(meta: Arc<ShardMeta>, carriers: Vec<Box<dyn RawExchange>>) -> Self {
        assert!(!carriers.is_empty(), "a shard needs at least one replica");
        ShardEndpoint {
            meta,
            replicas: carriers,
            wire: WireVersion::V1,
        }
    }

    /// This shard's meta.
    pub fn meta(&self) -> &Arc<ShardMeta> {
        &self.meta
    }

    /// Number of replica edges behind this shard.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }
}

/// Shared scatter accounting of one router: per-shard meters (each the
/// field-wise sum of its per-replica meters), per-replica meters and
/// breaker health, plus the prune/scatter decision counters the bench
/// experiments report.
#[derive(Debug)]
pub struct ShardTelemetry {
    meters: Vec<Arc<LinkMeter>>,
    replica_meters: Vec<Vec<Arc<LinkMeter>>>,
    health: Vec<Arc<ReplicaSetHealth>>,
    breaker: BreakerConfig,
    metas: Vec<Arc<ShardMeta>>,
    scattered: AtomicU64,
    pruned: AtomicU64,
    /// Shards that actually failed to serve: a read whose entire replica
    /// set was exhausted (whether surfaced as `Unavailable` or skipped by
    /// a partial-tolerant router), or an update batch no replica acked.
    /// A dark replica whose *sibling* answered does not mark its shard —
    /// the shard served. Surfaced as [`FleetSnapshot::failed_shards`].
    failed: Mutex<BTreeSet<usize>>,
}

impl ShardTelemetry {
    fn new(metas: Vec<Arc<ShardMeta>>, replicas: Vec<usize>) -> Self {
        debug_assert_eq!(metas.len(), replicas.len());
        ShardTelemetry {
            meters: (0..metas.len())
                .map(|_| Arc::new(LinkMeter::new()))
                .collect(),
            replica_meters: replicas
                .iter()
                .map(|&n| (0..n).map(|_| Arc::new(LinkMeter::new())).collect())
                .collect(),
            health: replicas
                .iter()
                .map(|&n| Arc::new(ReplicaSetHealth::new(n)))
                .collect(),
            breaker: BreakerConfig::disabled(),
            metas,
            scattered: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            failed: Mutex::new(BTreeSet::new()),
        }
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.meters.len()
    }

    /// The meter of one shard (sums the shard's replica edges).
    pub fn meter(&self, shard: usize) -> &Arc<LinkMeter> {
        &self.meters[shard]
    }

    /// The meter of one replica edge of one shard.
    pub fn replica_meter(&self, shard: usize, replica: usize) -> &Arc<LinkMeter> {
        &self.replica_meters[shard][replica]
    }

    /// The breaker health of one shard's replica set.
    pub fn health(&self, shard: usize) -> &Arc<ReplicaSetHealth> {
        &self.health[shard]
    }

    /// The breaker configuration this router routes under.
    pub fn breaker_config(&self) -> BreakerConfig {
        self.breaker
    }

    /// The per-shard generation vector, in shard order — each entry the
    /// highest generation observed from that shard so far.
    pub fn generations(&self) -> Vec<u64> {
        self.metas.iter().map(|m| m.generation()).collect()
    }

    fn note_failed(&self, shard: usize) {
        self.failed
            .lock()
            .expect("failed-shard lock poisoned")
            .insert(shard);
    }

    /// Point-in-time copy of the whole fleet's accounting.
    pub fn snapshot(&self) -> FleetSnapshot {
        let per_shard: Vec<LinkSnapshot> = self.meters.iter().map(|m| m.snapshot()).collect();
        let failed = self
            .failed
            .lock()
            .expect("failed-shard lock poisoned")
            .clone();
        FleetSnapshot {
            failed_shards: failed.into_iter().collect(),
            per_replica: self
                .replica_meters
                .iter()
                .map(|rs| rs.iter().map(|m| m.snapshot()).collect())
                .collect(),
            health: self
                .health
                .iter()
                .map(|h| h.snapshot(&self.breaker))
                .collect(),
            per_shard,
            generations: self.generations(),
            scattered: self.scattered.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a fleet's scatter accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Wire accounting per shard, in shard order.
    pub per_shard: Vec<LinkSnapshot>,
    /// Per-shard generation vector (highest observed, in shard order).
    /// All zeros on a frozen fleet.
    pub generations: Vec<u64>,
    /// Sub-requests actually sent to shards.
    pub scattered: u64,
    /// (request, shard) slots skipped because the shard could not
    /// contribute to the answer — a bounds miss, or a zero-COUNT shard
    /// skipped by the second phase of a merged `AvgArea`.
    pub pruned: u64,
    /// Shards that failed to *serve* at least once, in shard order: a
    /// read exhausted the whole replica set (surfaced as `Unavailable`,
    /// or skipped under partial tolerance), or no replica acked an
    /// update batch. Empty on a healthy fleet. A dark replica covered by
    /// a sibling — failed over on a read, out-acked on an update — does
    /// not mark its shard: the shard still served.
    pub failed_shards: Vec<usize>,
    /// Wire accounting per replica edge, `per_replica[shard][replica]`.
    /// Each shard's entry in [`FleetSnapshot::per_shard`] is the
    /// field-wise sum of its row here. Rows of length 1 on a
    /// replica-less fleet.
    pub per_replica: Vec<Vec<LinkSnapshot>>,
    /// Circuit-breaker health per replica edge, `health[shard][replica]`:
    /// breaker state, consecutive failures, failure EWMA, trip count.
    pub health: Vec<Vec<HealthSnapshot>>,
}

impl FleetSnapshot {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// Field-wise sum of the per-shard snapshots. Equals the router's
    /// aggregate meter — the conservation law the stress tests pin.
    pub fn summed(&self) -> LinkSnapshot {
        self.per_shard
            .iter()
            .fold(LinkSnapshot::default(), |acc, s| acc.plus(s))
    }

    /// The fleet generation: the sum of the per-shard generations (every
    /// shard bumps exactly once per fleet-level update batch, so this
    /// advances by `shard_count` per batch).
    pub fn fleet_generation(&self) -> u64 {
        self.generations.iter().sum()
    }

    /// Fraction of shards that answered: `1 - failed/total`. `1.0` on a
    /// healthy fleet; below it only when shards abandoned or a
    /// partial-tolerant read skipped an exhausted replica set.
    pub fn coverage(&self) -> f64 {
        if self.per_shard.is_empty() {
            return 1.0;
        }
        1.0 - self.failed_shards.len() as f64 / self.per_shard.len() as f64
    }

    /// Fraction of scatter slots avoided by bounds pruning.
    pub fn pruning_rate(&self) -> f64 {
        let total = self.scattered + self.pruned;
        if total == 0 {
            0.0
        } else {
            self.pruned as f64 / total as f64
        }
    }
}

/// Scatter-gather carrier over a fleet of shard servers. See the module
/// docs for the routing, merging and metering rules.
pub struct ShardRouter {
    shards: Vec<ShardEndpoint>,
    packet: PacketModel,
    aggregate: Arc<LinkMeter>,
    telemetry: Arc<ShardTelemetry>,
    /// Retry/backoff discipline of the physical per-shard exchanges. Off
    /// by default — one attempt per slot, wire traffic byte-identical to
    /// a policy-less router.
    retry: RetryPolicy,
    /// Per-shard retry-dedup identity: (sender nonce, next batch seq).
    /// Each (router, shard) edge is its own sender, so sub-batch retries
    /// dedup independently per shard — and every replica of a shard
    /// receives the *same* tagged bytes, so a replica that sees a
    /// broadcast sub-batch twice (retry, or catch-up replay) applies it
    /// once.
    dedup: Vec<(u64, AtomicU64)>,
    /// Partial-result tolerance: when on, a read whose entire replica
    /// set for some shard is exhausted completes without that shard's
    /// contribution instead of surfacing `Unavailable`. Off by default.
    allow_partial: bool,
}

impl ShardRouter {
    /// Builds a router over `shards` (at least one) with fresh meters.
    pub fn new(shards: Vec<ShardEndpoint>, packet: PacketModel) -> Self {
        assert!(!shards.is_empty(), "a fleet needs at least one shard");
        let telemetry = Arc::new(ShardTelemetry::new(
            shards.iter().map(|s| Arc::clone(&s.meta)).collect(),
            shards.iter().map(|s| s.replicas.len()).collect(),
        ));
        let dedup = shards
            .iter()
            .map(|_| (crate::transport::next_link_nonce(), AtomicU64::new(0)))
            .collect();
        ShardRouter {
            shards,
            packet,
            aggregate: Arc::new(LinkMeter::new()),
            telemetry,
            retry: RetryPolicy::default(),
            dedup,
            allow_partial: false,
        }
    }

    /// Adopts a retry/backoff discipline for the per-shard physical
    /// exchanges. Failed slots recover **individually**: a retried shard
    /// never causes healthy shards' replies to be re-fetched, and a slot
    /// that exhausts its budget surfaces as a typed
    /// [`Response::Unavailable`] with the shard recorded in
    /// [`FleetSnapshot::failed_shards`].
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Adopts a circuit-breaker discipline for replica routing: replicas
    /// whose breaker is open are skipped when picking read targets (see
    /// [`crate::health`] for the state machine and its exchange-counted
    /// cooldown clock). Must be called before the telemetry `Arc` is
    /// shared (i.e. before a [`crate::cache::CacheLayer`] adopts it).
    pub fn with_breakers(mut self, cfg: BreakerConfig) -> Self {
        Arc::get_mut(&mut self.telemetry)
            .expect("configure breakers before sharing the telemetry")
            .breaker = cfg;
        self
    }

    /// Tolerates partial scatter reads: an exhausted replica set no
    /// longer fails the whole merge, it drops that shard's contribution
    /// and records the shard as uncovered (surfacing in
    /// [`FleetSnapshot::failed_shards`] and the snapshot's
    /// [`FleetSnapshot::coverage`]). Never applies to `ApplyUpdates`.
    pub fn with_allow_partial(mut self, on: bool) -> Self {
        self.allow_partial = on;
        self
    }

    /// The aggregate meter every physical exchange is recorded into.
    pub fn aggregate_meter(&self) -> &Arc<LinkMeter> {
        &self.aggregate
    }

    /// Per-shard meters and prune counters.
    pub fn telemetry(&self) -> &Arc<ShardTelemetry> {
        &self.telemetry
    }

    /// The packet model sub-exchanges are metered under.
    pub fn packet(&self) -> PacketModel {
        self.packet
    }

    /// Negotiates wire protocol v2 on every shard's physical links (one
    /// `HELLO`/`ACCEPT` round trip per replica edge; 4 unmetered
    /// link-control bytes each). A shard speaks v2 only when **every**
    /// replica `ACCEPT`s — a mixed replica set stays at
    /// [`WireVersion::V1`] so failing over mid-request never changes the
    /// frame format. Mixed-version fleets degrade per shard, never fail.
    /// Only the deployment layer calls this, and only when
    /// `NetConfig::wire_v2` is on.
    pub fn negotiate_v2(&mut self) {
        for s in &mut self.shards {
            let all_v2 = s
                .replicas
                .iter()
                .all(|c| crate::transport::negotiate_wire(c.as_ref()) == WireVersion::V2);
            s.wire = if all_v2 {
                WireVersion::V2
            } else {
                WireVersion::V1
            };
        }
    }

    /// The wire version of each shard link, in shard order. All
    /// [`WireVersion::V1`] unless [`ShardRouter::negotiate_v2`] ran.
    pub fn wire_versions(&self) -> Vec<WireVersion> {
        self.shards.iter().map(|s| s.wire).collect()
    }

    // Every event is recorded three times — aggregate, per-shard meter,
    // per-replica meter — so `aggregate == Σ shard == Σ Σ replica` holds
    // by construction (the conservation law the stress tests pin).
    fn record_request(&self, shard: usize, replica: usize, req: &Request, payload: u64) {
        self.telemetry.meters[shard].record_request(req, payload, &self.packet);
        self.telemetry.replica_meters[shard][replica].record_request(req, payload, &self.packet);
        self.aggregate.record_request(req, payload, &self.packet);
        self.telemetry.scattered.fetch_add(1, Ordering::Relaxed);
    }

    fn record_response(
        &self,
        shard: usize,
        replica: usize,
        payload: u64,
        resp: &Response,
        aggregate: bool,
    ) {
        let objects = resp.object_count();
        self.telemetry.meters[shard].record_response(payload, objects, &self.packet, aggregate);
        self.telemetry.replica_meters[shard][replica].record_response(
            payload,
            objects,
            &self.packet,
            aggregate,
        );
        self.aggregate
            .record_response(payload, objects, &self.packet, aggregate);
    }

    fn record_retry(&self, shard: usize, replica: usize) {
        self.telemetry.meters[shard].record_retry();
        self.telemetry.replica_meters[shard][replica].record_retry();
        self.aggregate.record_retry();
    }

    fn record_abandon(&self, shard: usize, replica: usize) {
        self.telemetry.meters[shard].record_abandon();
        self.telemetry.replica_meters[shard][replica].record_abandon();
        self.aggregate.record_abandon();
    }

    fn record_failover(&self, shard: usize, replica: usize) {
        self.telemetry.meters[shard].record_failover();
        self.telemetry.replica_meters[shard][replica].record_failover();
        self.aggregate.record_failover();
    }

    /// Notes a failed exchange on one replica edge's breaker; meters the
    /// trip when this failure is the one that opens (or re-opens) it.
    fn note_edge_failure(&self, shard: usize, replica: usize) {
        let set = &self.telemetry.health[shard];
        if set
            .edge(replica)
            .on_failure(&self.telemetry.breaker, set.now())
        {
            self.telemetry.meters[shard].record_breaker_open();
            self.telemetry.replica_meters[shard][replica].record_breaker_open();
            self.aggregate.record_breaker_open();
        }
    }

    /// Attempts per physical exchange under the current policy.
    fn attempt_budget(&self) -> u32 {
        if self.retry.enabled() {
            self.retry.max_attempts
        } else {
            1
        }
    }

    /// Encodes one sub-request for `shard`, wrapping `ApplyUpdates`
    /// batches in the per-shard retry-dedup envelope when retries are on
    /// (same tag across every retry of the sub-batch).
    fn encode_sub(&self, shard: usize, req: &Request) -> Bytes {
        let encoded = encode_request_versioned(req, self.shards[shard].wire);
        if self.retry.enabled() && matches!(req, Request::ApplyUpdates(_)) {
            let (nonce, seq) = &self.dedup[shard];
            return crate::codec::wrap_dedup(
                DedupTag {
                    nonce: *nonce,
                    seq: seq.fetch_add(1, Ordering::Relaxed),
                },
                &encoded,
            );
        }
        encoded
    }

    /// The fleet generation: sum of per-shard observed generations.
    pub fn fleet_generation(&self) -> u64 {
        self.shards.iter().map(|s| s.meta.generation()).sum()
    }

    /// Fleet-of-one fast path: a byte-transparent, fully metered proxy.
    /// On a v1 shard link the reply is forwarded verbatim (stamp and
    /// all) and the router only *notes* the shard generation it carries.
    /// When the single shard negotiated v2 the router re-frames instead
    /// — v2 to the shard (metering the compact frames that actually
    /// crossed the physical link), v1 back to the client, re-stamped
    /// with the shard's generation — so everything above the router
    /// keeps speaking v1 regardless of the fleet's mix.
    fn pass_through(&self, raw: Bytes) -> Bytes {
        let req = match decode_request(raw.clone()) {
            Ok(req) => req,
            // A garbled frame from above gets the typed error reply a
            // real server would send — routers never panic a shared path.
            Err(_) => return crate::codec::malformed_frame(),
        };
        let v2 = self.shards[0].wire == WireVersion::V2;
        let mut encoded = if v2 {
            encode_request_versioned(&req, WireVersion::V2)
        } else {
            raw
        };
        if self.retry.enabled() && matches!(req, Request::ApplyUpdates(_)) {
            let (nonce, seq) = &self.dedup[0];
            encoded = crate::codec::wrap_dedup(
                DedupTag {
                    nonce: *nonce,
                    seq: seq.fetch_add(1, Ordering::Relaxed),
                },
                &encoded,
            );
        }
        let up_len = encoded.len() as u64;
        let ctx = QuantCtx::for_request(&req);
        // Typed-failure bytes of the last completed attempt, forwarded
        // verbatim on exhaustion (a garbled v1 reply stays garbled on the
        // way up — byte-transparency is per attempt).
        let mut last_failure: Option<Bytes> = None;
        for attempt in 0..self.attempt_budget() {
            if attempt > 0 {
                self.record_retry(0, 0);
                self.retry.sleep(attempt);
            }
            let reply = self.shards[0].replicas[0].exchange(encoded.clone());
            if crate::codec::is_unavailable(&reply) {
                // The shard died: nothing crossed the wire, nothing is
                // metered — the fabricated frame propagates upward (after
                // any remaining retries).
                last_failure = None;
                continue;
            }
            // An undecodable shard reply was still real traffic: meter
            // it, degrade to the typed `Malformed`.
            self.record_request(0, 0, &req, up_len);
            let (resp, generation) = if v2 {
                decode_response_gen_ctx(reply.clone(), ctx.as_ref())
            } else {
                decode_response_gen(reply.clone())
            }
            .unwrap_or((Response::Malformed, 0));
            self.record_response(0, 0, reply.len() as u64, &resp, req.is_aggregate());
            let out = if v2 {
                let mut buf = BytesMut::new();
                if !matches!(resp, Response::Ack { .. }) {
                    stamp_generation(generation, &mut buf);
                }
                encode_response_into(&resp, &mut buf);
                buf.freeze()
            } else {
                reply
            };
            if resp == Response::Malformed {
                last_failure = Some(out);
                continue;
            }
            match &resp {
                Response::Ack { generation } => self.shards[0].meta.note_generation(*generation),
                _ if generation > 0 => self.shards[0].meta.note_generation(generation),
                _ => {}
            }
            return out;
        }
        if self.retry.enabled() {
            self.record_abandon(0, 0);
        }
        self.telemetry.note_failed(0);
        last_failure.unwrap_or_else(crate::codec::unavailable_frame)
    }

    /// Read rotation for one shard's replica set: the admitting replicas
    /// (breaker closed or half-open), started at the request-hash pick so
    /// independent requests spread across siblings, in failover order.
    /// When *every* breaker is open, routing around the whole set would
    /// guarantee failure, so the full set is used anyway (last resort).
    fn rotation(&self, shard: usize, hash: u64) -> Vec<usize> {
        let set = &self.telemetry.health[shard];
        let cfg = &self.telemetry.breaker;
        let now = set.now();
        let n = self.shards[shard].replicas.len();
        let mut rot: Vec<usize> = (0..n).filter(|&j| set.edge(j).admits(cfg, now)).collect();
        if rot.is_empty() {
            rot = (0..n).collect();
        }
        let start = (hash % rot.len() as u64) as usize;
        rot.rotate_left(start);
        rot
    }

    /// Issues `f`'s current try split-phase and ticks the replica set's
    /// exchange clock (the breakers' deterministic cooldown time base).
    fn issue<'a>(&'a self, f: &mut Flight<'a>) {
        let replica = f.rotation[f.pos];
        self.telemetry.health[f.shard].tick();
        f.inflight = Some((
            replica,
            self.shards[f.shard].replicas[replica].begin(f.encoded.clone()),
        ));
    }

    /// Judges one completed exchange: meters what crossed the wire,
    /// resolves the flight on success, records a breaker failure (and
    /// leaves the flight unresolved, to fail over or retry) otherwise.
    fn evaluate(&self, f: &mut Flight, replica: usize, raw: Bytes) {
        if crate::codec::is_unavailable(&raw) {
            // A dead replica completes with the fabricated frame: neither
            // direction is metered (nothing crossed the wire).
            f.outcome = Response::Unavailable;
            self.note_edge_failure(f.shard, replica);
            return;
        }
        // Both directions are charged only now, on a completed exchange —
        // a failed replica leaves no phantom uplink bytes behind.
        self.record_request(f.shard, replica, f.req, f.up_len);
        let len = raw.len() as u64;
        let (resp, generation) =
            decode_response_gen_ctx(raw, f.ctx.as_ref()).unwrap_or((Response::Malformed, 0));
        self.record_response(f.shard, replica, len, &resp, f.req.is_aggregate());
        if resp == Response::Malformed {
            // Real traffic (charged above), garbled answer: worth
            // another sibling or attempt.
            f.outcome = Response::Malformed;
            self.note_edge_failure(f.shard, replica);
            return;
        }
        // The generation floor: a read reply stamped below the highest
        // generation already observed from this shard came from a
        // lagging replica. Serving it would hand a generation-keyed
        // cache (and the client) state known to be superseded, so it is
        // rejected like a lost exchange — metered, noted on the breaker,
        // re-fetched from a sibling. Only replica *sets* are floored: a
        // single-replica shard has no sibling to lag behind, its sole
        // edge is authoritative, and flooring it would make reads that
        // race a writer on a shared fleet view reject their own current
        // replies.
        if self.shards[f.shard].replicas.len() > 1
            && !matches!(resp, Response::Ack { .. })
            && generation < self.shards[f.shard].meta.generation()
        {
            f.outcome = Response::Unavailable;
            self.note_edge_failure(f.shard, replica);
            return;
        }
        if generation > 0 {
            self.shards[f.shard].meta.note_generation(generation);
        }
        self.telemetry.health[f.shard].edge(replica).on_success();
        f.result = Some(Landing::Resp(resp));
    }

    /// Drives a set of flights to resolution. All in-flight tries are
    /// issued split-phase before any completion is awaited, and *failed*
    /// flights re-issue together too — so recovery latency is the max of
    /// the failures, not their sum. A failed try first **fails over**
    /// along the flight's rotation (siblings cost no retry budget);
    /// only once the rotation is exhausted does a retry round — with the
    /// policy's backoff, slept once per round — begin, re-picking the
    /// rotation so breaker trips observed meanwhile are honored.
    /// Observed shard generations only ever move through the monotone
    /// [`ShardMeta::note_generation`] max — and failed attempts never
    /// note one — so a retried round can never regress the generation
    /// vector.
    fn execute<'a>(&'a self, flights: &mut [Flight<'a>]) {
        for f in flights.iter_mut() {
            self.issue(f);
        }
        loop {
            for f in flights.iter_mut() {
                if let Some((replica, complete)) = f.inflight.take() {
                    self.evaluate(f, replica, complete());
                }
            }
            let mut backoff_round = 0u32;
            let mut unresolved = false;
            for f in flights.iter_mut() {
                if f.result.is_some() {
                    continue;
                }
                unresolved = true;
                f.pos += 1;
                if f.pos < f.rotation.len() {
                    // Failover to the next sibling, before any retry
                    // budget is consumed (tallied on the edge failed
                    // *from*).
                    self.record_failover(f.shard, f.rotation[f.pos - 1]);
                    f.scheduled = true;
                    continue;
                }
                f.round += 1;
                if f.round >= self.attempt_budget() {
                    if self.retry.enabled() {
                        self.record_abandon(f.shard, f.primary);
                    }
                    if !f.pinned {
                        // The whole replica set is exhausted: the shard
                        // failed to serve this read. (Pinned update
                        // flights are judged per *batch* in
                        // `apply_updates` — a sibling's ack can still
                        // carry the shard.)
                        self.telemetry.note_failed(f.shard);
                    }
                    f.result = Some(if self.allow_partial && !f.pinned {
                        // Partial tolerance: the merge proceeds without
                        // this shard; the hole is recorded, never cached
                        // as truth (the deployment layer forbids the
                        // combination with a client cache).
                        Landing::Skipped
                    } else {
                        Landing::Resp(f.outcome.clone())
                    });
                    continue;
                }
                if !f.pinned {
                    f.rotation = self.rotation(f.shard, f.hash);
                }
                f.pos = 0;
                self.record_retry(f.shard, f.rotation[0]);
                backoff_round = backoff_round.max(f.round);
                f.scheduled = true;
            }
            if !unresolved {
                return;
            }
            if backoff_round > 0 {
                self.retry.sleep(backoff_round);
            }
            for f in flights.iter_mut() {
                if f.scheduled {
                    f.scheduled = false;
                    self.issue(f);
                }
            }
        }
    }

    /// One scatter round: sends `subs[i]` (when `Some`) to shard `i`
    /// split-phase, meters every exchange, counts pruned slots, and
    /// returns the decoded responses in shard order.
    ///
    /// **Partial-scatter recovery.** Each slot fails and recovers
    /// *individually*: a failed shard is re-asked (failing over across
    /// its replicas first, then retrying with backoff) while every
    /// healthy shard's reply — already completed split-phase — is kept
    /// as-is, never re-fetched. A slot that exhausts its budget yields a
    /// typed [`Response::Unavailable`] (or, under
    /// [`ShardRouter::with_allow_partial`], drops out of the merge) and
    /// its abandonment is tallied on that shard's meter (surfacing in
    /// [`FleetSnapshot::failed_shards`]).
    fn round(&self, subs: &[Option<Request>]) -> Vec<Option<Response>> {
        debug_assert_eq!(subs.len(), self.shards.len());
        let mut flights: Vec<Flight> = Vec::with_capacity(subs.len());
        for (i, sub) in subs.iter().enumerate() {
            match sub {
                Some(req) => {
                    let encoded = self.encode_sub(i, req);
                    let hash = spread_hash(&encoded);
                    let rotation = self.rotation(i, hash);
                    flights.push(Flight::rotating(i, req, encoded, hash, rotation));
                }
                None => {
                    self.telemetry.pruned.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.execute(&mut flights);
        let mut out: Vec<Option<Response>> = subs.iter().map(|_| None).collect();
        for f in flights {
            if let Some(Landing::Resp(resp)) = f.result {
                out[f.shard] = Some(resp);
            }
        }
        out
    }

    /// One update round: broadcasts `subs[i]` to **every** replica of
    /// shard `i` (same tagged bytes, so the dedup envelope collapses
    /// duplicate deliveries), each replica retrying *in place* — an
    /// update never fails over, every replica must receive it. Returns
    /// the per-replica responses in shard order.
    fn update_round(&self, subs: &[Request]) -> Vec<Vec<Response>> {
        debug_assert_eq!(subs.len(), self.shards.len());
        let mut flights: Vec<Flight> = Vec::new();
        for (i, req) in subs.iter().enumerate() {
            let encoded = self.encode_sub(i, req);
            for j in 0..self.shards[i].replicas.len() {
                flights.push(Flight::pinned(i, req, encoded.clone(), j));
            }
        }
        self.execute(&mut flights);
        let mut out: Vec<Vec<Response>> = self.shards.iter().map(|_| Vec::new()).collect();
        for f in flights {
            match f.result.expect("update flights always resolve") {
                Landing::Resp(resp) => out[f.shard].push(resp),
                Landing::Skipped => unreachable!("updates are never partial"),
            }
        }
        out
    }

    /// Clones `req` to every shard whose bounds satisfy `reach`.
    fn prune(&self, req: &Request, reach: impl Fn(&Rect) -> bool) -> Vec<Option<Request>> {
        self.shards
            .iter()
            .map(|s| match s.meta.bounds() {
                Some(b) if reach(&b) => Some(req.clone()),
                _ => None,
            })
            .collect()
    }

    /// Probe indices each shard can answer, under `reach(bounds, probe)`.
    fn pick_indices<T>(&self, probes: &[T], reach: impl Fn(&Rect, &T) -> bool) -> Vec<Vec<usize>> {
        self.shards
            .iter()
            .map(|s| match s.meta.bounds() {
                Some(b) => (0..probes.len())
                    .filter(|&i| reach(&b, &probes[i]))
                    .collect(),
                None => Vec::new(),
            })
            .collect()
    }

    fn scatter_gather(&self, req: &Request) -> Response {
        match req {
            Request::Window(w) => merge_objects(self.round(&self.prune(req, |b| b.intersects(w)))),
            Request::EpsRange { q, eps } => {
                let reach = q.expand(*eps);
                merge_objects(self.round(&self.prune(req, |b| b.intersects(&reach))))
            }
            Request::Count(w) => {
                let mut total = 0u64;
                for resp in self
                    .round(&self.prune(req, |b| b.intersects(w)))
                    .into_iter()
                    .flatten()
                {
                    match resp {
                        Response::Count(c) => total += c,
                        e @ (Response::Refused | Response::Malformed | Response::Unavailable) => {
                            return e
                        }
                        other => panic!("protocol mismatch: expected Count, got {other:?}"),
                    }
                }
                Response::Count(total)
            }
            Request::MultiCount(windows) => {
                let picks = self.pick_indices(windows, |b, w| b.intersects(w));
                let subs: Vec<Option<Request>> = picks
                    .iter()
                    .map(|p| {
                        (!p.is_empty())
                            .then(|| Request::MultiCount(p.iter().map(|&i| windows[i]).collect()))
                    })
                    .collect();
                let mut totals = vec![0u64; windows.len()];
                for (shard, resp) in self.round(&subs).into_iter().enumerate() {
                    match resp {
                        None => {}
                        Some(Response::Counts(counts)) => {
                            debug_assert_eq!(counts.len(), picks[shard].len());
                            for (&i, c) in picks[shard].iter().zip(counts) {
                                totals[i] += c;
                            }
                        }
                        Some(
                            e @ (Response::Refused | Response::Malformed | Response::Unavailable),
                        ) => return e,
                        Some(other) => {
                            panic!("protocol mismatch: expected Counts, got {other:?}")
                        }
                    }
                }
                Response::Counts(totals)
            }
            Request::AvgArea(w) => self.avg_area(w),
            Request::BucketEpsRange { probes, eps } => {
                let picks = self.pick_indices(probes, |b, p| b.intersects(&p.mbr.expand(*eps)));
                let subs: Vec<Option<Request>> = picks
                    .iter()
                    .map(|p| {
                        (!p.is_empty()).then(|| Request::BucketEpsRange {
                            probes: p.iter().map(|&i| probes[i]).collect(),
                            eps: *eps,
                        })
                    })
                    .collect();
                let mut merged: Vec<Vec<SpatialObject>> = vec![Vec::new(); probes.len()];
                for (shard, resp) in self.round(&subs).into_iter().enumerate() {
                    match resp {
                        None => {}
                        Some(Response::Buckets(buckets)) => {
                            debug_assert_eq!(buckets.len(), picks[shard].len());
                            for (&i, bucket) in picks[shard].iter().zip(buckets) {
                                merged[i].extend(bucket);
                            }
                        }
                        Some(
                            e @ (Response::Refused | Response::Malformed | Response::Unavailable),
                        ) => return e,
                        Some(other) => {
                            panic!("protocol mismatch: expected Buckets, got {other:?}")
                        }
                    }
                }
                for bucket in &mut merged {
                    dedup_by_id(bucket);
                }
                Response::Buckets(merged)
            }
            Request::CoopLevelMbrs(_) => {
                // The fleet's cooperative level is the *forest* level: the
                // concatenation of every shard's published level, in shard
                // order. Never pruned — index structure is global.
                let subs: Vec<Option<Request>> =
                    self.shards.iter().map(|_| Some(req.clone())).collect();
                let mut mbrs = Vec::new();
                for resp in self.round(&subs).into_iter().flatten() {
                    match resp {
                        Response::Rects(r) => mbrs.extend(r),
                        e @ (Response::Refused | Response::Malformed | Response::Unavailable) => {
                            return e
                        }
                        other => panic!("protocol mismatch: expected Rects, got {other:?}"),
                    }
                }
                Response::Rects(mbrs)
            }
            Request::CoopFilterByMbrs { mbrs, eps } => {
                // Payload trimmed per shard, but every shard is contacted
                // so a non-cooperative policy refusal propagates.
                let subs: Vec<Option<Request>> = self
                    .shards
                    .iter()
                    .map(|s| {
                        let kept: Vec<Rect> = match s.meta.bounds() {
                            Some(b) => mbrs
                                .iter()
                                .filter(|m| m.expand(*eps).intersects(&b))
                                .copied()
                                .collect(),
                            None => Vec::new(),
                        };
                        Some(Request::CoopFilterByMbrs {
                            mbrs: kept,
                            eps: *eps,
                        })
                    })
                    .collect();
                merge_objects(self.round(&subs))
            }
            Request::ApplyUpdates(batch) => self.apply_updates(batch),
            Request::CoopJoinPush { objects, eps } => {
                let subs: Vec<Option<Request>> = self
                    .shards
                    .iter()
                    .map(|s| {
                        let kept: Vec<SpatialObject> = match s.meta.bounds() {
                            Some(b) => objects
                                .iter()
                                .filter(|o| o.mbr.expand(*eps).intersects(&b))
                                .copied()
                                .collect(),
                            None => Vec::new(),
                        };
                        Some(Request::CoopJoinPush {
                            objects: kept,
                            eps: *eps,
                        })
                    })
                    .collect();
                let mut seen = HashSet::new();
                let mut pairs = Vec::new();
                for resp in self.round(&subs).into_iter().flatten() {
                    match resp {
                        Response::Pairs(p) => {
                            for pair in p {
                                if seen.insert(pair) {
                                    pairs.push(pair);
                                }
                            }
                        }
                        e @ (Response::Refused | Response::Malformed | Response::Unavailable) => {
                            return e
                        }
                        other => panic!("protocol mismatch: expected Pairs, got {other:?}"),
                    }
                }
                Response::Pairs(pairs)
            }
        }
    }

    /// Scattered `ApplyUpdates`: each insert/move goes to the shard whose
    /// partition cell owns the object's new center; **every other shard
    /// receives a `Delete` of that id** (upsert-by-id makes the delete a
    /// no-op where the object never lived, and the eviction that keeps
    /// the fleet disjoint where it did). Plain deletes broadcast. All
    /// shards are contacted on every batch — empty sub-batches included —
    /// so each shard's generation advances exactly once and the summed
    /// fleet generation stays injective in the batch count. The merged
    /// `Ack` carries that sum.
    fn apply_updates(&self, batch: &[Update]) -> Response {
        let cells: Option<Vec<Rect>> = self.shards.iter().map(|s| s.meta.cell()).collect();
        let Some(cells) = cells else {
            // No declared partition — the router cannot pick owners.
            return Response::Refused;
        };
        let mut subs: Vec<Vec<Update>> = vec![Vec::new(); self.shards.len()];
        for u in batch {
            match u {
                Update::Insert(o) => {
                    let owner = owner_of(&cells, &o.mbr.center());
                    self.shards[owner].meta.grow_bounds(&o.mbr);
                    for (i, sub) in subs.iter_mut().enumerate() {
                        sub.push(if i == owner {
                            Update::Insert(*o)
                        } else {
                            Update::Delete(o.id)
                        });
                    }
                }
                Update::Delete(id) => {
                    for sub in subs.iter_mut() {
                        sub.push(Update::Delete(*id));
                    }
                }
                Update::Move { id, to } => {
                    let owner = owner_of(&cells, &to.center());
                    self.shards[owner].meta.grow_bounds(to);
                    for (i, sub) in subs.iter_mut().enumerate() {
                        sub.push(if i == owner {
                            Update::Move { id: *id, to: *to }
                        } else {
                            Update::Delete(*id)
                        });
                    }
                }
            }
        }
        let reqs: Vec<Request> = subs.into_iter().map(Request::ApplyUpdates).collect();
        // The batch is durable on a shard once *any* replica acks (the
        // shard generation fetch-maxes over the replica acks); a replica
        // that stayed dark catches up at its restart hook, and until
        // then the generation floor keeps its stale replies out of
        // reads. Only a shard with **no** acking replica fails the
        // batch, propagating its first typed failure.
        let mut sum = 0u64;
        for (i, replies) in self.update_round(&reqs).into_iter().enumerate() {
            let mut acked: Option<u64> = None;
            let mut failure: Option<Response> = None;
            for resp in replies {
                match resp {
                    Response::Ack { generation } => {
                        acked = Some(acked.map_or(generation, |g| g.max(generation)));
                    }
                    e @ (Response::Refused | Response::Malformed | Response::Unavailable) => {
                        failure.get_or_insert(e);
                    }
                    other => panic!("protocol mismatch: expected Ack, got {other:?}"),
                }
            }
            match acked {
                Some(generation) => {
                    self.shards[i].meta.note_generation(generation);
                    sum += generation;
                }
                None => {
                    self.telemetry.note_failed(i);
                    return failure.expect("every replica is contacted");
                }
            }
        }
        Response::Ack { generation: sum }
    }

    /// Merged `AvgArea`: per-shard averages weighted by matching-object
    /// count. An unweighted mean of shard means would be wrong whenever
    /// shards match different numbers of objects; the weights come from a
    /// COUNT round, and shards counting zero skip the area round entirely.
    fn avg_area(&self, w: &Rect) -> Response {
        let count_subs = self.prune(&Request::Count(*w), |b| b.intersects(w));
        let mut counts = vec![0u64; self.shards.len()];
        for (i, resp) in self.round(&count_subs).into_iter().enumerate() {
            match resp {
                None => {}
                Some(Response::Count(c)) => counts[i] = c,
                Some(e @ (Response::Refused | Response::Malformed | Response::Unavailable)) => {
                    return e
                }
                Some(other) => panic!("protocol mismatch: expected Count, got {other:?}"),
            }
        }
        let area_subs: Vec<Option<Request>> = counts
            .iter()
            .map(|&c| (c > 0).then_some(Request::AvgArea(*w)))
            .collect();
        let total: u64 = counts.iter().sum();
        let mut weighted = 0.0f64;
        for (i, resp) in self.round(&area_subs).into_iter().enumerate() {
            match resp {
                None => {}
                Some(Response::Area(a)) => weighted += a * counts[i] as f64,
                Some(e @ (Response::Refused | Response::Malformed | Response::Unavailable)) => {
                    return e
                }
                Some(other) => panic!("protocol mismatch: expected Area, got {other:?}"),
            }
        }
        Response::Area(if total == 0 {
            0.0
        } else {
            weighted / total as f64
        })
    }
}

/// How a resolved flight lands in its round's result set.
enum Landing {
    /// A decoded response (success or, on exhaustion, the typed failure
    /// of the last completed attempt).
    Resp(Response),
    /// Dropped from the merge under partial tolerance.
    Skipped,
}

/// One in-progress sub-request: a (shard, encoded bytes) pair working
/// its way through a replica rotation and a retry budget.
struct Flight<'a> {
    shard: usize,
    req: &'a Request,
    encoded: Bytes,
    up_len: u64,
    /// Grid context of the *sub-request* this shard was sent — the same
    /// grid the shard derives server-side for quantized v2 frames.
    ctx: Option<QuantCtx>,
    /// Request-hash spread key; re-picks the rotation on retry rounds.
    hash: u64,
    /// Replica try order for the current round.
    rotation: Vec<usize>,
    pos: usize,
    round: u32,
    /// Pinned flights (update broadcast) retry one replica in place and
    /// never fail over.
    pinned: bool,
    /// The first-picked replica — abandonment is attributed to it.
    primary: usize,
    outcome: Response,
    inflight: Option<(usize, Box<dyn FnOnce() -> Bytes + Send + 'a>)>,
    scheduled: bool,
    result: Option<Landing>,
}

impl<'a> Flight<'a> {
    fn rotating(
        shard: usize,
        req: &'a Request,
        encoded: Bytes,
        hash: u64,
        rotation: Vec<usize>,
    ) -> Self {
        let primary = rotation[0];
        Flight {
            shard,
            up_len: encoded.len() as u64,
            ctx: QuantCtx::for_request(req),
            req,
            encoded,
            hash,
            rotation,
            pos: 0,
            round: 0,
            pinned: false,
            primary,
            outcome: Response::Unavailable,
            inflight: None,
            scheduled: false,
            result: None,
        }
    }

    fn pinned(shard: usize, req: &'a Request, encoded: Bytes, replica: usize) -> Self {
        Flight {
            shard,
            up_len: encoded.len() as u64,
            ctx: QuantCtx::for_request(req),
            req,
            encoded,
            hash: 0,
            rotation: vec![replica],
            pos: 0,
            round: 0,
            pinned: true,
            primary: replica,
            outcome: Response::Unavailable,
            inflight: None,
            scheduled: false,
            result: None,
        }
    }
}

impl RawExchange for ShardRouter {
    fn exchange(&self, request: Bytes) -> Bytes {
        if self.shards.len() == 1 && self.shards[0].replicas.len() == 1 {
            return self.pass_through(request);
        }
        let req = match decode_request(request) {
            Ok(req) => req,
            // A garbled frame from above gets the typed error reply a
            // real server would send — routers never panic a shared path.
            Err(_) => return crate::codec::malformed_frame(),
        };
        let resp = self.scatter_gather(&req);
        let mut buf = BytesMut::new();
        // Merged responses are re-encoded, so the per-shard stamps are
        // gone; re-stamp with the fleet generation observed while
        // answering. Acks carry their generation in the payload and are
        // never stamped; a frozen fleet sums to 0 and stays stamp-free
        // (bit-identical to the pre-generation format).
        if !matches!(resp, Response::Ack { .. }) {
            stamp_generation(self.fleet_generation(), &mut buf);
        }
        encode_response_into(&resp, &mut buf);
        buf.freeze()
    }
}

/// The shard owning point `p`: the first whose cell contains it
/// (half-open, matching the partitioner's assignment rule), else —
/// for points outside the partitioned space entirely — the shard with
/// the nearest cell center (lowest index on ties). Deterministic, so
/// every client routes the same object the same way.
fn owner_of(cells: &[Rect], p: &Point) -> usize {
    if let Some(i) = cells.iter().position(|c| c.contains_half_open(p)) {
        return i;
    }
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in cells.iter().enumerate() {
        let cc = c.center();
        let d = (cc.x - p.x).powi(2) + (cc.y - p.y).powi(2);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Keeps the first occurrence of each object id, preserving order.
fn dedup_by_id(objects: &mut Vec<SpatialObject>) {
    let mut seen = HashSet::with_capacity(objects.len());
    objects.retain(|o| seen.insert(o.id));
}

/// Concatenates object responses in shard order, deduplicating by id
/// (defensive: the partitioner is disjoint, so duplicates indicate a
/// replicated straddler and must collapse to one object).
fn merge_objects(responses: Vec<Option<Response>>) -> Response {
    let mut out = Vec::new();
    for resp in responses.into_iter().flatten() {
        match resp {
            Response::Objects(v) => out.extend(v),
            e @ (Response::Refused | Response::Malformed | Response::Unavailable) => return e,
            other => panic!("protocol mismatch: expected Objects, got {other:?}"),
        }
    }
    dedup_by_id(&mut out);
    Response::Objects(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::QueryHandler;
    use crate::transport::{InProcExchange, Link};
    use asj_geom::Point;

    /// A scan-backed handler over a fixed object list.
    struct Scan(Vec<SpatialObject>);

    impl QueryHandler for Scan {
        fn handle(&self, req: Request) -> Response {
            match req {
                Request::Window(w) => Response::Objects(
                    self.0
                        .iter()
                        .filter(|o| o.mbr.intersects(&w))
                        .copied()
                        .collect(),
                ),
                Request::Count(w) => {
                    Response::Count(self.0.iter().filter(|o| o.mbr.intersects(&w)).count() as u64)
                }
                Request::MultiCount(ws) => Response::Counts(
                    ws.iter()
                        .map(|w| self.0.iter().filter(|o| o.mbr.intersects(w)).count() as u64)
                        .collect(),
                ),
                Request::EpsRange { q, eps } => Response::Objects(
                    self.0
                        .iter()
                        .filter(|o| o.mbr.within_distance(&q, eps))
                        .copied()
                        .collect(),
                ),
                Request::AvgArea(w) => {
                    let areas: Vec<f64> = self
                        .0
                        .iter()
                        .filter(|o| o.mbr.intersects(&w))
                        .map(|o| o.mbr.area())
                        .collect();
                    Response::Area(if areas.is_empty() {
                        0.0
                    } else {
                        areas.iter().sum::<f64>() / areas.len() as f64
                    })
                }
                Request::BucketEpsRange { probes, eps } => Response::Buckets(
                    probes
                        .iter()
                        .map(|p| {
                            self.0
                                .iter()
                                .filter(|o| o.mbr.within_distance(&p.mbr, eps))
                                .copied()
                                .collect()
                        })
                        .collect(),
                ),
                _ => Response::Refused,
            }
        }
    }

    fn endpoint(objects: Vec<SpatialObject>) -> ShardEndpoint {
        let bounds = Rect::union_of(objects.iter().map(|o| o.mbr));
        ShardEndpoint::new(
            bounds,
            Box::new(InProcExchange::new(Arc::new(Scan(objects)))),
        )
    }

    /// Two shards: ids 0..10 on the left (x ≈ 0..9), ids 100..110 on the
    /// right (x ≈ 100..109).
    fn two_shard_router() -> ShardRouter {
        let left: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let right: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(100 + i, 100.0 + i as f64, 0.0))
            .collect();
        ShardRouter::new(
            vec![endpoint(left), endpoint(right)],
            PacketModel::default(),
        )
    }

    fn link(router: ShardRouter) -> Link {
        Link::routed(router, 1.0)
    }

    #[test]
    fn count_sums_and_prunes() {
        let l = link(two_shard_router());
        // Window touching only the left shard.
        let w = Rect::from_coords(0.0, -1.0, 5.0, 1.0);
        assert_eq!(l.request(&Request::Count(w)).into_count(), 6);
        let fleet = l.fleet().unwrap().snapshot();
        assert_eq!(fleet.scattered, 1, "only the left shard was asked");
        assert_eq!(fleet.pruned, 1);
        assert_eq!(fleet.per_shard[1], LinkSnapshot::default());
        // Both shards.
        let all = Rect::from_coords(-1.0, -1.0, 200.0, 1.0);
        assert_eq!(l.request(&Request::Count(all)).into_count(), 20);
        // Aggregate meter equals the per-shard sum.
        let fleet = l.fleet().unwrap().snapshot();
        assert_eq!(fleet.summed(), l.meter().snapshot());
    }

    #[test]
    fn window_merges_in_shard_order() {
        let l = link(two_shard_router());
        let all = Rect::from_coords(-1.0, -1.0, 200.0, 1.0);
        let objs = l.request(&Request::Window(all)).into_objects();
        assert_eq!(objs.len(), 20);
        let ids: Vec<u32> = objs.iter().map(|o| o.id).collect();
        assert_eq!(&ids[..3], &[0, 1, 2], "left shard first");
        assert_eq!(ids[10], 100, "then the right shard");
    }

    #[test]
    fn multi_count_sub_batches_per_shard() {
        let l = link(two_shard_router());
        let left = Rect::from_coords(0.0, -1.0, 3.0, 1.0); // 4 points
        let right = Rect::from_coords(100.0, -1.0, 101.0, 1.0); // 2 points
        let both = Rect::from_coords(-1.0, -1.0, 200.0, 1.0); // 20 points
        let nowhere = Rect::from_coords(40.0, 40.0, 50.0, 50.0);
        let counts = l
            .request(&Request::MultiCount(vec![left, right, both, nowhere]))
            .into_counts();
        assert_eq!(counts, vec![4, 2, 20, 0]);
        let fleet = l.fleet().unwrap().snapshot();
        // One sub-batch per shard, each carrying 2 windows.
        assert_eq!(fleet.scattered, 2);
        assert_eq!(fleet.per_shard[0].count_queries, 1);
        assert_eq!(fleet.per_shard[1].count_queries, 1);
        // `nowhere` reached no shard at all, yet got its zero.
    }

    #[test]
    fn all_pruned_synthesizes_empty_answers_for_free() {
        let l = link(two_shard_router());
        let nowhere = Rect::from_coords(40.0, 40.0, 50.0, 50.0);
        assert_eq!(l.request(&Request::Count(nowhere)).into_count(), 0);
        assert_eq!(l.request(&Request::Window(nowhere)).into_objects(), vec![]);
        assert_eq!(l.request(&Request::AvgArea(nowhere)), Response::Area(0.0));
        let s = l.meter().snapshot();
        assert_eq!(s.total_bytes(), 0, "pruned queries cost nothing");
        // Count 2 + Window 2 + AvgArea 4 (its COUNT round prunes both
        // shards, then its area round skips both zero-count shards).
        assert_eq!(l.fleet().unwrap().snapshot().pruned, 8);
    }

    #[test]
    fn eps_range_prunes_by_expanded_probe() {
        let l = link(two_shard_router());
        let q = Rect::point(Point::new(11.0, 0.0));
        // eps 2.5: reaches only the left shard (x ≤ 9 + 2.5 window).
        let near = l.request(&Request::EpsRange { q, eps: 2.5 }).into_objects();
        assert_eq!(near.len(), 1, "only the point at x=9");
        assert_eq!(l.fleet().unwrap().snapshot().scattered, 1);
        // eps 95: reaches both shards (left fully, right up to x = 106).
        let far = l
            .request(&Request::EpsRange { q, eps: 95.0 })
            .into_objects();
        assert_eq!(far.len(), 17);
    }

    #[test]
    fn bucket_probes_route_to_reachable_shards_only() {
        let l = link(two_shard_router());
        let probes = vec![
            SpatialObject::point(900, 5.0, 0.0),   // left shard
            SpatialObject::point(901, 105.0, 0.0), // right shard
            SpatialObject::point(902, 50.0, 0.0),  // neither
        ];
        let buckets = l
            .request(&Request::BucketEpsRange { probes, eps: 1.5 })
            .into_buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].len(), 3); // x ∈ {4,5,6}
        assert_eq!(buckets[1].len(), 3); // x ∈ {104,105,106}
        assert!(buckets[2].is_empty());
        let fleet = l.fleet().unwrap().snapshot();
        assert_eq!(fleet.per_shard[0].bucket_queries, 1);
        assert_eq!(fleet.per_shard[1].bucket_queries, 1);
    }

    #[test]
    fn avg_area_weights_by_matching_count() {
        // Left shard: 3 unit squares (area 1). Right shard: 1 big square
        // (area 4). Flat average over the window = (3·1 + 4)/4 = 1.75; an
        // unweighted mean of shard means would say (1 + 4)/2 = 2.5.
        let left: Vec<SpatialObject> = (0..3)
            .map(|i| {
                SpatialObject::new(
                    i,
                    Rect::from_coords(i as f64 * 10.0, 0.0, i as f64 * 10.0 + 1.0, 1.0),
                )
            })
            .collect();
        let right = vec![SpatialObject::new(
            100,
            Rect::from_coords(100.0, 0.0, 102.0, 2.0),
        )];
        let l = link(ShardRouter::new(
            vec![endpoint(left), endpoint(right)],
            PacketModel::default(),
        ));
        let w = Rect::from_coords(-1.0, -1.0, 200.0, 10.0);
        match l.request(&Request::AvgArea(w)) {
            Response::Area(a) => assert_eq!(a, 1.75),
            other => panic!("expected Area, got {other:?}"),
        }
    }

    #[test]
    fn refused_propagates_from_any_shard() {
        let l = link(two_shard_router());
        // Scan refuses cooperative queries; the fleet must too.
        assert_eq!(l.request(&Request::CoopLevelMbrs(0)), Response::Refused);
        assert_eq!(
            l.request(&Request::CoopJoinPush {
                objects: vec![SpatialObject::point(1, 5.0, 0.0)],
                eps: 1.0,
            }),
            Response::Refused
        );
    }

    #[test]
    fn single_shard_is_a_transparent_metered_proxy() {
        let data: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let flat = Link::in_process(Arc::new(Scan(data.clone())), PacketModel::default(), 1.0);
        let routed = link(ShardRouter::new(
            vec![endpoint(data)],
            PacketModel::default(),
        ));
        // Include a window that misses the data: even that must cross the
        // wire (no pruning at fleet size 1 — byte-transparency).
        for w in [
            Rect::from_coords(0.0, -1.0, 4.0, 1.0),
            Rect::from_coords(50.0, 50.0, 60.0, 60.0),
        ] {
            assert_eq!(
                flat.request(&Request::Count(w)).into_count(),
                routed.request(&Request::Count(w)).into_count()
            );
            assert_eq!(
                flat.request(&Request::Window(w)).into_objects(),
                routed.request(&Request::Window(w)).into_objects()
            );
        }
        assert_eq!(flat.meter().snapshot(), routed.meter().snapshot());
        let fleet = routed.fleet().unwrap().snapshot();
        assert_eq!(fleet.pruned, 0);
        assert_eq!(fleet.summed(), routed.meter().snapshot());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_fleet_rejected() {
        ShardRouter::new(Vec::new(), PacketModel::default());
    }

    use crate::codec::{encode_request, encode_response};
    use std::sync::Mutex;

    /// A live shard server double: upsert-by-id update semantics, a
    /// generation counter bumped per batch, and query replies stamped
    /// with the serving generation — the wire behaviour of a
    /// `SpatialService<VersionedStore<_>>` without depending on it.
    struct LiveShard {
        objects: Mutex<Vec<SpatialObject>>,
        generation: AtomicU64,
    }

    impl LiveShard {
        fn new(objects: Vec<SpatialObject>) -> Self {
            LiveShard {
                objects: Mutex::new(objects),
                generation: AtomicU64::new(0),
            }
        }
    }

    impl RawExchange for LiveShard {
        fn exchange(&self, raw: Bytes) -> Bytes {
            let req = decode_request(raw).expect("malformed request");
            let resp = match req {
                Request::ApplyUpdates(batch) => {
                    let mut objs = self.objects.lock().unwrap();
                    for u in &batch {
                        match u {
                            Update::Insert(o) => match objs.iter_mut().find(|x| x.id == o.id) {
                                Some(slot) => *slot = *o,
                                None => objs.push(*o),
                            },
                            Update::Delete(id) => objs.retain(|x| x.id != *id),
                            Update::Move { id, to } => {
                                let moved = SpatialObject::new(*id, *to);
                                match objs.iter_mut().find(|x| x.id == moved.id) {
                                    Some(slot) => *slot = moved,
                                    None => objs.push(moved),
                                }
                            }
                        }
                    }
                    let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
                    return encode_response(&Response::Ack { generation });
                }
                Request::Window(w) => {
                    let objs = self.objects.lock().unwrap();
                    Response::Objects(
                        objs.iter()
                            .filter(|o| o.mbr.intersects(&w))
                            .copied()
                            .collect(),
                    )
                }
                Request::Count(w) => {
                    let objs = self.objects.lock().unwrap();
                    Response::Count(objs.iter().filter(|o| o.mbr.intersects(&w)).count() as u64)
                }
                _ => Response::Refused,
            };
            let mut buf = BytesMut::new();
            stamp_generation(self.generation.load(Ordering::SeqCst), &mut buf);
            encode_response_into(&resp, &mut buf);
            buf.freeze()
        }
    }

    /// Two live shards partitioned at x = 50: left cell `[0, 50)`, right
    /// cell `[50, 110)`; same datasets as `two_shard_router`.
    fn live_fleet() -> ShardRouter {
        let left: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let right: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(100 + i, 100.0 + i as f64, 0.0))
            .collect();
        let shard = |objects: Vec<SpatialObject>, cell: Rect| {
            let bounds = Rect::union_of(objects.iter().map(|o| o.mbr));
            ShardEndpoint::with_meta(
                Arc::new(ShardMeta::with_cell(bounds, Some(cell))),
                Box::new(LiveShard::new(objects)),
            )
        };
        ShardRouter::new(
            vec![
                shard(left, Rect::from_coords(0.0, -10.0, 50.0, 10.0)),
                shard(right, Rect::from_coords(50.0, -10.0, 110.0, 10.0)),
            ],
            PacketModel::default(),
        )
    }

    fn roundtrip(router: &ShardRouter, req: &Request) -> (Response, u64) {
        decode_response_gen(router.exchange(encode_request(req))).expect("malformed reply")
    }

    #[test]
    fn updates_scatter_to_owners_and_sum_generations() {
        let router = live_fleet();
        // Insert at x = 10: the left cell owns it.
        let (ack, stamp) = roundtrip(
            &router,
            &Request::ApplyUpdates(vec![Update::Insert(SpatialObject::point(900, 10.0, 0.0))]),
        );
        assert_eq!(stamp, 0, "Acks are never stamped");
        assert_eq!(ack, Response::Ack { generation: 2 }, "1 + 1 across shards");
        assert_eq!(router.telemetry().generations(), vec![1, 1]);
        assert_eq!(router.fleet_generation(), 2);

        let everywhere = Rect::from_coords(-1.0, -1.0, 200.0, 1.0);
        let (resp, stamp) = roundtrip(&router, &Request::Window(everywhere));
        assert_eq!(stamp, 2, "merged replies carry the fleet generation");
        let ids: Vec<u32> = resp.into_objects().iter().map(|o| o.id).collect();
        assert_eq!(ids.iter().filter(|&&id| id == 900).count(), 1);
        assert_eq!(ids.len(), 21);

        // Move it across the boundary: the right cell takes ownership and
        // the left shard is told to forget it.
        let (ack, _) = roundtrip(
            &router,
            &Request::ApplyUpdates(vec![Update::Move {
                id: 900,
                to: Rect::point(Point::new(60.0, 0.0)),
            }]),
        );
        assert_eq!(ack, Response::Ack { generation: 4 });
        assert_eq!(router.telemetry().generations(), vec![2, 2]);
        let (resp, stamp) = roundtrip(&router, &Request::Window(everywhere));
        assert_eq!(stamp, 4);
        let objs = resp.into_objects();
        let at_900: Vec<_> = objs.iter().filter(|o| o.id == 900).collect();
        assert_eq!(at_900.len(), 1, "exactly one copy after migrating");
        assert_eq!(at_900[0].mbr, Rect::point(Point::new(60.0, 0.0)));

        // Delete broadcasts; cardinality drops back.
        let (ack, _) = roundtrip(&router, &Request::ApplyUpdates(vec![Update::Delete(900)]));
        assert_eq!(ack, Response::Ack { generation: 6 });
        let (resp, _) = roundtrip(&router, &Request::Window(everywhere));
        assert_eq!(resp.into_objects().len(), 20);
    }

    #[test]
    fn insert_outside_every_cell_routes_to_nearest_and_grows_bounds() {
        let router = live_fleet();
        // x = 200 is outside both cells: nearest cell center wins (the
        // right shard at x = 80), whose bounds must grow to cover it.
        let (ack, _) = roundtrip(
            &router,
            &Request::ApplyUpdates(vec![Update::Insert(SpatialObject::point(901, 200.0, 0.0))]),
        );
        assert_eq!(ack, Response::Ack { generation: 2 });
        let w = Rect::from_coords(199.0, -1.0, 201.0, 1.0);
        let (resp, stamp) = roundtrip(&router, &Request::Window(w));
        assert_eq!(stamp, 2);
        assert_eq!(
            resp.into_objects().iter().map(|o| o.id).collect::<Vec<_>>(),
            vec![901],
            "grown bounds keep the straddler reachable"
        );
    }

    #[test]
    fn fleet_without_cells_refuses_updates() {
        let router = two_shard_router();
        let (resp, stamp) = roundtrip(&router, &Request::ApplyUpdates(Vec::new()));
        assert_eq!(resp, Response::Refused);
        assert_eq!(stamp, 0);
        assert_eq!(router.telemetry().generations(), vec![0, 0]);
    }

    #[test]
    fn frozen_fleet_replies_stay_unstamped() {
        let router = two_shard_router();
        let all = Rect::from_coords(-1.0, -1.0, 200.0, 1.0);
        let raw = router.exchange(encode_request(&Request::Window(all)));
        assert_eq!(
            raw,
            encode_response(&Response::Objects(
                decode_response_gen(raw.clone()).unwrap().0.into_objects()
            )),
            "generation 0 is encoded without a stamp — bit-identical"
        );
    }

    #[test]
    fn single_live_shard_is_transparent_and_notes_generations() {
        let data: Vec<SpatialObject> = (0..5)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let shard = Arc::new(LiveShard::new(data.clone()));
        let meta = Arc::new(ShardMeta::with_cell(
            Rect::union_of(data.iter().map(|o| o.mbr)),
            Some(Rect::from_coords(0.0, -10.0, 10.0, 10.0)),
        ));
        struct Shared(Arc<LiveShard>);
        impl RawExchange for Shared {
            fn exchange(&self, raw: Bytes) -> Bytes {
                self.0.exchange(raw)
            }
        }
        let router = ShardRouter::new(
            vec![ShardEndpoint::with_meta(
                meta,
                Box::new(Shared(Arc::clone(&shard))),
            )],
            PacketModel::default(),
        );
        let (ack, _) = roundtrip(&router, &Request::ApplyUpdates(vec![Update::Delete(0)]));
        assert_eq!(ack, Response::Ack { generation: 1 });
        assert_eq!(router.telemetry().generations(), vec![1]);
        // Pass-through stays byte-transparent: the reply (stamp included)
        // is exactly what the shard itself produces.
        let w = Rect::from_coords(-1.0, -1.0, 10.0, 1.0);
        let via_router = router.exchange(encode_request(&Request::Window(w)));
        let direct = shard.exchange(encode_request(&Request::Window(w)));
        assert_eq!(via_router, direct);
        let (resp, stamp) = decode_response_gen(via_router).unwrap();
        assert_eq!(stamp, 1);
        assert_eq!(resp.into_objects().len(), 4);
    }

    #[test]
    fn routed_link_tracks_the_fleet_generation() {
        let l = link(live_fleet());
        assert_eq!(l.last_generation(), 0);
        let ack = l.request(&Request::ApplyUpdates(vec![Update::Insert(
            SpatialObject::point(902, 20.0, 0.0),
        )]));
        assert_eq!(ack, Response::Ack { generation: 2 });
        assert_eq!(l.last_generation(), 2, "Ack generations are noted");
        let everywhere = Rect::from_coords(-1.0, -1.0, 200.0, 1.0);
        assert_eq!(l.request(&Request::Count(everywhere)).into_count(), 21);
        assert_eq!(l.last_generation(), 2, "stamps agree with the Ack");
        let fleet = l.fleet().unwrap().snapshot();
        assert_eq!(fleet.generations, vec![1, 1]);
        assert_eq!(fleet.fleet_generation(), 2);
        assert_eq!(fleet.summed(), l.meter().snapshot());
    }

    use crate::packet::RetryPolicy;
    use std::collections::HashMap;

    /// Fabricates `fails` unavailable replies before forwarding — a
    /// transiently-dead endpoint.
    struct FlakyExchange {
        fails: AtomicU64,
        inner: Box<dyn RawExchange>,
    }

    impl RawExchange for FlakyExchange {
        fn exchange(&self, raw: Bytes) -> Bytes {
            if self.fails.load(Ordering::SeqCst) > 0 {
                self.fails.fetch_sub(1, Ordering::SeqCst);
                return crate::codec::unavailable_frame();
            }
            self.inner.exchange(raw)
        }
    }

    /// Delivers to the inner endpoint but loses the first `lose` replies
    /// on the way back — the duplicated-delivery hazard: the server has
    /// already applied when the client decides to retry.
    struct LoseReplies {
        lose: AtomicU64,
        inner: Box<dyn RawExchange>,
    }

    impl RawExchange for LoseReplies {
        fn exchange(&self, raw: Bytes) -> Bytes {
            let reply = self.inner.exchange(raw);
            if self.lose.load(Ordering::SeqCst) > 0 {
                self.lose.fetch_sub(1, Ordering::SeqCst);
                return crate::codec::unavailable_frame();
            }
            reply
        }
    }

    /// A [`LiveShard`] behind the at-most-once dedup discipline of a real
    /// `SpatialService`: enveloped updates replay their recorded Ack
    /// instead of re-applying.
    struct DedupShard {
        inner: LiveShard,
        seen: Mutex<HashMap<u64, (u64, u64)>>,
    }

    impl DedupShard {
        fn new(objects: Vec<SpatialObject>) -> Self {
            DedupShard {
                inner: LiveShard::new(objects),
                seen: Mutex::new(HashMap::new()),
            }
        }
    }

    impl RawExchange for DedupShard {
        fn exchange(&self, raw: Bytes) -> Bytes {
            match crate::codec::peel_dedup(&raw) {
                Some((tag, body)) => {
                    let mut seen = self.seen.lock().unwrap();
                    if let Some(&(seq, generation)) = seen.get(&tag.nonce) {
                        if tag.seq == seq {
                            return encode_response(&Response::Ack { generation });
                        }
                    }
                    let reply = self.inner.exchange(body);
                    if let Ok((Response::Ack { generation }, _)) =
                        decode_response_gen(reply.clone())
                    {
                        seen.insert(tag.nonce, (tag.seq, generation));
                    }
                    reply
                }
                None => self.inner.exchange(raw),
            }
        }
    }

    fn live_shard_endpoint(
        objects: Vec<SpatialObject>,
        cell: Rect,
        carrier: Box<dyn RawExchange>,
    ) -> ShardEndpoint {
        let bounds = Rect::union_of(objects.iter().map(|o| o.mbr));
        ShardEndpoint::with_meta(Arc::new(ShardMeta::with_cell(bounds, Some(cell))), carrier)
    }

    #[test]
    fn scatter_retry_keeps_healthy_replies_and_meters_per_shard() {
        let left: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let right: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(100 + i, 100.0 + i as f64, 0.0))
            .collect();
        let flaky_left = Box::new(FlakyExchange {
            fails: AtomicU64::new(2),
            inner: Box::new(InProcExchange::new(Arc::new(Scan(left.clone())))),
        });
        let router = ShardRouter::new(
            vec![
                ShardEndpoint::new(Rect::union_of(left.iter().map(|o| o.mbr)), flaky_left),
                endpoint(right),
            ],
            PacketModel::default(),
        )
        .with_retry(RetryPolicy::attempts(3));
        let all = Rect::from_coords(-1.0, -1.0, 200.0, 1.0);
        let (resp, _) = roundtrip(&router, &Request::Count(all));
        assert_eq!(
            resp,
            Response::Count(20),
            "healthy reply kept, flaky slot recovered"
        );
        let fleet = router.telemetry().snapshot();
        assert_eq!(
            fleet.per_shard[0].retried, 2,
            "only the failed slot re-sent"
        );
        assert_eq!(fleet.per_shard[1].retried, 0);
        assert_eq!(fleet.summed().retried, 2);
        assert_eq!(fleet.summed().abandoned, 0);
        assert!(fleet.failed_shards.is_empty());
        // The healthy shard crossed the wire exactly once; the flaky
        // slot's dropped attempts were never metered.
        assert_eq!(fleet.per_shard[0].count_queries, 1);
        assert_eq!(fleet.per_shard[1].count_queries, 1);
        assert_eq!(
            fleet.per_shard[0].total_bytes(),
            fleet.per_shard[1].total_bytes(),
            "a recovered slot costs the same as a clean one"
        );
    }

    #[test]
    fn exhausted_shard_surfaces_unavailable_and_is_recorded() {
        let left: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let right: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(100 + i, 100.0 + i as f64, 0.0))
            .collect();
        let dead_left = Box::new(FlakyExchange {
            fails: AtomicU64::new(u64::MAX),
            inner: Box::new(InProcExchange::new(Arc::new(Scan(left.clone())))),
        });
        let router = ShardRouter::new(
            vec![
                ShardEndpoint::new(Rect::union_of(left.iter().map(|o| o.mbr)), dead_left),
                endpoint(right),
            ],
            PacketModel::default(),
        )
        .with_retry(RetryPolicy::attempts(2));
        let all = Rect::from_coords(-1.0, -1.0, 200.0, 1.0);
        let (resp, _) = roundtrip(&router, &Request::Count(all));
        assert_eq!(
            resp,
            Response::Unavailable,
            "exhaustion is typed, not panicked"
        );
        let fleet = router.telemetry().snapshot();
        assert_eq!(fleet.failed_shards, vec![0]);
        assert_eq!(fleet.per_shard[0].retried, 1);
        assert_eq!(fleet.per_shard[0].abandoned, 1);
        assert_eq!(fleet.per_shard[0].total_bytes(), 0, "nothing ever crossed");
        assert_eq!(
            fleet.per_shard[1].count_queries, 1,
            "healthy shard still served"
        );
        assert_eq!(fleet.generations, vec![0, 0], "generations never regress");
        assert_eq!(fleet.summed(), router.aggregate_meter().snapshot());
    }

    #[test]
    fn update_retries_replay_the_envelope_and_never_double_bump() {
        let left: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let right: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(100 + i, 100.0 + i as f64, 0.0))
            .collect();
        // The left shard applies the batch, then its Ack is lost in
        // flight; the retried duplicate must replay, not re-apply.
        let lossy_left = Box::new(LoseReplies {
            lose: AtomicU64::new(1),
            inner: Box::new(DedupShard::new(left.clone())),
        });
        let router = ShardRouter::new(
            vec![
                live_shard_endpoint(left, Rect::from_coords(0.0, -10.0, 50.0, 10.0), lossy_left),
                live_shard_endpoint(
                    right.clone(),
                    Rect::from_coords(50.0, -10.0, 110.0, 10.0),
                    Box::new(DedupShard::new(right)),
                ),
            ],
            PacketModel::default(),
        )
        .with_retry(RetryPolicy::attempts(3));
        let (ack, _) = roundtrip(
            &router,
            &Request::ApplyUpdates(vec![Update::Insert(SpatialObject::point(900, 10.0, 0.0))]),
        );
        // Every shard is contacted per fleet batch (the non-owner gets
        // the disjointness Delete), so each bumps once: 1 + 1. A double
        // apply on the lossy left would have summed to 3.
        assert_eq!(
            ack,
            Response::Ack { generation: 2 },
            "duplicated delivery bumps the owner exactly once"
        );
        assert_eq!(router.telemetry().generations(), vec![1, 1]);
        let fleet = router.telemetry().snapshot();
        assert_eq!(fleet.per_shard[0].retried, 1);
        assert_eq!(fleet.summed().abandoned, 0);
        // The object landed exactly once.
        let (resp, stamp) = roundtrip(
            &router,
            &Request::Window(Rect::from_coords(-1.0, -1.0, 200.0, 1.0)),
        );
        assert_eq!(stamp, 2);
        let ids: Vec<u32> = resp.into_objects().iter().map(|o| o.id).collect();
        assert_eq!(ids.iter().filter(|&&id| id == 900).count(), 1);
        assert_eq!(ids.len(), 21);
    }

    #[test]
    fn single_shard_pass_through_retries_and_dedups() {
        let data: Vec<SpatialObject> = (0..5)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let lossy = Box::new(LoseReplies {
            lose: AtomicU64::new(1),
            inner: Box::new(DedupShard::new(data.clone())),
        });
        let router = ShardRouter::new(
            vec![live_shard_endpoint(
                data,
                Rect::from_coords(0.0, -10.0, 10.0, 10.0),
                lossy,
            )],
            PacketModel::default(),
        )
        .with_retry(RetryPolicy::attempts(3));
        let (ack, _) = roundtrip(&router, &Request::ApplyUpdates(vec![Update::Delete(0)]));
        assert_eq!(
            ack,
            Response::Ack { generation: 1 },
            "replayed, not re-applied"
        );
        assert_eq!(router.telemetry().generations(), vec![1]);
        let fleet = router.telemetry().snapshot();
        assert_eq!(fleet.per_shard[0].retried, 1);
        assert_eq!(fleet.summed().abandoned, 0);
        // Queries retry through the same path.
        let w = Rect::from_coords(-1.0, -1.0, 10.0, 1.0);
        let (resp, stamp) = roundtrip(&router, &Request::Window(w));
        assert_eq!(stamp, 1);
        assert_eq!(resp.into_objects().len(), 4);
    }

    #[test]
    fn exhausted_pass_through_surfaces_unavailable() {
        let data: Vec<SpatialObject> = (0..5)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect();
        let dead = Box::new(FlakyExchange {
            fails: AtomicU64::new(u64::MAX),
            inner: Box::new(InProcExchange::new(Arc::new(Scan(data.clone())))),
        });
        let router = ShardRouter::new(
            vec![ShardEndpoint::new(
                Rect::union_of(data.iter().map(|o| o.mbr)),
                dead,
            )],
            PacketModel::default(),
        )
        .with_retry(RetryPolicy::attempts(2));
        let raw = router.exchange(encode_request(&Request::Count(Rect::from_coords(
            0.0, -1.0, 4.0, 1.0,
        ))));
        assert!(crate::codec::is_unavailable(&raw));
        let fleet = router.telemetry().snapshot();
        assert_eq!(fleet.failed_shards, vec![0]);
        assert_eq!(fleet.per_shard[0].abandoned, 1);
        assert_eq!(fleet.per_shard[0].total_bytes(), 0);
    }

    #[test]
    fn garbled_frame_to_the_router_answers_typed_malformed() {
        for router in [two_shard_router(), live_fleet()] {
            let raw = router.exchange(Bytes::copy_from_slice(&[0xEE, 0x01, 0x02]));
            assert_eq!(raw, crate::codec::malformed_frame(), "routers never panic");
        }
    }

    // ---- replica sets: spread, failover, breakers, the generation floor ----

    use crate::health::BreakerState;
    use proptest::prelude::*;

    /// The canonical ten-point dataset (ids 0..10 at x ≈ 0..9).
    fn ten_points() -> Vec<SpatialObject> {
        (0..10)
            .map(|i| SpatialObject::point(i, i as f64, 0.0))
            .collect()
    }

    fn scan_carrier(objects: &[SpatialObject]) -> Box<dyn RawExchange> {
        Box::new(InProcExchange::new(Arc::new(Scan(objects.to_vec()))))
    }

    /// One shard whose replica set is `carriers`, bounds from `objects`.
    fn replicated(objects: &[SpatialObject], carriers: Vec<Box<dyn RawExchange>>) -> ShardEndpoint {
        let bounds = Rect::union_of(objects.iter().map(|o| o.mbr));
        ShardEndpoint::with_replicas(Arc::new(ShardMeta::new(bounds)), carriers)
    }

    /// Searches integer-nudged all-covering windows for one whose encoded
    /// request the router's spread hash starts at replica `want` of `n` —
    /// making the pick order of the tests below deterministic.
    fn request_picking(want: usize, n: usize, mk: impl Fn(Rect) -> Request) -> Request {
        (0..64)
            .map(|k| mk(Rect::from_coords(-1.0 - k as f64, -1.0, 200.0, 1.0)))
            .find(|req| spread_hash(&encode_request(req)) % n as u64 == want as u64)
            .expect("one of 64 candidate windows hashes to the wanted replica")
    }

    #[test]
    fn reads_spread_across_siblings_by_request_hash() {
        let data = ten_points();
        let router = ShardRouter::new(
            vec![replicated(
                &data,
                vec![scan_carrier(&data), scan_carrier(&data)],
            )],
            PacketModel::default(),
        );
        for want in 0..2 {
            let req = request_picking(want, 2, Request::Count);
            let (resp, _) = roundtrip(&router, &req);
            assert_eq!(resp, Response::Count(10));
        }
        let fleet = router.telemetry().snapshot();
        assert_eq!(
            fleet.per_replica[0][0].count_queries, 1,
            "each sibling took one of the two reads"
        );
        assert_eq!(fleet.per_replica[0][1].count_queries, 1);
        assert_eq!(fleet.summed().failovers, 0);
        assert_eq!(
            fleet.per_shard[0],
            fleet.per_replica[0][0].plus(&fleet.per_replica[0][1]),
            "the shard meter is the field-wise sum of its replica edges"
        );
        assert_eq!(fleet.summed(), router.aggregate_meter().snapshot());
    }

    #[test]
    fn failed_read_fails_over_to_a_sibling_without_retry_budget() {
        let data = ten_points();
        let dead = Box::new(FlakyExchange {
            fails: AtomicU64::new(u64::MAX),
            inner: scan_carrier(&data),
        });
        // No retry policy at all: the failover to the sibling is what
        // recovers the read.
        let router = ShardRouter::new(
            vec![replicated(&data, vec![dead, scan_carrier(&data)])],
            PacketModel::default(),
        );
        let req = request_picking(0, 2, Request::Count);
        let (resp, _) = roundtrip(&router, &req);
        assert_eq!(resp, Response::Count(10), "the sibling served the read");
        let fleet = router.telemetry().snapshot();
        assert_eq!(
            fleet.per_replica[0][0].failovers, 1,
            "tallied on the edge failed *from*"
        );
        assert_eq!(
            fleet.per_replica[0][0].total_bytes(),
            0,
            "the dead edge never crossed the wire"
        );
        assert_eq!(fleet.per_replica[0][1].count_queries, 1);
        assert_eq!(fleet.summed().retried, 0, "no retry budget was consumed");
        assert_eq!(fleet.summed().abandoned, 0);
        assert!(fleet.failed_shards.is_empty(), "the shard served");
        assert_eq!(
            fleet.health[0][0].consecutive_failures, 1,
            "EWMA health tracks failures even with breakers off"
        );
        assert_eq!(
            fleet.per_shard[0],
            fleet.per_replica[0][0].plus(&fleet.per_replica[0][1])
        );
        assert_eq!(fleet.summed(), router.aggregate_meter().snapshot());
    }

    #[test]
    fn open_breaker_routes_reads_around_a_dead_sibling() {
        let data = ten_points();
        let dead = Box::new(FlakyExchange {
            fails: AtomicU64::new(u64::MAX),
            inner: scan_carrier(&data),
        });
        let router = ShardRouter::new(
            vec![replicated(&data, vec![dead, scan_carrier(&data)])],
            PacketModel::default(),
        )
        .with_breakers(BreakerConfig::new(1, 1_000));
        // First read picks the dead replica, fails, trips the breaker.
        let req = request_picking(0, 2, Request::Count);
        let (resp, _) = roundtrip(&router, &req);
        assert_eq!(resp, Response::Count(10));
        let fleet = router.telemetry().snapshot();
        assert_eq!(fleet.per_replica[0][0].breaker_open, 1);
        assert_eq!(fleet.per_replica[0][0].failovers, 1);
        assert_eq!(fleet.health[0][0].state, BreakerState::Open);
        assert_eq!(fleet.health[0][0].trips, 1);
        // Subsequent reads — even ones whose hash prefers the dead
        // replica — route straight to the healthy sibling: no more
        // failovers, no more trips, nothing offered to the open edge.
        for _ in 0..5 {
            let (resp, _) = roundtrip(&router, &req);
            assert_eq!(resp, Response::Count(10));
        }
        let fleet = router.telemetry().snapshot();
        assert_eq!(
            fleet.summed().failovers,
            1,
            "only the trip-read failed over"
        );
        assert_eq!(fleet.summed().breaker_open, 1);
        assert_eq!(fleet.per_replica[0][1].count_queries, 6);
        assert_eq!(fleet.health[0][0].state, BreakerState::Open);
    }

    #[test]
    fn half_open_probe_reclaims_a_recovered_sibling() {
        let data = ten_points();
        let flaky = Box::new(FlakyExchange {
            fails: AtomicU64::new(1),
            inner: scan_carrier(&data),
        });
        let router = ShardRouter::new(
            vec![replicated(&data, vec![flaky, scan_carrier(&data)])],
            PacketModel::default(),
        )
        .with_breakers(BreakerConfig::new(1, 2));
        let req = request_picking(0, 2, Request::Count);
        // Read 1: replica 0 fails once (trip at clock 1), sibling serves
        // (clock 2).
        roundtrip(&router, &req);
        assert_eq!(
            router.telemetry().snapshot().health[0][0].state,
            BreakerState::Open
        );
        // Read 2 at clock 3: cooldown (2 ticks) not yet elapsed — the
        // open edge is skipped even though the hash prefers it.
        roundtrip(&router, &req);
        // Read 3: the breaker is HalfOpen, the probe goes back to the
        // recovered replica and succeeds — the breaker closes.
        let (resp, _) = roundtrip(&router, &req);
        assert_eq!(resp, Response::Count(10));
        let fleet = router.telemetry().snapshot();
        assert_eq!(fleet.health[0][0].state, BreakerState::Closed);
        assert_eq!(fleet.health[0][0].consecutive_failures, 0);
        assert_eq!(fleet.health[0][0].trips, 1);
        assert_eq!(
            fleet.per_replica[0][0].count_queries, 1,
            "the successful probe is the only metered exchange on the edge"
        );
        assert_eq!(fleet.per_replica[0][1].count_queries, 2);
        assert_eq!(fleet.summed().failovers, 1);
        assert_eq!(fleet.summed().breaker_open, 1);
    }

    /// A lagging/fresh replica pair behind one shard: the stale replica
    /// serves generation 1 *without* object 900, the fresh one serves
    /// generation 2 *with* it, and the shard's meta already observed
    /// generation 2 (the floor). Returns the router and the fresh view.
    fn floored_pair() -> (ShardRouter, Vec<SpatialObject>) {
        let data = ten_points();
        let stale = LiveShard::new(data.clone());
        stale.exchange(encode_request(&Request::ApplyUpdates(Vec::new())));
        let fresh = LiveShard::new(data.clone());
        fresh.exchange(encode_request(&Request::ApplyUpdates(vec![
            Update::Insert(SpatialObject::point(900, 5.5, 0.0)),
        ])));
        fresh.exchange(encode_request(&Request::ApplyUpdates(Vec::new())));
        let mut view = data.clone();
        view.push(SpatialObject::point(900, 5.5, 0.0));
        let meta = Arc::new(ShardMeta::with_cell(
            Rect::union_of(data.iter().map(|o| o.mbr)),
            Some(Rect::from_coords(0.0, -10.0, 10.0, 10.0)),
        ));
        meta.note_generation(2);
        let router = ShardRouter::new(
            vec![ShardEndpoint::with_replicas(
                meta,
                vec![Box::new(stale) as Box<dyn RawExchange>, Box::new(fresh)],
            )],
            PacketModel::default(),
        );
        (router, view)
    }

    #[test]
    fn lagging_replica_reply_is_refetched_from_its_sibling() {
        let (router, view) = floored_pair();
        let req = request_picking(0, 2, Request::Window);
        let (resp, stamp) = roundtrip(&router, &req);
        assert_eq!(stamp, 2);
        let ids: Vec<u32> = resp.into_objects().iter().map(|o| o.id).collect();
        assert_eq!(ids.len(), view.len());
        assert!(ids.contains(&900), "the floored read served the fresh view");
        let fleet = router.telemetry().snapshot();
        assert_eq!(
            fleet.per_replica[0][0].window_queries, 1,
            "the rejected stale reply still crossed the wire — metered"
        );
        assert_eq!(fleet.per_replica[0][0].objects_received, 10);
        assert_eq!(fleet.per_replica[0][0].failovers, 1);
        assert_eq!(fleet.health[0][0].consecutive_failures, 1);
        assert_eq!(fleet.generations, vec![2], "the floor never regressed");
        // A read whose hash picks the fresh replica first never touches
        // the lagging one.
        let (resp, _) = roundtrip(&router, &request_picking(1, 2, Request::Window));
        assert_eq!(resp.into_objects().len(), view.len());
        assert_eq!(router.telemetry().snapshot().summed().failovers, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Satellite (c): whatever the window and whichever replica the
        // hash picks first, a floored read never serves the lagging
        // view — the answer is always exactly the fresh replica's.
        #[test]
        fn failover_never_serves_below_the_generation_floor(
            coords in (-40i32..=88, -40i32..=88, -40i32..=88, -40i32..=88)
        ) {
            let (x0, y0, x1, y1) = coords;
            let w = Rect::new(
                Point::new(x0 as f64 * 0.25, y0 as f64 * 0.25),
                Point::new(x1 as f64 * 0.25, y1 as f64 * 0.25),
            );
            let (router, view) = floored_pair();
            let bounds = Rect::union_of(view[..10].iter().map(|o| o.mbr)).unwrap();
            let (resp, stamp) = roundtrip(&router, &Request::Window(w));
            prop_assert_eq!(stamp, 2, "merged replies carry the floored fleet generation");
            let got: Vec<u32> = resp.into_objects().iter().map(|o| o.id).collect();
            let expected: Vec<u32> = if w.intersects(&bounds) {
                view.iter().filter(|o| o.mbr.intersects(&w)).map(|o| o.id).collect()
            } else {
                Vec::new() // pruned by shard bounds before any replica is asked
            };
            prop_assert_eq!(got, expected);
            prop_assert_eq!(router.telemetry().generations(), vec![2]);
        }
    }

    #[test]
    fn updates_broadcast_to_every_replica_and_ack_the_max() {
        let data = ten_points();
        let cell = Rect::from_coords(0.0, -10.0, 10.0, 10.0);
        let bounds = Rect::union_of(data.iter().map(|o| o.mbr));
        // Replica 1 applies the batch but loses its Ack — the pinned
        // in-place retry must replay the dedup envelope, not re-apply.
        let lossy = Box::new(LoseReplies {
            lose: AtomicU64::new(1),
            inner: Box::new(DedupShard::new(data.clone())),
        });
        let router = ShardRouter::new(
            vec![ShardEndpoint::with_replicas(
                Arc::new(ShardMeta::with_cell(bounds, Some(cell))),
                vec![
                    Box::new(DedupShard::new(data.clone())) as Box<dyn RawExchange>,
                    lossy,
                ],
            )],
            PacketModel::default(),
        )
        .with_retry(RetryPolicy::attempts(3));
        let (ack, stamp) = roundtrip(
            &router,
            &Request::ApplyUpdates(vec![Update::Insert(SpatialObject::point(900, 5.5, 0.0))]),
        );
        assert_eq!(stamp, 0, "Acks are never stamped");
        assert_eq!(
            ack,
            Response::Ack { generation: 1 },
            "the shard ack is the max over replica acks, not their sum"
        );
        assert_eq!(router.telemetry().generations(), vec![1]);
        let fleet = router.telemetry().snapshot();
        assert_eq!(
            fleet.per_replica[0][1].retried, 1,
            "lost Ack replayed in place"
        );
        assert_eq!(fleet.per_replica[0][0].retried, 0);
        assert_eq!(fleet.summed().failovers, 0, "updates never fail over");
        assert_eq!(
            fleet.per_shard[0],
            fleet.per_replica[0][0].plus(&fleet.per_replica[0][1])
        );
        // Read-your-write holds on *either* replica: force both pick
        // orders and find the insert each time, stamped at the floor.
        for want in 0..2 {
            let (resp, stamp) = roundtrip(&router, &request_picking(want, 2, Request::Window));
            assert_eq!(stamp, 1);
            let objs = resp.into_objects();
            assert_eq!(objs.iter().filter(|o| o.id == 900).count(), 1);
            assert_eq!(objs.len(), 11);
        }
    }

    #[test]
    fn update_tolerates_a_dark_replica_when_a_sibling_acks() {
        let data = ten_points();
        let cell = Rect::from_coords(0.0, -10.0, 10.0, 10.0);
        let bounds = Rect::union_of(data.iter().map(|o| o.mbr));
        let dark = Box::new(FlakyExchange {
            fails: AtomicU64::new(u64::MAX),
            inner: Box::new(DedupShard::new(data.clone())),
        });
        let router = ShardRouter::new(
            vec![ShardEndpoint::with_replicas(
                Arc::new(ShardMeta::with_cell(bounds, Some(cell))),
                vec![
                    Box::new(DedupShard::new(data.clone())) as Box<dyn RawExchange>,
                    dark,
                ],
            )],
            PacketModel::default(),
        )
        .with_retry(RetryPolicy::attempts(2))
        // Partial tolerance must never leak into the update path.
        .with_allow_partial(true);
        let (ack, _) = roundtrip(
            &router,
            &Request::ApplyUpdates(vec![Update::Insert(SpatialObject::point(900, 5.5, 0.0))]),
        );
        assert_eq!(
            ack,
            Response::Ack { generation: 1 },
            "one surviving replica carries the batch"
        );
        let fleet = router.telemetry().snapshot();
        assert_eq!(fleet.per_replica[0][1].retried, 1);
        assert_eq!(fleet.per_replica[0][1].abandoned, 1);
        assert_eq!(fleet.per_replica[0][1].total_bytes(), 0);
        assert!(
            fleet.failed_shards.is_empty(),
            "a dark replica out-acked by its sibling does not fail the shard"
        );
        assert_eq!(fleet.coverage(), 1.0);
        assert_eq!(router.telemetry().generations(), vec![1]);
    }

    #[test]
    fn allow_partial_drops_exhausted_shards_from_the_merge() {
        let left = ten_points();
        let right: Vec<SpatialObject> = (0..10)
            .map(|i| SpatialObject::point(100 + i, 100.0 + i as f64, 0.0))
            .collect();
        let dead_left = Box::new(FlakyExchange {
            fails: AtomicU64::new(u64::MAX),
            inner: scan_carrier(&left),
        });
        let router = ShardRouter::new(
            vec![
                ShardEndpoint::new(Rect::union_of(left.iter().map(|o| o.mbr)), dead_left),
                endpoint(right),
            ],
            PacketModel::default(),
        )
        .with_retry(RetryPolicy::attempts(2))
        .with_allow_partial(true);
        let all = Rect::from_coords(-1.0, -1.0, 200.0, 1.0);
        let (resp, _) = roundtrip(&router, &Request::Count(all));
        assert_eq!(
            resp,
            Response::Count(10),
            "the merge completed over the surviving shard"
        );
        let (resp, _) = roundtrip(&router, &Request::Window(all));
        let ids: Vec<u32> = resp.into_objects().iter().map(|o| o.id).collect();
        assert_eq!(ids.len(), 10);
        assert!(
            ids.iter().all(|&id| id >= 100),
            "only the right shard answered"
        );
        let fleet = router.telemetry().snapshot();
        assert_eq!(fleet.failed_shards, vec![0], "the hole is on the record");
        assert_eq!(fleet.coverage(), 0.5);
        assert_eq!(fleet.per_shard[0].abandoned, 2);
        assert_eq!(fleet.per_shard[0].total_bytes(), 0);
    }
}
