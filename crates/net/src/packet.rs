//! Packetization cost model — Equation (1) of the paper.

/// TCP/IP packetization parameters of one link.
///
/// `TB(B) = B + BH · ⌈B / (MTU − BH)⌉`: each network packet carries at most
/// `MTU − BH` payload bytes and pays a `BH`-byte header. The paper uses
/// `BH = 40` (TCP/IP) and notes `MTU = 1500` for Ethernet-class links and
/// `576` for dial-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketModel {
    /// Maximum transmission unit in bytes.
    pub mtu: u32,
    /// Per-packet header overhead in bytes (`BH`).
    pub header_bytes: u32,
}

impl Default for PacketModel {
    fn default() -> Self {
        PacketModel {
            mtu: 1500,
            header_bytes: 40,
        }
    }
}

impl PacketModel {
    /// Creates a model; requires `mtu > header_bytes`.
    pub fn new(mtu: u32, header_bytes: u32) -> Self {
        assert!(mtu > header_bytes, "MTU must exceed the header size");
        PacketModel { mtu, header_bytes }
    }

    /// Payload capacity of one packet.
    #[inline]
    pub fn payload_per_packet(&self) -> u64 {
        (self.mtu - self.header_bytes) as u64
    }

    /// Wire bytes for a `payload`-byte message — `TB` of Eq. (1).
    ///
    /// A zero-byte payload still costs one header (the packet must exist;
    /// this also matches the paper's `BH + BQ` accounting for queries where
    /// the header is always paid).
    #[inline]
    pub fn tb(&self, payload: u64) -> u64 {
        let packets = payload.div_ceil(self.payload_per_packet()).max(1);
        payload + packets * self.header_bytes as u64
    }

    /// Number of packets a payload occupies.
    #[inline]
    pub fn packets(&self, payload: u64) -> u64 {
        payload.div_ceil(self.payload_per_packet()).max(1)
    }
}

/// Retry discipline of one device's physical exchanges.
///
/// `max_attempts` counts *total* deliveries of one request, so `1` (the
/// default) means retries are off — a failed exchange surfaces its typed
/// error immediately and the wire traffic is byte-identical to a build
/// without the retry machinery. With `max_attempts > 1`, an exchange whose
/// reply is locally fabricated `R_UNAVAILABLE` or fails to decode is
/// re-issued with the *same* request bytes after a deterministic
/// exponential backoff (`backoff_base_us · 2^(k-1)` before retry `k`,
/// capped at [`RetryPolicy::BACKOFF_CAP_US`]).
///
/// Idempotency classes: queries are read-only and retry freely.
/// `ApplyUpdates` retries only under the batch-sequence dedup envelope
/// (`codec::wrap_dedup`) that the link attaches when retries are enabled,
/// so a duplicated delivery can never double-bump a generation or
/// double-apply a move — the server replays the remembered `Ack` instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total delivery attempts per physical exchange; `1` disables
    /// retries entirely.
    pub max_attempts: u32,
    /// Base backoff in microseconds before the first retry; each further
    /// retry doubles it. `0` retries immediately (the deterministic
    /// chaos suites use this — backoff affects wall-clock only, never
    /// results).
    pub backoff_base_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_us: 0,
        }
    }
}

impl RetryPolicy {
    /// Upper bound on a single backoff sleep (100 ms): exhausting a
    /// generous budget must never hang a test suite.
    pub const BACKOFF_CAP_US: u64 = 100_000;

    /// A policy allowing `max_attempts` total deliveries with immediate
    /// (zero-backoff) retries.
    pub fn attempts(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts,
            backoff_base_us: 0,
        }
    }

    /// `true` when failed exchanges are re-issued at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Deterministic backoff before retry number `retry` (1-based):
    /// `base · 2^(retry-1)`, saturating, capped at
    /// [`RetryPolicy::BACKOFF_CAP_US`].
    #[inline]
    pub fn backoff_us(&self, retry: u32) -> u64 {
        if self.backoff_base_us == 0 || retry == 0 {
            return 0;
        }
        self.backoff_base_us
            .saturating_mul(1u64 << (retry - 1).min(20))
            .min(Self::BACKOFF_CAP_US)
    }

    /// Sleeps the backoff for retry number `retry` (no-op at base 0).
    pub fn sleep(&self, retry: u32) {
        let us = self.backoff_us(retry);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

/// Full network configuration of a deployment: one packet model shared by
/// both links (the paper's prototype used the same WiFi interface for both
/// servers) and the per-byte tariffs `bR`, `bS`.
///
/// All experiments in the paper set `bR = bS`; the tariffs exist so the
/// cost-based operator choice (`c2` vs `c3`) can be exercised with
/// asymmetric pricing, which the model explicitly supports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    pub packet: PacketModel,
    /// Cost per transferred byte from/to server R (`bR`).
    pub tariff_r: f64,
    /// Cost per transferred byte from/to server S (`bS`).
    pub tariff_s: f64,
    /// Capability flag: the device batches the per-split quadrant COUNTs
    /// into one `MultiCount` request per server instead of `k²` separate
    /// COUNT round trips. **Off by default** — the default protocol is the
    /// paper-faithful per-query mode and produces byte-identical meter
    /// totals to a build without the extension; turning it on changes
    /// only the statistics traffic, never the join result.
    pub batched_stats: bool,
    /// Client-side semantic statistics/window cache in front of every
    /// server or fleet (see [`crate::cache`]). **Off by default** — when
    /// disabled no cache layer is constructed at all, so every wire byte
    /// is identical to a build without the extension; turning it on never
    /// changes join results, only deletes repeated traffic.
    pub client_cache: crate::cache::CacheConfig,
    /// Capability flag: negotiate the compact wire protocol v2 per
    /// physical link (`HELLO`/`ACCEPT` handshake, then delta-varint ids,
    /// quantized coordinates and varint scalars on links whose peer
    /// accepts — see `asj_net::codec::WireVersion`). **Off by default** —
    /// no handshake frame is ever sent and every link speaks v1
    /// byte-identically to a build without the extension. Turning it on
    /// changes frame density only, never decoded objects or join results:
    /// the quantization contract guarantees bit-faithful decode.
    pub wire_v2: bool,
    /// Worker threads the device's in-memory join kernels (the partitioned
    /// parallel plane sweep) may use. `0` (the default) resolves to the
    /// machine's available parallelism; `1` forces the serial kernel. A
    /// device-compute knob, not a wire capability: the kernels produce
    /// identical output — same pairs, same order, same wire traffic — at
    /// every worker count (differentially tested), so this only moves
    /// wall-clock time.
    pub sweep_workers: usize,
    /// Retry/backoff discipline of the device's physical exchanges (see
    /// [`RetryPolicy`]). **Off by default** (`max_attempts == 1`): no
    /// dedup envelope is attached, no exchange is re-issued, and every
    /// wire byte is identical to a build without the extension.
    pub retry: RetryPolicy,
    /// Per-replica-edge circuit breakers on sharded fleets (see
    /// [`crate::health`]). **Off by default**: health is still tracked
    /// for observability, but routing never skips an edge and no breaker
    /// ever opens, so traffic stays byte-identical to a build without the
    /// machinery. Only meaningful with replicated shards — a replica set
    /// of one has no sibling to route around.
    pub breaker: crate::health::BreakerConfig,
    /// Graceful degradation of scatter reads. **Off by default**: a shard
    /// whose whole replica set exhausts its budget fails the logical
    /// request with a typed [`crate::Response::Unavailable`]. When on,
    /// the scatter instead completes *without* that shard's contribution
    /// — the result is a provable subset of the truth — recording the
    /// uncovered shard in `FleetSnapshot::failed_shards` and surfacing
    /// the covered fraction as `JoinReport::coverage`. Never applies to
    /// `ApplyUpdates` (partial writes are refused, not degraded).
    pub allow_partial: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            packet: PacketModel::default(),
            tariff_r: 1.0,
            tariff_s: 1.0,
            batched_stats: false,
            client_cache: crate::cache::CacheConfig::default(),
            wire_v2: false,
            sweep_workers: 0,
            retry: RetryPolicy::default(),
            breaker: crate::health::BreakerConfig::disabled(),
            allow_partial: false,
        }
    }
}

impl NetConfig {
    /// Dial-up style link (MTU 576), for the MTU-sensitivity ablation.
    pub fn dialup() -> Self {
        NetConfig {
            packet: PacketModel::new(576, 40),
            ..NetConfig::default()
        }
    }

    /// Enables batched `MultiCount` statistics on the device.
    pub fn with_batched_stats(mut self, on: bool) -> Self {
        self.batched_stats = on;
        self
    }

    /// Enables the client-side statistics/window cache on the device.
    pub fn with_client_cache(mut self, on: bool) -> Self {
        self.client_cache.enabled = on;
        self
    }

    /// Sets the window tier's byte budget (implies nothing about
    /// `enabled`).
    pub fn with_cache_budget(mut self, bytes: u64) -> Self {
        self.client_cache.window_budget_bytes = bytes;
        self
    }

    /// Enables wire protocol v2 negotiation on the device's physical
    /// links.
    pub fn with_wire_v2(mut self, on: bool) -> Self {
        self.wire_v2 = on;
        self
    }

    /// Sets the device join-kernel worker count (`0` = auto, `1` =
    /// serial). Results and wire traffic are identical at every value.
    pub fn with_sweep_workers(mut self, workers: usize) -> Self {
        self.sweep_workers = workers;
        self
    }

    /// Sets the retry/backoff discipline of the device's physical
    /// exchanges.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-replica-edge circuit-breaker discipline.
    pub fn with_breakers(mut self, breaker: crate::health::BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Lets scatter reads complete without shards whose entire replica
    /// set is exhausted (results degrade to a subset instead of failing).
    pub fn with_allow_partial(mut self, on: bool) -> Self {
        self.allow_partial = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tb_single_packet() {
        let m = PacketModel::default(); // payload capacity 1460
        assert_eq!(m.tb(100), 140);
        assert_eq!(m.tb(1460), 1500);
        assert_eq!(m.packets(1460), 1);
    }

    #[test]
    fn tb_multi_packet() {
        let m = PacketModel::default();
        assert_eq!(m.tb(1461), 1461 + 2 * 40);
        assert_eq!(m.packets(1461), 2);
        // 20_000 bytes → ⌈20000/1460⌉ = 14 packets.
        assert_eq!(m.tb(20_000), 20_000 + 14 * 40);
    }

    #[test]
    fn tb_zero_payload_costs_a_header() {
        let m = PacketModel::default();
        assert_eq!(m.tb(0), 40);
        assert_eq!(m.packets(0), 1);
    }

    #[test]
    fn dialup_is_more_expensive_per_byte() {
        let eth = PacketModel::default();
        let dial = NetConfig::dialup().packet;
        // Same payload, more packets on the smaller MTU.
        assert!(dial.tb(50_000) > eth.tb(50_000));
    }

    #[test]
    fn tb_monotone_in_payload() {
        let m = PacketModel::default();
        let mut prev = 0;
        for b in (0..10_000).step_by(97) {
            let t = m.tb(b);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "MTU must exceed")]
    fn invalid_model_rejected() {
        PacketModel::new(40, 40);
    }

    #[test]
    fn batched_stats_defaults_off() {
        assert!(!NetConfig::default().batched_stats);
        assert!(!NetConfig::dialup().batched_stats);
        assert!(NetConfig::default().with_batched_stats(true).batched_stats);
    }

    #[test]
    fn sweep_workers_defaults_to_auto() {
        assert_eq!(NetConfig::default().sweep_workers, 0);
        assert_eq!(NetConfig::default().with_sweep_workers(4).sweep_workers, 4);
    }

    #[test]
    fn wire_v2_defaults_off() {
        assert!(!NetConfig::default().wire_v2);
        assert!(!NetConfig::dialup().wire_v2);
        assert!(NetConfig::default().with_wire_v2(true).wire_v2);
    }

    #[test]
    fn retry_defaults_off() {
        let p = NetConfig::default().retry;
        assert_eq!(p.max_attempts, 1);
        assert!(!p.enabled());
        assert!(!NetConfig::dialup().retry.enabled());
        let on = NetConfig::default().with_retry(RetryPolicy::attempts(3));
        assert!(on.retry.enabled());
        assert_eq!(on.retry.max_attempts, 3);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base_us: 100,
        };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        // Saturates at the cap, never overflows.
        assert_eq!(p.backoff_us(63), RetryPolicy::BACKOFF_CAP_US);
        // Base 0 never sleeps.
        assert_eq!(RetryPolicy::attempts(4).backoff_us(3), 0);
    }

    #[test]
    fn breakers_and_partial_results_default_off() {
        let d = NetConfig::default();
        assert!(!d.breaker.enabled);
        assert!(!d.allow_partial);
        assert!(!NetConfig::dialup().breaker.enabled);
        let on = NetConfig::default()
            .with_breakers(crate::health::BreakerConfig::new(2, 4))
            .with_allow_partial(true);
        assert!(on.breaker.enabled);
        assert_eq!((on.breaker.threshold, on.breaker.cooldown), (2, 4));
        assert!(on.allow_partial);
    }

    #[test]
    fn client_cache_defaults_off() {
        assert!(!NetConfig::default().client_cache.enabled);
        assert!(!NetConfig::dialup().client_cache.enabled);
        let on = NetConfig::default()
            .with_client_cache(true)
            .with_cache_budget(1024);
        assert!(on.client_cache.enabled);
        assert_eq!(on.client_cache.window_budget_bytes, 1024);
    }
}
