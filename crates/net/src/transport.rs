//! Synchronous RPC transports with mandatory metering.
//!
//! A [`Link`] is the device's handle to one server. Every `request` call
//! encodes the message, charges the uplink meter, carries the bytes over a
//! [`RawExchange`], charges the downlink meter and decodes the reply — so
//! no byte can cross unmetered, whichever carrier is used:
//!
//! * [`InProcExchange`] — calls the server's handler on the calling thread
//!   (fast path for the thousands of joins an experiment sweep runs);
//! * [`ChannelServer`] / [`ChannelExchange`] — the server runs on its own
//!   thread behind a crossbeam channel, modelling the paper's deployment
//!   of two independent UNIX servers and a WiFi PDA. Integration tests run
//!   both carriers and assert identical byte counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use crate::codec::{
    decode_response_gen_ctx, encode_request_versioned, DedupTag, QuantCtx, WireVersion,
    MAX_WIRE_VERSION,
};
use crate::meter::LinkMeter;
use crate::packet::{PacketModel, RetryPolicy};
use crate::proto::{QueryHandler, Request, Response};

/// Process-unique sender nonce for the retry-dedup envelope: each link
/// draws one at construction, so two links never collide in a server's
/// at-most-once table.
static LINK_NONCE: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_link_nonce() -> u64 {
    LINK_NONCE.fetch_add(1, Ordering::Relaxed)
}

/// Serves one request frame into `buf` — the decode path shared by every
/// server-side adapter. Peels the retry-dedup envelope first: a tagged
/// `ApplyUpdates` delivery goes through
/// [`QueryHandler::handle_tagged_updates`] so stateful servers can make
/// it at-most-once; an envelope wrapping anything else is garbage and
/// answers the typed malformed frame. Returns `false` when a typed error
/// was encoded instead of an answer, so callers keep served-query counts
/// honest.
pub(crate) fn serve_frame_into<H: QueryHandler + ?Sized>(
    handler: &H,
    request: Bytes,
    buf: &mut BytesMut,
) -> bool {
    let (tag, body) = match crate::codec::peel_dedup(&request) {
        Some((tag, inner)) => (Some(tag), inner),
        None => (None, request),
    };
    let (req, wire) = match crate::codec::decode_request_versioned(body) {
        Ok(pair) => pair,
        Err(_) => {
            crate::codec::encode_response_into(&Response::Malformed, buf);
            return false;
        }
    };
    match (tag, req) {
        (Some(tag), Request::ApplyUpdates(updates)) => {
            // Acks carry their generation in-band and are never stamped,
            // so encoding straight here (bypassing any stamping wrapper)
            // is wire-identical to the untagged path.
            let resp = handler.handle_tagged_updates(tag, updates);
            crate::codec::encode_response_versioned(&resp, wire, None, buf);
            true
        }
        (Some(_), _) => {
            crate::codec::encode_response_into(&Response::Malformed, buf);
            false
        }
        (None, req) => {
            handler.handle_into(req, wire, buf);
            true
        }
    }
}

/// A byte-level carrier: ships an encoded request, returns the encoded
/// response. Carriers are `Sync` so one carrier can serve interleaved
/// requests from several device threads (a shard router fans one logical
/// client out over many carriers, and stress tests drive it from many
/// threads at once).
pub trait RawExchange: Send + Sync {
    fn exchange(&self, request: Bytes) -> Bytes;

    /// Starts an exchange and returns a completion that yields the reply.
    ///
    /// The default is fully synchronous — the reply is computed before the
    /// completion is returned, which is the only possibility for in-process
    /// carriers (the server *is* the calling thread). Carriers backed by a
    /// server thread override this to ship the request immediately and
    /// block only inside the completion, so a scatter round's requests are
    /// serviced concurrently by the shard threads.
    fn begin<'a>(&'a self, request: Bytes) -> Box<dyn FnOnce() -> Bytes + Send + 'a> {
        let reply = self.exchange(request);
        Box::new(move || reply)
    }
}

/// In-process carrier: decodes and handles on the calling thread.
pub struct InProcExchange<H: QueryHandler> {
    handler: Arc<H>,
}

impl<H: QueryHandler> InProcExchange<H> {
    pub fn new(handler: Arc<H>) -> Self {
        InProcExchange { handler }
    }
}

impl<H: QueryHandler> RawExchange for InProcExchange<H> {
    fn exchange(&self, request: Bytes) -> Bytes {
        // Version negotiation is link control: answered by the transport
        // adapter, never seen by the query handler.
        if let Some(accept) = crate::codec::try_answer_hello(&request) {
            return accept;
        }
        // The zero-copy serving path: the handler encodes straight into
        // the reply buffer (exact-capacity reserve inside the codec), so
        // no intermediate `Response` vectors are materialized. A garbled
        // frame is answered with a typed error, never panicked on — same
        // contract as the shared server thread.
        let mut buf = BytesMut::new();
        serve_frame_into(self.handler.as_ref(), request, &mut buf);
        buf.freeze()
    }
}

/// One in-flight RPC on the channel carrier.
struct Rpc {
    request: Bytes,
    reply: Sender<Bytes>,
}

/// What flows to a server thread: RPCs from client handles, or the
/// shutdown sentinel [`ChannelServer::drop`] enqueues so dropping the
/// server never blocks on handles that are still alive. FIFO ordering
/// guarantees every RPC enqueued before the sentinel is still served.
enum ServerMsg {
    Rpc(Rpc),
    Shutdown,
}

/// Client side of the channel carrier.
pub struct ChannelExchange {
    tx: Sender<ServerMsg>,
}

impl RawExchange for ChannelExchange {
    fn exchange(&self, request: Bytes) -> Bytes {
        self.begin(request)()
    }

    fn begin<'a>(&'a self, request: Bytes) -> Box<dyn FnOnce() -> Bytes + Send + 'a> {
        let (reply_tx, reply_rx) = bounded(1);
        if self
            .tx
            .send(ServerMsg::Rpc(Rpc {
                request,
                reply: reply_tx,
            }))
            .is_err()
        {
            // The server thread is gone. Degrade to the locally
            // fabricated unavailable frame instead of panicking the
            // client — a shard dying mid-session must not take the
            // device down with it.
            return Box::new(crate::codec::unavailable_frame);
        }
        // A recv error here means the server accepted the request but
        // shut down before replying (it raced the shutdown sentinel):
        // same degradation as a refused send.
        Box::new(move || {
            reply_rx
                .recv()
                .unwrap_or_else(|_| crate::codec::unavailable_frame())
        })
    }
}

/// A server running on its own thread, draining RPCs until every client
/// handle is dropped — or until the server itself is dropped, whichever
/// comes first (drop enqueues a shutdown sentinel, so it never deadlocks
/// waiting on handles that outlive it).
pub struct ChannelServer {
    thread: Option<std::thread::JoinHandle<u64>>,
    /// The server's own sender, used only to enqueue the shutdown
    /// sentinel from `drop`. Held here (not by handles) so `join` can
    /// release it and restore the legacy wait-for-all-handles semantics.
    ctrl: Option<Sender<ServerMsg>>,
}

/// Keeps the server thread alive; dropping all handles shuts it down.
pub struct ServerHandle {
    tx: Sender<ServerMsg>,
}

impl ChannelServer {
    /// Spawns the server thread. Returns the server (join on drop) and a
    /// handle from which any number of [`ChannelExchange`] carriers can be
    /// cloned.
    pub fn spawn<H: QueryHandler + 'static>(handler: Arc<H>, name: &str) -> (Self, ServerHandle) {
        let (tx, rx): (Sender<ServerMsg>, Receiver<ServerMsg>) = unbounded();
        let thread = std::thread::Builder::new()
            .name(format!("asj-server-{name}"))
            .spawn(move || {
                let mut served = 0u64;
                // One encode buffer for the life of the server thread:
                // each request clears it (keeping the allocation) and the
                // handler encodes its answer straight in, so steady-state
                // serving performs no per-request buffer growth — the
                // only per-request allocation left is the reply message
                // itself.
                let mut buf = BytesMut::with_capacity(4096);
                while let Ok(msg) = rx.recv() {
                    let rpc = match msg {
                        ServerMsg::Rpc(rpc) => rpc,
                        ServerMsg::Shutdown => break,
                    };
                    if let Some(accept) = crate::codec::try_answer_hello(&rpc.request) {
                        // Handshake frames are link control: answered here,
                        // never counted as served queries.
                        let _ = rpc.reply.send(accept);
                        continue;
                    }
                    buf.clear();
                    // This thread is shared by every connected device:
                    // one garbled frame gets a typed error reply (and is
                    // not counted as served) and the loop keeps serving —
                    // it must never panic the thread.
                    if serve_frame_into(handler.as_ref(), rpc.request, &mut buf) {
                        served += 1;
                    }
                    // A dropped reply channel just means the client gave up.
                    // With the real `bytes` crate this would be
                    // `buf.split().freeze()` (zero-copy hand-off that
                    // recycles the allocation); the shim's `Bytes` is
                    // `Arc<[u8]>`-backed, so one copy into the reply is
                    // the closest equivalent — the same copy `freeze()`
                    // itself performs under the shim.
                    let _ = rpc.reply.send(Bytes::copy_from_slice(&buf));
                }
                served
            })
            .expect("failed to spawn server thread");
        (
            ChannelServer {
                thread: Some(thread),
                ctrl: Some(tx.clone()),
            },
            ServerHandle { tx },
        )
    }

    /// Waits for the server to drain and stop (all handles dropped);
    /// returns the number of requests served.
    pub fn join(mut self) -> u64 {
        // Release the control sender first: the thread's `recv` loop must
        // be able to disconnect once every client handle is gone.
        self.ctrl = None;
        self.thread
            .take()
            .expect("already joined")
            .join()
            .expect("server thread panicked")
    }
}

impl Drop for ChannelServer {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            // Enqueue the shutdown sentinel behind any in-flight RPCs
            // (FIFO: they are all still served), then join. Without the
            // sentinel this join deadlocked whenever a `ServerHandle` or
            // `ChannelExchange` outlived the server — their senders kept
            // the channel connected forever.
            if let Some(ctrl) = self.ctrl.take() {
                let _ = ctrl.send(ServerMsg::Shutdown);
            }
            let _ = t.join();
        }
    }
}

impl ServerHandle {
    /// Opens a new connection to the server.
    pub fn connect(&self) -> ChannelExchange {
        ChannelExchange {
            tx: self.tx.clone(),
        }
    }
}

/// The device's metered handle to one server (or one fleet of shard
/// servers behind a [`ShardRouter`](crate::router::ShardRouter)).
pub struct Link {
    carrier: Box<dyn RawExchange>,
    meter: Arc<LinkMeter>,
    packet: PacketModel,
    /// Per-byte tariff of this link (`bR` or `bS`).
    tariff: f64,
    /// `true` when the carrier meters physical traffic itself (a shard
    /// router records every per-shard exchange; a cache layer records
    /// only the exchanges that miss): `request` must not re-record the
    /// logical message on top.
    premetered: bool,
    /// Per-shard accounting when the carrier is (or fronts) a shard
    /// router.
    fleet: Option<Arc<crate::router::ShardTelemetry>>,
    /// Cache accounting when the carrier is a cache layer.
    cache: Option<crate::cache::CacheView>,
    /// Highest serving generation observed on this link (from response
    /// stamps and `Ack`s). 0 until the server goes live.
    last_generation: AtomicU64,
    /// Negotiated wire version of this link's own encode/decode. Stays
    /// `V1` on premetered carriers (a router or cache negotiates its own
    /// physical edges itself).
    wire: WireVersion,
    /// Retry/backoff discipline of this link's own physical exchanges.
    /// Off by default (one attempt, byte-identical traffic); ignored on
    /// premetered carriers, whose layers retry their own physical edges.
    retry: RetryPolicy,
    /// Sender nonce of the retry-dedup envelope (process-unique).
    dedup_nonce: u64,
    /// Batch sequence within this sender; one per `ApplyUpdates` request,
    /// identical across its retries.
    dedup_seq: AtomicU64,
}

/// Runs the `HELLO`/`ACCEPT` handshake over a carrier and returns the
/// version the link will speak. A peer that rejects or garbles the probe
/// (every v1-only server) yields [`WireVersion::V1`] — negotiation can
/// only fall back, never fail. Call sites gate on `NetConfig::wire_v2`:
/// with the flag off no probe is ever sent. The 4 handshake bytes are
/// link control and are not metered, like TCP's own connection setup.
pub fn negotiate_wire(carrier: &dyn RawExchange) -> WireVersion {
    let reply = carrier.exchange(crate::codec::encode_hello(MAX_WIRE_VERSION));
    match crate::codec::decode_accept(&reply) {
        Some(v) if v >= 2 => WireVersion::V2,
        _ => WireVersion::V1,
    }
}

impl Link {
    /// Wraps a carrier with a fresh meter.
    pub fn new(carrier: Box<dyn RawExchange>, packet: PacketModel, tariff: f64) -> Self {
        Link {
            carrier,
            meter: Arc::new(LinkMeter::new()),
            packet,
            tariff,
            premetered: false,
            fleet: None,
            cache: None,
            last_generation: AtomicU64::new(0),
            wire: WireVersion::V1,
            retry: RetryPolicy::default(),
            dedup_nonce: next_link_nonce(),
            dedup_seq: AtomicU64::new(0),
        }
    }

    /// A link to a shard fleet: the router records every physical
    /// per-shard exchange into its aggregate meter (which becomes this
    /// link's meter), so the link itself records nothing — the meter shows
    /// the scatter traffic that actually crossed the wire, not the logical
    /// request stream.
    pub fn routed(router: crate::router::ShardRouter, tariff: f64) -> Self {
        Link {
            meter: Arc::clone(router.aggregate_meter()),
            fleet: Some(Arc::clone(router.telemetry())),
            packet: router.packet(),
            carrier: Box::new(router),
            tariff,
            premetered: true,
            cache: None,
            last_generation: AtomicU64::new(0),
            wire: WireVersion::V1,
            retry: RetryPolicy::default(),
            dedup_nonce: next_link_nonce(),
            dedup_seq: AtomicU64::new(0),
        }
    }

    /// A link through a client-side cache (which may itself front a shard
    /// fleet): the layer meters only the exchanges that actually reach
    /// the server — a cache hit is not a message — so the link records
    /// nothing on top, exactly like a routed link.
    pub fn cached(layer: crate::cache::CacheLayer, tariff: f64) -> Self {
        Link {
            meter: Arc::clone(layer.meter()),
            fleet: layer.fleet().cloned(),
            cache: Some(layer.view()),
            packet: layer.packet(),
            carrier: Box::new(layer),
            tariff,
            premetered: true,
            last_generation: AtomicU64::new(0),
            wire: WireVersion::V1,
            retry: RetryPolicy::default(),
            dedup_nonce: next_link_nonce(),
            dedup_seq: AtomicU64::new(0),
        }
    }

    /// In-process link to a handler.
    pub fn in_process<H: QueryHandler + 'static>(
        handler: Arc<H>,
        packet: PacketModel,
        tariff: f64,
    ) -> Self {
        Link::new(Box::new(InProcExchange::new(handler)), packet, tariff)
    }

    /// Adopts a retry/backoff discipline for this link's own physical
    /// exchanges. With the default (off) policy every request is one
    /// attempt and the wire traffic is byte-identical to a policy-less
    /// link. On premetered carriers the policy is ignored here — the
    /// router/cache layer retries its own physical edges instead.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Issues one RPC, metering both directions (unless the carrier is a
    /// shard router or cache layer, which meters each physical exchange
    /// itself). Takes the request by reference — framing a request never
    /// requires surrendering (or cloning) its payload.
    ///
    /// When a [`RetryPolicy`] is enabled, failed attempts — the locally
    /// fabricated unavailable frame, or a reply that crossed the wire but
    /// does not decode — are re-issued up to the budget with deterministic
    /// backoff, `retried`/`abandoned` tallied on the meter. `ApplyUpdates`
    /// retries ride under the at-most-once dedup envelope (the identical
    /// `(nonce, seq)` tag on every attempt), so a duplicated delivery can
    /// never double-bump a generation or double-apply a move.
    pub fn request(&self, req: &Request) -> Response {
        let aggregate = req.is_aggregate();
        let mut encoded = encode_request_versioned(req, self.wire);
        let retrying = !self.premetered && self.retry.enabled();
        if retrying && matches!(req, Request::ApplyUpdates(_)) {
            let tag = DedupTag {
                nonce: self.dedup_nonce,
                seq: self.dedup_seq.fetch_add(1, Ordering::Relaxed),
            };
            encoded = crate::codec::wrap_dedup(tag, &encoded);
        }
        let up_len = encoded.len() as u64;
        let ctx = QuantCtx::for_request(req);
        let attempts = if retrying { self.retry.max_attempts } else { 1 };
        let mut outcome = Response::Unavailable;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.meter.record_retry();
                self.retry.sleep(attempt);
            }
            let raw = self.carrier.exchange(encoded.clone());
            if crate::codec::is_unavailable(&raw) {
                // The peer is gone and the carrier fabricated this reply
                // locally: no byte crossed the wire in either direction,
                // so the meter charges nothing. (Charging the uplink
                // *before* the exchange — the old order — left failed
                // exchanges counting bytes that were never sent.)
                outcome = Response::Unavailable;
                continue;
            }
            if !self.premetered {
                self.meter.record_request(req, up_len, &self.packet);
            }
            let len = raw.len() as u64;
            // A reply that crossed the wire but does not decode degrades
            // to the typed `Malformed` response — both directions are
            // still charged, because those bytes were real traffic (every
            // completed attempt is, including superseded ones).
            let (resp, generation) =
                decode_response_gen_ctx(raw, ctx.as_ref()).unwrap_or((Response::Malformed, 0));
            if !self.premetered {
                self.meter
                    .record_response(len, resp.object_count(), &self.packet, aggregate);
            }
            if resp == Response::Malformed {
                outcome = Response::Malformed;
                continue;
            }
            match &resp {
                Response::Ack { generation } => self
                    .last_generation
                    .fetch_max(*generation, Ordering::AcqRel),
                _ => self.last_generation.fetch_max(generation, Ordering::AcqRel),
            };
            return resp;
        }
        if retrying {
            self.meter.record_abandon();
        }
        outcome
    }

    /// Runs the version handshake over this link's own carrier and
    /// upgrades the link to whatever the peer accepted. Only meaningful
    /// for links that own their physical edge (not routed/cached ones —
    /// those layers negotiate their own edges); call sites gate on
    /// `NetConfig::wire_v2`.
    pub fn negotiate(mut self) -> Self {
        debug_assert!(
            !self.premetered,
            "premetered carriers negotiate their own physical edges"
        );
        self.wire = negotiate_wire(self.carrier.as_ref());
        self
    }

    /// The wire version this link encodes with (`V1` until a successful
    /// [`Link::negotiate`]).
    pub fn wire(&self) -> WireVersion {
        self.wire
    }

    /// Highest serving generation observed on this link so far — from
    /// response stamps and update `Ack`s. 0 while the server is frozen
    /// (frozen responses carry no stamp).
    pub fn last_generation(&self) -> u64 {
        self.last_generation.load(Ordering::Acquire)
    }

    /// This link's meter (shared; snapshot at will). For a routed link
    /// this is the router's aggregate over all shard exchanges.
    pub fn meter(&self) -> &Arc<LinkMeter> {
        &self.meter
    }

    /// Per-shard telemetry when this link fronts a fleet; `None` for a
    /// plain single-server link.
    pub fn fleet(&self) -> Option<&Arc<crate::router::ShardTelemetry>> {
        self.fleet.as_ref()
    }

    /// Cache accounting when this link runs through a client-side cache;
    /// `None` otherwise.
    pub fn cache(&self) -> Option<&crate::cache::CacheView> {
        self.cache.as_ref()
    }

    /// The link's packet model.
    pub fn packet(&self) -> PacketModel {
        self.packet
    }

    /// The link's per-byte tariff.
    pub fn tariff(&self) -> f64 {
        self.tariff
    }

    /// Monetary cost so far: `tariff × total wire bytes`.
    pub fn cost(&self) -> f64 {
        self.tariff * self.meter.snapshot().total_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::{Rect, SpatialObject};

    /// Toy handler: COUNT returns 7, WINDOW returns two fixed objects.
    struct Fixed;

    impl QueryHandler for Fixed {
        fn handle(&self, req: Request) -> Response {
            match req {
                Request::Count(_) => Response::Count(7),
                Request::Window(_) => Response::Objects(vec![
                    SpatialObject::point(1, 1.0, 1.0),
                    SpatialObject::point(2, 2.0, 2.0),
                ]),
                _ => Response::Refused,
            }
        }
    }

    fn w() -> Rect {
        Rect::from_coords(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn in_process_roundtrip_and_metering() {
        let link = Link::in_process(Arc::new(Fixed), PacketModel::default(), 1.0);
        assert_eq!(link.request(&Request::Count(w())).into_count(), 7);
        assert_eq!(link.request(&Request::Window(w())).into_objects().len(), 2);

        let s = link.meter().snapshot();
        assert_eq!(s.count_queries, 1);
        assert_eq!(s.window_queries, 1);
        assert_eq!(s.objects_received, 2);
        // 2 requests of 17 bytes each.
        assert_eq!(s.up_bytes, 2 * PacketModel::default().tb(17));
        // Count reply 9 bytes, objects reply 5 + 40 bytes.
        assert_eq!(
            s.down_bytes,
            PacketModel::default().tb(9) + PacketModel::default().tb(45)
        );
        assert_eq!(link.cost(), s.total_bytes() as f64);
    }

    #[test]
    fn channel_server_roundtrip_matches_in_process_bytes() {
        let inproc = Link::in_process(Arc::new(Fixed), PacketModel::default(), 1.0);
        inproc.request(&Request::Count(w()));
        inproc.request(&Request::Window(w()));

        let (server, handle) = ChannelServer::spawn(Arc::new(Fixed), "test");
        let remote = Link::new(Box::new(handle.connect()), PacketModel::default(), 1.0);
        remote.request(&Request::Count(w()));
        remote.request(&Request::Window(w()));

        assert_eq!(
            inproc.meter().snapshot().total_bytes(),
            remote.meter().snapshot().total_bytes(),
            "carrier must not change accounting"
        );
        drop(remote);
        drop(handle);
        assert_eq!(server.join(), 2);
    }

    #[test]
    fn begin_overlaps_requests_on_the_channel_carrier() {
        // Ship two requests split-phase before collecting either reply:
        // the server thread drains both; the completions then yield the
        // replies in issue order.
        let (server, handle) = ChannelServer::spawn(Arc::new(Fixed), "split-phase");
        let ex = handle.connect();
        let first = ex.begin(crate::codec::encode_request(&Request::Count(w())));
        let second = ex.begin(crate::codec::encode_request(&Request::Window(w())));
        let r1 = crate::codec::decode_response(first()).unwrap();
        let r2 = crate::codec::decode_response(second()).unwrap();
        assert_eq!(r1.into_count(), 7);
        assert_eq!(r2.into_objects().len(), 2);
        drop(ex);
        drop(handle);
        assert_eq!(server.join(), 2);
    }

    #[test]
    fn tariff_scales_cost() {
        let link = Link::in_process(Arc::new(Fixed), PacketModel::default(), 2.5);
        link.request(&Request::Count(w()));
        let s = link.meter().snapshot();
        assert_eq!(link.cost(), 2.5 * s.total_bytes() as f64);
    }

    #[test]
    fn refused_for_unknown() {
        let link = Link::in_process(Arc::new(Fixed), PacketModel::default(), 1.0);
        let r = link.request(&Request::CoopLevelMbrs(0));
        assert_eq!(r, Response::Refused);
    }

    #[test]
    fn garbled_frame_gets_typed_error_and_server_keeps_serving() {
        let (server, handle) = ChannelServer::spawn(Arc::new(Fixed), "garbled");
        let ex = handle.connect();
        // An unknown opcode and a truncated frame both answer R_MALFORMED
        // instead of killing the shared thread.
        for garbage in [
            Bytes::copy_from_slice(&[0xFF, 0x01]),
            Bytes::from_static(&[]),
        ] {
            let reply = ex.exchange(garbage);
            assert_eq!(
                crate::codec::decode_response(reply).unwrap(),
                Response::Malformed
            );
        }
        // The same thread still serves healthy traffic afterwards.
        let link = Link::new(Box::new(handle.connect()), PacketModel::default(), 1.0);
        assert_eq!(link.request(&Request::Count(w())).into_count(), 7);
        drop(link);
        drop(ex);
        drop(handle);
        // Garbled frames are not counted as served queries.
        assert_eq!(server.join(), 1);
    }

    #[test]
    fn in_process_garbled_frame_degrades_identically() {
        let ex = InProcExchange::new(Arc::new(Fixed));
        let reply = ex.exchange(Bytes::copy_from_slice(&[0xFF]));
        assert_eq!(
            crate::codec::decode_response(reply).unwrap(),
            Response::Malformed
        );
    }

    #[test]
    fn dropping_server_before_handles_does_not_hang() {
        let (server, handle) = ChannelServer::spawn(Arc::new(Fixed), "drop-first");
        let ex = handle.connect();
        // Handles and carriers are still alive: the old Drop joined a
        // thread whose recv loop could never disconnect.
        drop(server);
        // The surviving client degrades instead of panicking.
        let link = Link::new(Box::new(ex), PacketModel::default(), 1.0);
        assert_eq!(link.request(&Request::Count(w())), Response::Unavailable);
        drop(handle);
    }

    #[test]
    fn client_outliving_server_sees_unavailable_not_panic() {
        let (server, handle) = ChannelServer::spawn(Arc::new(Fixed), "short-lived");
        let link = Link::new(Box::new(handle.connect()), PacketModel::default(), 1.0);
        assert_eq!(link.request(&Request::Count(w())).into_count(), 7);
        drop(server);
        drop(handle);
        assert_eq!(link.request(&Request::Count(w())), Response::Unavailable);
        assert_eq!(link.request(&Request::Window(w())), Response::Unavailable);
    }

    /// Fails the first `fails` exchanges with the fabricated unavailable
    /// frame, then forwards to an in-process server.
    struct Flaky {
        fails: AtomicU64,
        inner: InProcExchange<Fixed>,
    }

    impl Flaky {
        fn failing(n: u64) -> Self {
            Flaky {
                fails: AtomicU64::new(n),
                inner: InProcExchange::new(Arc::new(Fixed)),
            }
        }
    }

    impl RawExchange for Flaky {
        fn exchange(&self, request: Bytes) -> Bytes {
            let left = self.fails.load(Ordering::SeqCst);
            if left > 0 {
                self.fails.store(left - 1, Ordering::SeqCst);
                return crate::codec::unavailable_frame();
            }
            self.inner.exchange(request)
        }
    }

    #[test]
    fn retry_recovers_from_transient_unavailability() {
        let link = Link::new(Box::new(Flaky::failing(2)), PacketModel::default(), 1.0)
            .with_retry(RetryPolicy::attempts(3));
        assert_eq!(link.request(&Request::Count(w())).into_count(), 7);
        let s = link.meter().snapshot();
        assert_eq!(s.retried, 2);
        assert_eq!(s.abandoned, 0);
        // Failed attempts never touched the wire: the meter shows exactly
        // one clean exchange.
        let clean = Link::in_process(Arc::new(Fixed), PacketModel::default(), 1.0);
        clean.request(&Request::Count(w()));
        let c = clean.meter().snapshot();
        assert_eq!(s.up_bytes, c.up_bytes);
        assert_eq!(s.down_bytes, c.down_bytes);
        assert_eq!(s.count_queries, c.count_queries);
    }

    #[test]
    fn exhausted_retries_surface_typed_unavailable_and_abandon() {
        let link = Link::new(Box::new(Flaky::failing(10)), PacketModel::default(), 1.0)
            .with_retry(RetryPolicy::attempts(3));
        assert_eq!(link.request(&Request::Count(w())), Response::Unavailable);
        let s = link.meter().snapshot();
        assert_eq!(s.retried, 2);
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.total_bytes(), 0, "no attempt completed, nothing metered");
    }

    #[test]
    fn garbled_reply_is_retried_and_both_attempts_metered() {
        /// Garbles the first reply; every frame still crosses the wire.
        struct GarbleOnce {
            garbled: AtomicU64,
            inner: InProcExchange<Fixed>,
        }
        impl RawExchange for GarbleOnce {
            fn exchange(&self, request: Bytes) -> Bytes {
                let reply = self.inner.exchange(request);
                if self.garbled.fetch_add(1, Ordering::SeqCst) == 0 {
                    crate::codec::garble_frame(&reply)
                } else {
                    reply
                }
            }
        }
        let link = Link::new(
            Box::new(GarbleOnce {
                garbled: AtomicU64::new(0),
                inner: InProcExchange::new(Arc::new(Fixed)),
            }),
            PacketModel::default(),
            1.0,
        )
        .with_retry(RetryPolicy::attempts(2));
        assert_eq!(link.request(&Request::Count(w())).into_count(), 7);
        let s = link.meter().snapshot();
        assert_eq!(s.retried, 1);
        assert_eq!(s.abandoned, 0);
        // Both attempts were real traffic (the garbled reply crossed the
        // wire too), so both are charged — and the garble preserves frame
        // length, so the two downlink charges are equal.
        assert_eq!(s.up_bytes, 2 * PacketModel::default().tb(17));
        assert_eq!(s.down_bytes, 2 * PacketModel::default().tb(9));
    }

    #[test]
    fn update_retries_carry_the_identical_dedup_envelope() {
        /// Records every request frame; fails the first exchange.
        struct Capture {
            seen: Arc<std::sync::Mutex<Vec<Bytes>>>,
            flaky: Flaky,
        }
        impl RawExchange for Capture {
            fn exchange(&self, request: Bytes) -> Bytes {
                self.seen.lock().unwrap().push(request.clone());
                self.flaky.exchange(request)
            }
        }
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let carrier = Box::new(Capture {
            seen: Arc::clone(&seen),
            flaky: Flaky::failing(1),
        });
        let link =
            Link::new(carrier, PacketModel::default(), 1.0).with_retry(RetryPolicy::attempts(2));
        // Fixed refuses updates — a typed refusal, which is a final
        // answer, not a retryable failure.
        assert_eq!(
            link.request(&Request::ApplyUpdates(vec![])),
            Response::Refused
        );
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2, "one failed attempt + one retry");
        for frame in seen.iter() {
            assert_eq!(
                frame[0],
                crate::codec::op::APPLY_UPDATES_SEQ,
                "retried updates ride the dedup envelope"
            );
        }
        assert_eq!(
            seen[0].as_ref(),
            seen[1].as_ref(),
            "every retry carries the identical (nonce, seq) tag"
        );
    }

    #[test]
    fn retry_off_sends_plain_update_frames() {
        let ex = InProcExchange::new(Arc::new(crate::testutil::ScanHandler(vec![])));
        // Without a retry budget no envelope is ever attached: the wire
        // stays byte-identical to the pre-retry protocol.
        let encoded = crate::codec::encode_request(&Request::ApplyUpdates(vec![]));
        assert_ne!(encoded[0], crate::codec::op::APPLY_UPDATES_SEQ);
        // And the server path still answers envelope frames when they do
        // arrive (a retrying client against any server).
        let tagged =
            crate::codec::wrap_dedup(crate::codec::DedupTag { nonce: 9, seq: 0 }, &encoded);
        let reply = ex.exchange(tagged);
        assert_eq!(
            crate::codec::decode_response(reply).unwrap(),
            Response::Refused,
            "ScanHandler refuses updates, tagged or not"
        );
        // An envelope wrapping anything but updates is garbage.
        let bogus = crate::codec::wrap_dedup(
            crate::codec::DedupTag { nonce: 9, seq: 1 },
            &crate::codec::encode_request(&Request::Count(w())),
        );
        assert_eq!(
            crate::codec::decode_response(ex.exchange(bogus)).unwrap(),
            Response::Malformed
        );
    }

    #[test]
    fn failed_exchange_charges_no_meter_bytes() {
        let (server, handle) = ChannelServer::spawn(Arc::new(Fixed), "meter-conservation");
        let link = Link::new(Box::new(handle.connect()), PacketModel::default(), 1.0);
        link.request(&Request::Count(w()));
        let before = link.meter().snapshot();
        drop(server);
        drop(handle);
        // Failed exchanges must not move the meter: only completed
        // exchanges count, in both directions.
        assert_eq!(link.request(&Request::Count(w())), Response::Unavailable);
        let after = link.meter().snapshot();
        assert_eq!(before.total_bytes(), after.total_bytes());
        assert_eq!(before.up_bytes, after.up_bytes);
        assert_eq!(before.down_bytes, after.down_bytes);
        assert_eq!(before.count_queries, after.count_queries);
    }
}
