//! Per-link byte accounting — the source of every number the experiments
//! report.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::packet::PacketModel;
use crate::proto::Request;

/// Atomic counters for one device↔server link.
///
/// All figures in the paper plot "Total bytes": the wire bytes (payload +
/// TCP/IP headers per Eq. 1) crossing both links in both directions. The
/// meter also keeps the query mix so reports can show *where* the bytes
/// went (aggregate statistics vs object downloads), which the paper
/// discusses qualitatively. Aggregate (COUNT / `MultiCount` / avg-area)
/// traffic is additionally metered in bytes on both directions, so the
/// batched-statistics experiments can report exactly how much of the
/// statistics overhead batching recovers.
#[derive(Debug, Default)]
pub struct LinkMeter {
    up_bytes: AtomicU64,
    down_bytes: AtomicU64,
    up_packets: AtomicU64,
    down_packets: AtomicU64,
    count_queries: AtomicU64,
    window_queries: AtomicU64,
    range_queries: AtomicU64,
    bucket_queries: AtomicU64,
    coop_queries: AtomicU64,
    objects_received: AtomicU64,
    aggregate_up_bytes: AtomicU64,
    aggregate_down_bytes: AtomicU64,
    retried: AtomicU64,
    abandoned: AtomicU64,
    failovers: AtomicU64,
    breaker_open: AtomicU64,
}

/// A point-in-time copy of a [`LinkMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkSnapshot {
    pub up_bytes: u64,
    pub down_bytes: u64,
    pub up_packets: u64,
    pub down_packets: u64,
    /// Aggregate request *messages* (one `MultiCount` batching k windows
    /// counts once — compare against per-query mode to see the saving).
    pub count_queries: u64,
    pub window_queries: u64,
    pub range_queries: u64,
    pub bucket_queries: u64,
    pub coop_queries: u64,
    pub objects_received: u64,
    /// Wire bytes of aggregate requests (uplink direction).
    pub aggregate_up_bytes: u64,
    /// Wire bytes of aggregate answers (downlink direction).
    pub aggregate_down_bytes: u64,
    /// Exchanges re-issued under a [`crate::packet::RetryPolicy`] after a
    /// failed attempt (unavailable or undecodable reply). 0 when retries
    /// are off.
    pub retried: u64,
    /// Exchanges that exhausted their retry budget and surfaced a typed
    /// error to the caller. 0 when retries are off (a first-attempt
    /// failure with no budget is not an abandonment — nothing was ever
    /// retried).
    pub abandoned: u64,
    /// Failed exchanges re-routed to a sibling replica of the same shard
    /// *before* consuming retry budget. 0 on replica-less links.
    pub failovers: u64,
    /// Circuit-breaker trips to Open observed on this edge (a half-open
    /// probe failing counts again). 0 with breakers off.
    pub breaker_open: u64,
}

impl LinkSnapshot {
    /// Total wire bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.up_bytes + self.down_bytes
    }

    /// Total queries of any kind.
    pub fn total_queries(&self) -> u64 {
        self.count_queries
            + self.window_queries
            + self.range_queries
            + self.bucket_queries
            + self.coop_queries
    }

    /// Total wire bytes spent on aggregate (statistics) traffic — the
    /// paper's `Taq` overhead, measured rather than estimated.
    pub fn aggregate_bytes(&self) -> u64 {
        self.aggregate_up_bytes + self.aggregate_down_bytes
    }

    /// Field-wise sum with another snapshot (for fleet aggregation: the
    /// sum of per-shard snapshots must equal the router's aggregate).
    pub fn plus(&self, other: &LinkSnapshot) -> LinkSnapshot {
        LinkSnapshot {
            up_bytes: self.up_bytes + other.up_bytes,
            down_bytes: self.down_bytes + other.down_bytes,
            up_packets: self.up_packets + other.up_packets,
            down_packets: self.down_packets + other.down_packets,
            count_queries: self.count_queries + other.count_queries,
            window_queries: self.window_queries + other.window_queries,
            range_queries: self.range_queries + other.range_queries,
            bucket_queries: self.bucket_queries + other.bucket_queries,
            coop_queries: self.coop_queries + other.coop_queries,
            objects_received: self.objects_received + other.objects_received,
            aggregate_up_bytes: self.aggregate_up_bytes + other.aggregate_up_bytes,
            aggregate_down_bytes: self.aggregate_down_bytes + other.aggregate_down_bytes,
            retried: self.retried + other.retried,
            abandoned: self.abandoned + other.abandoned,
            failovers: self.failovers + other.failovers,
            breaker_open: self.breaker_open + other.breaker_open,
        }
    }

    /// Difference against an earlier snapshot (for per-phase accounting).
    pub fn since(&self, earlier: &LinkSnapshot) -> LinkSnapshot {
        LinkSnapshot {
            up_bytes: self.up_bytes - earlier.up_bytes,
            down_bytes: self.down_bytes - earlier.down_bytes,
            up_packets: self.up_packets - earlier.up_packets,
            down_packets: self.down_packets - earlier.down_packets,
            count_queries: self.count_queries - earlier.count_queries,
            window_queries: self.window_queries - earlier.window_queries,
            range_queries: self.range_queries - earlier.range_queries,
            bucket_queries: self.bucket_queries - earlier.bucket_queries,
            coop_queries: self.coop_queries - earlier.coop_queries,
            objects_received: self.objects_received - earlier.objects_received,
            aggregate_up_bytes: self.aggregate_up_bytes - earlier.aggregate_up_bytes,
            aggregate_down_bytes: self.aggregate_down_bytes - earlier.aggregate_down_bytes,
            retried: self.retried - earlier.retried,
            abandoned: self.abandoned - earlier.abandoned,
            failovers: self.failovers - earlier.failovers,
            breaker_open: self.breaker_open - earlier.breaker_open,
        }
    }
}

/// Atomic hit/miss/bytes-saved counters of one link's client-side cache
/// (see `crate::cache`). Kept separate from [`LinkMeter`] deliberately:
/// the link meter records what *crossed the wire*, and its conservation
/// laws (per-shard sums equal the aggregate) must keep holding when a
/// cache answers requests that never reach any shard.
#[derive(Debug, Default)]
pub struct CacheTelemetry {
    stats_hits: AtomicU64,
    stats_misses: AtomicU64,
    window_hits: AtomicU64,
    window_misses: AtomicU64,
    probe_hits: AtomicU64,
    probe_misses: AtomicU64,
    bytes_saved: AtomicU64,
}

impl CacheTelemetry {
    pub fn new() -> Self {
        CacheTelemetry::default()
    }

    /// Records `hits` statistics entries answered locally and `misses`
    /// shipped to the server (a `MultiCount` batch contributes per entry).
    pub fn record_stats(&self, hits: u64, misses: u64) {
        self.stats_hits.fetch_add(hits, Ordering::Relaxed);
        self.stats_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Records one `WINDOW` lookup against the window tier.
    pub fn record_window(&self, hit: bool) {
        if hit {
            self.window_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.window_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one ε-RANGE probe lookup against the window tier. Kept
    /// apart from `WINDOW` lookups: probe traffic and window downloads
    /// are priced by different cost-model terms, so pooling the counters
    /// would let probe hits discount window prices they never touch.
    pub fn record_probe(&self, hit: bool) {
        if hit {
            self.probe_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.probe_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records wire bytes (both directions, packetized) that a local
    /// answer avoided putting on the link.
    pub fn record_saved(&self, bytes: u64) {
        self.bytes_saved.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counter part of a [`CacheSnapshot`]; the cache's resident-size
    /// gauges are filled in by the cache itself.
    #[allow(clippy::type_complexity)]
    pub fn counters(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.stats_hits.load(Ordering::Relaxed),
            self.stats_misses.load(Ordering::Relaxed),
            self.window_hits.load(Ordering::Relaxed),
            self.window_misses.load(Ordering::Relaxed),
            self.probe_hits.load(Ordering::Relaxed),
            self.probe_misses.load(Ordering::Relaxed),
            self.bytes_saved.load(Ordering::Relaxed),
        )
    }
}

/// A point-in-time copy of one link's cache accounting: per-link hit/miss
/// counters plus the (possibly session-shared) cache's resident gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Statistics entries (COUNT / `MultiCount` windows) answered locally.
    pub stats_hits: u64,
    /// Statistics entries that had to be shipped.
    pub stats_misses: u64,
    /// `WINDOW` requests answered from a cached superset window.
    pub window_hits: u64,
    /// `WINDOW` requests that had to be shipped.
    pub window_misses: u64,
    /// ε-RANGE probes answered from a cached superset window.
    pub probe_hits: u64,
    /// ε-RANGE probes that had to be shipped.
    pub probe_misses: u64,
    /// Wire bytes (packetized, both directions) local answers avoided.
    pub bytes_saved: u64,
    /// Windows admitted into the window tier over the cache's lifetime.
    pub insertions: u64,
    /// Windows evicted by the byte-budget LRU.
    pub evictions: u64,
    /// Bytes currently resident in the window tier.
    pub resident_bytes: u64,
}

impl CacheSnapshot {
    /// Hit rate over statistics lookups (0 when none happened).
    pub fn stats_hit_rate(&self) -> f64 {
        rate(self.stats_hits, self.stats_misses)
    }

    /// Hit rate over `WINDOW` lookups only (0 when none happened) — the
    /// rate that discounts window-download prices.
    pub fn window_hit_rate(&self) -> f64 {
        rate(self.window_hits, self.window_misses)
    }

    /// Hit rate over ε-RANGE probe lookups (0 when none happened).
    pub fn probe_hit_rate(&self) -> f64 {
        rate(self.probe_hits, self.probe_misses)
    }

    /// Overall hit rate across every tier (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        rate(
            self.stats_hits + self.window_hits + self.probe_hits,
            self.stats_misses + self.window_misses + self.probe_misses,
        )
    }

    /// Field-wise sum (for both-links accounting in reports). Resident
    /// gauges add too: the two links front different caches.
    pub fn plus(&self, other: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            stats_hits: self.stats_hits + other.stats_hits,
            stats_misses: self.stats_misses + other.stats_misses,
            window_hits: self.window_hits + other.window_hits,
            window_misses: self.window_misses + other.window_misses,
            probe_hits: self.probe_hits + other.probe_hits,
            probe_misses: self.probe_misses + other.probe_misses,
            bytes_saved: self.bytes_saved + other.bytes_saved,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            resident_bytes: self.resident_bytes + other.resident_bytes,
        }
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

impl LinkMeter {
    pub fn new() -> Self {
        LinkMeter::default()
    }

    /// Records an outgoing request of `payload` bytes.
    pub fn record_request(&self, req: &Request, payload: u64, packet: &PacketModel) {
        let wire = packet.tb(payload);
        self.up_bytes.fetch_add(wire, Ordering::Relaxed);
        self.up_packets
            .fetch_add(packet.packets(payload), Ordering::Relaxed);
        if req.is_aggregate() {
            self.aggregate_up_bytes.fetch_add(wire, Ordering::Relaxed);
        }
        let counter = match req {
            Request::Count(_) | Request::AvgArea(_) | Request::MultiCount(_) => {
                Some(&self.count_queries)
            }
            Request::Window(_) => Some(&self.window_queries),
            Request::EpsRange { .. } => Some(&self.range_queries),
            Request::BucketEpsRange { .. } => Some(&self.bucket_queries),
            Request::CoopLevelMbrs(_)
            | Request::CoopFilterByMbrs { .. }
            | Request::CoopJoinPush { .. } => Some(&self.coop_queries),
            // Updates are maintenance traffic, not a query: bytes and
            // packets are metered above, but no query-mix counter moves,
            // so join-time message accounting is undisturbed.
            Request::ApplyUpdates(_) => None,
        };
        if let Some(counter) = counter {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an incoming response of `payload` bytes carrying
    /// `objects` spatial objects. `aggregate` marks answers to aggregate
    /// requests so statistics traffic is metered in both directions.
    pub fn record_response(
        &self,
        payload: u64,
        objects: u64,
        packet: &PacketModel,
        aggregate: bool,
    ) {
        let wire = packet.tb(payload);
        self.down_bytes.fetch_add(wire, Ordering::Relaxed);
        self.down_packets
            .fetch_add(packet.packets(payload), Ordering::Relaxed);
        if aggregate {
            self.aggregate_down_bytes.fetch_add(wire, Ordering::Relaxed);
        }
        self.objects_received.fetch_add(objects, Ordering::Relaxed);
    }

    /// Records one re-issued exchange attempt (retry `k` of a request).
    pub fn record_retry(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one exchange that exhausted its retry budget.
    pub fn record_abandon(&self) {
        self.abandoned.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failover to a sibling replica after a failed exchange.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one circuit-breaker trip to Open on this edge.
    pub fn record_breaker_open(&self) {
        self.breaker_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            up_bytes: self.up_bytes.load(Ordering::Relaxed),
            down_bytes: self.down_bytes.load(Ordering::Relaxed),
            up_packets: self.up_packets.load(Ordering::Relaxed),
            down_packets: self.down_packets.load(Ordering::Relaxed),
            count_queries: self.count_queries.load(Ordering::Relaxed),
            window_queries: self.window_queries.load(Ordering::Relaxed),
            range_queries: self.range_queries.load(Ordering::Relaxed),
            bucket_queries: self.bucket_queries.load(Ordering::Relaxed),
            coop_queries: self.coop_queries.load(Ordering::Relaxed),
            objects_received: self.objects_received.load(Ordering::Relaxed),
            aggregate_up_bytes: self.aggregate_up_bytes.load(Ordering::Relaxed),
            aggregate_down_bytes: self.aggregate_down_bytes.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            breaker_open: self.breaker_open.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.up_bytes.store(0, Ordering::Relaxed);
        self.down_bytes.store(0, Ordering::Relaxed);
        self.up_packets.store(0, Ordering::Relaxed);
        self.down_packets.store(0, Ordering::Relaxed);
        self.count_queries.store(0, Ordering::Relaxed);
        self.window_queries.store(0, Ordering::Relaxed);
        self.range_queries.store(0, Ordering::Relaxed);
        self.bucket_queries.store(0, Ordering::Relaxed);
        self.coop_queries.store(0, Ordering::Relaxed);
        self.objects_received.store(0, Ordering::Relaxed);
        self.aggregate_up_bytes.store(0, Ordering::Relaxed);
        self.aggregate_down_bytes.store(0, Ordering::Relaxed);
        self.retried.store(0, Ordering::Relaxed);
        self.abandoned.store(0, Ordering::Relaxed);
        self.failovers.store(0, Ordering::Relaxed);
        self.breaker_open.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::Rect;

    #[test]
    fn records_and_snapshots() {
        let m = LinkMeter::new();
        let p = PacketModel::default();
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        m.record_request(&Request::Count(w), 17, &p);
        m.record_response(9, 0, &p, true);
        m.record_request(&Request::Window(w), 17, &p);
        m.record_response(5 + 3 * 20, 3, &p, false);

        let s = m.snapshot();
        assert_eq!(s.count_queries, 1);
        assert_eq!(s.window_queries, 1);
        assert_eq!(s.objects_received, 3);
        assert_eq!(s.up_bytes, p.tb(17) * 2);
        assert_eq!(s.down_bytes, p.tb(9) + p.tb(65));
        assert_eq!(s.total_queries(), 2);
        assert_eq!(s.total_bytes(), s.up_bytes + s.down_bytes);
        // Only the COUNT round trip is aggregate traffic.
        assert_eq!(s.aggregate_up_bytes, p.tb(17));
        assert_eq!(s.aggregate_down_bytes, p.tb(9));
        assert_eq!(s.aggregate_bytes(), p.tb(17) + p.tb(9));
    }

    #[test]
    fn multi_count_is_one_aggregate_message() {
        let m = LinkMeter::new();
        let p = PacketModel::default();
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        m.record_request(&Request::MultiCount(vec![w; 4]), 69, &p);
        m.record_response(37, 0, &p, true);
        let s = m.snapshot();
        assert_eq!(s.count_queries, 1, "one batched request, one message");
        assert_eq!(s.aggregate_bytes(), p.tb(69) + p.tb(37));
        assert_eq!(s.aggregate_bytes(), s.total_bytes());
    }

    #[test]
    fn since_subtracts() {
        let m = LinkMeter::new();
        let p = PacketModel::default();
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        m.record_request(&Request::Count(w), 17, &p);
        let s1 = m.snapshot();
        m.record_request(&Request::Count(w), 17, &p);
        let s2 = m.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.count_queries, 1);
        assert_eq!(d.up_bytes, p.tb(17));
        assert_eq!(d.aggregate_up_bytes, p.tb(17));
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = LinkMeter::new();
        let p = PacketModel::default();
        m.record_response(100, 5, &p, true);
        m.reset();
        assert_eq!(m.snapshot(), LinkSnapshot::default());
    }

    #[test]
    fn retry_counters_flow_through_plus_since_reset() {
        let m = LinkMeter::new();
        m.record_retry();
        m.record_retry();
        m.record_abandon();
        m.record_failover();
        m.record_failover();
        m.record_failover();
        m.record_breaker_open();
        let s = m.snapshot();
        assert_eq!(s.retried, 2);
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.failovers, 3);
        assert_eq!(s.breaker_open, 1);
        let doubled = s.plus(&s);
        assert_eq!(doubled.retried, 4);
        assert_eq!(doubled.abandoned, 2);
        assert_eq!(doubled.failovers, 6);
        assert_eq!(doubled.breaker_open, 2);
        assert_eq!(doubled.since(&s).retried, 2);
        assert_eq!(doubled.since(&s).failovers, 3);
        m.reset();
        assert_eq!(m.snapshot(), LinkSnapshot::default());
    }

    #[test]
    fn cache_snapshot_rates_and_sum() {
        let t = CacheTelemetry::new();
        t.record_stats(3, 1);
        t.record_window(true);
        t.record_window(false);
        t.record_probe(true);
        t.record_probe(true);
        t.record_saved(100);
        let (sh, sm, wh, wm, ph, pm, saved) = t.counters();
        let a = CacheSnapshot {
            stats_hits: sh,
            stats_misses: sm,
            window_hits: wh,
            window_misses: wm,
            probe_hits: ph,
            probe_misses: pm,
            bytes_saved: saved,
            insertions: 2,
            evictions: 1,
            resident_bytes: 500,
        };
        assert_eq!(a.stats_hit_rate(), 0.75);
        assert_eq!(a.window_hit_rate(), 0.5, "probe hits must not pollute it");
        assert_eq!(a.probe_hit_rate(), 1.0);
        assert_eq!(a.hit_rate(), 6.0 / 8.0);
        assert_eq!(CacheSnapshot::default().hit_rate(), 0.0);
        let b = a.plus(&a);
        assert_eq!(b.stats_hits, 6);
        assert_eq!(b.probe_hits, 4);
        assert_eq!(b.bytes_saved, 200);
        assert_eq!(b.resident_bytes, 1000);
        assert_eq!(b.hit_rate(), a.hit_rate());
    }

    #[test]
    fn meter_is_thread_safe() {
        let m = std::sync::Arc::new(LinkMeter::new());
        let p = PacketModel::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.record_response(10, 1, &p, false);
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.objects_received, 4000);
        assert_eq!(s.down_bytes, 4000 * p.tb(10));
    }
}
