//! Per-link byte accounting — the source of every number the experiments
//! report.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::packet::PacketModel;
use crate::proto::Request;

/// Atomic counters for one device↔server link.
///
/// All figures in the paper plot "Total bytes": the wire bytes (payload +
/// TCP/IP headers per Eq. 1) crossing both links in both directions. The
/// meter also keeps the query mix so reports can show *where* the bytes
/// went (aggregate statistics vs object downloads), which the paper
/// discusses qualitatively. Aggregate (COUNT / `MultiCount` / avg-area)
/// traffic is additionally metered in bytes on both directions, so the
/// batched-statistics experiments can report exactly how much of the
/// statistics overhead batching recovers.
#[derive(Debug, Default)]
pub struct LinkMeter {
    up_bytes: AtomicU64,
    down_bytes: AtomicU64,
    up_packets: AtomicU64,
    down_packets: AtomicU64,
    count_queries: AtomicU64,
    window_queries: AtomicU64,
    range_queries: AtomicU64,
    bucket_queries: AtomicU64,
    coop_queries: AtomicU64,
    objects_received: AtomicU64,
    aggregate_up_bytes: AtomicU64,
    aggregate_down_bytes: AtomicU64,
}

/// A point-in-time copy of a [`LinkMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkSnapshot {
    pub up_bytes: u64,
    pub down_bytes: u64,
    pub up_packets: u64,
    pub down_packets: u64,
    /// Aggregate request *messages* (one `MultiCount` batching k windows
    /// counts once — compare against per-query mode to see the saving).
    pub count_queries: u64,
    pub window_queries: u64,
    pub range_queries: u64,
    pub bucket_queries: u64,
    pub coop_queries: u64,
    pub objects_received: u64,
    /// Wire bytes of aggregate requests (uplink direction).
    pub aggregate_up_bytes: u64,
    /// Wire bytes of aggregate answers (downlink direction).
    pub aggregate_down_bytes: u64,
}

impl LinkSnapshot {
    /// Total wire bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.up_bytes + self.down_bytes
    }

    /// Total queries of any kind.
    pub fn total_queries(&self) -> u64 {
        self.count_queries
            + self.window_queries
            + self.range_queries
            + self.bucket_queries
            + self.coop_queries
    }

    /// Total wire bytes spent on aggregate (statistics) traffic — the
    /// paper's `Taq` overhead, measured rather than estimated.
    pub fn aggregate_bytes(&self) -> u64 {
        self.aggregate_up_bytes + self.aggregate_down_bytes
    }

    /// Field-wise sum with another snapshot (for fleet aggregation: the
    /// sum of per-shard snapshots must equal the router's aggregate).
    pub fn plus(&self, other: &LinkSnapshot) -> LinkSnapshot {
        LinkSnapshot {
            up_bytes: self.up_bytes + other.up_bytes,
            down_bytes: self.down_bytes + other.down_bytes,
            up_packets: self.up_packets + other.up_packets,
            down_packets: self.down_packets + other.down_packets,
            count_queries: self.count_queries + other.count_queries,
            window_queries: self.window_queries + other.window_queries,
            range_queries: self.range_queries + other.range_queries,
            bucket_queries: self.bucket_queries + other.bucket_queries,
            coop_queries: self.coop_queries + other.coop_queries,
            objects_received: self.objects_received + other.objects_received,
            aggregate_up_bytes: self.aggregate_up_bytes + other.aggregate_up_bytes,
            aggregate_down_bytes: self.aggregate_down_bytes + other.aggregate_down_bytes,
        }
    }

    /// Difference against an earlier snapshot (for per-phase accounting).
    pub fn since(&self, earlier: &LinkSnapshot) -> LinkSnapshot {
        LinkSnapshot {
            up_bytes: self.up_bytes - earlier.up_bytes,
            down_bytes: self.down_bytes - earlier.down_bytes,
            up_packets: self.up_packets - earlier.up_packets,
            down_packets: self.down_packets - earlier.down_packets,
            count_queries: self.count_queries - earlier.count_queries,
            window_queries: self.window_queries - earlier.window_queries,
            range_queries: self.range_queries - earlier.range_queries,
            bucket_queries: self.bucket_queries - earlier.bucket_queries,
            coop_queries: self.coop_queries - earlier.coop_queries,
            objects_received: self.objects_received - earlier.objects_received,
            aggregate_up_bytes: self.aggregate_up_bytes - earlier.aggregate_up_bytes,
            aggregate_down_bytes: self.aggregate_down_bytes - earlier.aggregate_down_bytes,
        }
    }
}

impl LinkMeter {
    pub fn new() -> Self {
        LinkMeter::default()
    }

    /// Records an outgoing request of `payload` bytes.
    pub fn record_request(&self, req: &Request, payload: u64, packet: &PacketModel) {
        let wire = packet.tb(payload);
        self.up_bytes.fetch_add(wire, Ordering::Relaxed);
        self.up_packets
            .fetch_add(packet.packets(payload), Ordering::Relaxed);
        if req.is_aggregate() {
            self.aggregate_up_bytes.fetch_add(wire, Ordering::Relaxed);
        }
        let counter = match req {
            Request::Count(_) | Request::AvgArea(_) | Request::MultiCount(_) => &self.count_queries,
            Request::Window(_) => &self.window_queries,
            Request::EpsRange { .. } => &self.range_queries,
            Request::BucketEpsRange { .. } => &self.bucket_queries,
            Request::CoopLevelMbrs(_)
            | Request::CoopFilterByMbrs { .. }
            | Request::CoopJoinPush { .. } => &self.coop_queries,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an incoming response of `payload` bytes carrying
    /// `objects` spatial objects. `aggregate` marks answers to aggregate
    /// requests so statistics traffic is metered in both directions.
    pub fn record_response(
        &self,
        payload: u64,
        objects: u64,
        packet: &PacketModel,
        aggregate: bool,
    ) {
        let wire = packet.tb(payload);
        self.down_bytes.fetch_add(wire, Ordering::Relaxed);
        self.down_packets
            .fetch_add(packet.packets(payload), Ordering::Relaxed);
        if aggregate {
            self.aggregate_down_bytes.fetch_add(wire, Ordering::Relaxed);
        }
        self.objects_received.fetch_add(objects, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            up_bytes: self.up_bytes.load(Ordering::Relaxed),
            down_bytes: self.down_bytes.load(Ordering::Relaxed),
            up_packets: self.up_packets.load(Ordering::Relaxed),
            down_packets: self.down_packets.load(Ordering::Relaxed),
            count_queries: self.count_queries.load(Ordering::Relaxed),
            window_queries: self.window_queries.load(Ordering::Relaxed),
            range_queries: self.range_queries.load(Ordering::Relaxed),
            bucket_queries: self.bucket_queries.load(Ordering::Relaxed),
            coop_queries: self.coop_queries.load(Ordering::Relaxed),
            objects_received: self.objects_received.load(Ordering::Relaxed),
            aggregate_up_bytes: self.aggregate_up_bytes.load(Ordering::Relaxed),
            aggregate_down_bytes: self.aggregate_down_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.up_bytes.store(0, Ordering::Relaxed);
        self.down_bytes.store(0, Ordering::Relaxed);
        self.up_packets.store(0, Ordering::Relaxed);
        self.down_packets.store(0, Ordering::Relaxed);
        self.count_queries.store(0, Ordering::Relaxed);
        self.window_queries.store(0, Ordering::Relaxed);
        self.range_queries.store(0, Ordering::Relaxed);
        self.bucket_queries.store(0, Ordering::Relaxed);
        self.coop_queries.store(0, Ordering::Relaxed);
        self.objects_received.store(0, Ordering::Relaxed);
        self.aggregate_up_bytes.store(0, Ordering::Relaxed);
        self.aggregate_down_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::Rect;

    #[test]
    fn records_and_snapshots() {
        let m = LinkMeter::new();
        let p = PacketModel::default();
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        m.record_request(&Request::Count(w), 17, &p);
        m.record_response(9, 0, &p, true);
        m.record_request(&Request::Window(w), 17, &p);
        m.record_response(5 + 3 * 20, 3, &p, false);

        let s = m.snapshot();
        assert_eq!(s.count_queries, 1);
        assert_eq!(s.window_queries, 1);
        assert_eq!(s.objects_received, 3);
        assert_eq!(s.up_bytes, p.tb(17) * 2);
        assert_eq!(s.down_bytes, p.tb(9) + p.tb(65));
        assert_eq!(s.total_queries(), 2);
        assert_eq!(s.total_bytes(), s.up_bytes + s.down_bytes);
        // Only the COUNT round trip is aggregate traffic.
        assert_eq!(s.aggregate_up_bytes, p.tb(17));
        assert_eq!(s.aggregate_down_bytes, p.tb(9));
        assert_eq!(s.aggregate_bytes(), p.tb(17) + p.tb(9));
    }

    #[test]
    fn multi_count_is_one_aggregate_message() {
        let m = LinkMeter::new();
        let p = PacketModel::default();
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        m.record_request(&Request::MultiCount(vec![w; 4]), 69, &p);
        m.record_response(37, 0, &p, true);
        let s = m.snapshot();
        assert_eq!(s.count_queries, 1, "one batched request, one message");
        assert_eq!(s.aggregate_bytes(), p.tb(69) + p.tb(37));
        assert_eq!(s.aggregate_bytes(), s.total_bytes());
    }

    #[test]
    fn since_subtracts() {
        let m = LinkMeter::new();
        let p = PacketModel::default();
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        m.record_request(&Request::Count(w), 17, &p);
        let s1 = m.snapshot();
        m.record_request(&Request::Count(w), 17, &p);
        let s2 = m.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.count_queries, 1);
        assert_eq!(d.up_bytes, p.tb(17));
        assert_eq!(d.aggregate_up_bytes, p.tb(17));
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = LinkMeter::new();
        let p = PacketModel::default();
        m.record_response(100, 5, &p, true);
        m.reset();
        assert_eq!(m.snapshot(), LinkSnapshot::default());
    }

    #[test]
    fn meter_is_thread_safe() {
        let m = std::sync::Arc::new(LinkMeter::new());
        let p = PacketModel::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.record_response(10, 1, &p, false);
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.objects_received, 4000);
        assert_eq!(s.down_bytes, 4000 * p.tb(10));
    }
}
