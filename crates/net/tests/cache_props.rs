//! Property tests for the cache's containment index: for random
//! window/query workloads, locally-filtered answers from a cached
//! superset window must equal a fresh server download (dedup-normalized),
//! including ε/2-extension derivations and degenerate (point) rectangles.
//! A second suite interleaves live update batches with the queries and
//! proves the generation-keyed cache never serves a stale answer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use asj_geom::{Point, Rect, SpatialObject};
use asj_net::cache::{CacheLayer, ClientCache};
use asj_net::codec::{encode_response_versioned, stamp_generation_versioned, WireVersion};
use asj_net::testutil::ScanHandler as Scan;
use asj_net::transport::InProcExchange;
use asj_net::{Link, PacketModel, QueryHandler, Request, Response, Update};
use bytes::BytesMut;
use proptest::prelude::*;

/// f32-representable coordinates on a coarse grid, so random rectangles
/// overlap, nest and share edges often.
fn coord() -> impl Strategy<Value = f64> {
    (-16i32..=16).prop_map(|v| (v as f32 * 0.5) as f64)
}

fn rect() -> impl Strategy<Value = Rect> {
    (coord(), coord(), coord(), coord())
        .prop_map(|(a, b, c, d)| Rect::new(Point::new(a, b), Point::new(c, d)))
}

fn object() -> impl Strategy<Value = SpatialObject> {
    (0u32..1000, rect()).prop_map(|(id, r)| SpatialObject::new(id, r))
}

fn eps() -> impl Strategy<Value = f64> {
    (0u32..16).prop_map(|v| (v as f32 * 0.25) as f64)
}

/// How a query window is derived from a base rectangle — designed to
/// produce containment relations against earlier queries.
#[derive(Debug, Clone, Copy)]
enum Derive {
    /// The base rectangle itself.
    Identity,
    /// Grown by ε/2 on every side (the executor's window extension).
    ExtendHalfEps,
    /// Shrunk by ε/2 (clamps to the center point when too small).
    ShrinkHalfEps,
    /// Collapsed to its center — a degenerate rectangle.
    Degenerate,
}

fn derive() -> impl Strategy<Value = Derive> {
    prop_oneof![
        Just(Derive::Identity),
        Just(Derive::ExtendHalfEps),
        Just(Derive::ShrinkHalfEps),
        Just(Derive::Degenerate),
    ]
}

fn apply(base: &Rect, how: Derive, eps: f64) -> Rect {
    match how {
        Derive::Identity => *base,
        Derive::ExtendHalfEps => base.expand(eps * 0.5),
        Derive::ShrinkHalfEps => base.expand(-eps * 0.5),
        Derive::Degenerate => Rect::point(base.center()),
    }
}

/// One query against both links: 0 = WINDOW, 1 = COUNT, 2 = ε-RANGE,
/// 3 = MultiCount over every base window derived the same way.
type Op = (u8, usize, Derive, f64);

fn op(bases: usize) -> impl Strategy<Value = Op> {
    (0u8..4, 0..bases, derive(), eps())
}

fn ids(mut objects: Vec<SpatialObject>) -> Vec<u32> {
    objects.sort_unstable_by_key(|o| o.id);
    objects.dedup_by_key(|o| o.id);
    objects.into_iter().map(|o| o.id).collect()
}

proptest! {
    #[test]
    fn cached_answers_equal_fresh_downloads(
        objects in prop::collection::vec(object(), 0..60),
        bases in prop::collection::vec(rect(), 1..8),
        ops in prop::collection::vec(op(8), 1..30),
        budget in prop_oneof![Just(400u64), Just(4_000u64), Just(1u64 << 20)],
    ) {
        let cached = Link::cached(
            CacheLayer::new(
                Box::new(InProcExchange::new(Arc::new(Scan(objects.clone())))),
                PacketModel::default(),
                Arc::new(ClientCache::new(budget)),
            ),
            1.0,
        );
        let plain = Link::in_process(Arc::new(Scan(objects)), PacketModel::default(), 1.0);
        for &(kind, base, how, e) in &ops {
            let w = apply(&bases[base % bases.len()], how, e);
            match kind {
                0 => {
                    let got = cached.request(&Request::Window(w)).into_objects();
                    let want = plain.request(&Request::Window(w)).into_objects();
                    prop_assert_eq!(ids(got), ids(want), "WINDOW({:?})", w);
                }
                1 => prop_assert_eq!(
                    cached.request(&Request::Count(w)).into_count(),
                    plain.request(&Request::Count(w)).into_count(),
                    "COUNT({:?})", w
                ),
                2 => {
                    let got = cached.request(&Request::EpsRange { q: w, eps: e }).into_objects();
                    let want = plain.request(&Request::EpsRange { q: w, eps: e }).into_objects();
                    prop_assert_eq!(ids(got), ids(want), "EPS({:?}, {})", w, e);
                }
                _ => {
                    let windows: Vec<Rect> =
                        bases.iter().map(|b| apply(b, how, e)).collect();
                    prop_assert_eq!(
                        cached.request(&Request::MultiCount(windows.clone())).into_counts(),
                        plain.request(&Request::MultiCount(windows)).into_counts(),
                        "MULTI({:?}, {:?})", how, e
                    );
                }
            }
        }
        // The cache may only ever delete traffic.
        prop_assert!(
            cached.meter().snapshot().total_bytes() <= plain.meter().snapshot().total_bytes()
        );
    }
}

/// Reference update semantics, shared by the live test double and the
/// offline mirror so both evolve identically: Insert/Move upsert by id,
/// Delete is a no-op when absent.
fn apply_all(objects: &mut Vec<SpatialObject>, batch: &[Update]) {
    fn upsert(objects: &mut Vec<SpatialObject>, o: SpatialObject) {
        match objects.iter_mut().find(|e| e.id == o.id) {
            Some(e) => *e = o,
            None => objects.push(o),
        }
    }
    for u in batch {
        match *u {
            Update::Insert(o) => upsert(objects, o),
            Update::Move { id, to } => upsert(objects, SpatialObject::new(id, to)),
            Update::Delete(id) => objects.retain(|o| o.id != id),
        }
    }
}

/// Live scan server: applies update batches under a lock, bumps its
/// generation per batch, and stamps every query response with it — the
/// minimal server contract the generation-keyed cache relies on.
struct LiveScan {
    objects: Mutex<Vec<SpatialObject>>,
    generation: AtomicU64,
}

impl LiveScan {
    fn new(objects: Vec<SpatialObject>) -> Self {
        LiveScan {
            objects: Mutex::new(objects),
            generation: AtomicU64::new(0),
        }
    }
}

impl QueryHandler for LiveScan {
    fn handle(&self, req: Request) -> Response {
        match req {
            Request::ApplyUpdates(batch) => {
                let mut objects = self.objects.lock().unwrap();
                apply_all(&mut objects, &batch);
                Response::Ack {
                    generation: self.generation.fetch_add(1, Ordering::AcqRel) + 1,
                }
            }
            other => Scan(self.objects.lock().unwrap().clone()).handle(other),
        }
    }

    fn handle_into(&self, req: Request, wire: WireVersion, buf: &mut BytesMut) {
        let is_update = matches!(req, Request::ApplyUpdates(_));
        let resp = self.handle(req);
        if !is_update {
            stamp_generation_versioned(self.generation.load(Ordering::Acquire), wire, buf);
        }
        // No quantization context: v2 objects ship as exact-f32 escapes,
        // which decode bit-equal to v1 without the window grid.
        encode_response_versioned(&resp, wire, None, buf);
    }
}

/// One step of the live workload: a query or an update batch.
#[derive(Debug, Clone)]
enum Step {
    Query(Op),
    Update(Vec<Update>),
}

fn update() -> impl Strategy<Value = Update> {
    prop_oneof![
        object().prop_map(Update::Insert),
        (0u32..1000).prop_map(Update::Delete),
        (0u32..1000, rect()).prop_map(|(id, to)| Update::Move { id, to }),
    ]
}

// The staleness oracle: after any interleaving of update batches and
// queries, the generation-keyed cache never serves an object set (or
// count) differing from a fresh evaluation of the server's *current*
// state — stale entries stop matching by keying alone, with no
// invalidation protocol anywhere.
proptest! {
    #[test]
    fn generation_keyed_cache_never_serves_stale_answers(
        objects in prop::collection::vec(object(), 0..40),
        bases in prop::collection::vec(rect(), 1..6),
        steps in prop::collection::vec(
            prop_oneof![
                op(6).prop_map(Step::Query),
                op(6).prop_map(Step::Query),
                op(6).prop_map(Step::Query),
                prop::collection::vec(update(), 1..8).prop_map(Step::Update),
            ],
            1..30,
        ),
        budget in prop_oneof![Just(400u64), Just(1u64 << 20)],
    ) {
        let server = Arc::new(LiveScan::new(objects.clone()));
        let cached = Link::cached(
            CacheLayer::new(
                Box::new(InProcExchange::new(Arc::clone(&server))),
                PacketModel::default(),
                Arc::new(ClientCache::new(budget)),
            ),
            1.0,
        );
        let mut mirror = objects;
        let mut batches = 0u64;
        for step in steps {
            match step {
                Step::Update(batch) => {
                    batches += 1;
                    let resp = cached.request(&Request::ApplyUpdates(batch.clone()));
                    prop_assert_eq!(resp, Response::Ack { generation: batches });
                    apply_all(&mut mirror, &batch);
                }
                Step::Query((kind, base, how, e)) => {
                    let w = apply(&bases[base % bases.len()], how, e);
                    let oracle = Scan(mirror.clone());
                    match kind {
                        0 => prop_assert_eq!(
                            ids(cached.request(&Request::Window(w)).into_objects()),
                            ids(oracle.handle(Request::Window(w)).into_objects()),
                            "WINDOW({:?}) after {} batches", w, batches
                        ),
                        1 => prop_assert_eq!(
                            cached.request(&Request::Count(w)).into_count(),
                            oracle.handle(Request::Count(w)).into_count(),
                            "COUNT({:?}) after {} batches", w, batches
                        ),
                        2 => prop_assert_eq!(
                            ids(cached.request(&Request::EpsRange { q: w, eps: e }).into_objects()),
                            ids(oracle.handle(Request::EpsRange { q: w, eps: e }).into_objects()),
                            "EPS({:?}, {}) after {} batches", w, e, batches
                        ),
                        _ => {
                            let windows: Vec<Rect> =
                                bases.iter().map(|b| apply(b, how, e)).collect();
                            prop_assert_eq!(
                                cached.request(&Request::MultiCount(windows.clone())).into_counts(),
                                oracle.handle(Request::MultiCount(windows)).into_counts(),
                                "MULTI({:?}, {}) after {} batches", how, e, batches
                            );
                        }
                    }
                }
            }
        }
        // The link heard every generation the server reached.
        prop_assert_eq!(cached.last_generation(), batches);
    }
}
