//! Property tests for the cache's containment index: for random
//! window/query workloads, locally-filtered answers from a cached
//! superset window must equal a fresh server download (dedup-normalized),
//! including ε/2-extension derivations and degenerate (point) rectangles.

use std::sync::Arc;

use asj_geom::{Point, Rect, SpatialObject};
use asj_net::cache::{CacheLayer, ClientCache};
use asj_net::testutil::ScanHandler as Scan;
use asj_net::transport::InProcExchange;
use asj_net::{Link, PacketModel, Request};
use proptest::prelude::*;

/// f32-representable coordinates on a coarse grid, so random rectangles
/// overlap, nest and share edges often.
fn coord() -> impl Strategy<Value = f64> {
    (-16i32..=16).prop_map(|v| (v as f32 * 0.5) as f64)
}

fn rect() -> impl Strategy<Value = Rect> {
    (coord(), coord(), coord(), coord())
        .prop_map(|(a, b, c, d)| Rect::new(Point::new(a, b), Point::new(c, d)))
}

fn object() -> impl Strategy<Value = SpatialObject> {
    (0u32..1000, rect()).prop_map(|(id, r)| SpatialObject::new(id, r))
}

fn eps() -> impl Strategy<Value = f64> {
    (0u32..16).prop_map(|v| (v as f32 * 0.25) as f64)
}

/// How a query window is derived from a base rectangle — designed to
/// produce containment relations against earlier queries.
#[derive(Debug, Clone, Copy)]
enum Derive {
    /// The base rectangle itself.
    Identity,
    /// Grown by ε/2 on every side (the executor's window extension).
    ExtendHalfEps,
    /// Shrunk by ε/2 (clamps to the center point when too small).
    ShrinkHalfEps,
    /// Collapsed to its center — a degenerate rectangle.
    Degenerate,
}

fn derive() -> impl Strategy<Value = Derive> {
    prop_oneof![
        Just(Derive::Identity),
        Just(Derive::ExtendHalfEps),
        Just(Derive::ShrinkHalfEps),
        Just(Derive::Degenerate),
    ]
}

fn apply(base: &Rect, how: Derive, eps: f64) -> Rect {
    match how {
        Derive::Identity => *base,
        Derive::ExtendHalfEps => base.expand(eps * 0.5),
        Derive::ShrinkHalfEps => base.expand(-eps * 0.5),
        Derive::Degenerate => Rect::point(base.center()),
    }
}

/// One query against both links: 0 = WINDOW, 1 = COUNT, 2 = ε-RANGE,
/// 3 = MultiCount over every base window derived the same way.
type Op = (u8, usize, Derive, f64);

fn op(bases: usize) -> impl Strategy<Value = Op> {
    (0u8..4, 0..bases, derive(), eps())
}

fn ids(mut objects: Vec<SpatialObject>) -> Vec<u32> {
    objects.sort_unstable_by_key(|o| o.id);
    objects.dedup_by_key(|o| o.id);
    objects.into_iter().map(|o| o.id).collect()
}

proptest! {
    #[test]
    fn cached_answers_equal_fresh_downloads(
        objects in prop::collection::vec(object(), 0..60),
        bases in prop::collection::vec(rect(), 1..8),
        ops in prop::collection::vec(op(8), 1..30),
        budget in prop_oneof![Just(400u64), Just(4_000u64), Just(1u64 << 20)],
    ) {
        let cached = Link::cached(
            CacheLayer::new(
                Box::new(InProcExchange::new(Arc::new(Scan(objects.clone())))),
                PacketModel::default(),
                Arc::new(ClientCache::new(budget)),
            ),
            1.0,
        );
        let plain = Link::in_process(Arc::new(Scan(objects)), PacketModel::default(), 1.0);
        for &(kind, base, how, e) in &ops {
            let w = apply(&bases[base % bases.len()], how, e);
            match kind {
                0 => {
                    let got = cached.request(&Request::Window(w)).into_objects();
                    let want = plain.request(&Request::Window(w)).into_objects();
                    prop_assert_eq!(ids(got), ids(want), "WINDOW({:?})", w);
                }
                1 => prop_assert_eq!(
                    cached.request(&Request::Count(w)).into_count(),
                    plain.request(&Request::Count(w)).into_count(),
                    "COUNT({:?})", w
                ),
                2 => {
                    let got = cached.request(&Request::EpsRange { q: w, eps: e }).into_objects();
                    let want = plain.request(&Request::EpsRange { q: w, eps: e }).into_objects();
                    prop_assert_eq!(ids(got), ids(want), "EPS({:?}, {})", w, e);
                }
                _ => {
                    let windows: Vec<Rect> =
                        bases.iter().map(|b| apply(b, how, e)).collect();
                    prop_assert_eq!(
                        cached.request(&Request::MultiCount(windows.clone())).into_counts(),
                        plain.request(&Request::MultiCount(windows)).into_counts(),
                        "MULTI({:?}, {:?})", how, e
                    );
                }
            }
        }
        // The cache may only ever delete traffic.
        prop_assert!(
            cached.meter().snapshot().total_bytes() <= plain.meter().snapshot().total_bytes()
        );
    }
}
