//! Property tests for the wire-v2 codec against its v1 oracle.
//!
//! Two properties pin the compact object frames:
//!
//! * **Bit-faithfulness** — for random objects and windows (degenerate
//!   rectangles, out-of-window coordinates, f32 extremes, values that
//!   only snap on the wire), the v2 decode is *bit-equal* to the v1
//!   decode of the same objects. This is the verify-else-escape
//!   contract: a coordinate ships quantized only when dequantizing
//!   reproduces, bitwise, the `f64` the v1 `f32` cast would deliver.
//! * **Density** — a v2 `Objects` frame is never larger than the v1
//!   frame **for ids below 2^20**. Both headers are 5 bytes (opcode +
//!   u32 count), and the worst-case v2 object — both axes escaped — is
//!   1 tag + delta-id varint + 16 coordinate bytes. With every id below
//!   2^20 the signed delta stays below 2^20 in magnitude, its zigzag
//!   below 2^21, so the varint is at most 3 bytes: 1 + 3 + 16 = 20 =
//!   `OBJ_BYTES`. Point objects and quantized axes only shrink from
//!   there. Beyond 2^20 the bound genuinely fails — a sequence
//!   alternating id 0 with id `u32::MAX` needs 5-byte deltas (22 > 20
//!   per object) — which is why the property documents the id range
//!   instead of claiming universality.
//!
//! A third suite round-trips the scalar v2 frames (varint counts, acks,
//! generation stamps), which have no quantization to verify but share
//! the varint primitives.

use asj_geom::{Point, Rect, SpatialObject};
use asj_net::codec::{
    decode_response, decode_response_ctx, decode_response_gen_ctx, encode_response,
    encode_response_versioned, stamp_generation_versioned, QuantCtx, WireVersion, OBJ_BYTES,
};
use asj_net::Response;
use bytes::BytesMut;
use proptest::prelude::*;

/// Grid-aligned, exactly-f32 coordinates. Windows are built from the
/// same grid as object coordinates, so objects frequently sit exactly
/// on window endpoints — exercising the cell-0/cell-65535 exactness
/// clause of the quantization contract.
fn grid_coord() -> impl Strategy<Value = f64> {
    (-16i32..=16).prop_map(|v| (v as f32 * 0.5) as f64)
}

/// Coordinates stressing every encoder branch: in-window grid values
/// (quantize), far out-of-window values and f32 extremes (escape), and
/// f64 values that are not f32-representable (snap on the wire first,
/// then quantize or escape — bit-faithfulness must hold either way).
fn wild_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        grid_coord(),
        (-16i32..=16).prop_map(|v| f64::from(v) * 1.0e6),
        Just(f64::from(f32::MAX)),
        Just(-f64::from(f32::MAX)),
        Just(f64::from(f32::MIN_POSITIVE)),
        (0u32..1000).prop_map(|v| f64::from(v) * 0.123456789),
    ]
}

/// Object geometry: a general rectangle or a degenerate point rect
/// (min == max), which takes the `V2_POINT` single-pair layout.
fn shape() -> impl Strategy<Value = Rect> {
    prop_oneof![
        (wild_coord(), wild_coord(), wild_coord(), wild_coord())
            .prop_map(|(a, b, c, d)| Rect::new(Point::new(a, b), Point::new(c, d))),
        (wild_coord(), wild_coord()).prop_map(|(x, y)| Rect::point(Point::new(x, y))),
    ]
}

/// Unrestricted ids — deltas between neighbours span the whole i64
/// zigzag range.
fn any_id() -> impl Strategy<Value = u32> {
    any::<u64>().prop_map(|v| v as u32)
}

fn object() -> impl Strategy<Value = SpatialObject> {
    (any_id(), shape()).prop_map(|(id, r)| SpatialObject::new(id, r))
}

/// Objects under the documented density bound: ids below 2^20 keep
/// every delta varint at three bytes or fewer.
fn small_id_object() -> impl Strategy<Value = SpatialObject> {
    (0u32..(1 << 20), shape()).prop_map(|(id, r)| SpatialObject::new(id, r))
}

/// Request windows, including degenerate ones: a point window has no
/// grid (`QuantCtx::new` returns `None`) and every coordinate escapes.
fn window() -> impl Strategy<Value = Rect> {
    prop_oneof![
        (grid_coord(), grid_coord(), grid_coord(), grid_coord())
            .prop_map(|(a, b, c, d)| Rect::new(Point::new(a, b), Point::new(c, d))),
        (grid_coord(), grid_coord()).prop_map(|(x, y)| Rect::point(Point::new(x, y))),
    ]
}

/// The bit pattern a decode delivered — `PartialEq` on `f64` would pass
/// `-0.0 == 0.0` and miss a byte-level divergence.
fn bits(o: &SpatialObject) -> (u32, [u64; 4]) {
    (
        o.id,
        [
            o.mbr.min.x.to_bits(),
            o.mbr.min.y.to_bits(),
            o.mbr.max.x.to_bits(),
            o.mbr.max.y.to_bits(),
        ],
    )
}

fn encode_v2(resp: &Response, ctx: Option<&QuantCtx>) -> bytes::Bytes {
    let mut buf = BytesMut::new();
    encode_response_versioned(resp, WireVersion::V2, ctx, &mut buf);
    buf.freeze()
}

proptest! {
    // Verify-else-escape, end to end: whatever the window grid makes of
    // each coordinate, the v2 decode is bit-equal to the v1 decode.
    #[test]
    fn v2_decode_is_bit_equal_to_v1_decode(
        objs in prop::collection::vec(object(), 0..80),
        win in window(),
    ) {
        let resp = Response::Objects(objs);
        let ctx = QuantCtx::new(win);
        let v1 = decode_response(encode_response(&resp)).expect("v1 decode");
        let v2 = decode_response_ctx(encode_v2(&resp, ctx.as_ref()), ctx.as_ref())
            .expect("v2 decode");
        let (Response::Objects(want), Response::Objects(got)) = (v1, v2) else {
            panic!("objects frame decoded to a non-objects response");
        };
        prop_assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            prop_assert_eq!(
                bits(w), bits(g),
                "object {} diverged bitwise under window {:?}", w.id, win
            );
        }
    }

    // The density bound (see the module docs for why ids < 2^20 is the
    // documented requirement): even with every coordinate escaping, a
    // v2 frame never exceeds the fixed-width v1 frame.
    #[test]
    fn v2_frame_never_larger_for_ids_below_2_20(
        objs in prop::collection::vec(small_id_object(), 0..80),
        win in window(),
    ) {
        let n = objs.len() as u64;
        let resp = Response::Objects(objs);
        let ctx = QuantCtx::new(win);
        let v1 = encode_response(&resp);
        let v2 = encode_v2(&resp, ctx.as_ref());
        prop_assert!(
            v2.len() <= v1.len(),
            "{n} objects: v2 frame {} bytes > v1 frame {} bytes", v2.len(), v1.len()
        );
        // Non-vacuousness: the per-object bound derivation assumed the
        // v1 frame is exactly header + 20n.
        prop_assert_eq!(v1.len() as u64, 5 + n * OBJ_BYTES);
    }

    // Scalar v2 frames and the varint generation stamp round-trip for
    // the full u64 range (no quantization involved — this pins the
    // varint primitives and the stamp-peeling envelope).
    #[test]
    fn v2_scalars_and_stamps_round_trip(
        count in any::<u64>(),
        counts in prop::collection::vec(any::<u64>(), 0..20),
        generation in any::<u64>(),
    ) {
        for resp in [
            Response::Count(count),
            Response::Counts(counts.clone()),
            Response::Ack { generation: count },
        ] {
            let mut buf = BytesMut::new();
            stamp_generation_versioned(generation, WireVersion::V2, &mut buf);
            encode_response_versioned(&resp, WireVersion::V2, None, &mut buf);
            let (got, gen) = decode_response_gen_ctx(buf.freeze(), None).expect("v2 decode");
            prop_assert_eq!(got, resp);
            prop_assert_eq!(gen, generation, "generation stamp did not survive the peel");
        }
    }
}
