//! Property tests for the wire-v2 codec against its v1 oracle.
//!
//! Two properties pin the compact object frames:
//!
//! * **Bit-faithfulness** — for random objects and windows (degenerate
//!   rectangles, out-of-window coordinates, f32 extremes, values that
//!   only snap on the wire), the v2 decode is *bit-equal* to the v1
//!   decode of the same objects. This is the verify-else-escape
//!   contract: a coordinate ships quantized only when dequantizing
//!   reproduces, bitwise, the `f64` the v1 `f32` cast would deliver.
//! * **Density** — a v2 `Objects` frame is never larger than the v1
//!   frame **for ids below 2^20**. Both headers are 5 bytes (opcode +
//!   u32 count), and the worst-case v2 object — both axes escaped — is
//!   1 tag + delta-id varint + 16 coordinate bytes. With every id below
//!   2^20 the signed delta stays below 2^20 in magnitude, its zigzag
//!   below 2^21, so the varint is at most 3 bytes: 1 + 3 + 16 = 20 =
//!   `OBJ_BYTES`. Point objects and quantized axes only shrink from
//!   there. Beyond 2^20 the bound genuinely fails — a sequence
//!   alternating id 0 with id `u32::MAX` needs 5-byte deltas (22 > 20
//!   per object) — which is why the property documents the id range
//!   instead of claiming universality.
//!
//! A third suite round-trips the scalar v2 frames (varint counts, acks,
//! generation stamps), which have no quantization to verify but share
//! the varint primitives.

use asj_geom::{Point, Rect, SpatialObject};
use asj_net::codec::{
    decode_response, decode_response_ctx, decode_response_gen_ctx, encode_response,
    encode_response_versioned, stamp_generation_versioned, QuantCtx, WireVersion, OBJ_BYTES,
};
use asj_net::Response;
use bytes::{Bytes, BytesMut};
use proptest::prelude::*;

/// Grid-aligned, exactly-f32 coordinates. Windows are built from the
/// same grid as object coordinates, so objects frequently sit exactly
/// on window endpoints — exercising the cell-0/cell-65535 exactness
/// clause of the quantization contract.
fn grid_coord() -> impl Strategy<Value = f64> {
    (-16i32..=16).prop_map(|v| (v as f32 * 0.5) as f64)
}

/// Coordinates stressing every encoder branch: in-window grid values
/// (quantize), far out-of-window values and f32 extremes (escape), and
/// f64 values that are not f32-representable (snap on the wire first,
/// then quantize or escape — bit-faithfulness must hold either way).
fn wild_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        grid_coord(),
        (-16i32..=16).prop_map(|v| f64::from(v) * 1.0e6),
        Just(f64::from(f32::MAX)),
        Just(-f64::from(f32::MAX)),
        Just(f64::from(f32::MIN_POSITIVE)),
        (0u32..1000).prop_map(|v| f64::from(v) * 0.123456789),
    ]
}

/// Object geometry: a general rectangle or a degenerate point rect
/// (min == max), which takes the `V2_POINT` single-pair layout.
fn shape() -> impl Strategy<Value = Rect> {
    prop_oneof![
        (wild_coord(), wild_coord(), wild_coord(), wild_coord())
            .prop_map(|(a, b, c, d)| Rect::new(Point::new(a, b), Point::new(c, d))),
        (wild_coord(), wild_coord()).prop_map(|(x, y)| Rect::point(Point::new(x, y))),
    ]
}

/// Unrestricted ids — deltas between neighbours span the whole i64
/// zigzag range.
fn any_id() -> impl Strategy<Value = u32> {
    any::<u64>().prop_map(|v| v as u32)
}

fn object() -> impl Strategy<Value = SpatialObject> {
    (any_id(), shape()).prop_map(|(id, r)| SpatialObject::new(id, r))
}

/// Objects under the documented density bound: ids below 2^20 keep
/// every delta varint at three bytes or fewer.
fn small_id_object() -> impl Strategy<Value = SpatialObject> {
    (0u32..(1 << 20), shape()).prop_map(|(id, r)| SpatialObject::new(id, r))
}

/// Request windows, including degenerate ones: a point window has no
/// grid (`QuantCtx::new` returns `None`) and every coordinate escapes.
fn window() -> impl Strategy<Value = Rect> {
    prop_oneof![
        (grid_coord(), grid_coord(), grid_coord(), grid_coord())
            .prop_map(|(a, b, c, d)| Rect::new(Point::new(a, b), Point::new(c, d))),
        (grid_coord(), grid_coord()).prop_map(|(x, y)| Rect::point(Point::new(x, y))),
    ]
}

/// The bit pattern a decode delivered — `PartialEq` on `f64` would pass
/// `-0.0 == 0.0` and miss a byte-level divergence.
fn bits(o: &SpatialObject) -> (u32, [u64; 4]) {
    (
        o.id,
        [
            o.mbr.min.x.to_bits(),
            o.mbr.min.y.to_bits(),
            o.mbr.max.x.to_bits(),
            o.mbr.max.y.to_bits(),
        ],
    )
}

fn encode_v2(resp: &Response, ctx: Option<&QuantCtx>) -> bytes::Bytes {
    let mut buf = BytesMut::new();
    encode_response_versioned(resp, WireVersion::V2, ctx, &mut buf);
    buf.freeze()
}

/// A deterministic LCG (Knuth's MMIX constants) for the seeded garble
/// sweep — byte positions and replacement values replay from the seed.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 33
}

/// A corpus of valid frames in both wire versions: every response shape
/// the retry loops re-decode, as v1 frames and as generation-stamped v2
/// frames, plus request frames (the server-facing decode surface).
fn garble_corpus() -> Vec<(Bytes, Option<QuantCtx>)> {
    use asj_net::codec::{encode_request_versioned, ANSWER_BYTES};
    let _ = ANSWER_BYTES; // corpus shapes mirror the costed frames
    let win = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
    let ctx = QuantCtx::new(win);
    let objs = vec![
        SpatialObject::point(1, 1.0, 1.0),
        SpatialObject::new(900, Rect::from_coords(2.0, 2.0, 1.0e7, 3.0)),
        SpatialObject::point(901, -4.5, 9.5),
    ];
    let responses = [
        Response::Objects(objs),
        Response::Count(123_456),
        Response::Counts(vec![0, 7, u64::MAX, 42]),
        Response::Ack { generation: 7 },
    ];
    let mut corpus = Vec::new();
    for resp in &responses {
        corpus.push((encode_response(resp), None));
        let mut buf = BytesMut::new();
        stamp_generation_versioned(9, WireVersion::V2, &mut buf);
        encode_response_versioned(resp, WireVersion::V2, ctx.as_ref(), &mut buf);
        corpus.push((buf.freeze(), ctx));
    }
    for req in [
        asj_net::Request::Count(win),
        asj_net::Request::Window(win),
        asj_net::Request::MultiCount(vec![win, win]),
    ] {
        for wire in [WireVersion::V1, WireVersion::V2] {
            corpus.push((encode_request_versioned(&req, wire), None));
        }
    }
    corpus
}

/// The seeded garble sweep: 10 000 LCG-mutated valid frames (v1 and v2,
/// responses and requests) must decode to a typed error or a value —
/// never panic. The injected-garble marker specifically must *never*
/// silently decode to a valid value, and truncating any frame anywhere
/// is always caught.
#[test]
fn seeded_garble_sweep_decodes_typed_or_errors_never_panics() {
    use asj_net::codec::{decode_request_versioned, garble_frame, is_injected_garble};
    let corpus = garble_corpus();
    let mut state = 0x5eed_0dd5_u64;
    let (mut ok, mut err) = (0u64, 0u64);
    for _ in 0..10_000 {
        let (frame, ctx) = &corpus[lcg(&mut state) as usize % corpus.len()];
        let mut bytes = frame.to_vec();
        let pos = lcg(&mut state) as usize % bytes.len();
        bytes[pos] = lcg(&mut state) as u8;
        let mutated = Bytes::from(bytes);
        // Both decode surfaces must stay total on the mutated frame: the
        // client-side response path and the server-side request path.
        let as_resp = decode_response_gen_ctx(mutated.clone(), ctx.as_ref());
        let as_req = decode_request_versioned(mutated);
        match (as_resp.is_ok(), as_req.is_ok()) {
            (false, false) => err += 1,
            _ => ok += 1,
        }
    }
    assert_eq!(ok + err, 10_000);
    assert!(err > 1_000, "the sweep must actually reach the decoders");
    assert!(ok > 0, "some single-byte mutations stay well-formed");

    for (frame, ctx) in &corpus {
        // The injected-garble marker (byte 0 stamped) can never silently
        // decode to a different valid value — it is always a typed error.
        let garbled = garble_frame(frame);
        assert!(is_injected_garble(&garbled));
        assert!(decode_response_gen_ctx(garbled.clone(), ctx.as_ref()).is_err());
        assert!(decode_request_versioned(garbled).is_err());
        // Every truncation — the frame cut short at *any* length, the
        // single-byte tail loss included — leaves a frame both decoders
        // reject: no strict prefix of a valid frame is itself valid.
        for len in 0..frame.len() {
            let truncated = frame.slice(0..len);
            assert!(
                decode_response_gen_ctx(truncated.clone(), ctx.as_ref()).is_err()
                    && decode_request_versioned(truncated).is_err(),
                "a {len}-byte prefix of a {}-byte frame must not decode",
                frame.len()
            );
        }
    }
}

proptest! {
    // Verify-else-escape, end to end: whatever the window grid makes of
    // each coordinate, the v2 decode is bit-equal to the v1 decode.
    #[test]
    fn v2_decode_is_bit_equal_to_v1_decode(
        objs in prop::collection::vec(object(), 0..80),
        win in window(),
    ) {
        let resp = Response::Objects(objs);
        let ctx = QuantCtx::new(win);
        let v1 = decode_response(encode_response(&resp)).expect("v1 decode");
        let v2 = decode_response_ctx(encode_v2(&resp, ctx.as_ref()), ctx.as_ref())
            .expect("v2 decode");
        let (Response::Objects(want), Response::Objects(got)) = (v1, v2) else {
            panic!("objects frame decoded to a non-objects response");
        };
        prop_assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            prop_assert_eq!(
                bits(w), bits(g),
                "object {} diverged bitwise under window {:?}", w.id, win
            );
        }
    }

    // The density bound (see the module docs for why ids < 2^20 is the
    // documented requirement): even with every coordinate escaping, a
    // v2 frame never exceeds the fixed-width v1 frame.
    #[test]
    fn v2_frame_never_larger_for_ids_below_2_20(
        objs in prop::collection::vec(small_id_object(), 0..80),
        win in window(),
    ) {
        let n = objs.len() as u64;
        let resp = Response::Objects(objs);
        let ctx = QuantCtx::new(win);
        let v1 = encode_response(&resp);
        let v2 = encode_v2(&resp, ctx.as_ref());
        prop_assert!(
            v2.len() <= v1.len(),
            "{n} objects: v2 frame {} bytes > v1 frame {} bytes", v2.len(), v1.len()
        );
        // Non-vacuousness: the per-object bound derivation assumed the
        // v1 frame is exactly header + 20n.
        prop_assert_eq!(v1.len() as u64, 5 + n * OBJ_BYTES);
    }

    // Scalar v2 frames and the varint generation stamp round-trip for
    // the full u64 range (no quantization involved — this pins the
    // varint primitives and the stamp-peeling envelope).
    #[test]
    fn v2_scalars_and_stamps_round_trip(
        count in any::<u64>(),
        counts in prop::collection::vec(any::<u64>(), 0..20),
        generation in any::<u64>(),
    ) {
        for resp in [
            Response::Count(count),
            Response::Counts(counts.clone()),
            Response::Ack { generation: count },
        ] {
            let mut buf = BytesMut::new();
            stamp_generation_versioned(generation, WireVersion::V2, &mut buf);
            encode_response_versioned(&resp, WireVersion::V2, None, &mut buf);
            let (got, gen) = decode_response_gen_ctx(buf.freeze(), None).expect("v2 decode");
            prop_assert_eq!(got, resp);
            prop_assert_eq!(gen, generation, "generation stamp did not survive the peel");
        }
    }
}
