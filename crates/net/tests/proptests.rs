//! Property tests: wire codec round-trips and packet-model laws.

use asj_geom::{Point, Rect, SpatialObject};
use asj_net::codec::{decode_request, decode_response, encode_request, encode_response};
use asj_net::{PacketModel, Request, Response};
use proptest::prelude::*;

/// f32-representable coordinates — the generator invariant the codec
/// documents.
fn coord() -> impl Strategy<Value = f64> {
    (-10_000i32..=10_000).prop_map(|v| (v as f32 * 0.25) as f64)
}

fn rect() -> impl Strategy<Value = Rect> {
    (coord(), coord(), coord(), coord())
        .prop_map(|(a, b, c, d)| Rect::new(Point::new(a, b), Point::new(c, d)))
}

fn object() -> impl Strategy<Value = SpatialObject> {
    (any::<u32>(), rect()).prop_map(|(id, r)| SpatialObject::new(id, r))
}

fn eps() -> impl Strategy<Value = f64> {
    (0u32..40_000).prop_map(|v| (v as f32 * 0.25) as f64)
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        rect().prop_map(Request::Window),
        rect().prop_map(Request::Count),
        rect().prop_map(Request::AvgArea),
        prop::collection::vec(rect(), 0..20).prop_map(Request::MultiCount),
        (rect(), eps()).prop_map(|(q, eps)| Request::EpsRange { q, eps }),
        (prop::collection::vec(object(), 0..20), eps())
            .prop_map(|(probes, eps)| Request::BucketEpsRange { probes, eps }),
        any::<u8>().prop_map(Request::CoopLevelMbrs),
        (prop::collection::vec(rect(), 0..20), eps())
            .prop_map(|(mbrs, eps)| Request::CoopFilterByMbrs { mbrs, eps }),
        (prop::collection::vec(object(), 0..20), eps())
            .prop_map(|(objects, eps)| Request::CoopJoinPush { objects, eps }),
    ]
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        prop::collection::vec(object(), 0..30).prop_map(Response::Objects),
        any::<u64>().prop_map(Response::Count),
        prop::collection::vec(any::<u64>(), 0..20).prop_map(Response::Counts),
        (0u32..1_000_000).prop_map(|a| Response::Area(a as f64 * 0.5)),
        prop::collection::vec(prop::collection::vec(object(), 0..6), 0..10)
            .prop_map(Response::Buckets),
        prop::collection::vec(rect(), 0..30).prop_map(Response::Rects),
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..30).prop_map(Response::Pairs),
        Just(Response::Refused),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(req in request()) {
        let back = decode_request(encode_request(&req)).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrip(resp in response()) {
        let back = decode_response(encode_response(&resp)).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn truncation_never_panics(req in request(), cut in 0usize..64) {
        let bytes = encode_request(&req);
        let cut = cut.min(bytes.len().saturating_sub(1));
        // Must error or produce *some* request — never panic.
        let _ = decode_request(bytes.slice(0..cut));
    }

    #[test]
    fn tb_laws(payload in 0u64..1_000_000, mtu in 100u32..9000, bh in 1u32..60) {
        prop_assume!(mtu > bh);
        let m = PacketModel::new(mtu, bh);
        let tb = m.tb(payload);
        // Never less than payload + one header; overhead bounded by
        // header per packet.
        prop_assert!(tb >= payload + bh as u64);
        prop_assert_eq!(tb, payload + m.packets(payload) * bh as u64);
        // Monotone in payload.
        prop_assert!(m.tb(payload + 1) >= tb);
        // Packets = ceil(payload / capacity), at least 1.
        let cap = (mtu - bh) as u64;
        prop_assert_eq!(m.packets(payload), payload.div_ceil(cap).max(1));
    }

    #[test]
    fn bigger_mtu_never_costs_more(payload in 0u64..500_000, a in 100u32..1500, b in 100u32..1500) {
        let (small, large) = (a.min(b), a.max(b));
        prop_assume!(small > 40);
        let ms = PacketModel::new(small, 40);
        let ml = PacketModel::new(large, 40);
        prop_assert!(ml.tb(payload) <= ms.tb(payload));
    }
}
