//! One entry per figure of the paper, plus ablations.

use crate::runner::{rail_rows, run_sweep, synthetic_rows, AlgoKind, AlgoSpec, SweepConfig};
use crate::table::Table;

/// A reproducible experiment: a named sweep bound to a figure.
pub struct Experiment {
    /// Identifier (CLI subcommand / CSV filename).
    pub id: &'static str,
    /// Which figure of the paper it regenerates.
    pub figure: &'static str,
    /// What the paper observed — the shape this run is checked against.
    pub expectation: &'static str,
    algos: Vec<AlgoSpec>,
    rail: bool,
    tweak: fn(&mut SweepConfig),
    /// Invariant checked on every run (CI included), so the property an
    /// experiment exists to demonstrate can't silently rot.
    check: fn(&Table),
}

impl Experiment {
    /// Runs the sweep with `seeds` repeats, returning the rendered table.
    pub fn run(&self, seeds: u64) -> Table {
        self.run_sized(seeds, None)
    }

    /// Runs the sweep with an optional dataset-size override — the tiny
    /// configuration CI exercises so the bench pipeline can't silently rot.
    pub fn run_sized(&self, seeds: u64, n_points: Option<usize>) -> Table {
        let mut cfg = SweepConfig {
            seeds,
            ..SweepConfig::default()
        };
        (self.tweak)(&mut cfg);
        if let Some(n) = n_points {
            cfg.n_points = n;
        }
        if self.algos.iter().any(|a| a.kind == AlgoKind::Semi) {
            cfg.cooperative = true;
        }
        let rows = if self.rail {
            rail_rows()
        } else {
            synthetic_rows()
        };
        let result = run_sweep(&rows, &self.algos, &cfg);
        let table = Table::new(format!("{} — {}", self.id, self.figure), "clusters", result);
        (self.check)(&table);
        table
    }
}

fn no_tweak(_: &mut SweepConfig) {}

fn no_check(_: &Table) {}

/// Every `+cc` column must spend at most the aggregate bytes of its
/// uncached sibling — the cache can only delete statistics traffic, and
/// the ablation exists to show it does.
fn check_cached_columns_save_agg_bytes(t: &Table) {
    for (ci, label) in t.result.algos.iter().enumerate() {
        let Some(base) = label.strip_suffix("+cc") else {
            continue;
        };
        let bi = t
            .result
            .algos
            .iter()
            .position(|a| a == base)
            .unwrap_or_else(|| panic!("no uncached sibling column for {label}"));
        for (row, cells) in t.result.rows.iter().zip(&t.result.cells) {
            assert!(
                cells[ci].mean_agg_bytes <= cells[bi].mean_agg_bytes,
                "{label} row {row}: {} aggregate bytes exceed uncached {}",
                cells[ci].mean_agg_bytes,
                cells[bi].mean_agg_bytes
            );
            assert!(
                cells[ci].mean_pairs == cells[bi].mean_pairs,
                "{label} row {row}: cached results diverged"
            );
        }
    }
}

/// Every `+v2` column must (a) return the exact same join pairs, (b)
/// never inflate the statistics traffic, and (c) wherever the v1
/// sibling's bill is download-dominated — object payload ≥ 85 % of its
/// total — cut total wire bytes to at most 60 %: the compact v2 object
/// frames (POINT tag halves every point, delta-varint ids,
/// quantized-or-escaped coordinates) carry exactly that stream. Columns
/// whose plans avoid downloads (SrJoin/UpJoin on clustered rows answer
/// almost entirely with packet-header-dominated COUNTs) have nothing
/// for v2 to compact, so the 40 %-saved bound is asserted only where it
/// is physical. No total-bytes bound is asserted on the adaptive
/// columns at all: their cost model prices objects at the v2 density,
/// so they may legally pick *different plans* than the v1 sibling —
/// occasionally worse in hindsight on a tiny row, exactly like any
/// estimate-driven gamble — while the result stays pair-identical.
fn check_v2_columns_compact_bytes(t: &Table) {
    let mut bound_fired = false;
    for (ci, label) in t.result.algos.iter().enumerate() {
        let Some(base) = label.strip_suffix("+v2") else {
            continue;
        };
        let bi = t
            .result
            .algos
            .iter()
            .position(|a| a == base)
            .unwrap_or_else(|| panic!("no v1 sibling column for {label}"));
        for (row, cells) in t.result.rows.iter().zip(&t.result.cells) {
            let v1_object_payload = cells[bi].mean_objects * asj_net::codec::OBJ_BYTES as f64;
            if v1_object_payload >= 0.85 * cells[bi].mean_bytes {
                bound_fired = true;
                assert!(
                    cells[ci].mean_bytes <= 0.6 * cells[bi].mean_bytes,
                    "{label} row {row}: v2 {} vs v1 {} total bytes — less than 40% saved \
                     on a download-dominated column",
                    cells[ci].mean_bytes,
                    cells[bi].mean_bytes
                );
            }
            assert!(
                cells[ci].mean_agg_bytes <= cells[bi].mean_agg_bytes,
                "{label} row {row}: v2 statistics traffic grew ({} vs {})",
                cells[ci].mean_agg_bytes,
                cells[bi].mean_agg_bytes
            );
            assert_eq!(
                cells[ci].mean_pairs, cells[bi].mean_pairs,
                "{label} row {row}: v2 changed join results"
            );
        }
    }
    assert!(
        bound_fired,
        "no download-dominated column anywhere — the 40%-saved bound never ran"
    );
}

/// Every column of a live sweep replays the same pinned movement
/// history, so — whatever the algorithm, shard count or cache — the
/// session's summed pair count must agree everywhere: updates may change
/// *what* the join returns, never differently per column.
fn check_live_columns_agree(t: &Table) {
    for (row, cells) in t.result.rows.iter().zip(&t.result.cells) {
        let expect = cells[0].mean_pairs;
        for (label, c) in t.result.algos.iter().zip(cells) {
            assert_eq!(
                c.mean_pairs, expect,
                "{label} row {row}: live columns diverged ({} vs {expect} pairs)",
                c.mean_pairs
            );
        }
    }
}

/// All experiments, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig6a",
            figure: "Figure 6(a): tuning α for UpJoin (total bytes vs clusters)",
            expectation: "Small α over-partitions; large α misses empty areas; α=0.25 balanced. \
                          NOTE: with the sampling-noise floor (DESIGN.md §5) α only binds for \
                          windows of ≳(12/α)² objects, so this sweep uses the 35 K rail \
                          workload; on 1 K-point synthetic data all α in the paper's range \
                          behave identically.",
            algos: vec![
                AlgoKind::Up {
                    alpha: 0.15,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Up {
                    alpha: 0.20,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Up {
                    alpha: 0.30,
                    confirm_random: true,
                }
                .into(),
            ],
            rail: true,
            tweak: |c| c.bucket = true,
            check: no_check,
        },
        Experiment {
            id: "fig6b",
            figure: "Figure 6(b): tuning ρ for SrJoin (total bytes vs clusters)",
            expectation: "ρ=100% over-partitions uniform datasets (k=128 spike); ρ=30% fits \
                          uniform data and wins overall.",
            algos: vec![
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoKind::Sr { rho: 0.50 }.into(),
                AlgoKind::Sr { rho: 1.00 }.into(),
                AlgoKind::Sr { rho: 2.00 }.into(),
                AlgoKind::Sr { rho: 3.50 }.into(),
            ],
            rail: false,
            tweak: no_tweak,
            check: no_check,
        },
        Experiment {
            id: "fig7a",
            figure: "Figure 7(a): srJoin vs upJoin vs mobiJoin, buffer = 100 points",
            expectation: "All similar on skewed data; at k=128 UpJoin deteriorates \
                          (over-partitions uniform data) and SrJoin is best.",
            algos: vec![
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Mobi.into(),
            ],
            rail: false,
            tweak: |c| c.buffer = 100,
            check: no_check,
        },
        Experiment {
            id: "fig7b",
            figure: "Figure 7(b): srJoin vs upJoin vs mobiJoin, buffer = 800 points",
            expectation: "MobiJoin degrades on skewed data (the Fig. 2 pathologies); UpJoin \
                          best on skew; SrJoin balanced; MobiJoin fine at k=128.",
            algos: vec![
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Mobi.into(),
            ],
            rail: false,
            tweak: |c| c.buffer = 800,
            check: no_check,
        },
        Experiment {
            id: "fig8a",
            figure: "Figure 8(a): real rail data (35 K) ⋈ 1 K synthetic, bucket versions",
            expectation: "MobiJoin performs poorly (chooses NLSJ most of the time); UpJoin and \
                          SrJoin clearly cheaper, especially on skewed data.",
            algos: vec![
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Mobi.into(),
            ],
            rail: true,
            tweak: |c| c.bucket = true,
            check: no_check,
        },
        Experiment {
            id: "fig8b",
            figure: "Figure 8(b): upJoin/srJoin vs semiJoin on the rail data",
            expectation: "UpJoin/SrJoin cheaper on skewed data; SemiJoin wins on uniform data \
                          (its MBR-level cost is flat; object transfer varies with skew).",
            algos: vec![
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoKind::Semi.into(),
            ],
            rail: true,
            tweak: |c| c.bucket = true,
            check: no_check,
        },
        Experiment {
            id: "ablation-baselines",
            figure: "Ablation (ours): naive & fixed-grid baselines vs the adaptive algorithms",
            expectation: "Grid downloads everything non-empty; adaptive algorithms prune far \
                          below it on skewed data.",
            algos: vec![
                AlgoKind::Grid { k: 8 }.into(),
                AlgoKind::Mobi.into(),
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Sr { rho: 0.30 }.into(),
            ],
            rail: false,
            tweak: |c| c.buffer = 2500, // lets naive-ish grid cells fit
            check: no_check,
        },
        Experiment {
            id: "ablation-bucket",
            figure: "Ablation (ours): one-by-one vs bucket NLSJ (upJoin, buffer 100)",
            expectation: "Bucket submission amortizes per-probe TCP headers; totals drop \
                          wherever NLSJ fires.",
            algos: vec![AlgoKind::Up {
                alpha: 0.25,
                confirm_random: true,
            }
            .into()],
            rail: false,
            tweak: |c| {
                c.buffer = 100;
                c.bucket = true;
            },
            check: no_check,
        },
        Experiment {
            id: "ablation-confirm",
            figure: "Ablation (ours): UpJoin with/without the confirming random COUNT",
            expectation: "Without confirmation, centered clusters get mislabelled uniform and \
                          HBSJ fires early — cheaper sometimes, riskier on Gaussian data.",
            algos: vec![
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: false,
                }
                .into(),
            ],
            rail: false,
            tweak: no_tweak,
            check: no_check,
        },
        Experiment {
            id: "ablation-batched-stats",
            figure: "Ablation (ours): per-query COUNT vs batched MultiCount statistics, \
                     buffer 100",
            expectation: "Each repartitioning round's 2k² COUNT round trips collapse into \
                          one MultiCount per server; the small buffer makes every run \
                          split-heavy, so the batched columns (+mc) recover most of the \
                          Fig. 7 statistics overhead (compare mean_agg_bytes in the CSV) \
                          with identical join results.",
            algos: vec![
                AlgoKind::Mobi.into(),
                AlgoSpec::batched(AlgoKind::Mobi),
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoSpec::batched(AlgoKind::Sr { rho: 0.30 }),
            ],
            rail: false,
            tweak: |c| c.buffer = 100,
            check: no_check,
        },
        Experiment {
            id: "shard-scaling",
            figure: "Scaling (ours): scatter-gather shard fleets, N ∈ {1, 2, 4, 7} per side",
            expectation: "Join results identical at every shard count. Aggregate bytes grow \
                          mildly with N (per-shard query framing); mean_shard_bytes falls \
                          roughly as 1/N (the fleet shares the load); pruning_rate rises on \
                          skewed rows as more shard bounds miss the windows. The +s1 column \
                          is byte-identical to the flat one (the router is a transparent \
                          proxy at N = 1).",
            algos: vec![
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoSpec::sharded(AlgoKind::Sr { rho: 0.30 }, 1),
                AlgoSpec::sharded(AlgoKind::Sr { rho: 0.30 }, 2),
                AlgoSpec::sharded(AlgoKind::Sr { rho: 0.30 }, 4),
                AlgoSpec::sharded(AlgoKind::Sr { rho: 0.30 }, 7),
            ],
            rail: false,
            tweak: no_tweak,
            check: no_check,
        },
        Experiment {
            id: "cache-ablation",
            figure: "Ablation (ours): client-side statistics/window cache, 3-join session, \
                     buffer 100",
            expectation: "Each sample runs a session of 3 correlated joins against one \
                          deployment. The +cc columns answer repeated COUNTs from the exact \
                          statistics tier and contained windows from the LRU window tier, so \
                          mean_agg_bytes and mean_queries drop sharply (joins 2–3 are mostly \
                          hits; see mean_saved_bytes / cache_hit_rate in the CSV) with \
                          identical join results; the uncached columns re-pay the full \
                          session. Asserted on every run: +cc aggregate bytes never exceed \
                          the uncached sibling's.",
            algos: vec![
                AlgoKind::Mobi.into(),
                AlgoSpec::cached(AlgoKind::Mobi),
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoSpec::cached(AlgoKind::Sr { rho: 0.30 }),
            ],
            rail: false,
            tweak: |c| {
                c.buffer = 100;
                c.session = 3;
            },
            check: check_cached_columns_save_agg_bytes,
        },
        Experiment {
            id: "live-update",
            figure: "Live updates (ours): joins racing a moving fleet, 3-join session, \
                     1 trajectory tick between joins",
            expectation: "Each sample interleaves pinned-seed Move batches with the session's \
                          joins: the deployments are live (generational stores), responses \
                          carry generation stamps, and the cache keys by epoch. Flat, 4-shard \
                          and cached columns replay the same movement history, so their \
                          summed pair counts must be identical — asserted on every run. \
                          Bytes rise slightly over the frozen session (update traffic is \
                          metered like any other message).",
            algos: vec![
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoSpec::sharded(AlgoKind::Sr { rho: 0.30 }, 4),
                AlgoSpec::cached(AlgoKind::Sr { rho: 0.30 }),
                AlgoKind::Mobi.into(),
            ],
            rail: false,
            tweak: |c| {
                c.session = 3;
                c.live_ticks = 1;
            },
            check: check_live_columns_agree,
        },
        Experiment {
            id: "codec-v2",
            figure: "Ablation (ours): wire protocol v1 vs v2 (compact object frames), \
                     buffer 2500",
            expectation: "The +v2 columns negotiate per-link protocol v2: object streams \
                          ship delta-varint ids and u16 coordinates quantized against the \
                          request window (exact-f32 escapes keep decodes bit-equal), so on \
                          this window-heavy configuration total bytes fall by at least 40 % \
                          with identical join pairs. Statistics traffic is packet-header \
                          dominated and barely moves — varint scalar frames only — so the \
                          check pins it to never exceed the v1 sibling. Asserted on every \
                          run.",
            algos: vec![
                AlgoKind::Naive.into(),
                AlgoSpec::v2(AlgoKind::Naive),
                AlgoKind::Mobi.into(),
                AlgoSpec::v2(AlgoKind::Mobi),
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoSpec::v2(AlgoKind::Sr { rho: 0.30 }),
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoSpec::v2(AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }),
            ],
            rail: false,
            tweak: |c| c.buffer = 2500, // window-heavy: downloads dominate
            check: check_v2_columns_compact_bytes,
        },
        Experiment {
            id: "ablation-mtu",
            figure: "Ablation (ours): dial-up MTU (576) sensitivity, buffer 800",
            expectation: "Smaller MTU inflates everything; algorithms that send many small \
                          queries (NLSJ-heavy plans) suffer disproportionately.",
            algos: vec![
                AlgoKind::Sr { rho: 0.30 }.into(),
                AlgoKind::Up {
                    alpha: 0.25,
                    confirm_random: true,
                }
                .into(),
                AlgoKind::Mobi.into(),
            ],
            rail: false,
            tweak: |c| c.net = asj_net::NetConfig::dialup(),
            check: no_check,
        },
    ]
}

/// Finds an experiment by CLI id.
pub fn experiment_by_name(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_every_figure() {
        let ids: Vec<_> = all_experiments().iter().map(|e| e.id).collect();
        for wanted in [
            "fig6a",
            "fig6b",
            "fig7a",
            "fig7b",
            "fig8a",
            "fig8b",
            "ablation-batched-stats",
            "shard-scaling",
            "cache-ablation",
            "live-update",
            "codec-v2",
        ] {
            assert!(ids.contains(&wanted), "missing {wanted}");
        }
        assert!(experiment_by_name("fig7b").is_some());
        assert!(experiment_by_name("nope").is_none());
    }

    #[test]
    fn smoke_run_shard_scaling_one_seed_one_row() {
        // Tiny configuration: the flat and +s1 columns must be
        // byte-identical, and the pruning-rate column populated for real
        // fleets.
        let exp = experiment_by_name("shard-scaling").unwrap();
        let t = exp.run_sized(1, Some(150));
        assert_eq!(
            t.result.algos,
            vec!["srJoin", "srJoin+s1", "srJoin+s2", "srJoin+s4", "srJoin+s7"]
        );
        for row in &t.result.cells {
            assert_eq!(
                row[0].mean_bytes, row[1].mean_bytes,
                "1-shard fleet must be byte-identical to flat"
            );
            for c in row {
                assert_eq!(c.mean_pairs, row[0].mean_pairs, "results identical");
            }
        }
        let csv = t.to_csv();
        assert!(csv.contains("mean_shard_bytes"));
        assert!(csv.contains("pruning_rate"));
    }

    #[test]
    fn smoke_run_cache_ablation_tiny() {
        // The tiny CI configuration; `run_sized` already enforces the
        // agg-bytes invariant via the experiment's check hook. On top,
        // pin the headline claim: the split-heavy MobiJoin session saves
        // at least 20 % of its aggregate bytes and sends fewer messages.
        let exp = experiment_by_name("cache-ablation").unwrap();
        let t = exp.run_sized(2, Some(150));
        assert_eq!(
            t.result.algos,
            vec!["mobiJoin", "mobiJoin+cc", "srJoin", "srJoin+cc"]
        );
        for (row, cells) in t.result.rows.iter().zip(&t.result.cells) {
            let (plain, cached) = (cells[0], cells[1]);
            assert!(
                cached.mean_agg_bytes <= 0.8 * plain.mean_agg_bytes,
                "row {row}: cached {} vs plain {} aggregate bytes — less than 20% saved",
                cached.mean_agg_bytes,
                plain.mean_agg_bytes
            );
            assert!(
                cached.mean_queries < plain.mean_queries,
                "row {row}: the cached session must send fewer messages"
            );
        }
        let csv = t.to_csv();
        assert!(csv.contains("mean_saved_bytes"));
        assert!(csv.contains("cache_hit_rate"));
    }

    #[test]
    fn smoke_run_live_update_tiny() {
        // The tiny CI configuration; `run_sized` already enforces the
        // columns-agree invariant via the check hook. On top, pin that
        // the sweep really went live: sessions total more pairs than one
        // frozen join (they sum 3 joins) and every cell carries bytes.
        let exp = experiment_by_name("live-update").unwrap();
        let t = exp.run_sized(1, Some(150));
        assert_eq!(
            t.result.algos,
            vec!["srJoin", "srJoin+s4", "srJoin+cc", "mobiJoin"]
        );
        for row in &t.result.cells {
            for c in row {
                assert!(c.mean_bytes > 0.0);
            }
        }
        // Individual rows may legitimately join to nothing at the tiny
        // size, but the sweep as a whole must produce results.
        let total: f64 = t.result.cells.iter().map(|row| row[0].mean_pairs).sum();
        assert!(total > 0.0, "no pairs anywhere in the live sweep");
    }

    #[test]
    fn smoke_run_codec_v2_tiny() {
        // The tiny CI configuration; `run_sized` already enforces the
        // ≥ 40 %-saved / identical-pairs invariant via the check hook.
        // On top, pin the column layout and that the sweep moved bytes.
        let exp = experiment_by_name("codec-v2").unwrap();
        let t = exp.run_sized(2, Some(150));
        assert_eq!(
            t.result.algos,
            vec![
                "naive",
                "naive+v2",
                "mobiJoin",
                "mobiJoin+v2",
                "srJoin",
                "srJoin+v2",
                "upJoin",
                "upJoin+v2"
            ]
        );
        for row in &t.result.cells {
            for c in row {
                assert!(c.mean_bytes > 0.0);
            }
        }
    }

    #[test]
    fn smoke_run_fig7b_one_seed() {
        // One seed, synthetic only: fast smoke test that the pipeline
        // produces a fully-populated table.
        let t = experiment_by_name("fig7b").unwrap().run(1);
        assert_eq!(t.result.rows.len(), 6);
        assert_eq!(t.result.algos.len(), 3);
        for row in &t.result.cells {
            for c in row {
                assert!(c.mean_bytes > 0.0);
            }
        }
    }
}
