//! One entry per figure of the paper, plus ablations.

use crate::runner::{rail_rows, run_sweep, synthetic_rows, AlgoSpec, SweepConfig};
use crate::table::Table;

/// A reproducible experiment: a named sweep bound to a figure.
pub struct Experiment {
    /// Identifier (CLI subcommand / CSV filename).
    pub id: &'static str,
    /// Which figure of the paper it regenerates.
    pub figure: &'static str,
    /// What the paper observed — the shape this run is checked against.
    pub expectation: &'static str,
    algos: Vec<AlgoSpec>,
    rail: bool,
    tweak: fn(&mut SweepConfig),
}

impl Experiment {
    /// Runs the sweep with `seeds` repeats, returning the rendered table.
    pub fn run(&self, seeds: u64) -> Table {
        let mut cfg = SweepConfig {
            seeds,
            ..SweepConfig::default()
        };
        (self.tweak)(&mut cfg);
        if self.algos.contains(&AlgoSpec::Semi) {
            cfg.cooperative = true;
        }
        let rows = if self.rail {
            rail_rows()
        } else {
            synthetic_rows()
        };
        let result = run_sweep(&rows, &self.algos, &cfg);
        Table::new(format!("{} — {}", self.id, self.figure), "clusters", result)
    }
}

fn no_tweak(_: &mut SweepConfig) {}

/// All experiments, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig6a",
            figure: "Figure 6(a): tuning α for UpJoin (total bytes vs clusters)",
            expectation: "Small α over-partitions; large α misses empty areas; α=0.25 balanced. \
                          NOTE: with the sampling-noise floor (DESIGN.md §5) α only binds for \
                          windows of ≳(12/α)² objects, so this sweep uses the 35 K rail \
                          workload; on 1 K-point synthetic data all α in the paper's range \
                          behave identically.",
            algos: vec![
                AlgoSpec::Up {
                    alpha: 0.15,
                    confirm_random: true,
                },
                AlgoSpec::Up {
                    alpha: 0.20,
                    confirm_random: true,
                },
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: true,
                },
                AlgoSpec::Up {
                    alpha: 0.30,
                    confirm_random: true,
                },
            ],
            rail: true,
            tweak: |c| c.bucket = true,
        },
        Experiment {
            id: "fig6b",
            figure: "Figure 6(b): tuning ρ for SrJoin (total bytes vs clusters)",
            expectation: "ρ=100% over-partitions uniform datasets (k=128 spike); ρ=30% fits \
                          uniform data and wins overall.",
            algos: vec![
                AlgoSpec::Sr { rho: 0.30 },
                AlgoSpec::Sr { rho: 0.50 },
                AlgoSpec::Sr { rho: 1.00 },
                AlgoSpec::Sr { rho: 2.00 },
                AlgoSpec::Sr { rho: 3.50 },
            ],
            rail: false,
            tweak: no_tweak,
        },
        Experiment {
            id: "fig7a",
            figure: "Figure 7(a): srJoin vs upJoin vs mobiJoin, buffer = 100 points",
            expectation: "All similar on skewed data; at k=128 UpJoin deteriorates \
                          (over-partitions uniform data) and SrJoin is best.",
            algos: vec![
                AlgoSpec::Sr { rho: 0.30 },
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: true,
                },
                AlgoSpec::Mobi,
            ],
            rail: false,
            tweak: |c| c.buffer = 100,
        },
        Experiment {
            id: "fig7b",
            figure: "Figure 7(b): srJoin vs upJoin vs mobiJoin, buffer = 800 points",
            expectation: "MobiJoin degrades on skewed data (the Fig. 2 pathologies); UpJoin \
                          best on skew; SrJoin balanced; MobiJoin fine at k=128.",
            algos: vec![
                AlgoSpec::Sr { rho: 0.30 },
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: true,
                },
                AlgoSpec::Mobi,
            ],
            rail: false,
            tweak: |c| c.buffer = 800,
        },
        Experiment {
            id: "fig8a",
            figure: "Figure 8(a): real rail data (35 K) ⋈ 1 K synthetic, bucket versions",
            expectation: "MobiJoin performs poorly (chooses NLSJ most of the time); UpJoin and \
                          SrJoin clearly cheaper, especially on skewed data.",
            algos: vec![
                AlgoSpec::Sr { rho: 0.30 },
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: true,
                },
                AlgoSpec::Mobi,
            ],
            rail: true,
            tweak: |c| c.bucket = true,
        },
        Experiment {
            id: "fig8b",
            figure: "Figure 8(b): upJoin/srJoin vs semiJoin on the rail data",
            expectation: "UpJoin/SrJoin cheaper on skewed data; SemiJoin wins on uniform data \
                          (its MBR-level cost is flat; object transfer varies with skew).",
            algos: vec![
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: true,
                },
                AlgoSpec::Sr { rho: 0.30 },
                AlgoSpec::Semi,
            ],
            rail: true,
            tweak: |c| c.bucket = true,
        },
        Experiment {
            id: "ablation-baselines",
            figure: "Ablation (ours): naive & fixed-grid baselines vs the adaptive algorithms",
            expectation: "Grid downloads everything non-empty; adaptive algorithms prune far \
                          below it on skewed data.",
            algos: vec![
                AlgoSpec::Grid { k: 8 },
                AlgoSpec::Mobi,
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: true,
                },
                AlgoSpec::Sr { rho: 0.30 },
            ],
            rail: false,
            tweak: |c| c.buffer = 2500, // lets naive-ish grid cells fit
        },
        Experiment {
            id: "ablation-bucket",
            figure: "Ablation (ours): one-by-one vs bucket NLSJ (upJoin, buffer 100)",
            expectation: "Bucket submission amortizes per-probe TCP headers; totals drop \
                          wherever NLSJ fires.",
            algos: vec![AlgoSpec::Up {
                alpha: 0.25,
                confirm_random: true,
            }],
            rail: false,
            tweak: |c| {
                c.buffer = 100;
                c.bucket = true;
            },
        },
        Experiment {
            id: "ablation-confirm",
            figure: "Ablation (ours): UpJoin with/without the confirming random COUNT",
            expectation: "Without confirmation, centered clusters get mislabelled uniform and \
                          HBSJ fires early — cheaper sometimes, riskier on Gaussian data.",
            algos: vec![
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: true,
                },
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: false,
                },
            ],
            rail: false,
            tweak: no_tweak,
        },
        Experiment {
            id: "ablation-mtu",
            figure: "Ablation (ours): dial-up MTU (576) sensitivity, buffer 800",
            expectation: "Smaller MTU inflates everything; algorithms that send many small \
                          queries (NLSJ-heavy plans) suffer disproportionately.",
            algos: vec![
                AlgoSpec::Sr { rho: 0.30 },
                AlgoSpec::Up {
                    alpha: 0.25,
                    confirm_random: true,
                },
                AlgoSpec::Mobi,
            ],
            rail: false,
            tweak: |c| c.net = asj_net::NetConfig::dialup(),
        },
    ]
}

/// Finds an experiment by CLI id.
pub fn experiment_by_name(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_every_figure() {
        let ids: Vec<_> = all_experiments().iter().map(|e| e.id).collect();
        for wanted in ["fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b"] {
            assert!(ids.contains(&wanted), "missing {wanted}");
        }
        assert!(experiment_by_name("fig7b").is_some());
        assert!(experiment_by_name("nope").is_none());
    }

    #[test]
    fn smoke_run_fig7b_one_seed() {
        // One seed, synthetic only: fast smoke test that the pipeline
        // produces a fully-populated table.
        let t = experiment_by_name("fig7b").unwrap().run(1);
        assert_eq!(t.result.rows.len(), 6);
        assert_eq!(t.result.algos.len(), 3);
        for row in &t.result.cells {
            for c in row {
                assert!(c.mean_bytes > 0.0);
            }
        }
    }
}
