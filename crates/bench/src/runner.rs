//! Sweep execution: job fan-out, averaging, determinism.

use std::sync::Mutex;

use asj_core::{
    Deployment, DeploymentBuilder, DistributedJoin, GridJoin, JoinSpec, MobiJoin, NaiveJoin,
    SemiJoin, SrJoin, UpJoin,
};
use asj_geom::SpatialObject;
use asj_net::NetConfig;
use asj_workloads::{default_space, gaussian_clusters, germany_rail, RailSpec, SyntheticSpec};

/// Which algorithm a sweep runs — a constructible, nameable spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoSpec {
    Naive,
    Grid { k: u32 },
    Mobi,
    Up { alpha: f64, confirm_random: bool },
    Sr { rho: f64 },
    Semi,
}

impl AlgoSpec {
    /// Instantiates the algorithm.
    pub fn make(&self) -> Box<dyn DistributedJoin> {
        match *self {
            AlgoSpec::Naive => Box::new(NaiveJoin),
            AlgoSpec::Grid { k } => Box::new(GridJoin::new(k)),
            AlgoSpec::Mobi => Box::new(MobiJoin),
            AlgoSpec::Up {
                alpha,
                confirm_random,
            } => Box::new(UpJoin {
                alpha,
                confirm_random,
            }),
            AlgoSpec::Sr { rho } => Box::new(SrJoin::with_rho(rho)),
            AlgoSpec::Semi => Box::new(SemiJoin::default()),
        }
    }

    /// Column label.
    pub fn label(&self) -> String {
        match *self {
            AlgoSpec::Naive => "naive".into(),
            AlgoSpec::Grid { k } => format!("grid{k}"),
            AlgoSpec::Mobi => "mobiJoin".into(),
            AlgoSpec::Up {
                alpha,
                confirm_random,
            } => {
                if confirm_random && alpha == 0.25 {
                    "upJoin".into()
                } else if confirm_random {
                    format!("up(a={alpha})")
                } else {
                    format!("up(a={alpha},noconf)")
                }
            }
            AlgoSpec::Sr { rho } => {
                if rho == 0.30 {
                    "srJoin".into()
                } else {
                    format!("sr(r={:.0}%)", rho * 100.0)
                }
            }
            AlgoSpec::Semi => "semiJoin".into(),
        }
    }
}

/// The dataset pair of one sweep row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Two independent 1000-point Gaussian-cluster datasets with the
    /// given `k` (the paper's synthetic workload).
    SyntheticPair { clusters: usize },
    /// Synthetic R (varying skew) joined with the ~35 K-segment rail
    /// dataset as S (the paper's Figure 8 workload).
    SyntheticVsRail { clusters: usize },
}

/// Sweep parameters shared by all experiments.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Points per synthetic dataset (paper: 1000).
    pub n_points: usize,
    /// Number of dataset seeds averaged (paper: 10).
    pub seeds: u64,
    /// Join ε (space is 10 000²; 100 ≈ "500 m in a city map").
    pub eps: f64,
    /// Device buffer in objects.
    pub buffer: usize,
    /// Bucket NLSJ mode.
    pub bucket: bool,
    /// Cooperative servers (needed when any algorithm is SemiJoin).
    pub cooperative: bool,
    pub net: NetConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            n_points: 1000,
            seeds: 10,
            eps: 100.0,
            buffer: 800,
            bucket: false,
            cooperative: false,
            net: NetConfig::default(),
        }
    }
}

/// Aggregated outcome of one (row, algorithm) cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellStats {
    pub mean_bytes: f64,
    pub std_bytes: f64,
    pub mean_queries: f64,
    pub mean_pairs: f64,
    pub mean_objects: f64,
}

/// One full sweep: row labels × algorithm columns.
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub rows: Vec<String>,
    pub algos: Vec<String>,
    /// `cells[row][algo]`.
    pub cells: Vec<Vec<CellStats>>,
}

/// Builds the deployment for one (workload, seed).
fn build_deployment(workload: Workload, seed: u64, cfg: &SweepConfig) -> (Deployment, f64) {
    let space = default_space();
    match workload {
        Workload::SyntheticPair { clusters } => {
            let r = gaussian_clusters(&SyntheticSpec::new(space, cfg.n_points, clusters), seed);
            let s = gaussian_clusters(
                &SyntheticSpec::new(space, cfg.n_points, clusters),
                seed + 1000,
            );
            let mut b = DeploymentBuilder::new(r, s)
                .with_net(cfg.net)
                .with_buffer(cfg.buffer)
                .with_space(space);
            if cfg.cooperative {
                b = b.cooperative();
            }
            (b.build(), 0.0)
        }
        Workload::SyntheticVsRail { clusters } => {
            let r = gaussian_clusters(&SyntheticSpec::new(space, cfg.n_points, clusters), seed);
            // One rail network per seed (the paper reuses its single real
            // dataset; we vary it with the seed to avoid overfitting to
            // one network shape).
            let s = germany_rail(&RailSpec::default(), seed);
            let hint = max_half_extent(&s);
            let mut b = DeploymentBuilder::new(r, s)
                .with_net(cfg.net)
                .with_buffer(cfg.buffer)
                .with_space(space);
            if cfg.cooperative {
                b = b.cooperative();
            }
            (b.build(), hint)
        }
    }
}

/// One seed's measurements: (total bytes, queries, aggregate queries,
/// objects downloaded).
type Sample = (u64, u64, u64, u64);

/// Largest half-diagonal among the objects — the window-extension hint.
pub fn max_half_extent(objects: &[SpatialObject]) -> f64 {
    objects
        .iter()
        .map(|o| o.mbr.width().hypot(o.mbr.height()) * 0.5)
        .fold(0.0, f64::max)
}

/// Runs a sweep: `rows` (label + workload) × `algos`, `cfg.seeds` repeats,
/// fanned out over all cores.
pub fn run_sweep(
    rows: &[(String, Workload)],
    algos: &[AlgoSpec],
    cfg: &SweepConfig,
) -> SweepResult {
    // Job = (row_idx, algo_idx, seed). Each job builds its own deployment:
    // deployments are cheap relative to the joins, and full isolation
    // keeps the sweep embarrassingly parallel.
    let mut jobs = Vec::new();
    for (ri, _) in rows.iter().enumerate() {
        for (ai, _) in algos.iter().enumerate() {
            for seed in 0..cfg.seeds {
                jobs.push((ri, ai, seed));
            }
        }
    }
    let results: Mutex<Vec<Vec<Vec<Sample>>>> =
        Mutex::new(vec![vec![Vec::new(); algos.len()]; rows.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(ri, ai, seed)) = jobs.get(i) else {
                    break;
                };
                let (dep, hint) = build_deployment(rows[ri].1, 7 + seed * 97, cfg);
                let spec = JoinSpec::distance_join(cfg.eps)
                    .with_bucket_nlsj(cfg.bucket)
                    .with_mbr_half_extent(hint)
                    .with_seed(seed);
                let rep = algos[ai]
                    .make()
                    .run(&dep, &spec)
                    .unwrap_or_else(|e| panic!("{:?} failed: {e}", algos[ai]));
                let tuple = (
                    rep.total_bytes(),
                    rep.total_queries(),
                    rep.pairs.len() as u64,
                    rep.objects_downloaded(),
                );
                results.lock().unwrap()[ri][ai].push(tuple);
            });
        }
    });

    let raw = results.into_inner().unwrap();
    let cells = raw
        .into_iter()
        .map(|row| row.into_iter().map(|samples| aggregate(&samples)).collect())
        .collect();
    SweepResult {
        rows: rows.iter().map(|(l, _)| l.clone()).collect(),
        algos: algos.iter().map(|a| a.label()).collect(),
        cells,
    }
}

fn aggregate(samples: &[Sample]) -> CellStats {
    if samples.is_empty() {
        return CellStats::default();
    }
    let n = samples.len() as f64;
    let mean = |f: fn(&Sample) -> u64| samples.iter().map(|s| f(s) as f64).sum::<f64>() / n;
    let mean_bytes = mean(|s| s.0);
    let var = samples
        .iter()
        .map(|s| (s.0 as f64 - mean_bytes).powi(2))
        .sum::<f64>()
        / n;
    CellStats {
        mean_bytes,
        std_bytes: var.sqrt(),
        mean_queries: mean(|s| s.1),
        mean_pairs: mean(|s| s.2),
        mean_objects: mean(|s| s.3),
    }
}

/// The paper's cluster axis.
pub fn cluster_axis() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 128]
}

/// Rows for a synthetic-pair sweep over the cluster axis.
pub fn synthetic_rows() -> Vec<(String, Workload)> {
    cluster_axis()
        .into_iter()
        .map(|k| (k.to_string(), Workload::SyntheticPair { clusters: k }))
        .collect()
}

/// Rows for the rail sweep over the cluster axis.
pub fn rail_rows() -> Vec<(String, Workload)> {
    cluster_axis()
        .into_iter()
        .map(|k| (k.to_string(), Workload::SyntheticVsRail { clusters: k }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(AlgoSpec::Mobi.label(), "mobiJoin");
        assert_eq!(
            AlgoSpec::Up {
                alpha: 0.25,
                confirm_random: true
            }
            .label(),
            "upJoin"
        );
        assert_eq!(AlgoSpec::Sr { rho: 0.30 }.label(), "srJoin");
        assert_eq!(AlgoSpec::Sr { rho: 2.0 }.label(), "sr(r=200%)");
        assert_eq!(AlgoSpec::Grid { k: 8 }.label(), "grid8");
    }

    #[test]
    fn aggregate_stats() {
        let s = aggregate(&[(10, 1, 2, 3), (20, 3, 4, 5)]);
        assert_eq!(s.mean_bytes, 15.0);
        assert_eq!(s.std_bytes, 5.0);
        assert_eq!(s.mean_queries, 2.0);
        assert_eq!(s.mean_pairs, 3.0);
        assert_eq!(s.mean_objects, 4.0);
    }

    #[test]
    fn tiny_sweep_runs_and_is_deterministic() {
        let cfg = SweepConfig {
            n_points: 150,
            seeds: 2,
            ..SweepConfig::default()
        };
        let rows = vec![
            ("1".to_string(), Workload::SyntheticPair { clusters: 1 }),
            ("16".to_string(), Workload::SyntheticPair { clusters: 16 }),
        ];
        let algos = [AlgoSpec::Mobi, AlgoSpec::Sr { rho: 0.3 }];
        let a = run_sweep(&rows, &algos, &cfg);
        let b = run_sweep(&rows, &algos, &cfg);
        assert_eq!(a.rows, vec!["1", "16"]);
        assert_eq!(a.algos, vec!["mobiJoin", "srJoin"]);
        for ri in 0..2 {
            for ai in 0..2 {
                assert!(a.cells[ri][ai].mean_bytes > 0.0);
                assert_eq!(
                    a.cells[ri][ai].mean_bytes, b.cells[ri][ai].mean_bytes,
                    "sweeps must be deterministic"
                );
            }
        }
    }
}
