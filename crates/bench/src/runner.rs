//! Sweep execution: job fan-out, averaging, determinism.

use std::sync::Mutex;

use asj_core::{
    Deployment, DeploymentBuilder, DistributedJoin, GridJoin, JoinSpec, MobiJoin, NaiveJoin,
    SemiJoin, Side, SrJoin, UpJoin,
};
use asj_geom::SpatialObject;
use asj_net::{NetConfig, Update};
use asj_workloads::{
    default_space, gaussian_clusters, germany_rail, RailSpec, SyntheticSpec, TrajectorySpec,
    TrajectoryStream,
};

/// Which algorithm a sweep column runs — a constructible, nameable kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoKind {
    Naive,
    Grid { k: u32 },
    Mobi,
    Up { alpha: f64, confirm_random: bool },
    Sr { rho: f64 },
    Semi,
}

impl AlgoKind {
    /// Instantiates the algorithm.
    pub fn make(&self) -> Box<dyn DistributedJoin> {
        match *self {
            AlgoKind::Naive => Box::new(NaiveJoin),
            AlgoKind::Grid { k } => Box::new(GridJoin::new(k)),
            AlgoKind::Mobi => Box::new(MobiJoin),
            AlgoKind::Up {
                alpha,
                confirm_random,
            } => Box::new(UpJoin {
                alpha,
                confirm_random,
            }),
            AlgoKind::Sr { rho } => Box::new(SrJoin::with_rho(rho)),
            AlgoKind::Semi => Box::new(SemiJoin::default()),
        }
    }

    /// Base column label.
    pub fn label(&self) -> String {
        match *self {
            AlgoKind::Naive => "naive".into(),
            AlgoKind::Grid { k } => format!("grid{k}"),
            AlgoKind::Mobi => "mobiJoin".into(),
            AlgoKind::Up {
                alpha,
                confirm_random,
            } => {
                if confirm_random && alpha == 0.25 {
                    "upJoin".into()
                } else if confirm_random {
                    format!("up(a={alpha})")
                } else {
                    format!("up(a={alpha},noconf)")
                }
            }
            AlgoKind::Sr { rho } => {
                if rho == 0.30 {
                    "srJoin".into()
                } else {
                    format!("sr(r={:.0}%)", rho * 100.0)
                }
            }
            AlgoKind::Semi => "semiJoin".into(),
        }
    }
}

/// One sweep column: an algorithm plus per-column capabilities — the
/// batched `MultiCount` statistics mode, the shard count of the server
/// fleets, and the client-side cache — so flat, batched, sharded and
/// cached variants of the same algorithm can sit side by side in one
/// table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoSpec {
    pub kind: AlgoKind,
    /// Run this column with batched `MultiCount` statistics enabled.
    pub batched_stats: bool,
    /// Shard both sides across fleets of this size (`0` = flat
    /// single-server deployment; `1` = an explicit 1-shard fleet, which is
    /// byte-identical to flat but exercises the router).
    pub shards: u32,
    /// Run this column with the client-side statistics/window cache.
    pub client_cache: bool,
    /// Negotiate wire protocol v2 (compact object frames) on this
    /// column's links.
    pub wire_v2: bool,
}

impl AlgoSpec {
    /// A per-query (paper-faithful) column.
    pub const fn new(kind: AlgoKind) -> Self {
        AlgoSpec {
            kind,
            batched_stats: false,
            shards: 0,
            client_cache: false,
            wire_v2: false,
        }
    }

    /// The same column with batched `MultiCount` statistics.
    pub const fn batched(kind: AlgoKind) -> Self {
        AlgoSpec {
            batched_stats: true,
            ..AlgoSpec::new(kind)
        }
    }

    /// The same column against `n`-shard fleets on both sides.
    pub const fn sharded(kind: AlgoKind, n: u32) -> Self {
        AlgoSpec {
            shards: n,
            ..AlgoSpec::new(kind)
        }
    }

    /// The same column with the client-side cache enabled.
    pub const fn cached(kind: AlgoKind) -> Self {
        AlgoSpec {
            client_cache: true,
            ..AlgoSpec::new(kind)
        }
    }

    /// The same column speaking wire protocol v2 on every link.
    pub const fn v2(kind: AlgoKind) -> Self {
        AlgoSpec {
            wire_v2: true,
            ..AlgoSpec::new(kind)
        }
    }

    /// Instantiates the algorithm.
    pub fn make(&self) -> Box<dyn DistributedJoin> {
        self.kind.make()
    }

    /// Column label; batched columns carry a `+mc` suffix, sharded
    /// columns a `+sN` suffix, cached columns a `+cc` suffix, wire-v2
    /// columns a `+v2` suffix.
    pub fn label(&self) -> String {
        let mut label = self.kind.label();
        if self.batched_stats {
            label.push_str("+mc");
        }
        if self.shards >= 1 {
            label.push_str(&format!("+s{}", self.shards));
        }
        if self.client_cache {
            label.push_str("+cc");
        }
        if self.wire_v2 {
            label.push_str("+v2");
        }
        label
    }
}

impl From<AlgoKind> for AlgoSpec {
    fn from(kind: AlgoKind) -> Self {
        AlgoSpec::new(kind)
    }
}

/// The dataset pair of one sweep row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Two independent 1000-point Gaussian-cluster datasets with the
    /// given `k` (the paper's synthetic workload).
    SyntheticPair { clusters: usize },
    /// Synthetic R (varying skew) joined with the ~35 K-segment rail
    /// dataset as S (the paper's Figure 8 workload).
    SyntheticVsRail { clusters: usize },
}

/// Sweep parameters shared by all experiments.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Points per synthetic dataset (paper: 1000).
    pub n_points: usize,
    /// Number of dataset seeds averaged (paper: 10).
    pub seeds: u64,
    /// Join ε (space is 10 000²; 100 ≈ "500 m in a city map").
    pub eps: f64,
    /// Device buffer in objects.
    pub buffer: usize,
    /// Bucket NLSJ mode.
    pub bucket: bool,
    /// Cooperative servers (needed when any algorithm is SemiJoin).
    pub cooperative: bool,
    /// Correlated joins run back-to-back per sample on one deployment —
    /// a *session*: the same join re-evaluated K times (fresh links, same
    /// servers), as when a user refreshes a query or a bench column sweep
    /// re-probes identical windows. Byte/query/aggregate measurements are
    /// summed over the session, so with the client cache enabled the
    /// cross-join reuse shows up directly in the column totals; without
    /// it the session simply re-pays everything. `1` (the default) is a
    /// single join, exactly the pre-session behavior.
    pub session: usize,
    /// Live-update ticks applied between consecutive session joins. `0`
    /// (the default) runs frozen deployments, the exact pre-generation
    /// behavior. With `K > 0` the deployments are built live
    /// ([`DeploymentBuilder::live`]) and every join after the first is
    /// preceded by `K` pinned-seed [`TrajectoryStream`] move batches per
    /// side, so the sweep measures joins racing a moving fleet; the first
    /// join still runs at generation 0 (byte-identical to frozen).
    pub live_ticks: usize,
    pub net: NetConfig,
    /// Worker-thread override; `None` uses all cores. Sweeps are
    /// bit-identical regardless of this value (samples are indexed by
    /// seed, not completion order) — the determinism test exercises it.
    pub workers: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            n_points: 1000,
            seeds: 10,
            eps: 100.0,
            buffer: 800,
            bucket: false,
            cooperative: false,
            session: 1,
            live_ticks: 0,
            net: NetConfig::default(),
            workers: None,
        }
    }
}

/// Aggregated outcome of one (row, algorithm) cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellStats {
    pub mean_bytes: f64,
    pub std_bytes: f64,
    pub mean_queries: f64,
    pub mean_pairs: f64,
    pub mean_objects: f64,
    /// Mean wire bytes spent on aggregate (statistics) traffic — the
    /// column the batched-vs-single ablation reads its saving from.
    pub mean_agg_bytes: f64,
    /// Mean wire bytes carried *per shard server* — for flat columns this
    /// is half the total (one "shard" per side); for fleets it shows how
    /// scatter-gather spreads the load.
    pub mean_shard_bytes: f64,
    /// Mean fraction of scatter slots the routers skipped because a shard
    /// could not contribute (bounds miss, or a zero-count skip inside a
    /// merged avg-area); 0 for flat columns.
    pub pruning_rate: f64,
    /// Mean wire bytes the client cache kept off the links (summed over a
    /// session); 0 for uncached columns.
    pub mean_saved_bytes: f64,
    /// Mean cache hit rate across both links and both tiers; 0 for
    /// uncached columns.
    pub cache_hit_rate: f64,
}

/// One full sweep: row labels × algorithm columns.
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub rows: Vec<String>,
    pub algos: Vec<String>,
    /// `cells[row][algo]`.
    pub cells: Vec<Vec<CellStats>>,
}

/// Builds the deployment for one (workload, seed); `net` is the sweep's
/// network config with any per-column capability overrides applied, and
/// `shards` the per-column fleet size (0 = flat). Also returns the `(R,
/// S)` datasets the servers were seeded with, so live sweeps can drive
/// deterministic trajectory streams over the same fleet.
fn build_deployment(
    workload: Workload,
    seed: u64,
    cfg: &SweepConfig,
    net: NetConfig,
    shards: u32,
) -> (Deployment, f64, Vec<SpatialObject>, Vec<SpatialObject>) {
    let space = default_space();
    let finish = |mut b: DeploymentBuilder| {
        if cfg.cooperative {
            b = b.cooperative();
        }
        if shards >= 1 {
            b = b.with_shards(shards as usize, shards as usize);
        }
        if cfg.live_ticks > 0 {
            b = b.live();
        }
        b.build()
    };
    match workload {
        Workload::SyntheticPair { clusters } => {
            let r = gaussian_clusters(&SyntheticSpec::new(space, cfg.n_points, clusters), seed);
            let s = gaussian_clusters(
                &SyntheticSpec::new(space, cfg.n_points, clusters),
                seed + 1000,
            );
            let b = DeploymentBuilder::new(r.clone(), s.clone())
                .with_net(net)
                .with_buffer(cfg.buffer)
                .with_space(space);
            (finish(b), 0.0, r, s)
        }
        Workload::SyntheticVsRail { clusters } => {
            let r = gaussian_clusters(&SyntheticSpec::new(space, cfg.n_points, clusters), seed);
            // One rail network per seed (the paper reuses its single real
            // dataset; we vary it with the seed to avoid overfitting to
            // one network shape).
            let s = germany_rail(&RailSpec::default(), seed);
            let hint = max_half_extent(&s);
            let b = DeploymentBuilder::new(r.clone(), s.clone())
                .with_net(net)
                .with_buffer(cfg.buffer)
                .with_space(space);
            (finish(b), hint, r, s)
        }
    }
}

/// One seed's measurements, summed (counters) or averaged (rates) over
/// the sample's session of joins. `pairs` is the per-join result size —
/// identical for every join of a session, asserted in the sweep loop.
#[derive(Debug, Clone, Copy, Default)]
struct Sample {
    bytes: u64,
    queries: u64,
    pairs: u64,
    objects: u64,
    agg_bytes: u64,
    shard_bytes: f64,
    pruning: f64,
    saved_bytes: u64,
    hit_rate: f64,
}

/// Largest half-diagonal among the objects — the window-extension hint.
pub fn max_half_extent(objects: &[SpatialObject]) -> f64 {
    objects
        .iter()
        .map(|o| o.mbr.width().hypot(o.mbr.height()) * 0.5)
        .fold(0.0, f64::max)
}

/// Runs a sweep: `rows` (label + workload) × `algos`, `cfg.seeds` repeats,
/// fanned out over all cores.
pub fn run_sweep(
    rows: &[(String, Workload)],
    algos: &[AlgoSpec],
    cfg: &SweepConfig,
) -> SweepResult {
    // Job = (row_idx, algo_idx, seed). Each job builds its own deployment:
    // deployments are cheap relative to the joins, and full isolation
    // keeps the sweep embarrassingly parallel.
    let mut jobs = Vec::new();
    for (ri, _) in rows.iter().enumerate() {
        for (ai, _) in algos.iter().enumerate() {
            for seed in 0..cfg.seeds {
                jobs.push((ri, ai, seed));
            }
        }
    }
    // Samples are indexed by seed, never pushed in completion order:
    // thread scheduling must not change the f64 summation order, so means
    // are bit-identical for any worker count.
    let results: Mutex<Vec<Vec<Vec<Option<Sample>>>>> =
        Mutex::new(vec![
            vec![vec![None; cfg.seeds as usize]; algos.len()];
            rows.len()
        ]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = cfg
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, jobs.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(ri, ai, seed)) = jobs.get(i) else {
                    break;
                };
                let net = cfg
                    .net
                    .with_batched_stats(cfg.net.batched_stats || algos[ai].batched_stats)
                    .with_client_cache(cfg.net.client_cache.enabled || algos[ai].client_cache)
                    .with_wire_v2(cfg.net.wire_v2 || algos[ai].wire_v2);
                let (dep, hint, data_r, data_s) =
                    build_deployment(rows[ri].1, 7 + seed * 97, cfg, net, algos[ai].shards);
                // Live sweeps drive one pinned-seed trajectory stream per
                // side; the streams are seeded by (workload seed, side)
                // only, so every column of a row replays the *same*
                // movement history and stays result-comparable.
                let mut trajectories = (cfg.live_ticks > 0).then(|| {
                    let tspec = TrajectorySpec::default();
                    (
                        TrajectoryStream::new(&data_r, tspec, 7 + seed * 97),
                        TrajectoryStream::new(&data_s, tspec, 1007 + seed * 97),
                    )
                });
                // A session re-runs the same join K times against one
                // deployment (whose client cache, when enabled, persists
                // across joins); counters sum, rates average, and the
                // pair count — identical across the session's repeats by
                // construction — is recorded once and asserted stable.
                // Live sessions interleave update ticks between joins, so
                // their per-join result legitimately drifts: pairs are
                // summed over the session instead (still deterministic
                // and identical across columns).
                let session = cfg.session.max(1);
                let mut sample = Sample::default();
                for j in 0..session as u64 {
                    if let Some((tr, ts)) = trajectories.as_mut() {
                        if j > 0 {
                            for _ in 0..cfg.live_ticks {
                                let moves = |s: &mut TrajectoryStream| {
                                    s.tick()
                                        .into_iter()
                                        .map(|o| Update::Move {
                                            id: o.id,
                                            to: o.mbr,
                                        })
                                        .collect::<Vec<_>>()
                                };
                                dep.apply_updates(Side::R, moves(tr));
                                dep.apply_updates(Side::S, moves(ts));
                            }
                        }
                    }
                    let spec = JoinSpec::distance_join(cfg.eps)
                        .with_bucket_nlsj(cfg.bucket)
                        .with_mbr_half_extent(hint)
                        .with_seed(seed + j * 7919);
                    let rep = algos[ai]
                        .make()
                        .run(&dep, &spec)
                        .unwrap_or_else(|e| panic!("{:?} failed: {e}", algos[ai]));
                    sample.bytes += rep.total_bytes();
                    sample.queries += rep.total_queries();
                    if cfg.live_ticks > 0 {
                        sample.pairs += rep.pairs.len() as u64;
                    } else if j == 0 {
                        sample.pairs = rep.pairs.len() as u64;
                    } else {
                        assert_eq!(
                            sample.pairs,
                            rep.pairs.len() as u64,
                            "{:?}: session joins must reproduce the same result",
                            algos[ai]
                        );
                    }
                    sample.objects += rep.objects_downloaded();
                    sample.agg_bytes += rep.link_r.aggregate_bytes() + rep.link_s.aggregate_bytes();
                    sample.shard_bytes += rep.mean_shard_bytes() / session as f64;
                    sample.pruning += rep.pruning_rate() / session as f64;
                    sample.saved_bytes += rep.cache_bytes_saved();
                    sample.hit_rate += rep.cache_hit_rate() / session as f64;
                }
                results.lock().unwrap()[ri][ai][seed as usize] = Some(sample);
            });
        }
    });

    let raw = results.into_inner().unwrap();
    let cells = raw
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|samples| {
                    let samples: Vec<Sample> = samples
                        .into_iter()
                        .map(|s| s.expect("every (row, algo, seed) job runs exactly once"))
                        .collect();
                    aggregate(&samples)
                })
                .collect()
        })
        .collect();
    SweepResult {
        rows: rows.iter().map(|(l, _)| l.clone()).collect(),
        algos: algos.iter().map(|a| a.label()).collect(),
        cells,
    }
}

fn aggregate(samples: &[Sample]) -> CellStats {
    if samples.is_empty() {
        return CellStats::default();
    }
    let n = samples.len() as f64;
    let mean = |f: fn(&Sample) -> u64| samples.iter().map(|s| f(s) as f64).sum::<f64>() / n;
    let mean_f = |f: fn(&Sample) -> f64| samples.iter().map(f).sum::<f64>() / n;
    let mean_bytes = mean(|s| s.bytes);
    let var = samples
        .iter()
        .map(|s| (s.bytes as f64 - mean_bytes).powi(2))
        .sum::<f64>()
        / n;
    CellStats {
        mean_bytes,
        std_bytes: var.sqrt(),
        mean_queries: mean(|s| s.queries),
        mean_pairs: mean(|s| s.pairs),
        mean_objects: mean(|s| s.objects),
        mean_agg_bytes: mean(|s| s.agg_bytes),
        mean_shard_bytes: mean_f(|s| s.shard_bytes),
        pruning_rate: mean_f(|s| s.pruning),
        mean_saved_bytes: mean(|s| s.saved_bytes),
        cache_hit_rate: mean_f(|s| s.hit_rate),
    }
}

/// The paper's cluster axis.
pub fn cluster_axis() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 128]
}

/// Rows for a synthetic-pair sweep over the cluster axis.
pub fn synthetic_rows() -> Vec<(String, Workload)> {
    cluster_axis()
        .into_iter()
        .map(|k| (k.to_string(), Workload::SyntheticPair { clusters: k }))
        .collect()
}

/// Rows for the rail sweep over the cluster axis.
pub fn rail_rows() -> Vec<(String, Workload)> {
    cluster_axis()
        .into_iter()
        .map(|k| (k.to_string(), Workload::SyntheticVsRail { clusters: k }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(AlgoSpec::new(AlgoKind::Mobi).label(), "mobiJoin");
        assert_eq!(AlgoSpec::batched(AlgoKind::Mobi).label(), "mobiJoin+mc");
        assert_eq!(
            AlgoSpec::new(AlgoKind::Up {
                alpha: 0.25,
                confirm_random: true
            })
            .label(),
            "upJoin"
        );
        assert_eq!(AlgoSpec::new(AlgoKind::Sr { rho: 0.30 }).label(), "srJoin");
        assert_eq!(
            AlgoSpec::batched(AlgoKind::Sr { rho: 0.30 }).label(),
            "srJoin+mc"
        );
        assert_eq!(
            AlgoSpec::new(AlgoKind::Sr { rho: 2.0 }).label(),
            "sr(r=200%)"
        );
        assert_eq!(AlgoSpec::new(AlgoKind::Grid { k: 8 }).label(), "grid8");
        assert_eq!(AlgoSpec::from(AlgoKind::Semi).label(), "semiJoin");
        assert_eq!(
            AlgoSpec::sharded(AlgoKind::Sr { rho: 0.30 }, 4).label(),
            "srJoin+s4"
        );
        assert_eq!(AlgoSpec::sharded(AlgoKind::Mobi, 1).label(), "mobiJoin+s1");
        assert_eq!(AlgoSpec::cached(AlgoKind::Mobi).label(), "mobiJoin+cc");
        assert_eq!(
            AlgoSpec::cached(AlgoKind::Sr { rho: 0.30 }).label(),
            "srJoin+cc"
        );
        assert_eq!(AlgoSpec::v2(AlgoKind::Mobi).label(), "mobiJoin+v2");
        assert_eq!(
            AlgoSpec {
                client_cache: true,
                ..AlgoSpec::v2(AlgoKind::Sr { rho: 0.30 })
            }
            .label(),
            "srJoin+cc+v2"
        );
    }

    #[test]
    fn aggregate_stats() {
        let a = Sample {
            bytes: 10,
            queries: 1,
            pairs: 2,
            objects: 3,
            agg_bytes: 4,
            shard_bytes: 2.0,
            pruning: 0.5,
            saved_bytes: 100,
            hit_rate: 0.4,
        };
        let b = Sample {
            bytes: 20,
            queries: 3,
            pairs: 4,
            objects: 5,
            agg_bytes: 6,
            shard_bytes: 4.0,
            pruning: 0.1,
            saved_bytes: 300,
            hit_rate: 0.6,
        };
        let s = aggregate(&[a, b]);
        assert_eq!(s.mean_bytes, 15.0);
        assert_eq!(s.std_bytes, 5.0);
        assert_eq!(s.mean_queries, 2.0);
        assert_eq!(s.mean_pairs, 3.0);
        assert_eq!(s.mean_objects, 4.0);
        assert_eq!(s.mean_agg_bytes, 5.0);
        assert_eq!(s.mean_shard_bytes, 3.0);
        assert_eq!(s.pruning_rate, 0.3);
        assert_eq!(s.mean_saved_bytes, 200.0);
        assert_eq!(s.cache_hit_rate, 0.5);
    }

    #[test]
    fn sharded_column_same_pairs_and_per_shard_load_drops() {
        let cfg = SweepConfig {
            n_points: 150,
            seeds: 2,
            ..SweepConfig::default()
        };
        let rows = vec![("4".to_string(), Workload::SyntheticPair { clusters: 4 })];
        let algos = [
            AlgoSpec::new(AlgoKind::Sr { rho: 0.3 }),
            AlgoSpec::sharded(AlgoKind::Sr { rho: 0.3 }, 4),
        ];
        let r = run_sweep(&rows, &algos, &cfg);
        assert_eq!(r.algos, vec!["srJoin", "srJoin+s4"]);
        let (flat, sharded) = (r.cells[0][0], r.cells[0][1]);
        assert_eq!(
            flat.mean_pairs, sharded.mean_pairs,
            "sharding must not change join results"
        );
        assert!(flat.pruning_rate == 0.0);
        assert!(
            sharded.mean_shard_bytes < flat.mean_shard_bytes,
            "per-shard load must drop: {} vs {}",
            sharded.mean_shard_bytes,
            flat.mean_shard_bytes
        );
    }

    #[test]
    fn batched_column_recovers_statistics_bytes() {
        // SrJoin COUNTs the four quadrants of every non-limit window, so
        // at least one statistics round is guaranteed; buffer 100 makes
        // the run split-heavy like the Fig. 7(a) configuration.
        let cfg = SweepConfig {
            n_points: 150,
            seeds: 2,
            buffer: 100,
            ..SweepConfig::default()
        };
        let rows = vec![("4".to_string(), Workload::SyntheticPair { clusters: 4 })];
        let algos = [
            AlgoSpec::new(AlgoKind::Sr { rho: 0.3 }),
            AlgoSpec::batched(AlgoKind::Sr { rho: 0.3 }),
        ];
        let r = run_sweep(&rows, &algos, &cfg);
        assert_eq!(r.algos, vec!["srJoin", "srJoin+mc"]);
        let (single, batched) = (r.cells[0][0], r.cells[0][1]);
        assert_eq!(
            single.mean_pairs, batched.mean_pairs,
            "batching must not change join results"
        );
        assert!(
            batched.mean_agg_bytes < single.mean_agg_bytes,
            "batched {} vs single {} aggregate bytes",
            batched.mean_agg_bytes,
            single.mean_agg_bytes
        );
        assert!(batched.mean_bytes < single.mean_bytes);
    }

    #[test]
    fn cached_session_column_reuses_downloads() {
        // A 3-join session with the split-heavy buffer: the +cc column
        // must show fewer aggregate bytes and messages (joins 2 and 3 hit
        // what join 1 paid for) with identical results.
        let cfg = SweepConfig {
            n_points: 150,
            seeds: 2,
            buffer: 100,
            session: 3,
            ..SweepConfig::default()
        };
        let rows = vec![("4".to_string(), Workload::SyntheticPair { clusters: 4 })];
        let algos = [
            AlgoSpec::new(AlgoKind::Mobi),
            AlgoSpec::cached(AlgoKind::Mobi),
        ];
        let r = run_sweep(&rows, &algos, &cfg);
        assert_eq!(r.algos, vec!["mobiJoin", "mobiJoin+cc"]);
        let (plain, cached) = (r.cells[0][0], r.cells[0][1]);
        assert_eq!(
            plain.mean_pairs, cached.mean_pairs,
            "the cache must not change join results"
        );
        assert!(
            cached.mean_agg_bytes < plain.mean_agg_bytes,
            "cached {} vs plain {} aggregate bytes",
            cached.mean_agg_bytes,
            plain.mean_agg_bytes
        );
        assert!(
            cached.mean_queries < plain.mean_queries,
            "hits are not messages"
        );
        assert!(cached.mean_bytes < plain.mean_bytes);
        assert!(cached.mean_saved_bytes > 0.0);
        assert!(cached.cache_hit_rate > 0.0);
        assert_eq!(plain.mean_saved_bytes, 0.0);
        assert_eq!(plain.cache_hit_rate, 0.0);
    }

    #[test]
    fn live_sweep_interleaves_updates_and_columns_agree() {
        // A 3-join session with one update tick between joins: flat,
        // sharded and cached columns race the same pinned trajectory, so
        // their summed pair counts must be identical — the cache's
        // generation keying and the router's update scattering cannot
        // change results.
        let cfg = SweepConfig {
            n_points: 150,
            seeds: 2,
            session: 3,
            live_ticks: 1,
            ..SweepConfig::default()
        };
        let rows = vec![("4".to_string(), Workload::SyntheticPair { clusters: 4 })];
        let algos = [
            AlgoSpec::new(AlgoKind::Sr { rho: 0.3 }),
            AlgoSpec::sharded(AlgoKind::Sr { rho: 0.3 }, 3),
            AlgoSpec::cached(AlgoKind::Sr { rho: 0.3 }),
        ];
        let r = run_sweep(&rows, &algos, &cfg);
        let cells = &r.cells[0];
        assert!(cells[0].mean_pairs > 0.0);
        for c in cells {
            assert_eq!(
                c.mean_pairs, cells[0].mean_pairs,
                "live columns must agree on the session's results"
            );
        }
        // The moving fleet really changes the answer: a frozen sweep of
        // the same session produces a different pair total (summed vs
        // per-join pairs aside, the counts differ at session size 1 too).
        let frozen = run_sweep(
            &rows,
            &algos[..1],
            &SweepConfig {
                session: 1,
                live_ticks: 0,
                ..cfg.clone()
            },
        );
        assert!(frozen.cells[0][0].mean_pairs > 0.0);
    }

    #[test]
    fn tiny_sweep_runs_and_is_deterministic_across_worker_counts() {
        let rows = vec![
            ("1".to_string(), Workload::SyntheticPair { clusters: 1 }),
            ("16".to_string(), Workload::SyntheticPair { clusters: 16 }),
        ];
        let algos = [
            AlgoSpec::new(AlgoKind::Mobi),
            AlgoSpec::new(AlgoKind::Sr { rho: 0.3 }),
        ];
        let run = |workers: Option<usize>| {
            let cfg = SweepConfig {
                n_points: 150,
                seeds: 3,
                workers,
                ..SweepConfig::default()
            };
            run_sweep(&rows, &algos, &cfg)
        };
        let a = run(None);
        assert_eq!(a.rows, vec!["1", "16"]);
        assert_eq!(a.algos, vec!["mobiJoin", "srJoin"]);
        // Means must be *bit*-identical however the jobs are scheduled:
        // samples are indexed by seed, so the f64 summation order is fixed.
        for b in [run(None), run(Some(1)), run(Some(2)), run(Some(5))] {
            for ri in 0..2 {
                for ai in 0..2 {
                    assert!(a.cells[ri][ai].mean_bytes > 0.0);
                    assert_eq!(
                        a.cells[ri][ai].mean_bytes.to_bits(),
                        b.cells[ri][ai].mean_bytes.to_bits(),
                        "sweeps must be deterministic"
                    );
                    assert_eq!(
                        a.cells[ri][ai].std_bytes.to_bits(),
                        b.cells[ri][ai].std_bytes.to_bits()
                    );
                    assert_eq!(
                        a.cells[ri][ai].mean_agg_bytes.to_bits(),
                        b.cells[ri][ai].mean_agg_bytes.to_bits()
                    );
                }
            }
        }
    }
}
