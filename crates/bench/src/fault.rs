//! Fault matrix: drop rate × retry budget, measured on real deployments.
//!
//! Each cell connects to a deployment whose physical edges run a seeded
//! [`FaultPlan`] at the row's drop rate, fires a fixed script of probe
//! requests through links carrying the column's [`RetryPolicy`], and
//! records what survived: probes answered within the budget, retries
//! spent, probes abandoned, wire bytes. Because the fault layer's rolls
//! are a pure function of `(plan seed, request bytes, attempt)` and its
//! per-request fault prefixes are budget-stable, a probe that succeeds
//! under budget `b` succeeds under every budget `> b` — so the success
//! column must be *monotone in the retry budget at every drop rate*,
//! and [`check_fault_matrix`] fails the run if it is not.
//!
//! The CSV also carries the [`CostModel`] prediction
//! ([`CostModel::expected_attempts`]) next to the measured
//! attempts-per-probe, so the pricing the planner uses can be eyeballed
//! against the wire truth it abstracts.
//!
//! A third axis replicates every server ([`FaultMatrixConfig::replica_counts`]):
//! replica `j`'s fault stream is decorrelated by seed *independently of
//! the replica count*, and a failed exchange fails over to a sibling
//! before spending retry budget, so the attempt schedule a probe sees
//! under `n` replicas is a superset of the one under `n - 1`. Success is
//! therefore **monotone in the replica count at every (drop rate,
//! budget) cell** — exactly, not statistically — and `check_fault_matrix`
//! pins that too.

use asj_core::{CostModel, DeploymentBuilder};
use asj_geom::{Point, Rect};
use asj_net::{FaultPlan, NetConfig, Request, Response, RetryPolicy};
use asj_workloads::{default_space, gaussian_clusters, SyntheticSpec};

/// Axes and sizing of one fault-matrix run.
#[derive(Debug, Clone)]
pub struct FaultMatrixConfig {
    /// Dataset seeds summed into each cell.
    pub seeds: u64,
    /// Points per synthetic dataset side.
    pub n_points: usize,
    /// Row axis: the drop probability injected on every physical edge.
    pub drop_rates: Vec<f64>,
    /// Column axis: total delivery attempts per exchange (1 = retries off).
    pub budgets: Vec<u32>,
    /// Replica axis: servers per side (1 = unreplicated; `n > 1` routes
    /// through a replica-aware fleet that fails over between siblings).
    pub replica_counts: Vec<usize>,
}

impl Default for FaultMatrixConfig {
    fn default() -> Self {
        FaultMatrixConfig {
            seeds: 2,
            n_points: 150,
            drop_rates: vec![0.0, 0.15, 0.30, 0.45],
            budgets: vec![1, 2, 4, 8],
            replica_counts: vec![1, 2],
        }
    }
}

/// One `(drop rate, budget)` cell, summed over the config's seeds.
#[derive(Debug, Clone, Copy)]
pub struct FaultCell {
    pub drop_rate: f64,
    pub max_attempts: u32,
    /// Replicas per server in this cell.
    pub replicas: usize,
    /// Probe requests fired.
    pub probes: u64,
    /// Probes answered within the retry budget.
    pub succeeded: u64,
    /// Extra delivery attempts spent (link meters' `retried`).
    pub retried: u64,
    /// Exchanges failed over to a sibling replica (0 when `replicas` is 1).
    pub failovers: u64,
    /// Probes that came back [`Response::Unavailable`] — the budget (or,
    /// at budget 1, the single attempt) did not survive the loss.
    pub abandoned: u64,
    /// What the link meters' `abandoned` gauge recorded; 0 at budget 1
    /// on an unreplicated link, where the retry loop never engages (the
    /// replica-aware router gauges exhaustion at every budget).
    pub metered_abandoned: u64,
    /// Wire bytes metered across both links.
    pub bytes: u64,
}

impl FaultCell {
    pub fn success_rate(&self) -> f64 {
        self.succeeded as f64 / self.probes as f64
    }

    /// Measured mean deliveries per probe (first attempts plus retries).
    pub fn attempts_per_probe(&self) -> f64 {
        (self.probes + self.retried) as f64 / self.probes as f64
    }
}

/// The full matrix, row-major over `drop_rates` × `budgets`.
#[derive(Debug, Clone)]
pub struct FaultMatrix {
    pub cells: Vec<FaultCell>,
}

/// The probe script: one COUNT and one WINDOW per cell of a 4×4 grid
/// over the space, so request byte strings (and therefore the fault
/// layer's deterministic rolls) vary across probes.
fn probe_script(space: Rect) -> Vec<Request> {
    let (w, h) = (space.width() / 4.0, space.height() / 4.0);
    let mut probes = Vec::new();
    for i in 0..4 {
        for j in 0..4 {
            let cell = Rect::new(
                Point::new(space.min.x + i as f64 * w, space.min.y + j as f64 * h),
                Point::new(
                    space.min.x + (i + 1) as f64 * w,
                    space.min.y + (j + 1) as f64 * h,
                ),
            );
            probes.push(Request::Count(cell));
            probes.push(Request::Window(cell));
        }
    }
    probes
}

/// Runs the matrix: every cell builds fresh fault-wrapped deployments
/// (one per seed) and fires the probe script over both links.
pub fn run_fault_matrix(cfg: &FaultMatrixConfig) -> FaultMatrix {
    let space = default_space();
    let probes = probe_script(space);
    let mut cells = Vec::new();
    for &drop_rate in &cfg.drop_rates {
        for &budget in &cfg.budgets {
            for &replicas in &cfg.replica_counts {
                let mut cell = FaultCell {
                    drop_rate,
                    max_attempts: budget,
                    replicas,
                    probes: 0,
                    succeeded: 0,
                    retried: 0,
                    failovers: 0,
                    abandoned: 0,
                    metered_abandoned: 0,
                    bytes: 0,
                };
                for seed in 0..cfg.seeds {
                    let data_seed = 7 + seed * 97;
                    let r =
                        gaussian_clusters(&SyntheticSpec::new(space, cfg.n_points, 4), data_seed);
                    let s = gaussian_clusters(
                        &SyntheticSpec::new(space, cfg.n_points, 8),
                        data_seed + 1000,
                    );
                    let dep = DeploymentBuilder::new(r, s)
                        .with_buffer(cfg.n_points * 2)
                        .with_space(space)
                        .with_net(NetConfig::default().with_retry(RetryPolicy::attempts(budget)))
                        .with_replicas(replicas)
                        .with_faults(FaultPlan::seeded(seed).with_drops(drop_rate))
                        .build();
                    let (link_r, link_s) = dep.connect();
                    for (i, req) in probes.iter().enumerate() {
                        let link = if i % 2 == 0 { &link_r } else { &link_s };
                        cell.probes += 1;
                        if link.request(req) == Response::Unavailable {
                            cell.abandoned += 1;
                        } else {
                            cell.succeeded += 1;
                        }
                    }
                    for link in [&link_r, &link_s] {
                        let snap = link.meter().snapshot();
                        cell.retried += snap.retried;
                        cell.failovers += snap.failovers;
                        cell.metered_abandoned += snap.abandoned;
                        cell.bytes += snap.total_bytes();
                    }
                }
                cells.push(cell);
            }
        }
    }
    FaultMatrix { cells }
}

impl FaultMatrix {
    /// CSV with the measured columns plus the cost model's predicted
    /// expected-attempts factor for the cell's `(drop, budget)` pair.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "drop_rate,max_attempts,replicas,probes,succeeded,success_rate,\
             retried,failovers,abandoned,bytes,attempts_per_probe,model_expected_attempts\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:.2},{},{},{},{},{:.4},{},{},{},{},{:.3},{:.3}\n",
                c.drop_rate,
                c.max_attempts,
                c.replicas,
                c.probes,
                c.succeeded,
                c.success_rate(),
                c.retried,
                c.failovers,
                c.abandoned,
                c.bytes,
                c.attempts_per_probe(),
                CostModel::expected_attempts(c.drop_rate, c.max_attempts),
            ));
        }
        out
    }

    /// Cells of one (drop rate, replica count) row, in budget order.
    fn row(&self, drop_rate: f64, replicas: usize) -> Vec<&FaultCell> {
        self.cells
            .iter()
            .filter(|c| c.drop_rate == drop_rate && c.replicas == replicas)
            .collect()
    }

    /// Cells of one (drop rate, budget) column, in replica-count order.
    fn replica_column(&self, drop_rate: f64, budget: u32) -> Vec<&FaultCell> {
        self.cells
            .iter()
            .filter(|c| c.drop_rate == drop_rate && c.max_attempts == budget)
            .collect()
    }
}

/// The invariants every run (CI included) is held to:
///
/// * at every fixed (drop rate, replica count), success within the retry
///   budget is **monotone in the budget** (budget-stable fault prefixes
///   make this exact, not statistical);
/// * at every fixed (drop rate, budget), success is **monotone in the
///   replica count** — count-independent per-replica fault seeds plus
///   budget-free failover make a bigger fleet's attempt schedule a
///   superset of a smaller one's;
/// * the zero-drop rows are perfect — every probe answered, zero
///   retries, zero failovers, zero abandons — at every budget and
///   replica count;
/// * abandons account exactly for the missing successes;
/// * faults really fired: some lossy cell retried, the largest budget
///   recovers strictly more than budget 1 on the lossiest row, and —
///   when a replicated column is configured — some lossy cell failed
///   over to a sibling.
pub fn check_fault_matrix(m: &FaultMatrix, cfg: &FaultMatrixConfig) {
    for &drop_rate in &cfg.drop_rates {
        for &replicas in &cfg.replica_counts {
            let row = m.row(drop_rate, replicas);
            assert_eq!(
                row.len(),
                cfg.budgets.len(),
                "missing cells at drop {drop_rate} × {replicas} replicas"
            );
            for pair in row.windows(2) {
                assert!(
                    pair[1].succeeded >= pair[0].succeeded,
                    "drop {drop_rate} × {replicas} replicas: success must be \
                     monotone in the retry budget ({} attempts → {} ok, \
                     {} attempts → {} ok)",
                    pair[0].max_attempts,
                    pair[0].succeeded,
                    pair[1].max_attempts,
                    pair[1].succeeded
                );
            }
            for c in &row {
                assert_eq!(
                    c.succeeded + c.abandoned,
                    c.probes,
                    "drop {drop_rate} budget {} × {replicas} replicas: every \
                     probe either succeeds or abandons",
                    c.max_attempts
                );
                if c.max_attempts > 1 {
                    assert_eq!(
                        c.metered_abandoned, c.abandoned,
                        "drop {drop_rate} budget {} × {replicas} replicas: the \
                         link meters' abandoned gauge must agree with the \
                         observed unavailable replies",
                        c.max_attempts
                    );
                }
                if drop_rate == 0.0 {
                    assert_eq!(
                        (c.succeeded, c.retried, c.failovers),
                        (c.probes, 0, 0),
                        "clean row at {replicas} replicas"
                    );
                }
                if c.replicas == 1 {
                    assert_eq!(c.failovers, 0, "no siblings, no failovers");
                }
            }
        }
        for &budget in &cfg.budgets {
            let col = m.replica_column(drop_rate, budget);
            for pair in col.windows(2) {
                assert!(
                    pair[1].succeeded >= pair[0].succeeded,
                    "drop {drop_rate} budget {budget}: success must be monotone \
                     in the replica count ({} replicas → {} ok, {} replicas → \
                     {} ok)",
                    pair[0].replicas,
                    pair[0].succeeded,
                    pair[1].replicas,
                    pair[1].succeeded
                );
            }
        }
    }
    assert!(
        m.cells.iter().any(|c| c.retried > 0),
        "no cell ever retried — the fault layer did not fire"
    );
    if cfg.replica_counts.iter().any(|&n| n > 1) && cfg.drop_rates.iter().any(|&d| d > 0.0) {
        assert!(
            m.cells.iter().any(|c| c.failovers > 0),
            "no lossy replicated cell ever failed over — the sibling \
             routing did not engage"
        );
    }
    let lossiest = *cfg
        .drop_rates
        .last()
        .expect("at least one drop rate is required");
    if lossiest > 0.0 && cfg.budgets.len() > 1 {
        for &replicas in &cfg.replica_counts {
            let row = m.row(lossiest, replicas);
            assert!(
                row.last().unwrap().succeeded >= row[0].succeeded,
                "drop {lossiest} × {replicas} replicas: a bigger budget must \
                 never recover fewer probes"
            );
        }
        let flat = m.row(lossiest, cfg.replica_counts[0]);
        assert!(
            flat.last().unwrap().succeeded > flat[0].succeeded,
            "drop {lossiest}: the retry budget must recover probes budget 1 loses"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_is_monotone_and_deterministic() {
        let cfg = FaultMatrixConfig {
            seeds: 1,
            n_points: 60,
            drop_rates: vec![0.0, 0.4],
            budgets: vec![1, 4],
            replica_counts: vec![1, 2],
        };
        let a = run_fault_matrix(&cfg);
        check_fault_matrix(&a, &cfg);
        let csv = a.to_csv();
        assert!(csv.contains("model_expected_attempts"));
        assert_eq!(csv.lines().count(), 1 + 2 * 2 * 2);
        // Same seeds, same plan → bit-identical rerun.
        let b = run_fault_matrix(&cfg);
        assert_eq!(a.to_csv(), b.to_csv());
        // The lossy unreplicated budget-1 cell really lost probes
        // (otherwise the monotonicity checks are vacuous at this size).
        let lossy1 = a
            .cells
            .iter()
            .find(|c| c.drop_rate == 0.4 && c.max_attempts == 1 && c.replicas == 1)
            .unwrap();
        assert!(lossy1.abandoned > 0, "drop 0.4 must defeat budget 1");
        // A sibling covered at least one of those losses.
        let lossy2 = a
            .cells
            .iter()
            .find(|c| c.drop_rate == 0.4 && c.max_attempts == 1 && c.replicas == 2)
            .unwrap();
        assert!(lossy2.failovers > 0, "the replica axis must engage");
        assert!(
            lossy2.succeeded > lossy1.succeeded,
            "a sibling must recover probes budget 1 alone loses"
        );
    }
}
