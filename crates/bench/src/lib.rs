//! # asj-bench — the experiment harness
//!
//! Regenerates every figure of the paper's evaluation (Section 5) plus the
//! ablations DESIGN.md calls out. Each experiment is a sweep over cluster
//! counts `k ∈ {1, 2, 4, 8, 16, 128}` (the paper's skew axis), averaged
//! over independent dataset seeds, reporting **total transferred bytes**
//! measured on the wire meters.
//!
//! Sweeps fan out over a scoped thread pool — each job owns its deployment
//! and links, so runs are fully independent (and deterministic per seed).
//!
//! Run `cargo run -p asj-bench --release --bin experiments -- all` to
//! reproduce everything; per-figure subcommands exist too. Results land as
//! aligned tables on stdout and CSV files under `results/`.

pub mod experiments;
pub mod fault;
pub mod runner;
pub mod table;

pub use experiments::{all_experiments, experiment_by_name, Experiment};
pub use runner::{AlgoKind, AlgoSpec, CellStats, SweepConfig, SweepResult};
pub use table::Table;
