//! Aligned-table and CSV rendering of sweep results.

use crate::runner::SweepResult;

/// A rendered result table (rows = skew levels, columns = algorithms).
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub row_header: String,
    pub result: SweepResult,
}

impl Table {
    pub fn new(
        title: impl Into<String>,
        row_header: impl Into<String>,
        result: SweepResult,
    ) -> Self {
        Table {
            title: title.into(),
            row_header: row_header.into(),
            result,
        }
    }

    /// Aligned text rendering (mean total bytes, ± std).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let mut widths = vec![self.row_header.len().max(8)];
        for a in &self.result.algos {
            widths.push(a.len().max(14));
        }
        let mut header = format!("{:>w$}", self.row_header, w = widths[0]);
        for (i, a) in self.result.algos.iter().enumerate() {
            header.push_str(&format!("  {:>w$}", a, w = widths[i + 1]));
        }
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for (ri, row) in self.result.rows.iter().enumerate() {
            out.push_str(&format!("{:>w$}", row, w = widths[0]));
            for (ai, _) in self.result.algos.iter().enumerate() {
                let c = &self.result.cells[ri][ai];
                let cell = format!("{:.0} ±{:.0}", c.mean_bytes, c.std_bytes);
                out.push_str(&format!("  {:>w$}", cell, w = widths[ai + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering with full per-cell statistics (aggregate bytes, the
    /// per-shard byte and pruning-rate columns of the shard-scaling
    /// experiment, and the saved-byte and hit-rate columns of the
    /// cache-ablation experiment).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{},algorithm,mean_bytes,std_bytes,mean_queries,mean_pairs,mean_objects,\
             mean_agg_bytes,mean_shard_bytes,pruning_rate,mean_saved_bytes,cache_hit_rate\n",
            self.row_header
        ));
        for (ri, row) in self.result.rows.iter().enumerate() {
            for (ai, algo) in self.result.algos.iter().enumerate() {
                let c = &self.result.cells[ri][ai];
                out.push_str(&format!(
                    "{row},{algo},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.3},{:.1},{:.3}\n",
                    c.mean_bytes,
                    c.std_bytes,
                    c.mean_queries,
                    c.mean_pairs,
                    c.mean_objects,
                    c.mean_agg_bytes,
                    c.mean_shard_bytes,
                    c.pruning_rate,
                    c.mean_saved_bytes,
                    c.cache_hit_rate
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CellStats;

    fn sample() -> Table {
        Table::new(
            "Fig X",
            "clusters",
            SweepResult {
                rows: vec!["1".into(), "128".into()],
                algos: vec!["mobiJoin".into(), "srJoin".into()],
                cells: vec![
                    vec![
                        CellStats {
                            mean_bytes: 100.0,
                            std_bytes: 5.0,
                            ..Default::default()
                        },
                        CellStats {
                            mean_bytes: 50.0,
                            std_bytes: 2.0,
                            ..Default::default()
                        },
                    ],
                    vec![
                        CellStats {
                            mean_bytes: 200.0,
                            std_bytes: 1.0,
                            ..Default::default()
                        },
                        CellStats {
                            mean_bytes: 220.0,
                            std_bytes: 9.0,
                            ..Default::default()
                        },
                    ],
                ],
            },
        )
    }

    #[test]
    fn render_contains_all_cells() {
        let txt = sample().render();
        assert!(txt.contains("Fig X"));
        assert!(txt.contains("mobiJoin"));
        assert!(txt.contains("100 ±5"));
        assert!(txt.contains("220 ±9"));
    }

    #[test]
    fn csv_row_count() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.starts_with("clusters,algorithm,"));
    }
}
