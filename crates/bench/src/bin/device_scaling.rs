//! `device_scaling` — concurrency as a first-class bench axis.
//!
//! The paper's deployment is many PDAs sharing a few spatial servers;
//! every earlier benchmark measured one device at a time. This binary
//! sweeps **device count × shard count × cache sharing** on the
//! event-loop carrier (one reactor thread multiplexing every connection)
//! and reports, per cell:
//!
//! * p50/p95/p99 request latency across every device's every request;
//! * per-shard queue-depth high-water marks and served counts from the
//!   reactor's [`EndpointStats`] gauges;
//! * a fairness ratio (slowest device's mean latency over the fastest's)
//!   — the "no device starves" check;
//! * total join pairs and summed meter bytes, so byte-accounting stays
//!   visible next to the wall-clock numbers.
//!
//! The **identity check** runs in every cell and fails the process on
//! divergence: the pooled run's per-device outcomes (response digests,
//! pairs, meters) must equal a serial replay (`workers = 1`) of the same
//! scripts against the same deployment. Results are written as JSON
//! (`BENCH_pr8.json` at the repo root by convention).
//!
//! ```text
//! device_scaling [--seeds N] [--points N] [--out PATH]
//! ```
//!
//! CI runs `--seeds 2 --points 150` (quick mode: the 1024-device row is
//! kept, the dataset just shrinks so each request is cheap).

use std::time::Instant;

use asj_core::{DeploymentBuilder, Side};
use asj_device::{run_traffic, TrafficConfig};
use asj_net::EndpointStats;
use asj_workloads::{default_space, uniform};

struct Config {
    seeds: u64,
    /// Objects per server side.
    points: usize,
    out: String,
}

struct Cell {
    devices: usize,
    shards: usize,
    cache: bool,
    seed: u64,
    workers: usize,
    requests: usize,
    pairs: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    fairness: f64,
    wall_ms: f64,
    serial_wall_ms: f64,
    uplink_bytes: u64,
    downlink_bytes: u64,
    depth_r: Vec<u64>,
    served_r: Vec<u64>,
    depth_s: Vec<u64>,
    served_s: Vec<u64>,
}

fn main() {
    let mut seeds: u64 = 3;
    let mut points: usize = 2000;
    let mut out = String::from("BENCH_pr8.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a number"));
            }
            "--points" => {
                points = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--points needs a number"));
            }
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let cfg = Config { seeds, points, out };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);

    // The three axes. The 1024-device row is the headline — thousands of
    // simulated devices over one reactor thread — and runs in quick mode
    // too; only the dataset size shrinks there.
    let device_grid = [64usize, 256, 1024];
    let shard_grid = [1usize, 3];
    let cache_grid = [false, true];

    eprintln!(
        "device_scaling: points={}, seeds={}, workers={}, grid={:?}×{:?}×{:?}",
        cfg.points, cfg.seeds, workers, device_grid, shard_grid, cache_grid
    );
    let started = Instant::now();
    let space = default_space();
    let mut cells: Vec<Cell> = Vec::new();

    for seed in 0..cfg.seeds {
        let r = uniform(&space, cfg.points, 7 + seed * 100);
        let s = uniform(&space, cfg.points, 1007 + seed * 100);
        for &shards in &shard_grid {
            for &cache in &cache_grid {
                let dep = DeploymentBuilder::new(r.clone(), s.clone())
                    .with_space(space)
                    .with_shards(shards, shards)
                    .with_client_cache(cache)
                    .event_loop()
                    .build();
                assert!(dep.is_event_loop(), "bench must run the async carrier");
                for &devices in &device_grid {
                    let tc = TrafficConfig::new(devices, workers, space);
                    let t0 = Instant::now();
                    let pooled = run_traffic(&tc, |_| dep.connect());
                    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

                    // Identity check: a serial replay of the same scripts
                    // must agree device-by-device on every deterministic
                    // field. (Fresh links per device, immutable servers —
                    // concurrency must be unobservable in the outcomes.)
                    let serial_cfg = TrafficConfig { workers: 1, ..tc };
                    let t1 = Instant::now();
                    let serial = run_traffic(&serial_cfg, |_| dep.connect());
                    let serial_wall_ms = t1.elapsed().as_secs_f64() * 1e3;
                    // With a shared cache, who warms it (and therefore who
                    // pays the miss bytes) is scheduling-dependent, so the
                    // meter-inclusive digest only applies cache-off; the
                    // decoded answers must agree in every cell.
                    let (pd, sd) = if cache {
                        (pooled.result_digest(), serial.result_digest())
                    } else {
                        (pooled.determinism_digest(), serial.determinism_digest())
                    };
                    assert_eq!(
                        pd, sd,
                        "pooled run diverged from serial replay \
                         (devices={devices} shards={shards} cache={cache} seed={seed})"
                    );
                    assert_eq!(pooled.outcomes.len(), devices, "a device starved");

                    let (p50, p95, p99) = pooled.latency_percentiles_us();
                    let fairness = pooled.fairness_ratio();
                    assert!(fairness.is_finite(), "fairness ratio diverged");
                    let (rm, sm) = pooled.summed_meters();
                    let gauges = |side| -> (Vec<u64>, Vec<u64>) {
                        let stats: Vec<_> = dep.event_stats(side);
                        (
                            stats
                                .iter()
                                .map(|g: &std::sync::Arc<EndpointStats>| g.max_queue_depth())
                                .collect(),
                            stats.iter().map(|g| g.served()).collect(),
                        )
                    };
                    let (depth_r, served_r) = gauges(Side::R);
                    let (depth_s, served_s) = gauges(Side::S);
                    eprintln!(
                        "  d={devices:>4} k={shards} cache={cache:<5} seed={seed}: \
                         p50={p50}µs p95={p95}µs p99={p99}µs fair={fairness:.2} \
                         wall={wall_ms:.0}ms serial={serial_wall_ms:.0}ms"
                    );
                    cells.push(Cell {
                        devices,
                        shards,
                        cache,
                        seed,
                        workers,
                        requests: devices * tc.steps * 3,
                        pairs: pooled.total_pairs(),
                        p50_us: p50,
                        p95_us: p95,
                        p99_us: p99,
                        fairness,
                        wall_ms,
                        serial_wall_ms,
                        uplink_bytes: rm.up_bytes + sm.up_bytes,
                        downlink_bytes: rm.down_bytes + sm.down_bytes,
                        depth_r,
                        served_r,
                        depth_s,
                        served_s,
                    });
                }
            }
        }
    }

    let json = render_json(&cfg, &cells);
    std::fs::write(&cfg.out, json).expect("cannot write JSON output");
    eprintln!(
        "device_scaling done in {:.1}s → {} ({} cells, all identical to serial replay)",
        started.elapsed().as_secs_f64(),
        cfg.out,
        cells.len()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: device_scaling [--seeds N] [--points N] [--out PATH]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn vec_json(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|n| n.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn render_json(cfg: &Config, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"device_scaling\",\n");
    out.push_str("  \"carrier\": \"event_loop\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"points\": {}, \"seeds\": {}}},\n",
        cfg.points, cfg.seeds
    ));
    out.push_str(&format!(
        "  \"checks\": {{\"pooled_identical_to_serial_replay\": true, \
         \"no_device_starved\": true, \"cells\": {}}},\n",
        cells.len()
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"devices\": {}, \"shards\": {}, \"cache_shared\": {}, \"seed\": {}, \
             \"workers\": {}, \"requests\": {}, \"pairs\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"fairness\": {:.3}, \
             \"wall_ms\": {:.1}, \"serial_wall_ms\": {:.1}, \
             \"uplink_bytes\": {}, \"downlink_bytes\": {}, \
             \"queue_depth_r\": {}, \"served_r\": {}, \
             \"queue_depth_s\": {}, \"served_s\": {}}}{}\n",
            c.devices,
            c.shards,
            c.cache,
            c.seed,
            c.workers,
            c.requests,
            c.pairs,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            c.fairness,
            c.wall_ms,
            c.serial_wall_ms,
            c.uplink_bytes,
            c.downlink_bytes,
            vec_json(&c.depth_r),
            vec_json(&c.served_r),
            vec_json(&c.depth_s),
            vec_json(&c.served_s),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
