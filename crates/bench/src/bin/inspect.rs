//! Debug/inspection tool: run every algorithm once on a chosen workload
//! and print the full report breakdown (bytes by direction, query mix,
//! operator statistics). Usage:
//!
//! ```text
//! inspect [--clusters K] [--seed N] [--buffer B] [--eps E] [--bucket]
//!         [--rail] [--sigma F]
//! ```

use asj_bench::runner::max_half_extent;
use asj_core::{DeploymentBuilder, DistributedJoin, JoinSpec, MobiJoin, SemiJoin, SrJoin, UpJoin};
use asj_workloads::{default_space, gaussian_clusters, germany_rail, RailSpec, SyntheticSpec};

fn main() {
    let mut clusters = 1usize;
    let mut seed = 7u64;
    let mut buffer = 800usize;
    let mut eps = 100.0f64;
    let mut bucket = false;
    let mut rail = false;
    let mut sigma = 0.025f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clusters" => clusters = args.next().unwrap().parse().unwrap(),
            "--seed" => seed = args.next().unwrap().parse().unwrap(),
            "--buffer" => buffer = args.next().unwrap().parse().unwrap(),
            "--eps" => eps = args.next().unwrap().parse().unwrap(),
            "--sigma" => sigma = args.next().unwrap().parse().unwrap(),
            "--bucket" => bucket = true,
            "--rail" => rail = true,
            other => panic!("unknown arg {other}"),
        }
    }
    let space = default_space();
    let r = gaussian_clusters(
        &SyntheticSpec::new(space, 1000, clusters).with_sigma_fraction(sigma),
        seed,
    );
    let (s, hint) = if rail {
        let s = germany_rail(&RailSpec::default(), seed);
        let h = max_half_extent(&s);
        (s, h)
    } else {
        (
            gaussian_clusters(
                &SyntheticSpec::new(space, 1000, clusters).with_sigma_fraction(sigma),
                seed + 1000,
            ),
            0.0,
        )
    };
    let dep = DeploymentBuilder::new(r, s)
        .with_buffer(buffer)
        .with_space(space)
        .cooperative()
        .build();
    let spec = JoinSpec::distance_join(eps)
        .with_bucket_nlsj(bucket)
        .with_mbr_half_extent(hint);

    let algos: Vec<Box<dyn DistributedJoin>> = vec![
        Box::new(MobiJoin),
        Box::new(UpJoin::default()),
        Box::new(SrJoin::default()),
        Box::new(SemiJoin::default()),
    ];
    println!(
        "workload: clusters={clusters} seed={seed} buffer={buffer} eps={eps} bucket={bucket} rail={rail} sigma={sigma}"
    );
    println!(
        "{:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "algo",
        "bytes",
        "pairs",
        "objs",
        "counts",
        "windows",
        "ranges",
        "splits",
        "hbsj",
        "nlsj",
        "pruned"
    );
    for a in algos {
        match a.run(&dep, &spec) {
            Ok(rep) => println!(
                "{:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
                rep.algorithm,
                rep.total_bytes(),
                rep.pairs.len(),
                rep.objects_downloaded(),
                rep.aggregate_queries(),
                rep.link_r.window_queries + rep.link_s.window_queries,
                rep.link_r.range_queries
                    + rep.link_s.range_queries
                    + rep.link_r.bucket_queries
                    + rep.link_s.bucket_queries,
                rep.stats.splits,
                rep.stats.hbsj_runs,
                rep.stats.nlsj_runs,
                rep.stats.pruned_windows,
            ),
            Err(e) => println!("{:>9} error: {e}", a.name()),
        }
    }
}
