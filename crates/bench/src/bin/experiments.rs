//! CLI: regenerate the paper's figures.
//!
//! ```text
//! experiments [all | fig6a | fig6b | fig7a | fig7b | fig8a | fig8b |
//!              ablation-baselines | ablation-bucket | ablation-confirm |
//!              ablation-batched-stats | ablation-mtu | shard-scaling |
//!              cache-ablation]
//!             [--seeds N] [--points N] [--out DIR]
//! ```
//!
//! Tables print to stdout; CSVs land in `--out` (default `results/`).

use asj_bench::{all_experiments, experiment_by_name, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut seeds: u64 = 10;
    let mut points: Option<usize> = None;
    let mut out_dir = String::from("results");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a number"));
            }
            "--points" => {
                points = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--points needs a number")),
                );
            }
            "--out" => {
                out_dir = it.next().unwrap_or_else(|| usage("--out needs a path"));
            }
            "--help" | "-h" => usage(""),
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = all_experiments().iter().map(|e| e.id.to_string()).collect();
    }

    std::fs::create_dir_all(&out_dir).expect("cannot create output dir");
    for id in which {
        let exp: Experiment =
            experiment_by_name(&id).unwrap_or_else(|| usage(&format!("unknown experiment {id}")));
        eprintln!("running {id} ({seeds} seeds)…");
        let start = std::time::Instant::now();
        let table = exp.run_sized(seeds, points);
        println!("{}", table.render());
        println!("expected shape: {}\n", exp.expectation);
        let csv_path = format!("{out_dir}/{id}.csv");
        std::fs::write(&csv_path, table.to_csv()).expect("cannot write CSV");
        eprintln!(
            "{id} done in {:.1}s → {csv_path}",
            start.elapsed().as_secs_f64()
        );
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: experiments [all|fig6a|fig6b|fig7a|fig7b|fig8a|fig8b|ablation-*|shard-scaling|cache-ablation|live-update|codec-v2] \
         [--seeds N] [--points N] [--out DIR]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
