//! `wallclock` — the repository's wall-clock performance trajectory.
//!
//! The experiment binary measures *transferred bytes* (the paper's
//! metric); this one measures *CPU time* on the hot paths the byte
//! optimizations ride on: store backends (scan vs grid vs aR-tree), the
//! wire codec, the serial vs partitioned-parallel plane sweep, the
//! zero-copy window-serving path, the wire-v2 object codec, and
//! end-to-end join throughput against a threaded server. Results are
//! written as JSON (`BENCH_pr7.json` at the repo root by convention) so
//! later PRs have a baseline to regress against; the v2 codec entries
//! also carry the `BENCH_pr5.json` v1 anchors for cross-machine context.
//!
//! ```text
//! wallclock [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks datasets and timing windows for CI; the **identity
//! check** (parallel sweep output ≡ serial sweep output, same pairs, same
//! order) runs in every mode and fails the process on divergence.
//!
//! Each `*_seedpath` benchmark re-implements the pre-optimization code
//! shape (materialize + growth-encode, window-materializing AvgArea) so
//! the reported speedups compare the shipped fast paths against what the
//! repository actually did before, measured on the same machine and data.

use std::time::{Duration, Instant};

use asj_bench::runner::max_half_extent;
use asj_core::{DeploymentBuilder, DistributedJoin, JoinSpec, SrJoin};
use asj_device::{memjoin, ResultCollector};
use asj_geom::grid::owns_reference_point;
use asj_geom::{
    pair_reference_point, plane_sweep_join, plane_sweep_join_parallel, plane_sweep_pairs, Grid,
    JoinPredicate, Rect, SpatialObject,
};
use asj_net::codec::{self, encode_response};
use asj_net::{QueryHandler, Request, Response, Update};
use asj_server::{GridStore, RTreeStore, ScanStore, SpatialService, SpatialStore, VersionedStore};
use asj_workloads::{default_space, gaussian_clusters, uniform, SyntheticSpec};
use bytes::{BufMut, Bytes, BytesMut};
use criterion::{Criterion, Measurement};

struct Config {
    quick: bool,
    /// Objects per store backend.
    store_n: usize,
    /// Objects per sweep input side.
    sweep_n: usize,
    /// Sweep join distance.
    sweep_eps: f64,
    warmup: Duration,
    measure: Duration,
}

impl Config {
    fn new(quick: bool) -> Self {
        if quick {
            Config {
                quick,
                store_n: 8_000,
                sweep_n: 15_000,
                sweep_eps: 100.0,
                warmup: Duration::from_millis(20),
                measure: Duration::from_millis(80),
            }
        } else {
            Config {
                quick,
                store_n: 35_000,
                sweep_n: 26_000,
                sweep_eps: 100.0,
                warmup: Duration::from_millis(100),
                measure: Duration::from_millis(300),
            }
        }
    }
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_pr7.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let cfg = Config::new(quick);
    let mut c = Criterion::default().with_windows(cfg.warmup, cfg.measure);

    eprintln!(
        "wallclock ({} mode): stores n={}, sweep n={}×{}",
        if quick { "quick" } else { "full" },
        cfg.store_n,
        cfg.sweep_n,
        cfg.sweep_n
    );
    let started = Instant::now();
    let sweep_pairs = bench_sweep(&mut c, &cfg);
    bench_grid_hash(&mut c, &cfg);
    bench_stores(&mut c, &cfg);
    let codec_sizes = bench_codec(&mut c);
    bench_serving(&mut c, &cfg);
    bench_updates(&mut c, &cfg);
    bench_end_to_end(&mut c, &cfg);

    let speedups = speedups(c.measurements());
    for (label, baseline, fast, factor) in &speedups {
        println!("speedup {label:<28} {factor:>7.2}×   ({baseline} vs {fast})");
    }
    let json = render_json(&cfg, c.measurements(), &speedups, sweep_pairs, codec_sizes);
    std::fs::write(&out, json).expect("cannot write JSON output");
    eprintln!(
        "wallclock done in {:.1}s → {out}",
        started.elapsed().as_secs_f64()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: wallclock [--quick] [--out PATH]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Serial vs partitioned-parallel plane sweep on a ≥ 50 k-pair input.
/// Returns the pair count after asserting the identity check at several
/// worker counts — the hook CI relies on.
fn bench_sweep(c: &mut Criterion, cfg: &Config) -> usize {
    let space = default_space();
    let r = uniform(&space, cfg.sweep_n, 7);
    let s = uniform(&space, cfg.sweep_n, 1007);
    let pred = JoinPredicate::WithinDistance(cfg.sweep_eps);

    let serial = plane_sweep_join(&r, &s, &pred);
    assert!(
        serial.len() >= 50_000,
        "sweep workload too small to be meaningful: {} pairs",
        serial.len()
    );
    // The check hook: parallel output must be identical — same pairs,
    // same order — at every sampled worker count, in quick mode too.
    for workers in [2, 4, 8] {
        assert_eq!(
            plane_sweep_join_parallel(&r, &s, &pred, workers),
            serial,
            "parallel sweep diverged from serial at {workers} workers"
        );
    }
    eprintln!(
        "check: parallel sweep ≡ serial sweep ({} pairs) at 2/4/8 workers",
        serial.len()
    );

    c.bench_function("sweep/serial", |b| {
        b.iter(|| std::hint::black_box(plane_sweep_join(&r, &s, &pred)))
    });
    for workers in [2usize, 4] {
        c.bench_function(&format!("sweep/parallel_w{workers}"), |b| {
            b.iter(|| std::hint::black_box(plane_sweep_join_parallel(&r, &s, &pred, workers)))
        });
    }
    serial.len()
}

/// The pre-PR grid-hash kernel: every object probes **all g² cells** when
/// hashing — the O(n·g²) shape this PR replaced with `Grid::covering`
/// index ranges. Output-identical to the shipped kernel; kept here as the
/// measured baseline.
fn grid_hash_join_seedpath(
    r: &[SpatialObject],
    s: &[SpatialObject],
    pred: &JoinPredicate,
    report_cell: &Rect,
    space: &Rect,
    out: &mut ResultCollector,
) {
    let n = r.len() + s.len();
    let g = (((n as f64) / 32.0).sqrt().ceil() as u32).clamp(1, 256);
    let grid = Grid::square(*report_cell, g);
    let max_half = r
        .iter()
        .chain(s.iter())
        .map(|o| (o.mbr.width().hypot(o.mbr.height())) * 0.5)
        .fold(0.0f64, f64::max);
    let ext = pred.window_extension() + max_half;
    let cells = grid.len();
    let mut r_buckets: Vec<Vec<SpatialObject>> = vec![Vec::new(); cells];
    let mut s_buckets: Vec<Vec<SpatialObject>> = vec![Vec::new(); cells];
    let hash = |objs: &[SpatialObject], buckets: &mut Vec<Vec<SpatialObject>>| {
        for o in objs {
            let probe = o.mbr.expand(ext);
            for (idx, cell) in grid.cells().enumerate() {
                if cell.intersects(&probe) {
                    buckets[idx].push(*o);
                }
            }
        }
    };
    hash(r, &mut r_buckets);
    hash(s, &mut s_buckets);
    for (idx, cell) in grid.cells().enumerate() {
        let (rb, sb) = (&r_buckets[idx], &s_buckets[idx]);
        if rb.is_empty() || sb.is_empty() {
            continue;
        }
        plane_sweep_pairs(rb, sb, pred, |a, b| {
            if let Some(p) = pair_reference_point(a, b, pred) {
                if owns_reference_point(&cell, space, &p) {
                    out.push(a.id, b.id);
                }
            }
        });
    }
}

/// The HBSJ in-memory kernel: seed O(n·g²) hash vs the shipped
/// covering-range hash (plus its parallel form).
fn bench_grid_hash(c: &mut Criterion, cfg: &Config) {
    let space = default_space();
    let n = cfg.sweep_n / 2;
    let r = uniform(&space, n, 21);
    let s = uniform(&space, n, 1021);
    let pred = JoinPredicate::WithinDistance(cfg.sweep_eps);

    let mut seed = ResultCollector::new();
    grid_hash_join_seedpath(&r, &s, &pred, &space, &space, &mut seed);
    let seed_pairs = seed.into_pairs();
    let mut shipped = ResultCollector::new();
    memjoin::grid_hash_join(&r, &s, &pred, &space, &space, &mut shipped);
    assert_eq!(
        shipped.into_pairs(),
        seed_pairs,
        "covering-range hash diverged from the seed kernel"
    );
    eprintln!(
        "check: covering-range grid hash ≡ seed grid hash ({} pairs)",
        seed_pairs.len()
    );

    c.bench_function("memjoin/grid_hash_seedpath", |b| {
        b.iter(|| {
            let mut out = ResultCollector::new();
            grid_hash_join_seedpath(&r, &s, &pred, &space, &space, &mut out);
            std::hint::black_box(out.len())
        })
    });
    c.bench_function("memjoin/grid_hash_covering", |b| {
        b.iter(|| {
            let mut out = ResultCollector::new();
            memjoin::grid_hash_join(&r, &s, &pred, &space, &space, &mut out);
            std::hint::black_box(out.len())
        })
    });
    c.bench_function("memjoin/grid_hash_covering_w4", |b| {
        b.iter(|| {
            let mut out = ResultCollector::new();
            memjoin::grid_hash_join_with_workers(&r, &s, &pred, &space, &space, 4, &mut out);
            std::hint::black_box(out.len())
        })
    });
}

/// Store backends under the primitive query set.
fn bench_stores(c: &mut Criterion, cfg: &Config) {
    let space = default_space();
    let objs = uniform(&space, cfg.store_n, 1);
    let scan = ScanStore::new(objs.clone());
    let grid = GridStore::new(objs.clone());
    let tree = RTreeStore::new(objs.clone());
    // ~1 % of the space; clustered data would make this noisier.
    let w = Rect::from_coords(2000.0, 2000.0, 3000.0, 3000.0);
    let big = Rect::from_coords(500.0, 500.0, 9500.0, 9500.0);

    c.bench_function("store/scan_window_1pct", |b| {
        b.iter(|| std::hint::black_box(scan.window(&w)))
    });
    c.bench_function("store/grid_window_1pct", |b| {
        b.iter(|| std::hint::black_box(grid.window(&w)))
    });
    c.bench_function("store/rtree_window_1pct", |b| {
        b.iter(|| std::hint::black_box(tree.window(&w)))
    });
    c.bench_function("store/scan_count", |b| {
        b.iter(|| std::hint::black_box(scan.count(&big)))
    });
    c.bench_function("store/rtree_count_aggregate", |b| {
        b.iter(|| std::hint::black_box(tree.count(&big)))
    });
    // AvgArea: the seed path materialized the whole window just to fold
    // areas; the aR store now answers from (count, area_sum) aggregates.
    let inner = tree.tree();
    c.bench_function("store/rtree_avg_area_seedpath", |b| {
        b.iter(|| {
            let objs = inner.window(&big);
            std::hint::black_box(if objs.is_empty() {
                0.0
            } else {
                objs.iter().map(|o| o.mbr.area()).sum::<f64>() / objs.len() as f64
            })
        })
    });
    c.bench_function("store/rtree_avg_area_aggregate", |b| {
        b.iter(|| std::hint::black_box(tree.avg_area(&big)))
    });
}

/// The pre-PR response encoder: growth-allocated buffer, no exact
/// reserve — byte-identical output, different allocation behavior.
fn encode_response_seedpath(resp: &Response) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match resp {
        Response::Objects(objs) => {
            buf.put_u8(0x81);
            buf.put_u32(objs.len() as u32);
            for o in objs {
                buf.put_u32(o.id);
                buf.put_f32(o.mbr.min.x as f32);
                buf.put_f32(o.mbr.min.y as f32);
                buf.put_f32(o.mbr.max.x as f32);
                buf.put_f32(o.mbr.max.y as f32);
            }
        }
        other => return encode_response(other),
    }
    buf.freeze()
}

/// Codec throughput: exact-reserve encode vs the seed growth encode, plus
/// the wire-v2 frame (delta-varint ids, window-quantized coordinates).
/// Returns `(v1_bytes, v2_bytes)` of the 1 k-object frame so the report
/// can state the measured density ratio next to the ns/object numbers.
fn bench_codec(c: &mut Criterion) -> (usize, usize) {
    let space = default_space();
    let objs = uniform(&space, 1000, 4);
    let resp = Response::Objects(objs.clone());
    assert_eq!(
        encode_response_seedpath(&resp),
        encode_response(&resp),
        "seed-path replica must stay byte-identical"
    );
    c.bench_function("codec/encode_1k_objects_seedpath", |b| {
        b.iter(|| std::hint::black_box(encode_response_seedpath(&resp)))
    });
    c.bench_function("codec/encode_1k_objects_exact_reserve", |b| {
        b.iter(|| std::hint::black_box(encode_response(&resp)))
    });
    let encoded = encode_response(&resp);
    c.bench_function("codec/decode_1k_objects", |b| {
        b.iter(|| std::hint::black_box(codec::decode_response(encoded.clone()).unwrap()))
    });

    // v2: every benched object sits inside the quantization window (the
    // whole space), mirroring a WINDOW download — the density headline.
    let ctx = codec::QuantCtx::new(space);
    let encode_v2 = || {
        let mut buf = BytesMut::new();
        codec::encode_response_versioned(&resp, codec::WireVersion::V2, ctx.as_ref(), &mut buf);
        buf.freeze()
    };
    let encoded_v2 = encode_v2();
    assert_eq!(
        codec::decode_response(encoded.clone()).unwrap(),
        codec::decode_response_ctx(encoded_v2.clone(), ctx.as_ref()).unwrap(),
        "v2 decode must be bit-equal to v1"
    );
    eprintln!(
        "check: v2 objects frame decodes bit-equal to v1 ({} B vs {} B, {:.2}× denser)",
        encoded_v2.len(),
        encoded.len(),
        encoded.len() as f64 / encoded_v2.len() as f64
    );
    c.bench_function("codec/codec_v2_encode_1k_objects", |b| {
        b.iter(|| std::hint::black_box(encode_v2()))
    });
    c.bench_function("codec/codec_v2_decode_1k_objects", |b| {
        b.iter(|| {
            std::hint::black_box(
                codec::decode_response_ctx(encoded_v2.clone(), ctx.as_ref()).unwrap(),
            )
        })
    });
    (encoded.len(), encoded_v2.len())
}

/// The window-serving allocations path: materialize-then-encode (seed)
/// vs the visitor zero-copy path with a reused buffer (what the channel
/// server now runs per request).
fn bench_serving(c: &mut Criterion, cfg: &Config) {
    let space = default_space();
    let objs = uniform(&space, cfg.store_n, 2);
    let svc = SpatialService::new(RTreeStore::new(objs));
    // A hot window: ~55 % of the dataset qualifies.
    let w = Rect::from_coords(1000.0, 1000.0, 8500.0, 8500.0);
    let req = Request::Window(w);
    {
        // Sanity: both paths produce the same bytes (the differential
        // suite proves it exhaustively; this pins the benched inputs).
        let mut buf = BytesMut::new();
        svc.handle_into(req.clone(), codec::WireVersion::V1, &mut buf);
        assert_eq!(
            &buf[..],
            encode_response(&svc.handle(req.clone())).as_slice()
        );
    }
    c.bench_function("serve/window_seedpath_materialize", |b| {
        b.iter(|| std::hint::black_box(encode_response_seedpath(&svc.handle(req.clone()))))
    });
    let mut buf = BytesMut::new();
    c.bench_function("serve/window_zerocopy_reused_buffer", |b| {
        b.iter(|| {
            buf.clear();
            svc.handle_into(req.clone(), codec::WireVersion::V1, &mut buf);
            std::hint::black_box(Bytes::copy_from_slice(&buf))
        })
    });
}

/// Generational stores: window serving through a `VersionedStore`
/// snapshot vs the frozen R-tree it wraps (the target is ≤ 5 % overhead —
/// a lock-free read plus two `Arc` bumps per query), and update-apply
/// throughput batched vs one-at-a-time (each apply is a copy-on-write
/// rebuild, so batching amortizes the rebuild across the batch).
fn bench_updates(c: &mut Criterion, cfg: &Config) {
    let space = default_space();
    let objs = uniform(&space, cfg.store_n, 3);
    let frozen = RTreeStore::new(objs.clone());
    let versioned = VersionedStore::new(objs.clone(), RTreeStore::new);
    let w = Rect::from_coords(2000.0, 2000.0, 3000.0, 3000.0);
    assert_eq!(
        frozen.window(&w),
        versioned.window(&w),
        "generation 0 must answer exactly like the frozen store"
    );

    c.bench_function("store/window_frozen_rtree", |b| {
        b.iter(|| std::hint::black_box(frozen.window(&w)))
    });
    c.bench_function("store/window_versioned_rtree", |b| {
        b.iter(|| std::hint::black_box(versioned.window(&w)))
    });

    // The same 32 moves applied as one tick vs 32 separate ticks.
    let batch: Vec<Update> = objs
        .iter()
        .take(32)
        .map(|o| Update::Move {
            id: o.id,
            to: o.mbr.expand(1.0),
        })
        .collect();
    c.bench_function("versioned/apply_batch32", |b| {
        b.iter(|| std::hint::black_box(versioned.apply(&batch)))
    });
    c.bench_function("versioned/apply_32_singly", |b| {
        b.iter(|| {
            for u in &batch {
                std::hint::black_box(versioned.apply(std::slice::from_ref(u)));
            }
        })
    });
}

/// End-to-end join throughput against a threaded server deployment.
fn bench_end_to_end(c: &mut Criterion, cfg: &Config) {
    let space = default_space();
    let n = if cfg.quick { 400 } else { 1000 };
    let r = gaussian_clusters(&SyntheticSpec::new(space, n, 4), 7);
    let s = gaussian_clusters(&SyntheticSpec::new(space, n, 4), 1007);
    let hint = max_half_extent(&s);
    let dep = DeploymentBuilder::new(r, s)
        .with_space(space)
        .with_buffer(800)
        .threaded()
        .build();
    let spec = JoinSpec::distance_join(100.0).with_mbr_half_extent(hint);
    c.bench_function("e2e/srjoin_threaded_server", |b| {
        b.iter(|| std::hint::black_box(SrJoin::default().run(&dep, &spec).unwrap().total_bytes()))
    });

    // The same join over the event-loop carrier: every request now rides
    // the shared reactor thread instead of a per-server thread pair. The
    // byte totals must agree — the carrier is unobservable in the
    // protocol — and the ns ratio says what the multiplexing costs.
    let (r2, s2) = {
        let r = gaussian_clusters(&SyntheticSpec::new(space, n, 4), 7);
        let s = gaussian_clusters(&SyntheticSpec::new(space, n, 4), 1007);
        (r, s)
    };
    let dep_ev = DeploymentBuilder::new(r2, s2)
        .with_space(space)
        .with_buffer(800)
        .event_loop()
        .build();
    let threaded_bytes = SrJoin::default().run(&dep, &spec).unwrap().total_bytes();
    let event_bytes = SrJoin::default().run(&dep_ev, &spec).unwrap().total_bytes();
    assert_eq!(
        threaded_bytes, event_bytes,
        "event-loop carrier changed the metered byte total"
    );
    eprintln!("check: event-loop e2e join ≡ threaded join ({event_bytes} bytes)");
    c.bench_function("e2e/srjoin_event_loop", |b| {
        b.iter(|| {
            std::hint::black_box(SrJoin::default().run(&dep_ev, &spec).unwrap().total_bytes())
        })
    });
}

/// The headline ratios later PRs regress against.
fn speedups(ms: &[Measurement]) -> Vec<(String, String, String, f64)> {
    let mean = |name: &str| -> Option<f64> {
        ms.iter()
            .find(|m| m.name == name)
            .map(|m| m.mean_ns)
            .filter(|&ns| ns > 0.0)
    };
    let pairs = [
        (
            "window_serving_zero_copy",
            "serve/window_seedpath_materialize",
            "serve/window_zerocopy_reused_buffer",
        ),
        (
            "avg_area_aggregates",
            "store/rtree_avg_area_seedpath",
            "store/rtree_avg_area_aggregate",
        ),
        (
            "count_aggregates_vs_scan",
            "store/scan_count",
            "store/rtree_count_aggregate",
        ),
        (
            "grid_hash_covering_ranges",
            "memjoin/grid_hash_seedpath",
            "memjoin/grid_hash_covering",
        ),
        (
            "codec_exact_reserve",
            "codec/encode_1k_objects_seedpath",
            "codec/encode_1k_objects_exact_reserve",
        ),
        // The v2 frame trades CPU for wire density; these ratios say how
        // much. < 1.0 means v2 costs more CPU per 1 k objects than v1.
        (
            "codec_v2_encode",
            "codec/encode_1k_objects_exact_reserve",
            "codec/codec_v2_encode_1k_objects",
        ),
        (
            "codec_v2_decode",
            "codec/decode_1k_objects",
            "codec/codec_v2_decode_1k_objects",
        ),
        ("parallel_sweep_w4", "sweep/serial", "sweep/parallel_w4"),
        // ~1.0 expected: the reactor multiplexes instead of dedicating a
        // thread per server; per-request overhead should stay in the
        // channel-hop noise.
        (
            "threaded_vs_event_loop_e2e",
            "e2e/srjoin_event_loop",
            "e2e/srjoin_threaded_server",
        ),
        // ~1.0 expected: the versioned wrapper must stay within ~5 % of
        // the frozen store on the window-serving hot path.
        (
            "frozen_vs_versioned_window",
            "store/window_versioned_rtree",
            "store/window_frozen_rtree",
        ),
        (
            "update_apply_throughput",
            "versioned/apply_32_singly",
            "versioned/apply_batch32",
        ),
    ];
    pairs
        .iter()
        .filter_map(|(label, base, fast)| {
            Some((
                label.to_string(),
                base.to_string(),
                fast.to_string(),
                mean(base)? / mean(fast)?,
            ))
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    cfg: &Config,
    ms: &[Measurement],
    speedups: &[(String, String, String, f64)],
    sweep_pairs: usize,
    codec_sizes: (usize, usize),
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"wallclock\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg.quick { "quick" } else { "full" }
    ));
    out.push_str(&format!(
        "  \"config\": {{\"store_n\": {}, \"sweep_n\": {}, \"sweep_eps\": {}, \"measure_ms\": {}}},\n",
        cfg.store_n,
        cfg.sweep_n,
        cfg.sweep_eps,
        cfg.measure.as_millis()
    ));
    out.push_str(&format!(
        "  \"checks\": {{\"parallel_sweep_identical_to_serial\": true, \"sweep_pairs\": {sweep_pairs}}},\n"
    ));
    // The pr5 anchors let a reader compare the v2 codec's ns/object
    // against the recorded v1 trajectory even across machines.
    let (v1_bytes, v2_bytes) = codec_sizes;
    out.push_str(&format!(
        "  \"codec_v2\": {{\"objects\": 1000, \"v1_bytes\": {v1_bytes}, \"v2_bytes\": {v2_bytes}, \
         \"density_ratio\": {:.3}, \"pr5_v1_anchors_ns\": {{\
         \"encode_1k_objects_seedpath\": 30712.2, \
         \"encode_1k_objects_exact_reserve\": 30557.5, \
         \"decode_1k_objects\": 36197.4}}}},\n",
        v2_bytes as f64 / v1_bytes as f64
    ));
    out.push_str("  \"entries\": [\n");
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
            json_escape(&m.name),
            m.mean_ns,
            m.iterations,
            if i + 1 == ms.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": [\n");
    for (i, (label, base, fast, factor)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"baseline\": \"{}\", \"fast\": \"{}\", \"speedup\": {:.3}}}{}\n",
            json_escape(label),
            json_escape(base),
            json_escape(fast),
            factor,
            if i + 1 == speedups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
