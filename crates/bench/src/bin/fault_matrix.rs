//! CLI: the drop-rate × retry-budget × replica-count fault matrix.
//!
//! ```text
//! fault-matrix [--seeds N] [--points N] [--replicas N[,N...]] [--out DIR]
//! ```
//!
//! Prints the success/retry/failover table to stdout, writes
//! `<out>/fault-matrix.csv`, and fails (non-zero exit) if success within
//! the retry budget is not monotone in the budget at every (drop rate,
//! replica count), or not monotone in the replica count at every
//! (drop rate, budget) — the invariants CI pins.

use asj_bench::fault::{check_fault_matrix, run_fault_matrix, FaultMatrixConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FaultMatrixConfig::default();
    let mut out_dir = String::from("results");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                cfg.seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a number"));
            }
            "--points" => {
                cfg.n_points = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--points needs a number"));
            }
            "--replicas" => {
                let spec = it
                    .next()
                    .unwrap_or_else(|| usage("--replicas needs a comma-separated list"));
                cfg.replica_counts = spec
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--replicas needs numbers"))
                    })
                    .collect();
                if cfg.replica_counts.is_empty() || cfg.replica_counts.contains(&0) {
                    usage("--replicas needs positive counts");
                }
            }
            "--out" => {
                out_dir = it.next().unwrap_or_else(|| usage("--out needs a path"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }

    eprintln!(
        "running fault matrix ({} seeds, {} points, {} drop rates × {} budgets \
         × {} replica counts)…",
        cfg.seeds,
        cfg.n_points,
        cfg.drop_rates.len(),
        cfg.budgets.len(),
        cfg.replica_counts.len()
    );
    let start = std::time::Instant::now();
    let matrix = run_fault_matrix(&cfg);
    check_fault_matrix(&matrix, &cfg);
    print!("{}", matrix.to_csv());
    std::fs::create_dir_all(&out_dir).expect("cannot create output dir");
    let csv_path = format!("{out_dir}/fault-matrix.csv");
    std::fs::write(&csv_path, matrix.to_csv()).expect("cannot write CSV");
    eprintln!(
        "fault-matrix done in {:.1}s → {csv_path}",
        start.elapsed().as_secs_f64()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: fault-matrix [--seeds N] [--points N] [--replicas N[,N...]] [--out DIR]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
