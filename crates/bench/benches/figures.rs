//! Criterion benches over the paper's figure configurations (reduced to
//! bench-friendly sizes: one representative skew per regime, one seed).
//! The *real* regenerators live in the `experiments` binary; these benches
//! track the wall-clock of one join under each figure's setup so
//! regressions in the algorithms or substrates show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use asj_core::{DeploymentBuilder, DistributedJoin, JoinSpec, MobiJoin, SemiJoin, SrJoin, UpJoin};
use asj_workloads::{default_space, gaussian_clusters, germany_rail, RailSpec, SyntheticSpec};

fn synthetic_dep(clusters: usize, buffer: usize) -> asj_core::Deployment {
    let space = default_space();
    let r = gaussian_clusters(&SyntheticSpec::new(space, 1000, clusters), 7);
    let s = gaussian_clusters(&SyntheticSpec::new(space, 1000, clusters), 1007);
    DeploymentBuilder::new(r, s)
        .with_buffer(buffer)
        .with_space(space)
        .build()
}

fn bench_fig7(c: &mut Criterion) {
    for (fig, buffer) in [("fig7a_buf100", 100), ("fig7b_buf800", 800)] {
        for clusters in [1usize, 128] {
            let dep = synthetic_dep(clusters, buffer);
            let spec = JoinSpec::distance_join(100.0);
            let mut group = c.benchmark_group(format!("{fig}/k{clusters}"));
            group.bench_function("mobiJoin", |b| {
                b.iter(|| black_box(MobiJoin.run(&dep, &spec).unwrap().total_bytes()))
            });
            group.bench_function("upJoin", |b| {
                b.iter(|| black_box(UpJoin::default().run(&dep, &spec).unwrap().total_bytes()))
            });
            group.bench_function("srJoin", |b| {
                b.iter(|| black_box(SrJoin::default().run(&dep, &spec).unwrap().total_bytes()))
            });
            group.finish();
        }
    }
}

fn bench_fig8(c: &mut Criterion) {
    let space = default_space();
    let rail = germany_rail(&RailSpec::default(), 3);
    let hint = asj_bench::runner::max_half_extent(&rail);
    let r = gaussian_clusters(&SyntheticSpec::new(space, 1000, 4), 11);
    let dep = DeploymentBuilder::new(r, rail)
        .with_buffer(800)
        .with_space(space)
        .cooperative()
        .build();
    let spec = JoinSpec::distance_join(100.0)
        .with_bucket_nlsj(true)
        .with_mbr_half_extent(hint);

    let mut group = c.benchmark_group("fig8_rail/k4");
    group.sample_size(10);
    group.bench_function("upJoin", |b| {
        b.iter(|| black_box(UpJoin::default().run(&dep, &spec).unwrap().total_bytes()))
    });
    group.bench_function("srJoin", |b| {
        b.iter(|| black_box(SrJoin::default().run(&dep, &spec).unwrap().total_bytes()))
    });
    group.bench_function("semiJoin", |b| {
        b.iter(|| black_box(SemiJoin::default().run(&dep, &spec).unwrap().total_bytes()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7, bench_fig8);
criterion_main!(benches);
