//! Criterion micro-benchmarks of the substrates: R-tree queries, the
//! plane-sweep / grid-hash join kernels, and the wire codec.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use asj_device::{memjoin, ResultCollector};
use asj_geom::{plane_sweep_join, JoinPredicate, Rect, SpatialObject};
use asj_net::codec;
use asj_net::{Request, Response};
use asj_rtree::RTree;
use asj_workloads::{default_space, gaussian_clusters, uniform, SyntheticSpec};

fn rtree_benches(c: &mut Criterion) {
    let pts = uniform(&default_space(), 35_000, 1);
    let tree = RTree::bulk_load(pts.clone(), 16);
    let w = Rect::from_coords(2000.0, 2000.0, 3000.0, 3000.0);

    c.bench_function("rtree/bulk_load_35k", |b| {
        b.iter_batched(
            || pts.clone(),
            |p| black_box(RTree::bulk_load(p, 16)),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("rtree/count_window", |b| {
        b.iter(|| black_box(tree.count(&w)))
    });
    c.bench_function("rtree/window_1pct", |b| {
        b.iter(|| black_box(tree.window(&w)))
    });
    c.bench_function("rtree/eps_range", |b| {
        let q = Rect::point(asj_geom::Point::new(5000.0, 5000.0));
        b.iter(|| black_box(tree.eps_range(&q, 200.0)))
    });
}

fn join_kernel_benches(c: &mut Criterion) {
    let space = default_space();
    let r = gaussian_clusters(&SyntheticSpec::new(space, 1000, 8), 2);
    let s = gaussian_clusters(&SyntheticSpec::new(space, 1000, 8), 3);
    let pred = JoinPredicate::WithinDistance(100.0);

    c.bench_function("memjoin/plane_sweep_1k_x_1k", |b| {
        b.iter(|| black_box(plane_sweep_join(&r, &s, &pred)))
    });
    c.bench_function("memjoin/grid_hash_1k_x_1k", |b| {
        b.iter(|| {
            let mut out = ResultCollector::new();
            memjoin::grid_hash_join(&r, &s, &pred, &space, &space, &mut out);
            black_box(out.len())
        })
    });
}

fn codec_benches(c: &mut Criterion) {
    let objs: Vec<SpatialObject> = uniform(&default_space(), 1000, 4);
    let resp = Response::Objects(objs.clone());
    let req = Request::BucketEpsRange {
        probes: objs,
        eps: 100.0,
    };

    c.bench_function("codec/encode_1k_objects", |b| {
        b.iter(|| black_box(codec::encode_response(&resp)))
    });
    let encoded = codec::encode_response(&resp);
    c.bench_function("codec/decode_1k_objects", |b| {
        b.iter(|| black_box(codec::decode_response(encoded.clone()).unwrap()))
    });
    c.bench_function("codec/encode_bucket_request_1k", |b| {
        b.iter(|| black_box(codec::encode_request(&req)))
    });
}

criterion_group!(benches, rtree_benches, join_kernel_benches, codec_benches);
criterion_main!(benches);
