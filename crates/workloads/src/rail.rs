//! Synthetic substitute for the Germany railway-segments dataset.
//!
//! The paper's Figure 8 joins a "real dataset (with around 35 K objects)
//! representing the railway segments of Germany" against a 1000-point
//! synthetic dataset. The original file is not redistributable, so this
//! module builds the closest synthetic equivalent (DESIGN.md §3):
//!
//! 1. place `cities` hub points — a few metropolitan hubs plus
//!    uniformly scattered towns (population-like skew);
//! 2. connect every city to its `degree` nearest neighbours (a crude but
//!    effective proxy for a national rail graph: corridors + local spurs);
//! 3. subdivide each line into short segments with smooth lateral jitter
//!    (tracks curve), until ~`target_segments` **thin, elongated MBRs**
//!    exist.
//!
//! What Figure 8 actually exercises is *a large, strongly skewed dataset of
//! small line-segment MBRs with big empty regions between corridors* — all
//! properties this generator reproduces deterministically.

use asj_geom::{Point, Rect, SpatialObject};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::snap;

/// Parameters of the synthetic rail network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailSpec {
    pub space: Rect,
    /// Total number of hub cities (default 64).
    pub cities: usize,
    /// Nearest-neighbour connections per city (default 3).
    pub degree: usize,
    /// Approximate number of output segments (default 35 000).
    pub target_segments: usize,
    /// Maximum lateral jitter of the track as a fraction of segment
    /// length (tracks are curvy but locally smooth).
    pub jitter: f64,
}

impl Default for RailSpec {
    fn default() -> Self {
        RailSpec {
            space: crate::default_space(),
            cities: 64,
            degree: 3,
            target_segments: 35_000,
            jitter: 0.4,
        }
    }
}

/// Generates the rail dataset (deterministic in `seed`).
pub fn germany_rail(spec: &RailSpec, seed: u64) -> Vec<SpatialObject> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5261_696c); // "Rail"
    let cities = place_cities(spec, &mut rng);
    let edges = connect_nearest(&cities, spec.degree);

    // Total network length decides the segment length that yields the
    // requested cardinality.
    let total_len: f64 = edges
        .iter()
        .map(|&(a, b)| cities[a].distance(&cities[b]))
        .sum();
    let seg_len = (total_len / spec.target_segments as f64).max(1e-6);

    let mut out = Vec::with_capacity(spec.target_segments + 1024);
    let mut id = 0u32;
    for &(a, b) in &edges {
        subdivide_edge(
            cities[a], cities[b], seg_len, spec, &mut rng, &mut id, &mut out,
        );
    }
    out
}

fn place_cities(spec: &RailSpec, rng: &mut ChaCha8Rng) -> Vec<Point> {
    let hubs = (spec.cities / 8).max(1);
    let mut cities = Vec::with_capacity(spec.cities);
    // Metropolitan hubs anywhere.
    let hub_points: Vec<Point> = (0..hubs)
        .map(|_| {
            Point::new(
                rng.random_range(spec.space.min.x..spec.space.max.x),
                rng.random_range(spec.space.min.y..spec.space.max.y),
            )
        })
        .collect();
    cities.extend(hub_points.iter().copied());
    // Towns cluster loosely around hubs (population skew) with a uniform
    // background.
    let sigma = spec.space.width() * 0.12;
    while cities.len() < spec.cities {
        if rng.random_range(0.0..1.0) < 0.7 {
            let h = hub_points[rng.random_range(0..hub_points.len())];
            let x =
                (h.x + rng.random_range(-sigma..sigma)).clamp(spec.space.min.x, spec.space.max.x);
            let y =
                (h.y + rng.random_range(-sigma..sigma)).clamp(spec.space.min.y, spec.space.max.y);
            cities.push(Point::new(x, y));
        } else {
            cities.push(Point::new(
                rng.random_range(spec.space.min.x..spec.space.max.x),
                rng.random_range(spec.space.min.y..spec.space.max.y),
            ));
        }
    }
    cities
}

/// Undirected nearest-neighbour edges, deduplicated.
fn connect_nearest(cities: &[Point], degree: usize) -> Vec<(usize, usize)> {
    let mut edges = std::collections::BTreeSet::new();
    for (i, c) in cities.iter().enumerate() {
        let mut dists: Vec<(f64, usize)> = cities
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, p)| (c.distance(p), j))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, j) in dists.iter().take(degree) {
            edges.insert((i.min(j), i.max(j)));
        }
    }
    edges.into_iter().collect()
}

/// Walks the edge emitting jittered sub-segments of ~`seg_len`.
fn subdivide_edge(
    a: Point,
    b: Point,
    seg_len: f64,
    spec: &RailSpec,
    rng: &mut ChaCha8Rng,
    id: &mut u32,
    out: &mut Vec<SpatialObject>,
) {
    let len = a.distance(&b);
    if len == 0.0 {
        return;
    }
    let steps = (len / seg_len).ceil().max(1.0) as usize;
    let (dx, dy) = ((b.x - a.x) / steps as f64, (b.y - a.y) / steps as f64);
    // Perpendicular unit vector for lateral jitter.
    let norm = (dx * dx + dy * dy).sqrt();
    let (px, py) = (-dy / norm, dx / norm);
    let amp = seg_len * spec.jitter;

    // Smooth random-walk offset so consecutive segments connect.
    let mut offset = 0.0f64;
    let mut prev = a;
    for step in 1..=steps {
        offset = (offset + rng.random_range(-amp..amp)).clamp(-3.0 * amp, 3.0 * amp);
        let t = step as f64;
        let raw = Point::new(a.x + dx * t + px * offset, a.y + dy * t + py * offset);
        let next = Point::new(
            raw.x.clamp(spec.space.min.x, spec.space.max.x),
            raw.y.clamp(spec.space.min.y, spec.space.max.y),
        );
        let mbr = Rect::new(
            Point::new(snap(prev.x), snap(prev.y)),
            Point::new(snap(next.x), snap(next.y)),
        );
        out.push(SpatialObject::new(*id, mbr));
        *id += 1;
        prev = next;
    }
}

/// Parameters of a [`TrajectoryStream`]: how far objects drift per tick
/// and how many of them move at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectorySpec {
    /// The space objects are confined to; drifting objects clamp at its
    /// edges (trains do not leave the map).
    pub space: Rect,
    /// Maximum per-axis displacement per tick.
    pub step: f64,
    /// Fraction of the fleet that moves each tick (the rest idles).
    pub move_fraction: f64,
}

impl Default for TrajectorySpec {
    fn default() -> Self {
        let space = crate::default_space();
        TrajectorySpec {
            space,
            step: space.width() * 0.01,
            move_fraction: 0.2,
        }
    }
}

/// A pinned-seed stream of stepwise movement over a fleet of objects —
/// the update workload of the live-update experiments.
///
/// Each [`tick`](TrajectoryStream::tick) picks a deterministic random
/// subset of the fleet, drifts every picked object's MBR by an
/// independent random-walk step (extent preserved, clamped to the space,
/// coordinates f32-snapped like all generators in this crate), and
/// returns the objects that moved *at their new position*. Callers map
/// them onto wire updates (`Update::Move { id, to: o.mbr }`); keeping
/// the stream free of any protocol dependency lets oracles replay the
/// same batches against offline stores.
///
/// Deterministic in `(initial objects, spec, seed)`: two streams built
/// alike produce identical tick sequences forever.
pub struct TrajectoryStream {
    spec: TrajectorySpec,
    rng: ChaCha8Rng,
    fleet: Vec<SpatialObject>,
}

impl TrajectoryStream {
    pub fn new(objects: &[SpatialObject], spec: TrajectorySpec, seed: u64) -> Self {
        TrajectoryStream {
            spec,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5452_414a), // "TRAJ"
            fleet: objects.to_vec(),
        }
    }

    /// The fleet at its current (post-tick) positions.
    pub fn objects(&self) -> &[SpatialObject] {
        &self.fleet
    }

    /// Advances every object one step; returns the movers.
    pub fn tick(&mut self) -> Vec<SpatialObject> {
        let space = self.spec.space;
        let step = self.spec.step;
        let mut moved = Vec::new();
        for o in &mut self.fleet {
            if self.rng.random_range(0.0..1.0) >= self.spec.move_fraction {
                continue;
            }
            let (dx, dy) = (
                self.rng.random_range(-step..=step),
                self.rng.random_range(-step..=step),
            );
            // Translate the MBR, keeping its extent, then clamp the whole
            // box back into the space before snapping.
            let (w, h) = (o.mbr.width(), o.mbr.height());
            let min_x = (o.mbr.min.x + dx).clamp(space.min.x, space.max.x - w);
            let min_y = (o.mbr.min.y + dy).clamp(space.min.y, space.max.y - h);
            o.mbr = Rect::new(
                Point::new(snap(min_x), snap(min_y)),
                Point::new(snap(min_x + w), snap(min_y + h)),
            );
            moved.push(*o);
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_near_target_cardinality() {
        let spec = RailSpec {
            target_segments: 5_000,
            ..RailSpec::default()
        };
        let a = germany_rail(&spec, 1);
        let b = germany_rail(&spec, 1);
        assert_eq!(a, b);
        // Ceil-per-edge overshoots a little; stay within 15 %.
        assert!(
            (a.len() as f64) > 5_000.0 * 0.85 && (a.len() as f64) < 5_000.0 * 1.15,
            "got {} segments",
            a.len()
        );
    }

    #[test]
    fn default_spec_is_35k_scale() {
        let rail = germany_rail(&RailSpec::default(), 2);
        assert!(
            (30_000..42_000).contains(&rail.len()),
            "got {} segments",
            rail.len()
        );
    }

    #[test]
    fn segments_are_small_and_in_space() {
        let spec = RailSpec {
            target_segments: 3_000,
            ..RailSpec::default()
        };
        let rail = germany_rail(&spec, 3);
        let space = spec.space;
        let diag = (space.width().powi(2) + space.height().powi(2)).sqrt();
        for s in &rail {
            assert!(space.contains_rect(&s.mbr), "segment escapes space");
            let d = (s.mbr.width().powi(2) + s.mbr.height().powi(2)).sqrt();
            assert!(d < diag * 0.05, "segment too long: {d}");
        }
    }

    #[test]
    fn dataset_is_skewed_corridors() {
        // A rail map leaves large parts of the space empty.
        let rail = germany_rail(&RailSpec::default(), 4);
        let g = asj_geom::Grid::square(crate::default_space(), 32);
        let mut occupied = vec![false; g.len()];
        for s in &rail {
            if let Some((i, j)) = g.cell_of(&s.mbr.center()) {
                occupied[(j * 32 + i) as usize] = true;
            }
        }
        let frac = occupied.iter().filter(|&&o| o).count() as f64 / g.len() as f64;
        assert!(
            frac > 0.15 && frac < 0.85,
            "corridor structure expected, occupancy {frac}"
        );
    }

    #[test]
    fn coordinates_are_f32_snapped() {
        let spec = RailSpec {
            target_segments: 500,
            ..RailSpec::default()
        };
        for s in germany_rail(&spec, 5) {
            assert_eq!(s.mbr.min.x, snap(s.mbr.min.x));
            assert_eq!(s.mbr.max.y, snap(s.mbr.max.y));
        }
    }

    #[test]
    fn trajectory_ticks_are_deterministic() {
        let spec = RailSpec {
            target_segments: 400,
            ..RailSpec::default()
        };
        let rail = germany_rail(&spec, 7);
        let tspec = TrajectorySpec::default();
        let mut a = TrajectoryStream::new(&rail, tspec, 11);
        let mut b = TrajectoryStream::new(&rail, tspec, 11);
        for _ in 0..5 {
            assert_eq!(a.tick(), b.tick());
        }
        assert_eq!(a.objects(), b.objects());
        // A different seed diverges.
        let mut c = TrajectoryStream::new(&rail, tspec, 12);
        assert_ne!(a.tick(), c.tick());
    }

    #[test]
    fn trajectory_moves_a_fraction_and_stays_in_space() {
        let spec = RailSpec {
            target_segments: 2_000,
            ..RailSpec::default()
        };
        let rail = germany_rail(&spec, 8);
        let tspec = TrajectorySpec::default();
        let mut s = TrajectoryStream::new(&rail, tspec, 13);
        for _ in 0..3 {
            let moved = s.tick();
            let frac = moved.len() as f64 / rail.len() as f64;
            assert!((0.1..0.3).contains(&frac), "move fraction {frac}");
            for o in &moved {
                assert!(tspec.space.contains_rect(&o.mbr), "object left the space");
                assert_eq!(o.mbr.min.x, snap(o.mbr.min.x), "coordinates must snap");
            }
        }
        // The stream's fleet reflects the accumulated drift: movers in
        // its `objects()` view sit exactly where the last tick put them.
        let moved = s.tick();
        for o in &moved {
            let cur = s.objects().iter().find(|f| f.id == o.id).unwrap();
            assert_eq!(cur.mbr, o.mbr);
        }
    }

    #[test]
    fn ids_unique() {
        let spec = RailSpec {
            target_segments: 2_000,
            ..RailSpec::default()
        };
        let rail = germany_rail(&spec, 6);
        let mut ids: Vec<u32> = rail.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rail.len());
    }
}
