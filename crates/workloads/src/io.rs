//! Dataset (de)serialization — JSON files for examples and EXPERIMENTS
//! artifacts.

use std::io::{BufReader, BufWriter};
use std::path::Path;

use asj_geom::{Rect, SpatialObject};
use serde::{Deserialize, Serialize};

/// A named dataset with its space, as stored on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    pub name: String,
    pub space: Rect,
    pub objects: Vec<SpatialObject>,
}

impl Dataset {
    pub fn new(name: impl Into<String>, space: Rect, objects: Vec<SpatialObject>) -> Self {
        Dataset {
            name: name.into(),
            space,
            objects,
        }
    }
}

/// Saves a dataset as JSON.
pub fn save_dataset(path: &Path, ds: &Dataset) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), ds)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Loads a dataset from JSON.
pub fn load_dataset(path: &Path) -> std::io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian_clusters, SyntheticSpec};

    #[test]
    fn roundtrip() {
        let space = crate::default_space();
        let ds = Dataset::new(
            "test",
            space,
            gaussian_clusters(&SyntheticSpec::new(space, 50, 2), 9),
        );
        let dir = std::env::temp_dir().join("asj-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_dataset(&path, &ds).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_dataset(Path::new("/nonexistent/nope.json")).is_err());
    }
}
