//! Dataset (de)serialization — JSON files for examples and EXPERIMENTS
//! artifacts.
//!
//! The build environment has no access to a crates registry, so instead
//! of serde this module carries a small hand-rolled JSON codec for the
//! one schema it needs:
//!
//! ```json
//! {
//!   "name": "hotels",
//!   "space": {"min": {"x": 0.0, "y": 0.0}, "max": {"x": 10000.0, "y": 10000.0}},
//!   "objects": [{"id": 0, "mbr": {"min": {...}, "max": {...}}}, ...]
//! }
//! ```
//!
//! Numbers are written via `f64`'s shortest-roundtrip `Display`, so every
//! coordinate survives the round trip bit-exactly.

use std::io::{BufWriter, Read, Write};
use std::path::Path;

use asj_geom::{Point, Rect, SpatialObject};

/// A named dataset with its space, as stored on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    pub name: String,
    pub space: Rect,
    pub objects: Vec<SpatialObject>,
}

impl Dataset {
    pub fn new(name: impl Into<String>, space: Rect, objects: Vec<SpatialObject>) -> Self {
        Dataset {
            name: name.into(),
            space,
            objects,
        }
    }
}

/// Saves a dataset as JSON.
///
/// Fails with `InvalidInput` (before creating the file) if any coordinate
/// is NaN or infinite: JSON has no encoding for those, so writing them
/// would produce a file [`load_dataset`] can never read back.
pub fn save_dataset(path: &Path, ds: &Dataset) -> std::io::Result<()> {
    let finite = |r: &Rect| {
        r.min.x.is_finite() && r.min.y.is_finite() && r.max.x.is_finite() && r.max.y.is_finite()
    };
    if !finite(&ds.space) || !ds.objects.iter().all(|o| finite(&o.mbr)) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "dataset contains non-finite coordinates, which JSON cannot represent",
        ));
    }
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write_dataset(&mut w, ds)?;
    w.flush()
}

/// Loads a dataset from JSON.
pub fn load_dataset(path: &Path) -> std::io::Result<Dataset> {
    let mut text = String::new();
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    parse_dataset(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn write_point(out: &mut impl Write, p: &Point) -> std::io::Result<()> {
    write!(out, "{{\"x\":{},\"y\":{}}}", p.x, p.y)
}

fn write_rect(out: &mut impl Write, r: &Rect) -> std::io::Result<()> {
    out.write_all(b"{\"min\":")?;
    write_point(out, &r.min)?;
    out.write_all(b",\"max\":")?;
    write_point(out, &r.max)?;
    out.write_all(b"}")
}

fn write_dataset(out: &mut impl Write, ds: &Dataset) -> std::io::Result<()> {
    out.write_all(b"{\"name\":")?;
    write_json_string(out, &ds.name)?;
    out.write_all(b",\"space\":")?;
    write_rect(out, &ds.space)?;
    out.write_all(b",\"objects\":[")?;
    for (i, o) in ds.objects.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write!(out, "{{\"id\":{},\"mbr\":", o.id)?;
        write_rect(out, &o.mbr)?;
        out.write_all(b"}")?;
    }
    out.write_all(b"]}")
}

fn write_json_string(out: &mut impl Write, s: &str) -> std::io::Result<()> {
    out.write_all(b"\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_all(b"\"")
}

// ---------------------------------------------------------------------
// Parsing: a tiny recursive-descent JSON reader, just enough for the
// dataset schema (objects, arrays, strings, numbers).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
}

impl Json {
    fn field<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        match self {
            Json::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            _ => Err(format!("expected object while reading `{key}`")),
        }
    }

    fn as_number(&self) -> Result<f64, String> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn as_string(&self) -> Result<&str, String> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Array(v) => Ok(v),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

/// Maximum container nesting the parser accepts (serde_json's default);
/// recursion past this returns an error instead of overflowing the stack.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' | b'[' => {
                self.depth += 1;
                if self.depth > MAX_DEPTH {
                    return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
                }
                let v = if self.peek()? == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                v
            }
            b'"' => Ok(Json::String(self.string()?)),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("expected `,` or `}}`, found `{}`", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected `,` or `]`, found `{}`", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.unicode_escape()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow (JSON encodes non-BMP
                                // characters as surrogate pairs).
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(format!("lone high surrogate \\u{code:04x}"));
                                }
                                self.pos += 2;
                                let low = self.unicode_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!("invalid low surrogate \\u{low:04x}"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| format!("invalid \\u pair {c:#x}"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{code:04x}"))?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Reads the four hex digits after a `\u` (the `\u` itself already
    /// consumed).
    fn unicode_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        self.pos += 4;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        match text.parse::<f64>() {
            // Overflowing literals (1e999) parse to ±inf in Rust; JSON has
            // no non-finite numbers, and accepting them here would break
            // the finite-coordinate invariant `save_dataset` enforces.
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            _ => Err(format!("invalid number `{text}` at byte {start}")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn point_of(v: &Json) -> Result<Point, String> {
    Ok(Point::new(
        v.field("x")?.as_number()?,
        v.field("y")?.as_number()?,
    ))
}

fn rect_of(v: &Json) -> Result<Rect, String> {
    Ok(Rect::new(
        point_of(v.field("min")?)?,
        point_of(v.field("max")?)?,
    ))
}

fn parse_dataset(text: &str) -> Result<Dataset, String> {
    let mut p = Parser::new(text);
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    let objects = root
        .field("objects")?
        .as_array()?
        .iter()
        .map(|o| {
            let id = o.field("id")?.as_number()?;
            if id < 0.0 || id > f64::from(u32::MAX) || id.fract() != 0.0 {
                return Err(format!("object id {id} is not a u32"));
            }
            Ok(SpatialObject::new(id as u32, rect_of(o.field("mbr")?)?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Dataset {
        name: root.field("name")?.as_string()?.to_string(),
        space: rect_of(root.field("space")?)?,
        objects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian_clusters, SyntheticSpec};

    /// Per-process scratch dir so concurrent test runs (two checkouts,
    /// shared /tmp) never race on the same files.
    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("asj-io-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip() {
        let space = crate::default_space();
        let ds = Dataset::new(
            "test",
            space,
            gaussian_clusters(&SyntheticSpec::new(space, 50, 2), 9),
        );
        let path = scratch("roundtrip").join("ds.json");
        save_dataset(&path, &ds).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_dataset(Path::new("/nonexistent/nope.json")).is_err());
    }

    #[test]
    fn name_escaping_roundtrips() {
        let space = crate::default_space();
        let ds = Dataset::new("we\"ird\\näme\tü", space, Vec::new());
        let path = scratch("esc").join("esc.json");
        save_dataset(&path, &ds).unwrap();
        assert_eq!(load_dataset(&path).unwrap(), ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // Interop: serializers with ensure_ascii semantics encode non-BMP
        // characters as \u surrogate pairs.
        let ds = parse_dataset(
            "{\"name\":\"\\ud83d\\ude00 rail\",\"space\":{\"min\":{\"x\":0,\"y\":0},\
             \"max\":{\"x\":1,\"y\":1}},\"objects\":[]}",
        )
        .unwrap();
        assert_eq!(ds.name, "😀 rail");
        // Lone or malformed surrogates are rejected, not mangled.
        for bad in ["\\ud83d", "\\ud83dx", "\\ud83d\\u0041", "\\ude00"] {
            let doc = format!(
                "{{\"name\":\"{bad}\",\"space\":{{\"min\":{{\"x\":0,\"y\":0}},\
                 \"max\":{{\"x\":1,\"y\":1}}}},\"objects\":[]}}"
            );
            assert!(parse_dataset(&doc).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // 200k unclosed arrays: must return Err, not blow the stack.
        let mut doc = String::from("{\"name\":\"x\",\"space\":");
        doc.push_str(&"[".repeat(200_000));
        assert!(parse_dataset(&doc).is_err());
    }

    #[test]
    fn overflowing_number_literals_rejected() {
        // 1e999 → inf under f64 FromStr; the loader must refuse it so the
        // finite-coordinate invariant of save_dataset holds end to end.
        let doc = "{\"name\":\"x\",\"space\":{\"min\":{\"x\":0,\"y\":0},\
                   \"max\":{\"x\":1e999,\"y\":1}},\"objects\":[]}";
        assert!(parse_dataset(doc).is_err());
    }

    #[test]
    fn non_finite_coordinates_refused_at_save() {
        let dir = scratch("nonfinite");
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let ds = Dataset::new(
                "bad",
                crate::default_space(),
                vec![SpatialObject::point(1, bad, 0.0)],
            );
            let path = dir.join("bad.json");
            let err = save_dataset(&path, &ds).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
            assert!(!path.exists(), "refused save must not create the file");
        }
    }

    #[test]
    fn malformed_json_rejected() {
        for bad in [
            "",
            "{",
            "{\"name\":\"x\"}",
            "{\"name\":\"x\",\"space\":5,\"objects\":[]}",
            "{\"name\":\"x\",\"space\":{\"min\":{\"x\":0,\"y\":0},\"max\":{\"x\":1,\"y\":1}},\"objects\":[]} extra",
        ] {
            assert!(parse_dataset(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn extreme_coordinates_roundtrip() {
        let space = Rect::from_coords(-1e9, -1e9, 1e9, 1e9);
        let objs = vec![
            SpatialObject::point(0, -0.0, 1e-300),
            SpatialObject::point(u32::MAX, 12345.678901234567, -9.875e8),
        ];
        let ds = Dataset::new("extremes", space, objs);
        let path = scratch("ext").join("ext.json");
        save_dataset(&path, &ds).unwrap();
        assert_eq!(load_dataset(&path).unwrap(), ds);
        std::fs::remove_file(&path).ok();
    }
}
