//! Synthetic point datasets: Gaussian clusters and uniform.

use asj_geom::{Point, Rect, SpatialObject};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::snap;

/// Parameters of a synthetic clustered dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// The data space; points are clamped into it.
    pub space: Rect,
    /// Total number of points (the paper uses 1000).
    pub n: usize,
    /// Number of Gaussian clusters, `k ∈ {1 … 128}` in the paper.
    pub clusters: usize,
    /// Cluster standard deviation as a fraction of the space width.
    /// Default 0.025 (250 units in the 10 000-unit space): tight enough
    /// that low-k datasets leave most of the space empty (pruning pays,
    /// and MobiJoin's coarse HBSJ windows overshoot — Fig. 2), while
    /// k = 128 blankets the space (the paper's "uniform dataset").
    pub sigma_fraction: f64,
}

impl SyntheticSpec {
    /// Spec with the default sigma.
    pub fn new(space: Rect, n: usize, clusters: usize) -> Self {
        SyntheticSpec {
            space,
            n,
            clusters,
            sigma_fraction: 0.025,
        }
    }

    /// Overrides the cluster spread.
    pub fn with_sigma_fraction(mut self, f: f64) -> Self {
        self.sigma_fraction = f;
        self
    }
}

/// Generates a clustered point dataset, deterministic in `seed`.
///
/// Cluster centers are uniform in the space; each point picks a cluster
/// uniformly and offsets from its center by a 2-D Gaussian (Box–Muller).
pub fn gaussian_clusters(spec: &SyntheticSpec, seed: u64) -> Vec<SpatialObject> {
    assert!(spec.clusters >= 1, "need at least one cluster");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sigma = spec.space.width() * spec.sigma_fraction;

    let centers: Vec<Point> = (0..spec.clusters)
        .map(|_| {
            Point::new(
                rng.random_range(spec.space.min.x..spec.space.max.x),
                rng.random_range(spec.space.min.y..spec.space.max.y),
            )
        })
        .collect();

    (0..spec.n)
        .map(|i| {
            let c = centers[rng.random_range(0..centers.len())];
            // Truncate at 2.5 sigma: unbounded tails would sprinkle stray
            // points into every grid cell, making no window prunable and
            // erasing the skew the experiment is about.
            let (gx, gy) = loop {
                let (gx, gy) = box_muller(&mut rng);
                if gx * gx + gy * gy <= 2.5 * 2.5 {
                    break (gx, gy);
                }
            };
            let x = (c.x + gx * sigma).clamp(spec.space.min.x, spec.space.max.x);
            let y = (c.y + gy * sigma).clamp(spec.space.min.y, spec.space.max.y);
            SpatialObject::point(i as u32, snap(x), snap(y))
        })
        .collect()
}

/// Uniform point dataset over the space, deterministic in `seed`.
pub fn uniform(space: &Rect, n: usize, seed: u64) -> Vec<SpatialObject> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            SpatialObject::point(
                i as u32,
                snap(rng.random_range(space.min.x..space.max.x)),
                snap(rng.random_range(space.min.y..space.max.y)),
            )
        })
        .collect()
}

/// One pair of independent standard normals via Box–Muller (avoids a
/// `rand_distr` dependency).
fn box_muller<R: Rng>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_space;

    #[test]
    fn deterministic_in_seed() {
        let spec = SyntheticSpec::new(default_space(), 500, 4);
        assert_eq!(gaussian_clusters(&spec, 42), gaussian_clusters(&spec, 42));
        assert_ne!(gaussian_clusters(&spec, 42), gaussian_clusters(&spec, 43));
    }

    #[test]
    fn respects_cardinality_and_space() {
        let spec = SyntheticSpec::new(default_space(), 1000, 8);
        let pts = gaussian_clusters(&spec, 7);
        assert_eq!(pts.len(), 1000);
        for p in &pts {
            assert!(default_space().contains(&p.center()));
            assert!(p.is_point());
        }
        // Ids are unique and dense.
        let mut ids: Vec<u32> = pts.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn coordinates_are_f32_snapped() {
        let spec = SyntheticSpec::new(default_space(), 200, 2);
        for p in gaussian_clusters(&spec, 1) {
            assert_eq!(p.center().x, snap(p.center().x));
            assert_eq!(p.center().y, snap(p.center().y));
        }
        for p in uniform(&default_space(), 200, 1) {
            assert_eq!(p.center().x, snap(p.center().x));
        }
    }

    #[test]
    fn skew_decreases_with_clusters() {
        // Measure skew as the fraction of a 16×16 grid left empty: k = 1
        // leaves most cells empty, k = 128 covers most of them.
        let occupancy = |k: usize| {
            let spec = SyntheticSpec::new(default_space(), 1000, k);
            let pts = gaussian_clusters(&spec, 11);
            let g = asj_geom::Grid::square(default_space(), 16);
            let mut occupied = vec![false; g.len()];
            for p in &pts {
                if let Some((i, j)) = g.cell_of(&p.center()) {
                    occupied[(j * 16 + i) as usize] = true;
                }
            }
            occupied.iter().filter(|&&o| o).count()
        };
        let k1 = occupancy(1);
        let k16 = occupancy(16);
        let k128 = occupancy(128);
        assert!(k1 < k16 && k16 < k128, "occupancy {k1} {k16} {k128}");
        assert!(k1 < 60, "k=1 should be clustered, got {k1}");
        assert!(k128 > 180, "k=128 should blanket the space, got {k128}");
    }

    #[test]
    fn uniform_fills_space_evenly() {
        let pts = uniform(&default_space(), 4000, 3);
        let g = asj_geom::Grid::square(default_space(), 4);
        let mut counts = [0usize; 16];
        for p in &pts {
            let (i, j) = g.cell_of(&p.center()).unwrap();
            counts[(j * 4 + i) as usize] += 1;
        }
        // Each of the 16 cells expects 250; allow generous slack.
        for (i, &c) in counts.iter().enumerate() {
            assert!((150..350).contains(&c), "cell {i} has {c} points");
        }
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let (a, b) = box_muller(&mut rng);
            sum += a + b;
            sumsq += a * a + b * b;
        }
        let mean = sum / (2.0 * n as f64);
        let var = sumsq / (2.0 * n as f64) - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
