//! # asj-workloads — dataset generators and IO
//!
//! Reproduces the paper's experimental inputs (Section 5):
//!
//! * [`gaussian_clusters`] — "synthetic datasets consisting of 1000 points
//!   … clustered around k randomly selected centers, and for each cluster
//!   the distribution of objects was Gaussian. In order to achieve
//!   different skew levels, we varied k from 1 to 128."
//! * [`uniform`] — the uniform limit (and a sanity baseline).
//! * [`germany_rail`] — a synthetic substitute for the "real dataset (with
//!   around 35 K objects) representing the railway segments of Germany":
//!   a deterministic rail network of hub cities joined by jittered
//!   polylines, subdivided into ~35 000 short segment MBRs. See DESIGN.md
//!   §3 for why the substitution preserves the experiment's behaviour.
//!
//! **Invariant**: every generated coordinate is snapped through `f32`
//! ([`snap`]), so the 20-byte wire encoding of `asj-net` round-trips
//! losslessly and brute-force ground truth computed on the generator
//! output matches what the device computes on downloaded objects.

pub mod io;
pub mod rail;
pub mod synthetic;

pub use io::{load_dataset, save_dataset, Dataset};
pub use rail::{germany_rail, RailSpec, TrajectorySpec, TrajectoryStream};
pub use synthetic::{gaussian_clusters, uniform, SyntheticSpec};

/// Snaps a coordinate to the nearest `f32`-representable value.
#[inline]
pub fn snap(x: f64) -> f64 {
    x as f32 as f64
}

/// The experiment space used throughout the reproduction:
/// `10 000 × 10 000` units (think meters over a metropolitan map).
pub fn default_space() -> asj_geom::Rect {
    asj_geom::Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0)
}
